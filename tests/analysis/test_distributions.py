"""Unit tests for probability helpers."""

import math
import random

import pytest
from scipy import stats as sstats

from repro.analysis.distributions import (
    binomial_pmf,
    binomial_tail_ge,
    expected_max_geometric,
)
from repro.errors import ConfigError


def test_max_geometric_no_loss():
    assert expected_max_geometric(10, 0.0) == 1.0


def test_max_geometric_single_receiver_is_plain_geometric():
    # E[Geometric(1-p)] = 1 / (1-p)
    for p in (0.1, 0.3, 0.5):
        assert expected_max_geometric(1, p) == pytest.approx(1.0 / (1.0 - p), rel=1e-9)


def test_max_geometric_monotone_in_n_and_p():
    assert expected_max_geometric(20, 0.2) > expected_max_geometric(5, 0.2)
    assert expected_max_geometric(10, 0.4) > expected_max_geometric(10, 0.1)


def test_max_geometric_against_monte_carlo():
    rng = random.Random(42)
    n, p, trials = 8, 0.3, 20000
    total = 0
    for _ in range(trials):
        total += max(
            next(t for t in range(1, 1000) if rng.random() >= p) for _ in range(n)
        )
    empirical = total / trials
    assert expected_max_geometric(n, p) == pytest.approx(empirical, rel=0.02)


def test_max_geometric_validation():
    with pytest.raises(ConfigError):
        expected_max_geometric(0, 0.1)
    with pytest.raises(ConfigError):
        expected_max_geometric(5, 1.0)


def test_binomial_pmf_against_scipy():
    for n, q in ((10, 0.3), (48, 0.6), (5, 0.0), (5, 1.0)):
        for k in range(n + 1):
            assert binomial_pmf(k, n, q) == pytest.approx(
                sstats.binom.pmf(k, n, q), abs=1e-12
            )


def test_binomial_pmf_out_of_range():
    assert binomial_pmf(-1, 5, 0.5) == 0.0
    assert binomial_pmf(6, 5, 0.5) == 0.0


def test_binomial_tail_against_scipy():
    for n, q, k in ((48, 0.6, 34), (20, 0.5, 10), (10, 0.9, 0), (10, 0.9, 11)):
        expected = sstats.binom.sf(k - 1, n, q) if 0 < k <= n else (1.0 if k <= 0 else 0.0)
        assert binomial_tail_ge(k, n, q) == pytest.approx(expected, abs=1e-10)
