"""Tests for the analytical latency model (validated against simulation)."""

import pytest

from repro.analysis.latency import estimate_lr_seluge_latency, estimate_seluge_latency
from repro.core.config import ImageConfig, LRSelugeParams, SelugeParams
from repro.experiments.scenarios import OneHopScenario, run_one_hop


def test_monotone_in_loss():
    params = SelugeParams(k=32, image=ImageConfig(image_size=20 * 1024))
    values = [estimate_seluge_latency(params, p, 20) for p in (0.0, 0.1, 0.3)]
    assert values[0] < values[1] < values[2]
    lr = LRSelugeParams(k=32, n=48, image=ImageConfig(image_size=20 * 1024))
    lr_values = [estimate_lr_seluge_latency(lr, p, 20) for p in (0.0, 0.1, 0.3)]
    assert lr_values[0] < lr_values[1] < lr_values[2]


def test_lr_predicted_faster_under_loss():
    image = ImageConfig(image_size=20 * 1024)
    seluge = estimate_seluge_latency(SelugeParams(k=32, image=image), 0.3, 20)
    lr = estimate_lr_seluge_latency(LRSelugeParams(k=32, n=48, image=image), 0.3, 20)
    assert lr < seluge


@pytest.mark.parametrize("p", [0.05, 0.2])
def test_seluge_prediction_within_factor_of_simulation(p):
    params = SelugeParams(k=32, image=ImageConfig(image_size=8 * 1024))
    predicted = estimate_seluge_latency(params, p, 10)
    simulated = run_one_hop(OneHopScenario(
        protocol="seluge", loss_rate=p, receivers=10, image_size=8 * 1024,
        seed=2,
    )).latency
    assert predicted == pytest.approx(simulated, rel=0.6)


@pytest.mark.parametrize("p", [0.05, 0.2])
def test_lr_prediction_within_factor_of_simulation(p):
    params = LRSelugeParams(k=32, n=48, image=ImageConfig(image_size=8 * 1024))
    predicted = estimate_lr_seluge_latency(params, p, 10)
    simulated = run_one_hop(OneHopScenario(
        protocol="lr-seluge", loss_rate=p, receivers=10, image_size=8 * 1024,
        seed=2,
    )).latency
    assert predicted == pytest.approx(simulated, rel=0.6)
