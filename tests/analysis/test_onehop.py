"""Unit tests for the Section-V analytical models."""

import pytest

from repro.analysis.onehop import (
    ack_lr_expected_tx,
    ack_lr_round_distribution,
    seluge_expected_tx,
    seluge_page_expected_tx,
)
from repro.errors import ConfigError


def test_seluge_no_loss_is_k():
    assert seluge_page_expected_tx(32, 20, 0.0) == 32.0


def test_seluge_scales_with_pages():
    per_page = seluge_page_expected_tx(32, 20, 0.2)
    assert seluge_expected_tx(10, 32, 20, 0.2) == pytest.approx(10 * per_page)
    with pytest.raises(ConfigError):
        seluge_expected_tx(0, 32, 20, 0.2)


def test_seluge_monotone():
    assert seluge_page_expected_tx(32, 20, 0.3) > seluge_page_expected_tx(32, 20, 0.1)
    assert seluge_page_expected_tx(32, 40, 0.2) > seluge_page_expected_tx(32, 10, 0.2)


def test_ack_lr_no_loss_is_kprime():
    assert ack_lr_expected_tx(1, 34, 48, 20, 0.0) == pytest.approx(34.0)
    assert ack_lr_expected_tx(3, 34, 48, 20, 0.0) == pytest.approx(102.0)


def test_ack_lr_single_receiver_dp_matches_geometric_tail():
    """With n = k' (no redundancy) one receiver reduces to per-packet ARQ."""
    expected = ack_lr_expected_tx(1, 10, 10, 1, 0.3)
    # First pass sends 10; each missing packet then costs Geometric(0.7):
    # E = 10 + 10*p/(1-p) = 10 / (1-p)
    assert expected == pytest.approx(10 / 0.7, rel=1e-6)


def test_ack_lr_monotone_in_p():
    values = [ack_lr_expected_tx(1, 34, 48, 20, p, trials=200) for p in (0.1, 0.2, 0.3)]
    assert values[0] < values[1] < values[2]


def test_ack_lr_less_sensitive_to_n_than_seluge():
    """The Fig. 3(b) shape: LR grows much slower with N than Seluge."""
    lr_small = ack_lr_expected_tx(1, 34, 48, 5, 0.2, trials=300)
    lr_large = ack_lr_expected_tx(1, 34, 48, 40, 0.2, trials=300)
    sel_small = seluge_page_expected_tx(32, 5, 0.2)
    sel_large = seluge_page_expected_tx(32, 40, 0.2)
    assert (lr_large / lr_small) < (sel_large / sel_small)


def test_ack_lr_below_seluge_at_moderate_loss():
    """The Fig. 3(a) shape at p = 0.2: erasure coding wins clearly."""
    lr = ack_lr_expected_tx(1, 34, 48, 20, 0.2, trials=300)
    seluge = seluge_page_expected_tx(32, 20, 0.2)
    assert lr < seluge


def test_ack_lr_validation():
    with pytest.raises(ConfigError):
        ack_lr_expected_tx(1, 50, 48, 5, 0.1)
    with pytest.raises(ConfigError):
        ack_lr_expected_tx(1, 34, 48, 5, 1.0)


def test_round_distribution_is_distribution():
    dist = ack_lr_round_distribution(34, 48, 20, 0.2, trials=300)
    assert sum(dist) == pytest.approx(1.0)
    assert all(0.0 <= x <= 1.0 for x in dist)


def test_round_distribution_no_loss_single_round():
    dist = ack_lr_round_distribution(34, 48, 20, 0.0, trials=50)
    assert dist == [1.0]


def test_round_regime_shifts_with_loss():
    """More loss pushes probability mass to later rounds (the paper's
    one-round/two-round regime observation)."""
    low = ack_lr_round_distribution(34, 48, 20, 0.05, trials=400)
    high = ack_lr_round_distribution(34, 48, 20, 0.4, trials=400)
    mean_low = sum((i + 1) * v for i, v in enumerate(low))
    mean_high = sum((i + 1) * v for i, v in enumerate(high))
    assert mean_high > mean_low


def test_deterministic_for_fixed_seed():
    a = ack_lr_expected_tx(2, 34, 48, 10, 0.25, trials=100, seed=7)
    b = ack_lr_expected_tx(2, 34, 48, 10, 0.25, trials=100, seed=7)
    assert a == b
