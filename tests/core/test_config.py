"""Unit tests for configuration objects and derived geometry."""

import pytest

from repro.core.config import (
    DelugeParams,
    ImageConfig,
    LRSelugeParams,
    ProtocolTiming,
    SelugeParams,
    WireFormat,
    next_power_of_two,
)
from repro.errors import ConfigError


def test_next_power_of_two():
    assert next_power_of_two(1) == 1
    assert next_power_of_two(2) == 2
    assert next_power_of_two(3) == 4
    assert next_power_of_two(17) == 32
    with pytest.raises(ConfigError):
        next_power_of_two(0)


def test_image_config_validation():
    with pytest.raises(ConfigError):
        ImageConfig(image_size=0)


def test_wire_format_sizes():
    wire = WireFormat()
    assert wire.data_packet_size(72) == 83
    assert wire.data_packet_size(72, auth_path_hashes=3) == 83 + 24
    assert wire.snack_size(48) == 11 + 4 + 6
    assert wire.snack_size(32) == 11 + 4 + 4  # n-k bits shorter for Seluge
    assert wire.adv_size() == 20
    assert wire.signature_packet_size() == 11 + 8 + 13 + 48 + 12


def test_wire_format_validation():
    with pytest.raises(ConfigError):
        WireFormat(data_payload=8, hash_len=8)


def test_timing_validation():
    with pytest.raises(ConfigError):
        ProtocolTiming(adv_i_min=0.0)
    with pytest.raises(ConfigError):
        ProtocolTiming(adv_i_min=5.0, adv_i_max=1.0)
    with pytest.raises(ConfigError):
        ProtocolTiming(request_timeout=0.0)


def test_deluge_pages():
    params = DelugeParams(k=32, image=ImageConfig(image_size=20 * 1024))
    assert params.page_capacity == 32 * 72
    assert params.num_pages() == 9  # ceil(20480 / 2304)


def test_seluge_pages_last_page_larger():
    params = SelugeParams(k=32, image=ImageConfig(image_size=20 * 1024))
    assert params.chained_slice == 64
    # last page holds 2304, chained pages 2048: 1 + ceil((20480-2304)/2048) = 10
    assert params.num_pages() == 10


def test_seluge_tiny_image_single_page():
    params = SelugeParams(k=32, image=ImageConfig(image_size=100))
    assert params.num_pages() == 1


def test_seluge_hash_page_is_power_of_two():
    params = SelugeParams(k=32)
    assert params.hash_page_packets() == 4  # 32*8/72 -> 4 raw -> 4
    params6 = SelugeParams(k=48)
    assert params6.hash_page_packets() == 8  # 48*8/72 = 6 raw -> 8


def test_lr_geometry_defaults():
    params = LRSelugeParams(k=32, n=48, image=ImageConfig(image_size=20 * 1024))
    assert params.resolved_kprime == 34
    assert params.rate == 1.5
    assert params.page_source_bytes == 2304
    assert params.page_capacity == 2304 - 48 * 8
    assert params.num_pages() == 11
    assert params.k0 == 6   # ceil(48*8/72)
    assert params.n0 == 8
    assert params.k0prime == 7


def test_lr_explicit_kprime():
    params = LRSelugeParams(k=32, n=48, kprime=32)
    assert params.resolved_kprime == 32
    with pytest.raises(ConfigError):
        LRSelugeParams(k=32, n=48, kprime=49)
    with pytest.raises(ConfigError):
        LRSelugeParams(k=32, n=48, kprime=31)


def test_lr_validation():
    with pytest.raises(ConfigError):
        LRSelugeParams(k=32, n=16)
    with pytest.raises(ConfigError):
        LRSelugeParams(k=200, n=300)
    # hashes must leave room for image payload in a page
    with pytest.raises(ConfigError):
        LRSelugeParams(k=2, n=32)


def test_lr_n0_override():
    params = LRSelugeParams(k=32, n=48, n0_override=16)
    assert params.n0 == 16
    with pytest.raises(ConfigError):
        _ = LRSelugeParams(k=32, n=48, n0_override=12).n0
    with pytest.raises(ConfigError):
        _ = LRSelugeParams(k=32, n=48, n0_override=4).n0


def test_lr_with_rate():
    params = LRSelugeParams(k=32, n=48)
    swept = params.with_rate(64)
    assert swept.n == 64
    assert swept.resolved_kprime == 34
    assert swept.k == params.k
