"""Unit tests for code images and partitioning."""

import pytest

from repro.core.image import CodeImage, partition, split_blocks
from repro.errors import ConfigError


def test_synthetic_deterministic():
    a = CodeImage.synthetic(1000, version=2, seed=5)
    b = CodeImage.synthetic(1000, version=2, seed=5)
    assert a.data == b.data
    assert a.size == 1000


def test_synthetic_varies_with_seed_and_version():
    base = CodeImage.synthetic(500, version=2, seed=5)
    assert CodeImage.synthetic(500, version=2, seed=6).data != base.data
    assert CodeImage.synthetic(500, version=3, seed=5).data != base.data


def test_synthetic_size_validation():
    with pytest.raises(ConfigError):
        CodeImage.synthetic(0)


def test_digest_stable():
    img = CodeImage.synthetic(100, seed=1)
    assert img.digest() == CodeImage.synthetic(100, seed=1).digest()


def test_partition_exact():
    parts = partition(b"abcdefgh", [3, 3, 2])
    assert parts == [b"abc", b"def", b"gh"]


def test_partition_pads_tail():
    parts = partition(b"abcde", [3, 4])
    assert parts == [b"abc", b"de\x00\x00"]


def test_partition_insufficient_capacity():
    with pytest.raises(ConfigError):
        partition(b"abcdefgh", [3, 3])


def test_split_blocks():
    blocks = split_blocks(b"abcdef", 4, 2)
    assert blocks == [b"abcd", b"ef\x00\x00"]


def test_split_blocks_overflow():
    with pytest.raises(ConfigError):
        split_blocks(b"abcdefghij", 4, 2)
