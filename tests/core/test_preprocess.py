"""Unit tests for the base-station preprocessing pipelines.

These verify the *construction* invariants of Section IV-C: reverse-order
chaining, the hash page contents, the Merkle tree, and the signature.
"""

import pytest

from repro.core.config import DelugeParams, ImageConfig, LRSelugeParams, SelugeParams
from repro.core.image import CodeImage
from repro.core.preprocess import (
    DelugePreprocessor,
    LRSelugePreprocessor,
    SelugePreprocessor,
    pack_metadata,
    unpack_metadata,
)
from repro.crypto.ecdsa import EcdsaSignature, verify
from repro.crypto.hashing import hash_image
from repro.crypto.merkle import verify_merkle_path
from repro.errors import ConfigError


@pytest.fixture
def image(small_image_cfg):
    return CodeImage.synthetic(small_image_cfg.image_size,
                               version=small_image_cfg.version, seed=7)


def test_metadata_roundtrip():
    raw = pack_metadata(3, 14, 20480)
    assert len(raw) == 13
    assert unpack_metadata(raw) == (3, 14, 20480)
    with pytest.raises(ConfigError):
        pack_metadata(3, 14, 20480, pad_to=4)


# -- Deluge -------------------------------------------------------------------


def test_deluge_units(deluge_params, image):
    pre = DelugePreprocessor(deluge_params).build(image)
    assert pre.protocol == "deluge"
    assert pre.total_units == deluge_params.num_pages()
    for i, unit in enumerate(pre.units):
        assert unit.index == i
        assert unit.kind == "page"
        assert unit.n_packets == unit.threshold == deluge_params.k
        assert len(unit.packets) == deluge_params.k
    assert pre.signature_packet is None


def test_deluge_payloads_reassemble(deluge_params, image):
    pre = DelugePreprocessor(deluge_params).build(image)
    raw = b"".join(p.payload for u in pre.units for p in u.packets)
    assert raw[: image.size] == image.data


def test_deluge_size_mismatch_rejected(deluge_params):
    with pytest.raises(ConfigError):
        DelugePreprocessor(deluge_params).build(CodeImage.synthetic(100))


# -- Seluge -------------------------------------------------------------------


def test_seluge_unit_layout(seluge_params, image, keypair, puzzle):
    pre = SelugePreprocessor(seluge_params, keypair, puzzle).build(image)
    g = seluge_params.num_pages()
    assert pre.total_units == g + 2
    assert pre.units[0].kind == "signature"
    assert pre.units[1].kind == "hash_page"
    assert all(u.kind == "page" for u in pre.units[2:])
    assert all(u.threshold == u.n_packets for u in pre.units)


def test_seluge_per_packet_chaining(seluge_params, image, keypair, puzzle):
    """Packet (i, j) embeds the hash image of packet (i+1, j)."""
    p = seluge_params
    pre = SelugePreprocessor(p, keypair, puzzle).build(image)
    pages = pre.units[2:]
    for a, b in zip(pages[:-1], pages[1:]):
        for j in range(p.k):
            embedded = a.packets[j].payload[p.chained_slice:]
            assert embedded == hash_image(b.packets[j].canonical_bytes())


def test_seluge_hash_page_contains_page1_hashes(seluge_params, image, keypair, puzzle):
    p = seluge_params
    pre = SelugePreprocessor(p, keypair, puzzle).build(image)
    m0 = b"".join(pkt.payload for pkt in pre.units[1].packets)
    first_page = pre.units[2]
    for j in range(p.k):
        expected = hash_image(first_page.packets[j].canonical_bytes())
        assert m0[j * 8:(j + 1) * 8] == expected


def test_seluge_merkle_paths_verify(seluge_params, image, keypair, puzzle):
    pre = SelugePreprocessor(seluge_params, keypair, puzzle).build(image)
    for pkt in pre.units[1].packets:
        assert verify_merkle_path(pkt.canonical_bytes(), pkt.index,
                                  pkt.auth_path, pre.merkle_root)


def test_seluge_signature_verifies(seluge_params, image, keypair, puzzle):
    pre = SelugePreprocessor(seluge_params, keypair, puzzle).build(image)
    sig_packet = pre.signature_packet
    sig = EcdsaSignature.from_bytes(sig_packet.signature)
    assert verify(sig_packet.root + sig_packet.metadata, sig, keypair.public)
    version, total_units, image_size = unpack_metadata(sig_packet.metadata)
    assert version == image.version
    assert total_units == pre.total_units
    assert image_size == image.size


def test_seluge_puzzle_attached_and_valid(seluge_params, image, keypair, puzzle):
    pre = SelugePreprocessor(seluge_params, keypair, puzzle).build(image)
    sp = pre.signature_packet
    assert puzzle.check(sp.root + sp.metadata + sp.signature, sp.puzzle)


# -- LR-Seluge ----------------------------------------------------------------


def test_lr_unit_layout(lr_params, image, keypair, puzzle):
    pre = LRSelugePreprocessor(lr_params, keypair, puzzle).build(image)
    g = lr_params.num_pages()
    assert pre.total_units == g + 2
    assert pre.units[1].n_packets == lr_params.n0
    assert pre.units[1].threshold == lr_params.k0prime
    for unit in pre.units[2:]:
        assert unit.n_packets == lr_params.n
        assert unit.threshold == lr_params.resolved_kprime


def test_lr_page_chaining(lr_params, image, keypair, puzzle):
    """Decoded page i ends with the hash images of page i+1's n packets."""
    p = lr_params
    pre = LRSelugePreprocessor(p, keypair, puzzle).build(image)
    pages = pre.units[2:]
    for a, b in zip(pages[:-1], pages[1:]):
        source = b"".join(a.source_blocks)
        tail = source[p.page_capacity:]
        for j in range(p.n):
            expected = hash_image(b.packets[j].canonical_bytes())
            assert tail[j * 8:(j + 1) * 8] == expected


def test_lr_page0_contains_page1_packet_hashes(lr_params, image, keypair, puzzle):
    p = lr_params
    pre = LRSelugePreprocessor(p, keypair, puzzle).build(image)
    m0 = b"".join(pre.units[1].source_blocks)
    first_page = pre.units[2]
    for j in range(p.n):
        expected = hash_image(first_page.packets[j].canonical_bytes())
        assert m0[j * 8:(j + 1) * 8] == expected


def test_lr_encoded_systematic_prefix_matches_source(lr_params, image, keypair, puzzle):
    pre = LRSelugePreprocessor(lr_params, keypair, puzzle).build(image)
    for unit in pre.units[2:]:
        for j in range(lr_params.k):
            assert unit.packets[j].payload == unit.source_blocks[j]


def test_lr_merkle_paths_on_page0(lr_params, image, keypair, puzzle):
    pre = LRSelugePreprocessor(lr_params, keypair, puzzle).build(image)
    assert len(pre.units[1].packets) == lr_params.n0
    for pkt in pre.units[1].packets:
        assert verify_merkle_path(pkt.canonical_bytes(), pkt.index,
                                  pkt.auth_path, pre.merkle_root)


def test_lr_image_recoverable_from_sources(lr_params, image, keypair, puzzle):
    p = lr_params
    pre = LRSelugePreprocessor(p, keypair, puzzle).build(image)
    pages = pre.units[2:]
    parts = []
    for unit in pages[:-1]:
        parts.append(b"".join(unit.source_blocks)[: p.page_capacity])
    parts.append(b"".join(pages[-1].source_blocks))
    assert b"".join(parts)[: image.size] == image.data


def test_lr_signature_covers_root_and_metadata(lr_params, image, keypair, puzzle):
    pre = LRSelugePreprocessor(lr_params, keypair, puzzle).build(image)
    sp = pre.signature_packet
    sig = EcdsaSignature.from_bytes(sp.signature)
    assert verify(sp.root + sp.metadata, sig, keypair.public)
    assert sp.root == pre.merkle_root


def test_lr_packet_sizes(lr_params, image, keypair, puzzle):
    pre = LRSelugePreprocessor(lr_params, keypair, puzzle).build(image)
    wire = lr_params.wire
    assert pre.units[0].packet_size == wire.signature_packet_size()
    import math
    depth = int(math.log2(lr_params.n0))
    assert pre.units[1].packet_size == wire.data_packet_size(wire.data_payload, depth)
    assert pre.units[2].packet_size == wire.data_packet_size(wire.data_payload)


def test_lr_data_packet_count(lr_params, image, keypair, puzzle):
    pre = LRSelugePreprocessor(lr_params, keypair, puzzle).build(image)
    g = lr_params.num_pages()
    assert pre.data_packet_count() == lr_params.n0 + g * lr_params.n
