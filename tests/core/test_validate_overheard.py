"""Unit tests for the overheard-packet validation gate.

Protocol timers react only to authentic traffic; this is the cheap check
that decides authenticity for packets of units a node is not collecting.
"""

import dataclasses

import pytest

from repro.core.packets import DataPacket
from repro.core.preprocess import LRSelugePreprocessor
from repro.core.verify import DelugeReceiver, LRSelugeReceiver


@pytest.fixture
def armed(lr_params, small_image, keypair, puzzle):
    pre = LRSelugePreprocessor(lr_params, keypair, puzzle).build(small_image)
    rx = LRSelugeReceiver(lr_params, keypair.public, puzzle)
    assert rx.handle_signature(pre.signature_packet)
    unit1 = pre.units[1]
    got = {}
    for pkt in unit1.packets[: unit1.threshold]:
        assert rx.authenticate(pkt)
        got[pkt.index] = pkt
    assert rx.complete_unit(1, got)
    return rx, pre


def test_expected_unit_packets_validate(armed):
    rx, pre = armed
    genuine = pre.units[2].packets[5]
    assert rx.validate_overheard(genuine)


def test_forged_expected_unit_packets_fail(armed):
    rx, pre = armed
    genuine = pre.units[2].packets[5]
    forged = dataclasses.replace(genuine, payload=bytes(len(genuine.payload)))
    assert not rx.validate_overheard(forged)


def test_page0_packets_validate_via_merkle(armed):
    rx, pre = armed
    genuine = pre.units[1].packets[0]
    assert rx.validate_overheard(genuine)
    forged = dataclasses.replace(genuine, payload=bytes(len(genuine.payload)))
    assert not rx.validate_overheard(forged)


def test_future_unit_packets_cannot_validate(armed):
    """No expectations for unit 4 yet: unverifiable, so not authentic."""
    rx, pre = armed
    assert not rx.validate_overheard(pre.units[4].packets[0])


def test_completed_unit_packets_validate_by_comparison(armed):
    rx, pre = armed
    # Complete unit 2 so it becomes servable, then validate its packets.
    unit2 = pre.units[2]
    got = {}
    for pkt in unit2.packets[: unit2.threshold]:
        assert rx.authenticate(pkt)
        got[pkt.index] = pkt
    assert rx.complete_unit(2, got)
    rx.serving_packets(2)  # materialise the serving set
    genuine = unit2.packets[0]
    # unit 2's expectations are still present, so the chain check handles
    # it; drop them to exercise the serving-comparison fallback.
    rx.expected.pop(2, None)
    assert rx.validate_overheard(genuine)
    forged = dataclasses.replace(genuine, payload=bytes(len(genuine.payload)))
    assert not rx.validate_overheard(forged)


def test_insecure_receiver_accepts_everything(deluge_params):
    rx = DelugeReceiver(deluge_params)
    junk = DataPacket(version=9, unit=3, index=1, payload=b"junk")
    assert rx.validate_overheard(junk)
