"""Unit and property tests for the tracking table and TX schedulers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scheduler import (
    FreshPacketScheduler,
    GreedyRoundRobinScheduler,
    TrackingTable,
    UnionScheduler,
)
from repro.errors import ProtocolError


def test_distance_formula():
    """d_v = q + k' - n (Section IV-D3), clamped to >= 1 for requesters."""
    table = TrackingTable(n_packets=4, threshold=3)
    table.update_from_snack(1, {0, 1, 2, 3})  # q = 4 -> d = 4 + 3 - 4 = 3
    assert table.entries[1].distance == 3
    table.update_from_snack(2, {1, 2})        # q = 2 -> d = 1
    assert table.entries[2].distance == 1
    # q = 1 implies d = 0, but a node that requests cannot decode yet (it
    # may hold rank-deficient symbols of a non-MDS code): serve >= 1.
    table.update_from_snack(3, {1})
    assert table.entries[3].distance == 1
    # An empty bit-vector clears the entry.
    table.update_from_snack(3, set())
    assert 3 not in table.entries


def test_snack_update_replaces_entry():
    table = TrackingTable(4, 3)
    table.update_from_snack(1, {0, 1, 2, 3})
    table.update_from_snack(1, {2, 3})
    assert table.entries[1].wanted == {2, 3}
    assert table.entries[1].distance == 1


def test_out_of_range_indices_ignored():
    table = TrackingTable(4, 3)
    table.update_from_snack(1, {0, 1, 7, -2, 3})
    assert table.entries[1].wanted == {0, 1, 3}


def test_popularity():
    table = TrackingTable(4, 3)
    table.update_from_snack(1, {0, 1, 2, 3})
    table.update_from_snack(2, {1, 2, 3})
    assert table.popularity(0) == 1
    assert table.popularity(1) == 2
    assert table.popularity_vector() == [1, 2, 2, 2]


def test_mark_sent_clears_column_and_decrements():
    table = TrackingTable(4, 3)
    table.update_from_snack(1, {0, 1, 2, 3})
    table.update_from_snack(2, {1, 2})
    table.mark_sent(1)
    assert table.entries[1].wanted == {0, 2, 3}
    assert table.entries[1].distance == 2
    assert 2 not in table.entries  # distance hit zero -> deleted


def test_threshold_cannot_exceed_packets():
    with pytest.raises(ProtocolError):
        TrackingTable(4, 5)


def test_greedy_first_pick_is_most_popular_lowest_index():
    table = TrackingTable(4, 3)
    table.update_from_snack(1, {1, 3})
    table.update_from_snack(2, {1, 2, 3})
    table.update_from_snack(3, {0, 1, 3})
    sched = GreedyRoundRobinScheduler(table)
    # popularity: [1, 3, 1, 3]; tie between 1 and 3 -> lowest index 1
    assert sched.next_packet() == 1


def test_greedy_round_robin_tiebreak_to_the_right():
    table = TrackingTable(6, 6)
    table.update_from_snack(1, {0, 1, 2, 3, 4, 5})
    sched = GreedyRoundRobinScheduler(table)
    order = []
    for _ in range(6):
        idx = sched.next_packet()
        order.append(idx)
        table.mark_sent(idx)
    # All equal popularity: pure round robin from index 0.
    assert order == [0, 1, 2, 3, 4, 5]


def test_greedy_wraps_cyclically():
    table = TrackingTable(4, 4)
    table.update_from_snack(1, {0, 3})
    sched = GreedyRoundRobinScheduler(table)
    first = sched.next_packet()
    assert first == 0
    table.mark_sent(0)
    assert sched.next_packet() == 3


def test_paper_walkthrough_example():
    """A Table-I style walkthrough: send most-popular, drop satisfied nodes.

    v1 wants {1,2} (d=1), v2 wants {1,2,3} (d=2), v3 wants {0,1,3} (d=2)
    with n=4, k'=3.  Sending packet 1 (popularity 3) satisfies v1; packet 3
    (most popular right of 1) then satisfies v2 and v3: two transmissions
    serve three neighbors.
    """
    table = TrackingTable(4, 3)
    table.update_from_snack(1, {1, 2})
    table.update_from_snack(2, {1, 2, 3})
    table.update_from_snack(3, {0, 1, 3})
    sched = GreedyRoundRobinScheduler(table)
    order = sched.drain()
    assert order == [1, 3]
    assert table.empty


def test_drain_handles_losses_via_resnack():
    table = TrackingTable(4, 3)
    table.update_from_snack(1, {0, 1, 2, 3})
    sched = GreedyRoundRobinScheduler(table)
    sent = sched.drain()
    assert len(sent) == 3  # distance was 3
    # Two of them were lost: the node still needs 2 + 3 - 4 = 1 more.
    table.update_from_snack(1, {sent[0], sent[1]})
    assert not table.empty
    assert table.entries[1].distance == 1
    more = sched.drain()
    assert len(more) == 1 and more[0] in (sent[0], sent[1])


def test_next_packet_none_when_empty():
    table = TrackingTable(4, 3)
    sched = GreedyRoundRobinScheduler(table)
    assert sched.next_packet() is None


@settings(max_examples=50, deadline=None)
@given(st.lists(
    st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=8),
    min_size=1, max_size=6,
))
def test_property_drain_satisfies_every_entry(wants):
    """Lossless drain always empties the table within sum(d_v) sends."""
    n, threshold = 8, 6
    table = TrackingTable(n, threshold)
    for node, want in enumerate(wants):
        table.update_from_snack(node, want)
    budget = sum(e.distance for e in table.entries.values())
    sched = GreedyRoundRobinScheduler(table)
    order = sched.drain()
    assert table.empty
    assert len(order) <= budget
    assert len(set(order)) == len(order)  # never repeats a packet


@settings(max_examples=50, deadline=None)
@given(st.lists(
    st.sets(st.integers(min_value=0, max_value=7), min_size=4, max_size=8),
    min_size=2, max_size=6,
))
def test_property_greedy_not_worse_than_union(wants):
    """For the same demands, greedy RR sends no more packets than the union rule."""
    n, threshold = 8, 6
    table = TrackingTable(n, threshold)
    union = UnionScheduler(n)
    for node, want in enumerate(wants):
        table.update_from_snack(node, want)
        if node in table.entries:  # satisfied requesters send no SNACK
            union.update_from_snack(want)
    greedy_sent = GreedyRoundRobinScheduler(table).drain()
    union_sent = []
    while not union.empty:
        idx = union.next_packet()
        union_sent.append(idx)
        union.mark_sent(idx)
    assert len(greedy_sent) <= len(union_sent)


def test_union_scheduler_cyclic_order():
    union = UnionScheduler(6)
    union.update_from_snack({0, 2, 4})
    order = []
    while not union.empty:
        idx = union.next_packet()
        order.append(idx)
        union.mark_sent(idx)
    assert order == [0, 2, 4]
    union.update_from_snack({1, 5})
    # Continues to the right of the last sent index (4).
    assert union.next_packet() == 5


def test_union_ignores_out_of_range():
    union = UnionScheduler(4)
    union.update_from_snack({2, 9, -1})
    assert union.pending == {2}


def test_fresh_scheduler_monotone_indices():
    fresh = FreshPacketScheduler(start_index=100)
    fresh.update_request(1, 3)
    sent = []
    while not fresh.empty:
        idx = fresh.next_packet()
        sent.append(idx)
        fresh.mark_sent(idx)
    assert sent == [100, 101, 102]


def test_fresh_scheduler_shared_transmissions_count_for_all():
    fresh = FreshPacketScheduler()
    fresh.update_request(1, 2)
    fresh.update_request(2, 3)
    sent = []
    while not fresh.empty:
        idx = fresh.next_packet()
        sent.append(idx)
        fresh.mark_sent(idx)
    assert len(sent) == 3  # max deficit, not sum


def test_fresh_scheduler_zero_deficit_removes():
    fresh = FreshPacketScheduler()
    fresh.update_request(1, 2)
    fresh.update_request(1, 0)
    assert fresh.empty
