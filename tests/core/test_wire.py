"""Wire-serialization tests, including consistency with WireFormat sizing."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import WireFormat
from repro.core.packets import Advertisement, DataPacket, SignaturePacket, SnackRequest
from repro.core.wire import (
    decode_adv,
    decode_data,
    decode_signature,
    decode_snack,
    encode_adv,
    encode_data,
    encode_signature,
    encode_snack,
)
from repro.crypto.puzzle import PuzzleSolution
from repro.errors import ProtocolError

WIRE = WireFormat()


def test_data_roundtrip():
    pkt = DataPacket(version=2, unit=3, index=7, payload=b"p" * 72)
    assert decode_data(encode_data(pkt, WIRE), WIRE) == pkt


def test_data_roundtrip_with_auth_path():
    pkt = DataPacket(version=2, unit=1, index=3, payload=b"p" * 72,
                     auth_path=(b"a" * 8, b"b" * 8, b"c" * 8))
    assert decode_data(encode_data(pkt, WIRE), WIRE) == pkt


def test_data_wrong_hash_len_rejected():
    pkt = DataPacket(version=2, unit=1, index=3, payload=b"p" * 8,
                     auth_path=(b"short",))
    with pytest.raises(ProtocolError):
        encode_data(pkt, WIRE)


def test_data_truncation_detected():
    pkt = DataPacket(version=2, unit=3, index=7, payload=b"p" * 72)
    raw = encode_data(pkt, WIRE)
    with pytest.raises(ProtocolError):
        decode_data(raw[: len(raw) - 40], WIRE)


def test_snack_roundtrip():
    req = SnackRequest(version=2, unit=4, requester=9, server=0,
                       needed=(0, 5, 31, 47), mac=b"\x01\x02\x03\x04")
    decoded, n = decode_snack(encode_snack(req, 48, WIRE), WIRE)
    assert decoded == req
    assert n == 48


def test_snack_out_of_range_index_rejected():
    req = SnackRequest(version=2, unit=4, requester=9, server=0, needed=(48,))
    with pytest.raises(ProtocolError):
        encode_snack(req, 48, WIRE)


def test_adv_roundtrip():
    adv = Advertisement(version=2, units_complete=5, total_units=13,
                        mac=b"\x09\x08\x07\x06")
    assert decode_adv(encode_adv(adv, WIRE), WIRE) == adv


def test_signature_roundtrip():
    sp = SignaturePacket(
        version=2, root=b"r" * 8, metadata=b"m" * 13, signature=b"s" * 48,
        puzzle=PuzzleSolution(key=b"k" * 8, solution=1234, difficulty=10),
    )
    decoded = decode_signature(encode_signature(sp, WIRE), WIRE, puzzle_difficulty=10)
    assert decoded == sp


def test_wrong_frame_type_rejected():
    adv = Advertisement(version=2, units_complete=5, total_units=13)
    raw = encode_adv(adv, WIRE)
    with pytest.raises(ProtocolError):
        decode_data(raw, WIRE)
    with pytest.raises(ProtocolError):
        decode_snack(raw, WIRE)


# -- size-accounting consistency ------------------------------------------------


def test_data_size_matches_wire_format():
    """Serialized frames must not exceed the WireFormat byte accounting.

    The WireFormat header budget (11 B) covers preamble-adjacent fields the
    codec does not emit (CRC, addressing); the codec's own overhead must fit
    inside it.
    """
    pkt = DataPacket(version=2, unit=3, index=7, payload=b"p" * 72)
    assert len(encode_data(pkt, WIRE)) <= WIRE.data_packet_size(72)
    path = tuple(bytes(8) for _ in range(3))
    pkt0 = dataclasses.replace(pkt, auth_path=path)
    assert len(encode_data(pkt0, WIRE)) <= WIRE.data_packet_size(72, 3)


def test_snack_size_matches_wire_format():
    req = SnackRequest(version=2, unit=4, requester=9, server=0,
                       needed=tuple(range(48)), mac=b"\x00" * 4)
    assert len(encode_snack(req, 48, WIRE)) <= WIRE.snack_size(48)


def test_adv_size_matches_wire_format():
    adv = Advertisement(version=2, units_complete=5, total_units=13)
    assert len(encode_adv(adv, WIRE)) <= WIRE.adv_size()


def test_signature_size_matches_wire_format():
    sp = SignaturePacket(
        version=2, root=b"r" * 8, metadata=b"m" * 13, signature=b"s" * 48,
        puzzle=PuzzleSolution(key=b"k" * 8, solution=7, difficulty=10),
    )
    assert len(encode_signature(sp, WIRE)) <= WIRE.signature_packet_size()


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=0, max_value=65535),
    st.integers(min_value=0, max_value=65535),
    st.integers(min_value=0, max_value=65535),
    st.binary(min_size=1, max_size=128),
)
def test_property_data_roundtrip(version, unit, index, payload):
    pkt = DataPacket(version=version, unit=unit, index=index, payload=payload)
    assert decode_data(encode_data(pkt, WIRE), WIRE) == pkt


@settings(max_examples=40, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=47), max_size=48))
def test_property_snack_bitvector_roundtrip(needed):
    req = SnackRequest(version=1, unit=2, requester=3, server=4,
                       needed=tuple(sorted(needed)), mac=b"\x00" * 4)
    decoded, _ = decode_snack(encode_snack(req, 48, WIRE), WIRE)
    assert decoded.needed == req.needed
