"""Unit tests for wire packets and canonical byte encoding."""

from repro.core.packets import Advertisement, DataPacket, SignaturePacket, SnackRequest


def test_canonical_bytes_binds_all_identity_fields():
    base = DataPacket(version=2, unit=3, index=4, payload=b"payload")
    assert base.canonical_bytes() == base.canonical_bytes()
    variants = [
        DataPacket(version=3, unit=3, index=4, payload=b"payload"),
        DataPacket(version=2, unit=4, index=4, payload=b"payload"),
        DataPacket(version=2, unit=3, index=5, payload=b"payload"),
        DataPacket(version=2, unit=3, index=4, payload=b"payloae"),
    ]
    for other in variants:
        assert other.canonical_bytes() != base.canonical_bytes()


def test_canonical_bytes_excludes_auth_path():
    a = DataPacket(version=2, unit=1, index=0, payload=b"x", auth_path=(b"12345678",))
    b = DataPacket(version=2, unit=1, index=0, payload=b"x", auth_path=())
    assert a.canonical_bytes() == b.canonical_bytes()


def test_canonical_bytes_layout():
    pkt = DataPacket(version=1, unit=2, index=3, payload=b"ab")
    raw = pkt.canonical_bytes()
    assert raw[:6] == bytes([0, 1, 0, 2, 0, 3])
    assert raw[6:] == b"ab"


def test_snack_ones():
    req = SnackRequest(version=1, unit=2, requester=5, server=0, needed=(1, 3, 7))
    assert req.ones == 3


def test_advertisement_fields():
    adv = Advertisement(version=2, units_complete=5, total_units=12)
    assert adv.units_complete == 5


def test_signature_packet_signed_bytes():
    sp = SignaturePacket(version=1, root=b"r" * 8, metadata=b"m" * 13,
                         signature=b"s" * 48)
    assert sp.signed_bytes() == b"r" * 8 + b"m" * 13
