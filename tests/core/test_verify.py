"""Unit tests for the receiver pipelines (Section IV-E verification)."""

import random

import pytest

from repro.core.packets import DataPacket, SignaturePacket
from repro.core.preprocess import DelugePreprocessor, LRSelugePreprocessor, SelugePreprocessor
from repro.core.verify import DelugeReceiver, LRSelugeReceiver, SelugeReceiver
from repro.errors import ProtocolError


@pytest.fixture
def lr_pre(lr_params, small_image, keypair, puzzle):
    return LRSelugePreprocessor(lr_params, keypair, puzzle).build(small_image)


@pytest.fixture
def seluge_pre(seluge_params, small_image, keypair, puzzle):
    return SelugePreprocessor(seluge_params, keypair, puzzle).build(small_image)


@pytest.fixture
def lr_rx(lr_params, keypair, puzzle):
    return LRSelugeReceiver(lr_params, keypair.public, puzzle)


def _feed_unit(rx, unit, subset=None):
    packets = unit.packets if subset is None else subset
    got = {}
    for pkt in packets:
        assert rx.authenticate(pkt)
        got[pkt.index] = pkt
    return rx.complete_unit(unit.index, got)


def test_lr_full_image_roundtrip_random_subsets(lr_pre, lr_rx, small_image):
    assert lr_rx.handle_signature(lr_pre.signature_packet)
    rnd = random.Random(3)
    for unit in lr_pre.units[1:]:
        subset = rnd.sample(unit.packets, unit.threshold)
        assert _feed_unit(lr_rx, unit, subset)
    assert lr_rx.assembled_image() == small_image.data


def test_lr_serving_packets_match_base_station(lr_pre, lr_rx):
    lr_rx.handle_signature(lr_pre.signature_packet)
    rnd = random.Random(5)
    for unit in lr_pre.units[1:]:
        _feed_unit(lr_rx, unit, rnd.sample(unit.packets, unit.threshold))
    for unit in lr_pre.units[1:]:
        assert lr_rx.serving_packets(unit.index) == unit.packets


def test_lr_rejects_data_before_signature(lr_pre, lr_rx):
    pkt = lr_pre.units[1].packets[0]
    assert not lr_rx.authenticate(pkt)
    assert lr_rx.stats["rejected_no_root"] == 1


def test_lr_rejects_packets_for_future_units(lr_pre, lr_rx):
    lr_rx.handle_signature(lr_pre.signature_packet)
    pkt = lr_pre.units[3].packets[0]  # expectations for unit 3 not yet known
    assert not lr_rx.authenticate(pkt)
    assert lr_rx.stats["rejected_no_expectation"] == 1


def test_lr_rejects_tampered_packet(lr_pre, lr_rx):
    lr_rx.handle_signature(lr_pre.signature_packet)
    _feed_unit(lr_rx, lr_pre.units[1])
    real = lr_pre.units[2].packets[0]
    forged = DataPacket(version=real.version, unit=real.unit, index=real.index,
                        payload=bytes(len(real.payload)))
    assert not lr_rx.authenticate(forged)
    assert lr_rx.stats["rejected_packets"] >= 1
    assert lr_rx.authenticate(real)


def test_lr_rejects_wrong_index_replay(lr_pre, lr_rx):
    """A valid packet presented under a different index must fail."""
    lr_rx.handle_signature(lr_pre.signature_packet)
    _feed_unit(lr_rx, lr_pre.units[1])
    real = lr_pre.units[2].packets[0]
    moved = DataPacket(version=real.version, unit=real.unit, index=1,
                       payload=real.payload)
    assert not lr_rx.authenticate(moved)


def test_lr_signature_rejections(lr_pre, lr_rx, keypair):
    good = lr_pre.signature_packet
    # Bad puzzle
    no_puzzle = SignaturePacket(version=good.version, root=good.root,
                                metadata=good.metadata, signature=good.signature,
                                puzzle=None)
    assert not lr_rx.handle_signature(no_puzzle)
    assert lr_rx.stats["puzzle_rejects"] == 1
    assert lr_rx.stats["signature_verifications"] == 0  # puzzle filtered first
    # Valid puzzle is bound to the signature bytes, so tampering the
    # signature also invalidates the puzzle (flood-resistance).
    bad_sig = SignaturePacket(version=good.version, root=good.root,
                              metadata=good.metadata, signature=bytes(48),
                              puzzle=good.puzzle)
    assert not lr_rx.handle_signature(bad_sig)
    assert lr_rx.handle_signature(good)


def test_lr_decode_not_attempted_below_threshold(lr_pre, lr_rx):
    lr_rx.handle_signature(lr_pre.signature_packet)
    unit = lr_pre.units[1]
    got = {p.index: p for p in unit.packets[: unit.threshold - 1]}
    assert not lr_rx.complete_unit(unit.index, got)


def test_lr_serving_unavailable_unit(lr_rx):
    with pytest.raises(ProtocolError):
        lr_rx.serving_packets(2)


def test_lr_stats_counters(lr_pre, lr_rx):
    lr_rx.handle_signature(lr_pre.signature_packet)
    _feed_unit(lr_rx, lr_pre.units[1])
    _feed_unit(lr_rx, lr_pre.units[2])
    assert lr_rx.stats["signature_verifications"] == 1
    assert lr_rx.stats["merkle_checks"] == lr_pre.units[1].n_packets
    assert lr_rx.stats["hash_checks"] == lr_pre.units[2].n_packets
    assert lr_rx.stats["decode_ops"] == 2


def test_seluge_roundtrip_and_serving(seluge_pre, seluge_params, keypair, puzzle, small_image):
    rx = SelugeReceiver(seluge_params, keypair.public, puzzle)
    assert rx.handle_signature(seluge_pre.signature_packet)
    for unit in seluge_pre.units[1:]:
        assert _feed_unit(rx, unit)
    assert rx.assembled_image() == small_image.data
    for unit in seluge_pre.units[1:]:
        assert rx.serving_packets(unit.index) == unit.packets


def test_seluge_rejects_forged_hash_page_packet(seluge_pre, seluge_params, keypair, puzzle):
    rx = SelugeReceiver(seluge_params, keypair.public, puzzle)
    rx.handle_signature(seluge_pre.signature_packet)
    real = seluge_pre.units[1].packets[0]
    forged = DataPacket(version=real.version, unit=1, index=0,
                        payload=bytes(len(real.payload)), auth_path=real.auth_path)
    assert not rx.authenticate(forged)


def test_seluge_incomplete_page_not_completed(seluge_pre, seluge_params, keypair, puzzle):
    rx = SelugeReceiver(seluge_params, keypair.public, puzzle)
    rx.handle_signature(seluge_pre.signature_packet)
    _feed_unit(rx, seluge_pre.units[1])
    unit = seluge_pre.units[2]
    got = {p.index: p for p in unit.packets[:-1]}
    assert not rx.complete_unit(unit.index, got)


def test_deluge_accepts_anything(deluge_params):
    rx = DelugeReceiver(deluge_params)
    assert rx.authenticate(DataPacket(version=9, unit=0, index=0, payload=b"junk"))
    assert not rx.secured


def test_deluge_learn_total_units_once(deluge_params):
    rx = DelugeReceiver(deluge_params)
    rx.learn_total_units(6)
    rx.learn_total_units(99)
    assert rx.total_units == 6


def test_deluge_has_no_signature_path(deluge_params):
    rx = DelugeReceiver(deluge_params)
    with pytest.raises(ProtocolError):
        rx.handle_signature(None)


def test_preload_marks_everything_servable(lr_pre, lr_params, keypair, puzzle):
    rx = LRSelugeReceiver(lr_params, keypair.public, puzzle)
    rx.preload(lr_pre)
    assert rx.total_units == lr_pre.total_units
    for unit in lr_pre.units[1:]:
        assert rx.serving_packets(unit.index) == unit.packets
