"""Tests for figure regeneration (tiny sizes)."""

import pytest

from repro.experiments import figures


@pytest.fixture(scope="module")
def tiny_fig3a():
    return figures.fig3a(loss_rates=(0.1, 0.3), receivers=3,
                         image_size=2048, seeds=(1,), k=32, n=48, kprime=34)


def test_fig3a_structure(tiny_fig3a):
    assert tiny_fig3a.headers == ["p", "seluge_analysis", "seluge_sim",
                                  "ack_lr_analysis", "lr_sim"]
    assert [row[0] for row in tiny_fig3a.rows] == [0.1, 0.3]
    for row in tiny_fig3a.rows:
        assert all(v > 0 for v in row[1:])


def test_fig3a_analysis_monotone(tiny_fig3a):
    col = tiny_fig3a.column("seluge_analysis")
    assert col[1] > col[0]


def test_fig3a_report_renders(tiny_fig3a):
    text = tiny_fig3a.report()
    assert "Fig 3(a)" in text
    assert "seluge_analysis" in text


def test_fig4_five_metrics_per_protocol():
    fig = figures.fig4(loss_rates=(0.2,), receivers=3, image_size=2048, seeds=(1,))
    assert len(fig.headers) == 1 + 5 + 5
    assert len(fig.rows) == 1
    row = fig.rows[0]
    assert row[0] == 0.2
    assert all(v > 0 for v in row[1:])


def test_fig5_rows_per_receiver_count():
    fig = figures.fig5(receiver_counts=(2, 4), p=0.1, image_size=2048, seeds=(1,))
    assert [row[0] for row in fig.rows] == [2, 4]


def test_fig6_sweeps_rate():
    fig = figures.fig6(rates_n=(40, 48), loss_rates=(0.1,), receivers=3,
                       image_size=2048, seeds=(1,))
    assert [row[1] for row in fig.rows] == [40, 48]
    assert fig.rows[0][2] == pytest.approx(40 / 32, abs=0.01)


def test_mean_metrics_averages():
    from repro.experiments.metrics import RunResult

    a = RunResult(protocol="x", completed=True, latency=10.0,
                  counters={"tx_data": 100, "tx_data_bytes": 1000})
    b = RunResult(protocol="x", completed=True, latency=20.0,
                  counters={"tx_data": 200, "tx_data_bytes": 3000})
    means = figures.mean_metrics([a, b])
    assert means["data_pkts"] == 150
    assert means["latency_s"] == 15.0
