"""Tests for text reporting."""

from repro.experiments.reporting import format_comparison, format_table


def test_format_table_alignment():
    text = format_table(["a", "metric"], [[1, 2.5], [100, 33333.0]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "metric" in lines[1]
    assert len(lines) == 5
    # column widths consistent
    assert len(lines[3]) == len(lines[4])


def test_format_table_float_formatting():
    text = format_table(["x"], [[1234.5678], [0.125]])
    assert "1235" in text  # large floats rounded to int
    assert "0.12" in text  # small floats keep two decimals


def test_format_comparison_signs():
    base = {"data": 100.0, "lat": 50.0}
    cand = {"data": 80.0, "lat": 60.0}
    line = format_comparison("cmp", base, cand)
    assert "data: +20%" in line
    assert "lat: -20%" in line


def test_format_comparison_zero_baseline_skipped():
    line = format_comparison("cmp", {"x": 0.0}, {"x": 5.0})
    assert line == "cmp"
