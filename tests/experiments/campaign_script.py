"""A small resumable sweep campaign, run as a subprocess by the chaos tests.

Usage::

    python tests/experiments/campaign_script.py CHECKPOINT_DIR OUT_CSV \
        {fresh|resume} PACE_SECONDS

Runs a 8-cell one-hop sweep (2 protocols x 2 loss rates x 2 seeds) through
the campaign executor with the given checkpoint directory, then writes the
aggregate table as CSV to OUT_CSV.  ``PACE_SECONDS`` throttles the cells so
the parent test has a reliable window to SIGKILL the process mid-campaign.
"""

import sys

from repro.experiments.executor import CampaignConfig
from repro.experiments.sweeps import sweep_one_hop
from repro.persist import atomic_write_text


def main() -> int:
    checkpoint_dir, out_path, mode, pace = sys.argv[1:5]
    campaign = CampaignConfig(
        checkpoint_dir=checkpoint_dir,
        resume=(mode == "resume"),
        pace_s=float(pace),
    )
    table = sweep_one_hop(
        protocols=("seluge", "lr-seluge"),
        loss_rates=(0.1, 0.3),
        receivers=(3,),
        image_size=2048,
        k=8,
        n=12,
        seeds=(1, 2),
        campaign=campaign,
    )
    atomic_write_text(out_path, table.to_csv())
    return 0


if __name__ == "__main__":
    sys.exit(main())
