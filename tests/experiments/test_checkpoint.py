"""Tests for the crash-safe campaign checkpoint journal and persist helpers."""

import json

import pytest

from repro.experiments.checkpoint import CHECKPOINT_SCHEMA_VERSION, CampaignCheckpoint
from repro.persist import (
    atomic_write_jsonl,
    atomic_write_text,
    read_jsonl,
)


# ---------------------------------------------------------------------------
# persist primitives
# ---------------------------------------------------------------------------

def test_atomic_write_text_replaces_and_leaves_no_temp(tmp_path):
    target = tmp_path / "artifact.json"
    atomic_write_text(target, "one")
    atomic_write_text(target, "two")
    assert target.read_text(encoding="utf-8") == "two"
    assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]


def test_atomic_write_text_creates_parent_dirs(tmp_path):
    target = tmp_path / "a" / "b" / "out.txt"
    atomic_write_text(target, "deep")
    assert target.read_text(encoding="utf-8") == "deep"


def test_atomic_write_failure_cleans_temp_and_keeps_old(tmp_path):
    target = tmp_path / "artifact.json"
    atomic_write_text(target, "old")

    class Unserialisable:
        pass

    with pytest.raises(TypeError):
        atomic_write_jsonl(target, [{"bad": Unserialisable()}])
    assert target.read_text(encoding="utf-8") == "old"
    assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]


def test_read_jsonl_tolerates_torn_tail(tmp_path):
    path = tmp_path / "journal.jsonl"
    lines = [json.dumps({"i": 0}), json.dumps({"i": 1}), '{"i": 2, "tor']
    path.write_text("\n".join(lines), encoding="utf-8")
    assert read_jsonl(path) == [{"i": 0}, {"i": 1}]
    assert read_jsonl(tmp_path / "missing.jsonl") == []


# ---------------------------------------------------------------------------
# CampaignCheckpoint
# ---------------------------------------------------------------------------

def test_fresh_checkpoint_truncates_stale_journals(tmp_path):
    first = CampaignCheckpoint(tmp_path)
    first.record_completed("k1", "cell", {"x": 1}, [])
    assert CampaignCheckpoint(tmp_path, resume=True).completed().keys() == {"k1"}

    fresh = CampaignCheckpoint(tmp_path, resume=False)
    assert fresh.completed() == {}
    assert read_jsonl(tmp_path / "checkpoint.jsonl") == []


def test_resume_replays_completed_and_quarantined(tmp_path):
    journal = CampaignCheckpoint(tmp_path)
    journal.record_completed("k1", "cell-1", {"metric": 1.5},
                             [{"attempt": 1, "outcome": "ok"}])
    journal.record_quarantined("k2", "cell-2",
                               [{"attempt": 1, "outcome": "timeout"}])

    resumed = CampaignCheckpoint(tmp_path, resume=True)
    completed = resumed.completed()
    assert completed["k1"]["result"] == {"metric": 1.5}
    assert completed["k1"]["schema_version"] == CHECKPOINT_SCHEMA_VERSION
    assert [q["key"] for q in resumed.quarantined()] == ["k2"]


def test_resume_ignores_foreign_schema_records(tmp_path):
    path = tmp_path / "checkpoint.jsonl"
    records = [
        {"schema_version": CHECKPOINT_SCHEMA_VERSION, "key": "good", "label": "",
         "attempts": [], "result": 1},
        {"schema_version": 99, "key": "future", "result": 2},
        ["not", "a", "record"],
    ]
    path.write_text(
        "\n".join(json.dumps(r) for r in records) + "\n", encoding="utf-8"
    )
    resumed = CampaignCheckpoint(tmp_path, resume=True)
    assert set(resumed.completed()) == {"good"}


def test_journal_survives_kill_between_records(tmp_path):
    """Every record_completed leaves a fully-parseable journal on disk."""
    journal = CampaignCheckpoint(tmp_path)
    for i in range(5):
        journal.record_completed(f"k{i}", "", {"i": i}, [])
        on_disk = read_jsonl(tmp_path / "checkpoint.jsonl")
        assert len(on_disk) == i + 1
        assert all(isinstance(r, dict) and "result" in r for r in on_disk)
    # No temp droppings from the atomic writes.
    assert sorted(p.name for p in tmp_path.iterdir()) == [
        "checkpoint.jsonl", "quarantine.jsonl",
    ]


# ---------------------------------------------------------------------------
# append-only journal + compaction
# ---------------------------------------------------------------------------

def test_records_append_without_rewriting_earlier_lines(tmp_path):
    """Journalling is O(record): earlier bytes never change between appends."""
    journal = CampaignCheckpoint(tmp_path, compact_every=1000)
    path = tmp_path / "checkpoint.jsonl"
    journal.record_completed("k0", "", {"i": 0}, [])
    first = path.read_bytes()
    journal.record_completed("k1", "", {"i": 1}, [])
    assert path.read_bytes()[: len(first)] == first


def test_auto_compaction_dedupes_at_the_threshold(tmp_path):
    journal = CampaignCheckpoint(tmp_path, compact_every=3)
    journal.record_completed("a", "", {"v": 1}, [])
    journal.record_completed("a", "", {"v": 2}, [])
    assert len(read_jsonl(tmp_path / "checkpoint.jsonl")) == 2
    # Third append crosses the threshold: the journal compacts, last wins.
    journal.record_completed("b", "", {"v": 3}, [])
    on_disk = read_jsonl(tmp_path / "checkpoint.jsonl")
    assert [(r["key"], r["result"]["v"]) for r in on_disk] == [
        ("a", 2), ("b", 3),
    ]
    assert journal.completed()["a"]["result"] == {"v": 2}


def test_resume_heals_torn_tail_and_duplicates(tmp_path):
    journal = CampaignCheckpoint(tmp_path)
    journal.record_completed("a", "", {"v": 1}, [])
    journal.record_completed("a", "", {"v": 2}, [])
    path = tmp_path / "checkpoint.jsonl"
    with path.open("a", encoding="utf-8") as fh:
        fh.write('{"torn": ')  # mid-append kill
    resumed = CampaignCheckpoint(tmp_path, resume=True)
    assert resumed.completed()["a"]["result"] == {"v": 2}
    # The post-resume journal is compacted clean: one line, no fragment.
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["result"] == {"v": 2}
    assert resumed.load_report["checkpoint"].torn_tail


def test_resume_keeps_clean_journal_byte_identical(tmp_path):
    """No gratuitous rewrites: a clean journal is left untouched on resume."""
    journal = CampaignCheckpoint(tmp_path)
    journal.record_completed("a", "", {"v": 1}, [])
    journal.record_quarantined("q", "", [{"attempt": 1, "outcome": "timeout"}])
    ckpt_bytes = (tmp_path / "checkpoint.jsonl").read_bytes()
    quarantine_bytes = (tmp_path / "quarantine.jsonl").read_bytes()
    CampaignCheckpoint(tmp_path, resume=True)
    assert (tmp_path / "checkpoint.jsonl").read_bytes() == ckpt_bytes
    assert (tmp_path / "quarantine.jsonl").read_bytes() == quarantine_bytes


def test_compaction_rejects_bad_threshold(tmp_path):
    journal = CampaignCheckpoint(tmp_path, compact_every=0)
    assert journal.compact_every == 1  # clamped, never div-by-zero
