"""Tests for multi-hop table regeneration (tiny grids)."""

from repro.experiments.tables import multihop_table, table2, table3


def test_multihop_table_structure():
    result = multihop_table("mini", topology="grid:3x3:3", image_size=2048,
                            seeds=(1,), protocols=("seluge", "lr-seluge"))
    assert [row[0] for row in result.rows] == ["seluge", "lr-seluge"]
    for row in result.rows:
        assert row[-1] == "yes"  # completed
        assert all(v > 0 for v in row[1:-1])
    assert "savings" in result.notes


def test_table2_and_table3_scaled():
    t2 = table2(image_size=2048, seeds=(1,), rows=4, cols=4)
    t3 = table3(image_size=2048, seeds=(1,), rows=4, cols=4)
    assert "tight" in t2.name
    assert "medium" in t3.name
    assert len(t2.rows) == len(t3.rows) == 2
    assert all(row[-1] == "yes" for row in t2.rows)
    assert all(row[-1] == "yes" for row in t3.rows)
