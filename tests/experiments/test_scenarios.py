"""Tests for the scenario builders and runners (reduced sizes)."""

import pytest

from repro.core.config import DelugeParams, LRSelugeParams, SelugeParams
from repro.errors import ConfigError
from repro.experiments.scenarios import (
    MultiHopScenario,
    OneHopScenario,
    make_params,
    run_multihop,
    run_one_hop,
)


@pytest.mark.parametrize("protocol", ["deluge", "seluge", "lr-seluge", "rateless"])
def test_one_hop_all_protocols_complete(protocol):
    scenario = OneHopScenario(protocol=protocol, loss_rate=0.15, receivers=3,
                              image_size=2500, k=8, n=12, seed=5, max_time=2400)
    result = run_one_hop(scenario)
    assert result.completed
    assert result.images_ok
    assert result.data_packets > 0
    assert result.latency > 0


def test_one_hop_deterministic_given_seed():
    scenario = OneHopScenario(protocol="lr-seluge", loss_rate=0.2, receivers=3,
                              image_size=2500, k=8, n=12, seed=9)
    a = run_one_hop(scenario)
    b = run_one_hop(scenario)
    assert a.counters == b.counters
    assert a.latency == b.latency


def test_one_hop_seed_changes_outcome():
    base = dict(protocol="lr-seluge", loss_rate=0.2, receivers=3,
                image_size=2500, k=8, n=12)
    a = run_one_hop(OneHopScenario(seed=1, **base))
    b = run_one_hop(OneHopScenario(seed=2, **base))
    assert a.counters != b.counters


def test_multihop_small_grid_completes():
    scenario = MultiHopScenario(protocol="lr-seluge", topology="grid:3x3:3",
                                image_size=2500, k=8, n=12, seed=3,
                                ambient=False, max_time=2400)
    result = run_multihop(scenario)
    assert result.completed
    assert result.images_ok


def test_multihop_mica2_names():
    scenario = MultiHopScenario(protocol="seluge", topology="tight:4x4",
                                image_size=2500, k=8, n=12, seed=3, max_time=3600)
    result = run_multihop(scenario)
    assert result.completed


def test_multihop_unknown_topology():
    with pytest.raises(ConfigError):
        run_multihop(MultiHopScenario(topology="ring:10"))


def test_make_params_dispatch():
    assert isinstance(make_params("deluge"), DelugeParams)
    assert isinstance(make_params("rateless"), DelugeParams)
    assert isinstance(make_params("seluge"), SelugeParams)
    assert isinstance(make_params("lr-seluge"), LRSelugeParams)
    with pytest.raises(ConfigError):
        make_params("gossip")


def test_run_result_metrics_consistent():
    result = run_one_hop(OneHopScenario(protocol="seluge", loss_rate=0.1,
                                        receivers=2, image_size=2500, k=8, seed=4))
    row = result.summary_row()
    assert row["data_pkts"] == result.data_packets
    assert row["total_bytes"] == result.total_bytes
    assert result.total_bytes > result.data_bytes > 0
    assert str(result)  # formatting does not crash


def test_incomplete_run_reports_max_time():
    result = run_one_hop(OneHopScenario(protocol="seluge", loss_rate=0.3,
                                        receivers=3, image_size=2500, k=8,
                                        seed=4, max_time=1.0))
    assert not result.completed
    assert result.latency == 1.0
    assert result.images_ok is False
