"""Tests for the generic sweep utility."""

import pytest

from repro.experiments.sweeps import sweep_multihop, sweep_one_hop


def test_one_hop_sweep_structure():
    table = sweep_one_hop(
        protocols=("seluge", "lr-seluge"),
        loss_rates=(0.1, 0.3),
        receivers=(3,),
        image_size=2048,
        k=8,
        n=12,
        seeds=(1,),
    )
    assert len(table.rows) == 4  # 2 protocols x 2 loss rates x 1 N
    assert all(row[-1] == "yes" for row in table.rows)
    assert table.headers[:3] == ["protocol", "p", "N"]
    # Higher loss means higher cost within each protocol.
    by_key = {(row[0], row[1]): row for row in table.rows}
    for protocol in ("seluge", "lr-seluge"):
        assert by_key[(protocol, 0.3)][6] > by_key[(protocol, 0.1)][6]


def test_one_hop_sweep_parallel_matches_serial():
    kwargs = dict(protocols=("lr-seluge",), loss_rates=(0.2,), receivers=(3,),
                  image_size=2048, k=8, n=12, seeds=(1, 2))
    serial = sweep_one_hop(processes=None, **kwargs)
    parallel = sweep_one_hop(processes=2, **kwargs)
    assert serial.rows == parallel.rows


def test_multihop_sweep():
    table = sweep_multihop(
        protocols=("seluge",),
        topologies=("grid:3x3:3",),
        image_size=2048,
        seeds=(1,),
    )
    assert len(table.rows) == 1
    assert table.rows[0][-1] == "yes"
