"""The resilience scorecard: grid validation, joins, gate, serialisation."""

import json

import pytest

from repro.errors import ConfigError
from repro.experiments.executor import task_key
from repro.experiments.resilience import (
    ATTACK_PRESETS,
    DEFENSE_PRESETS,
    ResilienceGrid,
    run_resilience,
)


def _small_grid(**kwargs):
    defaults = dict(protocols=("lr-seluge",), attacks=("sybil",),
                    defenses=("none", "all"), topology="star:3",
                    image_size=2048, k=4, n=6, seeds=(1,), max_time=900.0)
    defaults.update(kwargs)
    return ResilienceGrid(**defaults)


def test_presets_are_wellformed():
    assert set(ATTACK_PRESETS) >= {"none", "jammer", "greyhole", "replay",
                                   "sybil", "dor", "bogus-data"}
    assert ATTACK_PRESETS["none"] == ()
    assert "none" in DEFENSE_PRESETS and "all" in DEFENSE_PRESETS


def test_grid_rejects_unknown_axes():
    with pytest.raises(ConfigError):
        ResilienceGrid(attacks=("meteor",))
    with pytest.raises(ConfigError):
        ResilienceGrid(attacks=("none",))  # baselines are implicit
    with pytest.raises(ConfigError):
        ResilienceGrid(defenses=("warp_drive",))


def test_scenario_task_keys_are_stable():
    grid = _small_grid()
    a = grid.scenario("lr-seluge", "sybil", "all", seed=1)
    b = grid.scenario("lr-seluge", "sybil", "all", seed=1)
    assert a == b
    assert task_key("adversarial", a) == task_key("adversarial", b)
    assert task_key("adversarial", a) != task_key(
        "adversarial", grid.scenario("lr-seluge", "sybil", "none", seed=1))


def test_scorecard_end_to_end(tmp_path):
    card = run_resilience(_small_grid())
    # (attacks + implicit baseline) x defenses
    assert len(card.rows) == 4
    assert card.ok and card.missing == 0 and card.violations == 0

    baseline = card.row("lr-seluge", "none", "none")
    assert baseline.completion_rate == 1.0
    assert baseline.latency_x == 1.0 and baseline.cost_x == 1.0
    assert baseline.injected == 0

    attacked = card.row("lr-seluge", "sybil", "none")
    assert attacked.completion_rate == 1.0
    assert attacked.injected > 0 and attacked.delivered > 0
    assert attacked.cost_x > 1.0  # forged SNACKs cost the network extra frames

    text = card.report()
    assert "sybil" in text and "gate: OK" in text

    out = tmp_path / "scorecard.json"
    card.save(out)
    data = json.loads(out.read_text())
    assert data["ok"] is True
    assert len(data["rows"]) == 4
    assert data["grid"]["topology"] == "star:3"
