"""Tests for the deterministic retry backoff policy."""

import pytest

from repro.errors import ConfigError
from repro.experiments.backoff import BackoffPolicy


def test_delay_is_deterministic_per_task_and_attempt():
    policy = BackoffPolicy()
    assert policy.delay("abc", 0) == policy.delay("abc", 0)
    assert policy.delay("abc", 1) == policy.delay("abc", 1)
    # Different tasks and attempts jitter independently.
    assert policy.delay("abc", 0) != policy.delay("def", 0)


def test_delay_grows_geometrically_and_caps():
    policy = BackoffPolicy(base_s=1.0, factor=2.0, max_s=5.0, jitter_frac=0.0)
    assert policy.schedule("k", 5) == [1.0, 2.0, 4.0, 5.0, 5.0]


def test_jitter_stays_within_declared_band():
    policy = BackoffPolicy(base_s=1.0, factor=2.0, max_s=30.0, jitter_frac=0.25)
    for attempt in range(4):
        raw = min(1.0 * 2.0 ** attempt, 30.0)
        delay = policy.delay("some-task", attempt)
        assert raw <= delay <= raw * 1.25


def test_zero_base_means_immediate_retry():
    policy = BackoffPolicy(base_s=0.0)
    assert policy.delay("k", 0) == 0.0
    assert policy.delay("k", 7) == 0.0


def test_invalid_configs_rejected():
    with pytest.raises(ConfigError):
        BackoffPolicy(base_s=-1.0)
    with pytest.raises(ConfigError):
        BackoffPolicy(factor=0.5)
    with pytest.raises(ConfigError):
        BackoffPolicy(jitter_frac=1.5)
