"""Tests for the energy accounting extension."""

import pytest

from repro.experiments.energy import EnergyModel, EnergyReport, estimate_energy
from repro.experiments.metrics import RunResult
from repro.experiments.scenarios import OneHopScenario, run_one_hop


def _result(tx_bytes=10_000, rx_bytes=50_000, latency=100.0):
    return RunResult(
        protocol="x", completed=True, latency=latency,
        counters={"tx_total_bytes": tx_bytes, "rx_delivered_bytes": rx_bytes},
    )


class _FakePipeline:
    def __init__(self, **stats):
        self.stats = stats


def test_radio_energy_scales_with_bytes():
    small = estimate_energy(_result(tx_bytes=1000), n_nodes=5)
    large = estimate_energy(_result(tx_bytes=2000), n_nodes=5)
    assert large.tx_mj == pytest.approx(2 * small.tx_mj)


def test_crypto_energy_from_pipelines():
    pipelines = [_FakePipeline(signature_verifications=1, hash_checks=100,
                               decode_ops=10)]
    report = estimate_energy(_result(), n_nodes=5, pipelines=pipelines)
    model = EnergyModel()
    assert report.crypto_mj == pytest.approx(
        (model.ecdsa_verify_uj + 100 * model.hash_uj) / 1000.0
    )
    assert report.decode_mj == pytest.approx(10 * model.decode_uj / 1000.0)


def test_no_pipelines_means_no_crypto_energy():
    report = estimate_energy(_result(), n_nodes=5)
    assert report.crypto_mj == 0.0
    assert report.decode_mj == 0.0


def test_idle_energy_scales_with_latency_and_nodes():
    a = estimate_energy(_result(latency=100.0), n_nodes=10)
    b = estimate_energy(_result(latency=200.0), n_nodes=10)
    c = estimate_energy(_result(latency=100.0), n_nodes=20)
    assert b.idle_mj == pytest.approx(2 * a.idle_mj)
    assert c.idle_mj == pytest.approx(2 * a.idle_mj)


def test_breakdown_sums_to_total():
    report = EnergyReport(tx_mj=1.0, rx_mj=2.0, crypto_mj=3.0,
                          decode_mj=4.0, idle_mj=5.0)
    assert report.total_mj == 15.0
    assert report.breakdown()["total_mj"] == 15.0


def test_end_to_end_energy_comparison():
    """Under loss, LR-Seluge's radio energy is lower despite decode costs."""
    reports = {}
    for protocol in ("seluge", "lr-seluge"):
        result = run_one_hop(OneHopScenario(
            protocol=protocol, loss_rate=0.25, receivers=6,
            image_size=6000, k=16, n=24, seed=11,
        ))
        assert result.completed
        reports[protocol] = estimate_energy(result, n_nodes=7)
    assert reports["lr-seluge"].tx_mj < reports["seluge"].tx_mj

def test_rx_bytes_counted_by_radio():
    """The radio counts delivered bytes (the energy model's rx input)."""
    result = run_one_hop(OneHopScenario(protocol="deluge", loss_rate=0.0,
                                        receivers=2, image_size=2048, k=8, seed=3))
    assert result.completed
    assert result.counters.get("rx_delivered_bytes", 0) > 0
    # Broadcast: every transmitted byte is heard by both receivers and the base.
    assert result.counters["rx_delivered_bytes"] >= result.counters["tx_total_bytes"]
