"""CompletionTracker freeze semantics and run_network's manifest emission."""

from repro.experiments.metrics import RunResult
from repro.experiments.runner import CompletionTracker, run_network
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder


class StubNode:
    """Just enough of a DisseminationNode for run_network: completes on cue."""

    def __init__(self, sim, trace, tracker, node_id, complete_at=None):
        self.sim = sim
        self.trace = trace
        self.tracker = tracker
        self.node_id = node_id
        self.complete_at = complete_at

    def start(self):
        if self.complete_at is not None:
            self.sim.schedule_at(self.complete_at, self._complete)

    def _complete(self):
        self.trace.record(self.sim.now, "node_complete", node=self.node_id)
        self.tracker(self)

    def image_bytes(self):
        return b"image"


def _network(sim, trace, completion_times):
    tracker = CompletionTracker(trace)
    nodes = [
        StubNode(sim, trace, tracker, node_id, at)
        for node_id, at in completion_times
    ]
    return tracker, nodes


def test_counters_freeze_at_last_completion():
    sim = Simulator()
    trace = TraceRecorder()
    tracker, nodes = _network(sim, trace, [(1, 1.0), (2, 2.0)])
    # Post-completion chatter inside the same run chunk: steady-state
    # advertisements that must not pollute the frozen snapshot.
    sim.schedule_at(3.0, trace.count, "tx_adv", 5)
    result = run_network(sim, trace, tracker, nodes, "stub", max_time=60.0)
    assert result.completed
    assert result.latency == 2.0
    assert result.counters.get("node_complete") == 2
    assert result.counters.get("tx_adv", 0) == 0   # frozen at t=2.0
    assert trace.counters["tx_adv"] == 5           # ...but it did happen


def test_incomplete_run_snapshots_at_max_time():
    sim = Simulator()
    trace = TraceRecorder()
    tracker, nodes = _network(sim, trace, [(1, 1.0), (2, None)])  # 2 never done
    sim.schedule_at(3.0, trace.count, "tx_adv")
    result = run_network(sim, trace, tracker, nodes, "stub", max_time=10.0)
    assert not result.completed
    assert result.latency == 10.0
    assert result.counters.get("tx_adv") == 1      # nothing to freeze early
    assert result.per_node_completion == {1: 1.0}


def test_run_network_records_the_tracked_set():
    sim = Simulator()
    trace = TraceRecorder()
    tracker, nodes = _network(sim, trace, [(4, 1.0), (2, 1.5)])
    result = run_network(sim, trace, tracker, nodes, "stub", max_time=60.0)
    assert result.tracked == (2, 4)
    assert result.n_nodes == 2
    assert result.completion_rate == 1.0


def test_completion_rate_ignores_untracked_completions():
    # A completion event from outside the tracked set (late base republish,
    # merged recorders) must not push the rate past 1.0.
    result = RunResult(
        protocol="stub", completed=True, latency=5.0,
        per_node_completion={1: 1.0, 2: 2.0, 99: 3.0},
        n_nodes=2, tracked=(1, 2),
    )
    assert result.completion_rate == 1.0
    partial = RunResult(
        protocol="stub", completed=False, latency=5.0,
        per_node_completion={1: 1.0, 99: 3.0},
        n_nodes=2, tracked=(1, 2),
    )
    assert partial.completion_rate == 0.5


def test_completion_rate_clamps_without_tracked_ids():
    legacy = RunResult(
        protocol="stub", completed=True, latency=5.0,
        per_node_completion={1: 1.0, 2: 2.0, 99: 3.0},
        n_nodes=2, tracked=None,
    )
    assert legacy.completion_rate == 1.0  # clamped, never 1.5
    untracked = RunResult(protocol="stub", completed=True, latency=5.0)
    assert untracked.completion_rate is None


def test_run_network_emits_a_manifest(tmp_path):
    from repro.obs.manifest import RunManifest

    sim = Simulator()
    trace = TraceRecorder()
    tracker, nodes = _network(sim, trace, [(1, 1.0), (2, 2.0)])
    path = tmp_path / "run.manifest.json"
    result = run_network(
        sim, trace, tracker, nodes, "stub", max_time=60.0, seed=11,
        manifest_path=str(path), manifest_config={"receivers": 2},
    )
    manifest = RunManifest.load(path)
    assert manifest.tool == "repro.experiments.runner"
    assert manifest.seed == 11
    assert manifest.config["protocol"] == "stub"
    assert manifest.config["receivers"] == 2
    assert manifest.counters == result.counters
    assert manifest.metrics["completed"] == 1.0
    assert manifest.metrics["latency_s"] == 2.0
    assert manifest.timings["sim_time_s"] == sim.now
    assert "wall_s" in manifest.timings
