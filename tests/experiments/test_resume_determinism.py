"""Chaos test: SIGKILL a campaign mid-flight, resume it, compare bytes.

The crash-safe-resume contract is end-to-end: a campaign killed with
SIGKILL (no cleanup, no atexit, mid-whatever-it-was-doing) and restarted
with ``resume=True`` must produce output *byte-identical* to a run that was
never interrupted.  The campaign subprocess lives in
``campaign_script.py``; this test drives it.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.reporting import stopwatch

SCRIPT = Path(__file__).with_name("campaign_script.py")
TOTAL_CELLS = 8          # 2 protocols x 2 loss rates x 2 seeds
KILL_AFTER_CELLS = 2     # SIGKILL once this many cells are journalled
PACE_S = "0.35"          # per-cell throttle: the kill window
DEADLINE_S = 120.0


def _run_script(checkpoint_dir, out, mode, pace="0.0"):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(SCRIPT), str(checkpoint_dir), str(out), mode, pace],
        env=env, capture_output=True, text=True, timeout=DEADLINE_S,
    )


def _journalled_cells(checkpoint_dir) -> int:
    path = Path(checkpoint_dir) / "checkpoint.jsonl"
    if not path.exists():
        return 0
    count = 0
    for line in path.read_text(encoding="utf-8").splitlines():
        try:
            json.loads(line)
        except json.JSONDecodeError:
            break
        count += 1
    return count


def test_sigkill_then_resume_is_byte_identical(tmp_path):
    baseline_out = tmp_path / "baseline.csv"
    resumed_out = tmp_path / "resumed.csv"
    baseline_dir = tmp_path / "ckpt-baseline"
    chaos_dir = tmp_path / "ckpt-chaos"

    # Uninterrupted reference run (no pacing: full speed).
    proc = _run_script(baseline_dir, baseline_out, "fresh")
    assert proc.returncode == 0, proc.stderr
    baseline_bytes = baseline_out.read_bytes()

    # Start the same campaign paced, and SIGKILL it mid-flight.
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    victim = subprocess.Popen(
        [sys.executable, str(SCRIPT), str(chaos_dir), str(resumed_out),
         "fresh", PACE_S],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        with stopwatch() as elapsed:
            while elapsed() < DEADLINE_S:
                if _journalled_cells(chaos_dir) >= KILL_AFTER_CELLS:
                    break
                if victim.poll() is not None:
                    pytest.fail("campaign finished before it could be killed; "
                                "raise PACE_S")
                time.sleep(0.02)
            else:
                pytest.fail("campaign never journalled enough cells to kill")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
    finally:
        if victim.poll() is None:
            victim.kill()
            victim.wait(timeout=30)

    cells_at_kill = _journalled_cells(chaos_dir)
    assert KILL_AFTER_CELLS <= cells_at_kill < TOTAL_CELLS
    assert not resumed_out.exists()   # killed before the aggregate was written

    # Resume: only the missing cells re-run, output matches byte for byte.
    proc = _run_script(chaos_dir, resumed_out, "resume")
    assert proc.returncode == 0, proc.stderr
    assert _journalled_cells(chaos_dir) == TOTAL_CELLS
    assert resumed_out.read_bytes() == baseline_bytes
