"""Tests for the command-line entry points."""

import json

import pytest

from repro.experiments.figures import FigureResult
from repro.simulate import main as simulate_main


def _tiny_figure():
    return FigureResult(
        name="t", headers=["x", "y"], rows=[[1, 2.5], [3, 4.0]], notes="n",
    )


def test_figure_result_csv():
    csv_text = _tiny_figure().to_csv()
    lines = csv_text.strip().splitlines()
    assert lines[0] == "x,y"
    assert lines[1] == "1,2.5"


def test_figure_result_json():
    doc = json.loads(_tiny_figure().to_json())
    assert doc["name"] == "t"
    assert doc["rows"] == [[1, 2.5], [3, 4.0]]


def test_figure_result_save(tmp_path):
    fig = _tiny_figure()
    fig.save(tmp_path / "out.csv")
    assert (tmp_path / "out.csv").read_text().startswith("x,y")
    fig.save(tmp_path / "out.json")
    assert json.loads((tmp_path / "out.json").read_text())["notes"] == "n"


def test_simulate_one_hop(capsys):
    code = simulate_main([
        "--protocol", "lr-seluge", "--loss", "0.1", "--receivers", "3",
        "--image-kib", "2", "--k", "8", "--n", "12", "--seed", "4",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "completed:       True" in out
    assert "images verified: True" in out


def test_simulate_multihop_with_energy(capsys):
    code = simulate_main([
        "--protocol", "seluge", "--topology", "grid:3x3:3",
        "--image-kib", "2", "--k", "8", "--seed", "4", "--energy",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "total_mj" in out


def test_simulate_topology_file(tmp_path, capsys):
    from repro.net.topology import mica2_grid_tight
    from repro.net.topology_file import save_topology
    from repro.sim.rng import RngRegistry

    path = tmp_path / "site.txt"
    save_topology(mica2_grid_tight(RngRegistry(5), rows=3, cols=3), path)
    code = simulate_main([
        "--protocol", "lr-seluge", "--topology-file", str(path),
        "--image-kib", "2", "--k", "8", "--n", "12", "--seed", "5",
        "--max-time", "2400", "--energy",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "crypto_mj" in out


def test_experiments_cli_quick_with_export(tmp_path, capsys):
    from repro.experiments.__main__ import main as experiments_main

    code = experiments_main(["fig3a", "--quick", "--export", str(tmp_path)])
    assert code == 0
    exported = list(tmp_path.glob("*.csv"))
    assert len(exported) == 1
    assert exported[0].read_text().startswith("p,")


def test_experiments_cli_campaign_flags_and_manifest(tmp_path, capsys):
    from repro.experiments.__main__ import main as experiments_main
    from repro.obs.manifest import RunManifest

    ckpt = tmp_path / "ckpt"
    manifest_path = tmp_path / "campaign.manifest.json"
    args = ["fig3a", "--quick",
            "--checkpoint-dir", str(ckpt),
            "--max-retries", "1",
            "--manifest", str(manifest_path)]
    assert experiments_main(args) == 0
    first_out = capsys.readouterr().out
    assert "campaign:" in first_out
    assert (ckpt / "checkpoint.jsonl").exists()

    manifest = RunManifest.load(manifest_path)
    assert manifest.campaign["quarantined"] == 0
    assert manifest.campaign["completed"] == manifest.campaign["total"] > 0
    assert all(t["status"] == "completed"
               for t in manifest.campaign["tasks"].values())

    # Resume: every cell replays from the journal, output is identical.
    assert experiments_main(args + ["--resume"]) == 0
    resumed_out = capsys.readouterr().out
    table = lambda text: [l for l in text.splitlines() if l.startswith("0.")]
    assert table(resumed_out) == table(first_out)
    assert "resumed" in resumed_out


def test_experiments_cli_resume_requires_checkpoint_dir():
    from repro.experiments.__main__ import main as experiments_main

    with pytest.raises(SystemExit):
        experiments_main(["fig3a", "--quick", "--resume"])
