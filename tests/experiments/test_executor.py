"""Tests for the fault-tolerant campaign executor.

Worker runners live at module level so the supervised (multiprocessing)
mode can pickle them.  Cross-process state (the flaky runner's "fail once"
memory) goes through marker files, never globals.
"""

import os
import signal
import time
from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.experiments.backoff import BackoffPolicy
from repro.experiments.executor import (
    CampaignConfig,
    Task,
    execute_scenarios,
    run_campaign,
    task_key,
)
from repro.experiments.scenarios import OneHopScenario, run_one_hop

FAST = BackoffPolicy(base_s=0.0)   # retries without waiting


# ---------------------------------------------------------------------------
# Module-level runners (picklable)
# ---------------------------------------------------------------------------

def double(payload):
    return payload["x"] * 2


def always_raises(payload):
    raise ValueError(f"cell {payload['x']} is broken")


def flaky_until_marker(payload):
    """Fail on the first attempt; succeed once the marker file exists."""
    marker = Path(payload["marker"])
    if marker.exists():
        return "recovered"
    marker.write_text("attempted", encoding="utf-8")
    raise RuntimeError("transient failure")


def kills_itself(payload):
    os.kill(os.getpid(), signal.SIGKILL)


def hangs(payload):
    time.sleep(60.0)
    return "never"


def task(key, runner, x=0, **payload):
    payload = {"x": x, **payload}
    return Task(key=key, runner=runner, payload=payload, label=key)


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------

def test_task_key_is_stable_and_content_derived():
    a = OneHopScenario(protocol="seluge", loss_rate=0.1, receivers=3,
                       image_size=2048, k=8, n=12, seed=1)
    same = OneHopScenario(protocol="seluge", loss_rate=0.1, receivers=3,
                          image_size=2048, k=8, n=12, seed=1)
    other_seed = OneHopScenario(protocol="seluge", loss_rate=0.1, receivers=3,
                                image_size=2048, k=8, n=12, seed=2)
    assert task_key("one_hop", a) == task_key("one_hop", same)
    assert task_key("one_hop", a) != task_key("one_hop", other_seed)
    assert task_key("one_hop", a) != task_key("multihop", a)
    assert len(task_key("one_hop", a)) == 32


def test_config_validation():
    with pytest.raises(ConfigError):
        CampaignConfig(max_retries=-1)
    with pytest.raises(ConfigError):
        CampaignConfig(task_timeout_s=0.0)
    with pytest.raises(ConfigError):
        CampaignConfig(resume=True)   # resume needs a checkpoint_dir


# ---------------------------------------------------------------------------
# Inline mode
# ---------------------------------------------------------------------------

def test_inline_results_are_keyed_not_positional():
    tasks = [task(f"t{i}", double, x=i) for i in (3, 1, 2)]
    outcome = run_campaign(tasks, CampaignConfig())
    assert outcome.results == {"t3": 6, "t1": 2, "t2": 4}
    assert outcome.report.completed == 3
    assert outcome.report.summary() == (
        "3/3 completed (0 resumed, 0 retried, 0 quarantined)"
    )


def test_inline_persistent_failure_quarantines_after_retries():
    config = CampaignConfig(max_retries=2, backoff=FAST)
    outcome = run_campaign([task("bad", always_raises, x=7)], config)
    assert outcome.results == {}
    assert outcome.report.quarantined == 1
    attempts = outcome.quarantined["bad"]
    assert len(attempts) == 3                       # initial + 2 retries
    assert all(a.outcome == "exception" for a in attempts)
    assert attempts[0].error_type == "ValueError"
    assert "cell 7 is broken" in attempts[0].error
    assert attempts[0].backoff_s is not None        # a retry was scheduled
    assert attempts[-1].backoff_s is None           # the last one was final


def test_inline_flaky_task_retries_then_completes(tmp_path):
    config = CampaignConfig(max_retries=2, backoff=FAST)
    outcome = run_campaign(
        [task("flaky", flaky_until_marker, marker=str(tmp_path / "m"))], config
    )
    assert outcome.results == {"flaky": "recovered"}
    assert outcome.report.retried == 1
    assert outcome.report.quarantined == 0
    report_attempts = outcome.report.tasks["flaky"]["attempts"]
    assert [a["outcome"] for a in report_attempts] == ["exception", "ok"]


def test_duplicate_keys_run_once():
    tasks = [task("same", double, x=5), task("same", double, x=5)]
    outcome = run_campaign(tasks, CampaignConfig())
    assert outcome.results == {"same": 10}


# ---------------------------------------------------------------------------
# Supervised mode
# ---------------------------------------------------------------------------

def test_supervised_matches_inline_results():
    tasks = [task(f"t{i}", double, x=i) for i in range(5)]
    inline = run_campaign(tasks, CampaignConfig())
    supervised = run_campaign(tasks, CampaignConfig(processes=2))
    assert inline.results == supervised.results


def test_supervised_worker_death_is_classified_and_quarantined():
    config = CampaignConfig(processes=1, max_retries=1, backoff=FAST)
    outcome = run_campaign([task("dead", kills_itself)], config)
    assert outcome.results == {}
    attempts = outcome.quarantined["dead"]
    assert [a.outcome for a in attempts] == ["worker_death", "worker_death"]
    assert "exitcode" in attempts[0].error


def test_supervised_timeout_kills_and_quarantines():
    config = CampaignConfig(
        processes=1, task_timeout_s=0.5, max_retries=0, backoff=FAST,
    )
    outcome = run_campaign([task("hung", hangs)], config)
    assert outcome.results == {}
    attempts = outcome.quarantined["hung"]
    assert [a.outcome for a in attempts] == ["timeout"]
    assert "wall-clock timeout" in attempts[0].error


def test_supervised_exception_reports_worker_traceback():
    config = CampaignConfig(processes=1, max_retries=0, backoff=FAST)
    outcome = run_campaign([task("bad", always_raises, x=1)], config)
    attempts = outcome.quarantined["bad"]
    assert attempts[0].outcome == "exception"
    assert attempts[0].error_type == "ValueError"
    assert "always_raises" in attempts[0].traceback


def test_failures_do_not_abort_healthy_cells():
    config = CampaignConfig(processes=2, max_retries=0, backoff=FAST)
    tasks = [task("bad", always_raises)] + [
        task(f"ok{i}", double, x=i) for i in range(4)
    ]
    outcome = run_campaign(tasks, config)
    assert outcome.results == {f"ok{i}": i * 2 for i in range(4)}
    assert outcome.report.quarantined == 1
    assert outcome.report.completed == 4


# ---------------------------------------------------------------------------
# Checkpoint / resume
# ---------------------------------------------------------------------------

def test_checkpoint_resume_skips_completed_cells(tmp_path):
    tasks = [task(f"t{i}", double, x=i) for i in range(3)]
    first = run_campaign(tasks, CampaignConfig(checkpoint_dir=tmp_path))
    assert first.report.resumed == 0

    resumed = run_campaign(
        tasks, CampaignConfig(checkpoint_dir=tmp_path, resume=True)
    )
    assert resumed.results == first.results
    assert resumed.report.resumed == 3
    assert resumed.report.completed == 3
    statuses = {info["status"] for info in resumed.report.tasks.values()}
    assert statuses == {"resumed"}


def test_resume_runs_only_missing_cells(tmp_path):
    first_half = [task(f"t{i}", double, x=i) for i in range(2)]
    run_campaign(first_half, CampaignConfig(checkpoint_dir=tmp_path))

    everything = first_half + [task("t9", double, x=9)]
    resumed = run_campaign(
        everything, CampaignConfig(checkpoint_dir=tmp_path, resume=True)
    )
    assert resumed.results == {"t0": 0, "t1": 2, "t9": 18}
    assert resumed.report.resumed == 2


def test_reports_accumulate_on_shared_config(tmp_path):
    config = CampaignConfig()
    run_campaign([task("a", double, x=1)], config)
    run_campaign([task("b", double, x=2)], config)
    assert len(config.reports) == 2
    assert [r.completed for r in config.reports] == [1, 1]


# ---------------------------------------------------------------------------
# Scenario bridge
# ---------------------------------------------------------------------------

def test_execute_scenarios_round_trips_run_results():
    scenario = OneHopScenario(protocol="lr-seluge", loss_rate=0.2, receivers=3,
                              image_size=2048, k=8, n=12, seed=1)
    direct = run_one_hop(scenario)
    via_executor = execute_scenarios("one_hop", run_one_hop, [scenario])
    assert via_executor[task_key("one_hop", scenario)] == direct
