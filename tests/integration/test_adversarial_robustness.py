"""Fuzz/property tests: mutated packets must never authenticate.

These are the adversary's best case: arbitrary bit-flips, field swaps, and
splices of genuine traffic.  Immediate authentication (Section IV-E) means
*every* such mutation is rejected at the verification layer.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ImageConfig, LRSelugeParams, SelugeParams
from repro.core.image import CodeImage
from repro.core.packets import DataPacket
from repro.core.preprocess import LRSelugePreprocessor, SelugePreprocessor
from repro.core.verify import LRSelugeReceiver, SelugeReceiver
from repro.crypto.ecdsa import generate_keypair
from repro.crypto.puzzle import MessageSpecificPuzzle


@pytest.fixture(scope="module")
def lr_setup():
    keypair = generate_keypair(11)
    puzzle = MessageSpecificPuzzle(difficulty=6)
    params = LRSelugeParams(k=8, n=12, image=ImageConfig(image_size=3000, version=2))
    image = CodeImage.synthetic(3000, version=2, seed=11)
    pre = LRSelugePreprocessor(params, keypair, puzzle).build(image)
    return params, keypair, puzzle, pre


def _armed_receiver(lr_setup):
    params, keypair, puzzle, pre = lr_setup
    rx = LRSelugeReceiver(params, keypair.public, puzzle)
    assert rx.handle_signature(pre.signature_packet)
    unit1 = pre.units[1]
    got = {}
    for pkt in unit1.packets[: unit1.threshold]:
        assert rx.authenticate(pkt)
        got[pkt.index] = pkt
    assert rx.complete_unit(1, got)
    return rx, pre


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=71),
    st.integers(min_value=1, max_value=255),
    st.integers(min_value=0, max_value=11),
)
def test_any_payload_bitflip_rejected(lr_setup, byte_pos, xor_mask, pkt_index):
    rx, pre = _armed_receiver(lr_setup)
    genuine = pre.units[2].packets[pkt_index]
    payload = bytearray(genuine.payload)
    payload[byte_pos % len(payload)] ^= xor_mask
    mutated = dataclasses.replace(genuine, payload=bytes(payload))
    assert not rx.authenticate(mutated)
    assert rx.authenticate(genuine)  # the original still passes


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=11), st.integers(min_value=0, max_value=11))
def test_index_swaps_rejected(lr_setup, a, b):
    if a == b:
        return
    rx, pre = _armed_receiver(lr_setup)
    pkt = pre.units[2].packets[a]
    swapped = dataclasses.replace(pkt, index=b)
    assert not rx.authenticate(swapped)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=3, max_value=9))
def test_cross_unit_splices_rejected(lr_setup, unit):
    """A genuine packet from a later unit replayed under unit 2 fails."""
    rx, pre = _armed_receiver(lr_setup)
    if unit >= pre.total_units:
        return
    foreign = pre.units[unit].packets[0]
    spliced = dataclasses.replace(foreign, unit=2)
    assert not rx.authenticate(spliced)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=65535))
def test_version_confusion_rejected(lr_setup, version):
    rx, pre = _armed_receiver(lr_setup)
    genuine = pre.units[2].packets[0]
    if version == genuine.version:
        return
    mutated = dataclasses.replace(genuine, version=version)
    assert not rx.authenticate(mutated)


@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=1, max_size=72))
def test_random_garbage_rejected(lr_setup, garbage):
    rx, pre = _armed_receiver(lr_setup)
    for unit in (1, 2):
        pkt = DataPacket(version=2, unit=unit, index=0, payload=garbage)
        assert not rx.authenticate(pkt)


def test_seluge_mutations_rejected():
    keypair = generate_keypair(12)
    puzzle = MessageSpecificPuzzle(difficulty=6)
    params = SelugeParams(k=8, image=ImageConfig(image_size=3000, version=2))
    image = CodeImage.synthetic(3000, version=2, seed=12)
    pre = SelugePreprocessor(params, keypair, puzzle).build(image)
    rx = SelugeReceiver(params, keypair.public, puzzle)
    assert rx.handle_signature(pre.signature_packet)
    got = {}
    for pkt in pre.units[1].packets:
        assert rx.authenticate(pkt)
        got[pkt.index] = pkt
    assert rx.complete_unit(1, got)
    genuine = pre.units[2].packets[0]
    for mutated in (
        dataclasses.replace(genuine, payload=bytes(len(genuine.payload))),
        dataclasses.replace(genuine, index=1),
        dataclasses.replace(genuine, unit=3),
        dataclasses.replace(genuine, version=9),
    ):
        assert not rx.authenticate(mutated)
    assert rx.authenticate(genuine)
