"""Cross-module integration tests: full disseminations with everything on."""

import pytest

from repro.experiments.scenarios import MultiHopScenario, OneHopScenario, run_multihop, run_one_hop


def test_four_protocols_same_scenario_ranking_under_loss():
    """At moderate loss, the coded protocol beats the secure ARQ baseline."""
    import statistics

    seeds = (31, 32, 33)
    mean_latency = {}
    for protocol in ("deluge", "seluge", "lr-seluge", "rateless"):
        runs = [run_one_hop(OneHopScenario(
            protocol=protocol, loss_rate=0.3, receivers=8,
            image_size=8000, k=16, n=24, seed=s,
        )) for s in seeds]
        assert all(r.completed and r.images_ok for r in runs), protocol
        mean_latency[protocol] = statistics.mean(r.latency for r in runs)
    assert mean_latency["lr-seluge"] < mean_latency["seluge"]


def test_lr_seluge_multihop_pipeline_deep_chain():
    """A 1x8 line forces pipelined page-by-page forwarding over 8 hops."""
    result = run_multihop(MultiHopScenario(
        protocol="lr-seluge", topology="grid:1x8:3", image_size=3000,
        k=8, n=12, seed=6, ambient=False, max_time=3600,
    ))
    assert result.completed
    assert result.images_ok


def test_seluge_multihop_with_ambient_bursts():
    result = run_multihop(MultiHopScenario(
        protocol="seluge", topology="grid:3x3:3", image_size=2500,
        k=8, seed=7, ambient=True, max_time=3600,
    ))
    assert result.completed and result.images_ok


def test_counters_are_frozen_at_completion():
    """Post-completion Trickle chatter must not leak into the metrics."""
    scenario = OneHopScenario(protocol="seluge", loss_rate=0.05, receivers=2,
                              image_size=2500, k=8, seed=8)
    a = run_one_hop(scenario)
    assert a.completed
    # The snapshot was taken at latency time: counters cannot include advs
    # whose Trickle interval starts after completion.  Re-running gives the
    # identical snapshot (determinism), proving no post-hoc drift.
    b = run_one_hop(scenario)
    assert a.counters == b.counters


def test_all_nodes_hold_bitwise_identical_image():
    from repro.core.image import CodeImage
    scenario = OneHopScenario(protocol="lr-seluge", loss_rate=0.25, receivers=5,
                              image_size=5000, k=8, n=12, seed=12)
    result = run_one_hop(scenario)
    assert result.completed
    assert result.images_ok  # checked against the original bytes inside


def test_larger_images_mean_proportionally_more_traffic():
    small = run_one_hop(OneHopScenario(protocol="lr-seluge", loss_rate=0.1,
                                       receivers=3, image_size=2500, k=8, n=12, seed=3))
    large = run_one_hop(OneHopScenario(protocol="lr-seluge", loss_rate=0.1,
                                       receivers=3, image_size=7500, k=8, n=12, seed=3))
    assert large.data_packets > 2 * small.data_packets
