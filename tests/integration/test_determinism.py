"""Determinism regression: identical seed (+ fault plan) => identical trace.

The whole experiment pipeline leans on this — paired protocol comparisons,
fault-plan replay, and the degradation metrics all assume a seed pins down
every random draw.  These tests run the same scenario twice from scratch and
demand byte-identical trace records, not just matching summary counters.
"""

from repro.experiments.scenarios import FaultyGridScenario, run_faulty_grid
from repro.faults import FaultPlan
from repro.sim.trace import TraceRecorder

BASE = dict(protocol="lr-seluge", topology="grid:2x2:3", image_size=3000,
            k=8, n=12, seed=9, max_time=600.0)


def _run(scenario):
    trace = TraceRecorder(keep_records=True)
    result = run_faulty_grid(scenario, trace=trace)
    return result, trace.records


def test_fault_free_run_is_reproducible():
    a_result, a_records = _run(FaultyGridScenario(**BASE))
    b_result, b_records = _run(FaultyGridScenario(**BASE))
    assert a_result.completed and b_result.completed
    assert a_records == b_records
    assert a_result.counters == b_result.counters
    assert a_result.per_node_completion == b_result.per_node_completion


def test_fault_plan_run_is_reproducible():
    def scenario():
        plan = (
            FaultPlan()
            .crash(6.0, node=2, reboot_after=10.0)
            .corrupt(3.0, duration=4.0, rate=0.5, mode="flip")
            .link_down(5.0, 1, 3)
            .link_up(12.0, 1, 3)
        )
        return FaultyGridScenario(plan=plan, **BASE)

    a_result, a_records = _run(scenario())
    b_result, b_records = _run(scenario())
    assert a_records == b_records
    assert a_result.counters == b_result.counters


def test_churn_run_is_reproducible():
    def scenario():
        return FaultyGridScenario(mtbf=5.0, mttr=4.0, churn_horizon=60.0,
                                  **BASE)

    a_result, a_records = _run(scenario())
    b_result, b_records = _run(scenario())
    assert a_result.crash_count > 0     # churn actually fired
    assert a_records == b_records
    assert a_result.counters == b_result.counters


def test_different_seed_changes_the_trace():
    _, a_records = _run(FaultyGridScenario(**BASE))
    _, b_records = _run(FaultyGridScenario(**{**BASE, "seed": 10}))
    assert a_records != b_records
