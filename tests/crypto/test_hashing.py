"""Unit and property tests for hash images."""

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.crypto.hashing import DEFAULT_HASH_LEN, full_hash, hash_image
from repro.errors import ConfigError


def test_default_length():
    assert len(hash_image(b"data")) == DEFAULT_HASH_LEN


def test_explicit_lengths():
    for length in (4, 8, 16, 32):
        assert len(hash_image(b"data", length)) == length


def test_out_of_range_lengths_rejected():
    for bad in (0, 3, 33, -1):
        with pytest.raises(ConfigError):
            hash_image(b"data", bad)


def test_deterministic():
    assert hash_image(b"abc") == hash_image(b"abc")


def test_different_inputs_differ():
    assert hash_image(b"abc") != hash_image(b"abd")


def test_full_hash_is_sha256():
    assert full_hash(b"xyz") == hashlib.sha256(b"xyz").digest()


@given(st.binary(max_size=256), st.integers(min_value=4, max_value=32))
def test_hash_image_is_sha256_prefix(data, length):
    assert hash_image(data, length) == hashlib.sha256(data).digest()[:length]


@given(st.binary(max_size=128))
def test_truncation_nests(data):
    assert hash_image(data, 8) == hash_image(data, 16)[:8]
