"""Unit tests for the one-way key chain."""

import pytest

from repro.crypto.keychain import KeyChain, require_chain_key, verify_chain_key
from repro.errors import AuthenticationError, ConfigError


def test_every_version_verifies_against_commitment():
    chain = KeyChain(length=10, seed=3)
    for version in range(1, 11):
        key = chain.key_for_version(version)
        assert verify_chain_key(key, version, chain.commitment)


def test_wrong_version_fails():
    chain = KeyChain(length=10, seed=3)
    key = chain.key_for_version(4)
    assert not verify_chain_key(key, 5, chain.commitment)
    assert not verify_chain_key(key, 3, chain.commitment)


def test_forged_key_fails():
    chain = KeyChain(length=10, seed=3)
    assert not verify_chain_key(b"\x00" * 8, 4, chain.commitment)


def test_future_keys_unpredictable_from_past():
    """Knowing K_v gives the adversary all earlier keys but no later ones."""
    chain = KeyChain(length=10, seed=3)
    from repro.crypto.keychain import _advance

    k4 = chain.key_for_version(4)
    assert _advance(k4) == chain.key_for_version(3)  # backward: easy
    assert chain.key_for_version(5) != k4            # forward: unknown hash preimage


def test_deterministic_per_seed():
    assert KeyChain(8, seed=1).commitment == KeyChain(8, seed=1).commitment
    assert KeyChain(8, seed=1).commitment != KeyChain(8, seed=2).commitment


def test_bounds():
    chain = KeyChain(length=5, seed=1)
    with pytest.raises(ConfigError):
        chain.key_for_version(0)
    with pytest.raises(ConfigError):
        chain.key_for_version(6)
    with pytest.raises(ConfigError):
        KeyChain(length=0)
    assert not verify_chain_key(b"\x00" * 8, 0, chain.commitment)


def test_require_raises():
    chain = KeyChain(length=5, seed=1)
    require_chain_key(chain.key_for_version(2), 2, chain.commitment)
    with pytest.raises(AuthenticationError):
        require_chain_key(b"\x00" * 8, 2, chain.commitment)


def test_puzzle_integration():
    """Chain keys slot directly into the message-specific puzzle."""
    from repro.crypto.puzzle import MessageSpecificPuzzle

    chain = KeyChain(length=3, seed=9)
    puzzle = MessageSpecificPuzzle(difficulty=6)
    key = chain.key_for_version(2)
    solution = puzzle.solve(b"sig-packet-v2", key)
    assert puzzle.check(b"sig-packet-v2", solution)
    assert verify_chain_key(solution.key, 2, chain.commitment)
