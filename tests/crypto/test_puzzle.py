"""Unit tests for message-specific puzzles."""

import pytest

from repro.crypto.puzzle import MessageSpecificPuzzle, PuzzleSolution
from repro.errors import ConfigError


def test_solve_then_check():
    puzzle = MessageSpecificPuzzle(difficulty=8)
    solution = puzzle.solve(b"sig-packet", b"key-0001")
    assert puzzle.check(b"sig-packet", solution)


def test_wrong_message_rejected():
    puzzle = MessageSpecificPuzzle(difficulty=8)
    solution = puzzle.solve(b"legit", b"key-0001")
    assert not puzzle.check(b"forged", solution)


def test_wrong_key_rejected():
    puzzle = MessageSpecificPuzzle(difficulty=8)
    solution = puzzle.solve(b"msg", b"key-0001")
    tampered = PuzzleSolution(key=b"key-0002", solution=solution.solution,
                              difficulty=solution.difficulty)
    assert not puzzle.check(b"msg", tampered)


def test_difficulty_mismatch_rejected():
    puzzle8 = MessageSpecificPuzzle(difficulty=8)
    puzzle6 = MessageSpecificPuzzle(difficulty=6)
    solution = puzzle6.solve(b"msg", b"key-0001")
    assert not puzzle8.check(b"msg", solution)


def test_invalid_difficulty():
    for bad in (0, -1, 29):
        with pytest.raises(ConfigError):
            MessageSpecificPuzzle(difficulty=bad)


def test_expected_work_doubles():
    assert MessageSpecificPuzzle(difficulty=5).expected_work() == 32
    assert MessageSpecificPuzzle(difficulty=6).expected_work() == 64


def test_wire_size():
    puzzle = MessageSpecificPuzzle(difficulty=6, key_len=8)
    solution = puzzle.solve(b"m", b"k" * 8)
    assert solution.wire_size == 12


def test_random_guess_rarely_valid():
    """A forged solution without search work should almost surely fail."""
    puzzle = MessageSpecificPuzzle(difficulty=12)
    hits = sum(
        puzzle.check(b"msg", PuzzleSolution(key=b"forgedkk", solution=s, difficulty=12))
        for s in range(64)
    )
    assert hits <= 1  # expected 64 / 4096


# ---------------------------------------------------------------------------
# Adversarial paths: a receiver filtering a flood of bogus signature packets
# must *reject* malformed solutions, never crash on them.
# ---------------------------------------------------------------------------

def test_malformed_solution_values_rejected_not_raised():
    puzzle = MessageSpecificPuzzle(difficulty=6)
    good = puzzle.solve(b"msg", b"key-0001")
    for bad_solution in (-1, 1 << 64, (1 << 70) + 3, True, None, "7", 3.5):
        candidate = PuzzleSolution(key=good.key, solution=bad_solution,
                                   difficulty=good.difficulty)
        assert puzzle.check(b"msg", candidate) is False


def test_malformed_key_shapes_rejected_not_raised():
    puzzle = MessageSpecificPuzzle(difficulty=6)
    good = puzzle.solve(b"msg", b"key-0001")
    for bad_key in (b"", b"short", b"far-too-long-key", "key-0001", None, 1234):
        candidate = PuzzleSolution(key=bad_key, solution=good.solution,
                                   difficulty=good.difficulty)
        assert puzzle.check(b"msg", candidate) is False


def test_bytearray_key_of_right_length_is_accepted():
    puzzle = MessageSpecificPuzzle(difficulty=6)
    good = puzzle.solve(b"msg", b"key-0001")
    candidate = PuzzleSolution(key=bytearray(good.key), solution=good.solution,
                               difficulty=good.difficulty)
    assert puzzle.check(b"msg", candidate)


def test_solve_rejects_wrong_length_key():
    puzzle = MessageSpecificPuzzle(difficulty=6, key_len=8)
    with pytest.raises(ConfigError):
        puzzle.solve(b"msg", b"tiny")


def test_invalid_key_len_config():
    for bad in (0, -3, 65):
        with pytest.raises(ConfigError):
            MessageSpecificPuzzle(difficulty=6, key_len=bad)


def test_difficulty_forgery_does_not_bypass_mask():
    """Claiming an easier difficulty than the verifier's must not help."""
    verifier = MessageSpecificPuzzle(difficulty=12)
    easy = MessageSpecificPuzzle(difficulty=1)
    solution = easy.solve(b"msg", b"key-0001")
    assert not verifier.check(b"msg", solution)
