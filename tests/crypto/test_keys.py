"""Unit tests for cluster keys (HMAC control-packet authentication)."""

import pytest

from repro.crypto.keys import ClusterKey
from repro.errors import ConfigError


def test_tag_and_check():
    key = ClusterKey(b"shared-secret-123")
    tag = key.tag(b"snack|page=3|bits=0110")
    assert len(tag) == 4
    assert key.check(b"snack|page=3|bits=0110", tag)


def test_tampered_payload_rejected():
    key = ClusterKey(b"shared-secret-123")
    tag = key.tag(b"payload")
    assert not key.check(b"payl0ad", tag)


def test_wrong_key_rejected():
    a = ClusterKey(b"secret-aaaaaaaa")
    b = ClusterKey(b"secret-bbbbbbbb")
    assert not b.check(b"payload", a.tag(b"payload"))


def test_mac_len_respected():
    key = ClusterKey(b"shared-secret-123", mac_len=8)
    assert len(key.tag(b"x")) == 8


def test_validation():
    with pytest.raises(ConfigError):
        ClusterKey(b"short")
    with pytest.raises(ConfigError):
        ClusterKey(b"long-enough-secret", mac_len=2)
    with pytest.raises(ConfigError):
        ClusterKey(b"long-enough-secret", mac_len=64)


def test_pairwise_keys_symmetric():
    cluster = ClusterKey(b"cluster-secret-99")
    ab = cluster.pairwise(3, 7)
    ba = cluster.pairwise(7, 3)
    payload = b"snack-from-3"
    assert ba.check(payload, ab.tag(payload))


def test_pairwise_keys_distinct_per_pair():
    cluster = ClusterKey(b"cluster-secret-99")
    ab = cluster.pairwise(3, 7)
    ac = cluster.pairwise(3, 8)
    payload = b"snack"
    assert not ac.check(payload, ab.tag(payload))
