"""Unit and property tests for the Merkle hash tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import hash_image
from repro.crypto.merkle import MerkleTree, require_valid_merkle_path, verify_merkle_path
from repro.errors import AuthenticationError, ConfigError


def _leaves(n, size=20):
    return [bytes([i]) * size for i in range(n)]


def test_single_leaf_tree():
    tree = MerkleTree(_leaves(1))
    assert tree.depth == 0
    assert tree.root == hash_image(_leaves(1)[0])
    assert tree.auth_path(0) == []
    assert verify_merkle_path(_leaves(1)[0], 0, [], tree.root)


def test_non_power_of_two_rejected():
    for bad in (0, 3, 5, 6, 7, 9):
        with pytest.raises(ConfigError):
            MerkleTree(_leaves(bad) if bad else [])


def test_depth_matches_log2():
    for n, d in ((2, 1), (4, 2), (8, 3), (16, 4)):
        assert MerkleTree(_leaves(n)).depth == d


def test_all_leaves_verify():
    leaves = _leaves(8)
    tree = MerkleTree(leaves)
    for i, leaf in enumerate(leaves):
        path = tree.auth_path(i)
        assert len(path) == 3
        assert verify_merkle_path(leaf, i, path, tree.root)


def test_paper_fig2_structure():
    """The internal nodes combine exactly as in the paper's Fig. 2."""
    leaves = _leaves(8)
    tree = MerkleTree(leaves)
    v = [hash_image(l) for l in leaves]
    v12 = hash_image(v[0] + v[1])
    v34 = hash_image(v[2] + v[3])
    v14 = hash_image(v12 + v34)
    assert tree.levels[1][0] == v12
    assert tree.levels[2][0] == v14
    # P_{0,2}'s auth path (index 1): sibling v1, then v3-4, then v5-8.
    path = tree.auth_path(1)
    assert path[0] == v[0]
    assert path[1] == v34
    assert path[2] == tree.levels[2][1]


def test_wrong_leaf_rejected():
    leaves = _leaves(8)
    tree = MerkleTree(leaves)
    assert not verify_merkle_path(b"forged" * 4, 3, tree.auth_path(3), tree.root)


def test_wrong_index_rejected():
    leaves = _leaves(8)
    tree = MerkleTree(leaves)
    assert not verify_merkle_path(leaves[3], 2, tree.auth_path(3), tree.root)


def test_tampered_path_rejected():
    leaves = _leaves(8)
    tree = MerkleTree(leaves)
    path = tree.auth_path(3)
    path[1] = bytes(len(path[1]))
    assert not verify_merkle_path(leaves[3], 3, path, tree.root)


def test_path_index_bounds():
    tree = MerkleTree(_leaves(4))
    with pytest.raises(ConfigError):
        tree.auth_path(4)
    with pytest.raises(ConfigError):
        tree.auth_path(-1)


def test_require_valid_raises():
    tree = MerkleTree(_leaves(4))
    require_valid_merkle_path(_leaves(4)[0], 0, tree.auth_path(0), tree.root)
    with pytest.raises(AuthenticationError):
        require_valid_merkle_path(b"bogus", 0, tree.auth_path(0), tree.root)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=4),
    st.binary(min_size=1, max_size=64),
)
def test_property_every_leaf_verifies_and_forgeries_fail(log_n, salt):
    n = 2 ** log_n
    leaves = [salt + bytes([i]) for i in range(n)]
    tree = MerkleTree(leaves)
    for i in range(n):
        assert verify_merkle_path(leaves[i], i, tree.auth_path(i), tree.root)
        assert not verify_merkle_path(leaves[i] + b"x", i, tree.auth_path(i), tree.root)


# ---------------------------------------------------------------------------
# Adversarial paths: odd leaf counts, truncated/padded/tampered sibling paths.
# ---------------------------------------------------------------------------

def test_odd_leaf_counts_rejected():
    """The wire format fixes n0 = 2**d; odd trees must never be built."""
    for odd in (3, 5, 7, 9, 15, 31, 33):
        with pytest.raises(ConfigError):
            MerkleTree(_leaves(odd))


def test_every_sibling_tampered_rejected():
    """Flipping any single byte at any depth of the path must break it."""
    leaves = _leaves(16)
    tree = MerkleTree(leaves)
    for index in (0, 7, 15):
        path = tree.auth_path(index)
        for depth in range(len(path)):
            tampered = list(path)
            broken = bytearray(tampered[depth])
            broken[0] ^= 0x01
            tampered[depth] = bytes(broken)
            assert not verify_merkle_path(leaves[index], index, tampered, tree.root)
            with pytest.raises(AuthenticationError):
                require_valid_merkle_path(leaves[index], index, tampered, tree.root)


def test_truncated_and_padded_paths_rejected():
    leaves = _leaves(8)
    tree = MerkleTree(leaves)
    path = tree.auth_path(2)
    assert not verify_merkle_path(leaves[2], 2, path[:-1], tree.root)
    assert not verify_merkle_path(leaves[2], 2, path[1:], tree.root)
    assert not verify_merkle_path(leaves[2], 2, path + [path[0]], tree.root)


def test_reordered_siblings_rejected():
    leaves = _leaves(8)
    tree = MerkleTree(leaves)
    path = tree.auth_path(5)
    swapped = [path[1], path[0], path[2]]
    assert not verify_merkle_path(leaves[5], 5, swapped, tree.root)


def test_path_from_other_leaf_rejected():
    leaves = _leaves(8)
    tree = MerkleTree(leaves)
    for other in (0, 1, 7):
        if other != 4:
            assert not verify_merkle_path(leaves[4], 4, tree.auth_path(other), tree.root)


def test_cross_tree_root_substitution_rejected():
    """A path that verifies against an attacker's root must not verify ours."""
    honest = MerkleTree(_leaves(8))
    forged_leaves = [b"evil" + bytes([i]) * 16 for i in range(8)]
    forged = MerkleTree(forged_leaves)
    path = forged.auth_path(3)
    assert verify_merkle_path(forged_leaves[3], 3, path, forged.root)
    assert not verify_merkle_path(forged_leaves[3], 3, path, honest.root)
