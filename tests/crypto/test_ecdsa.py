"""Unit tests for the pure-Python ECDSA over NIST P-192."""

import pytest

from repro.crypto.ecdsa import (
    P192,
    EcdsaSignature,
    _base_point,
    _jac_add,
    _jac_double,
    _jac_mul,
    _to_affine,
    generate_keypair,
    sign,
    verify,
)
from repro.errors import AuthenticationError


def test_base_point_on_curve():
    x, y = P192.gx, P192.gy
    assert (y * y - (x * x * x + P192.a * x + P192.b)) % P192.p == 0


def test_scalar_multiples_stay_on_curve():
    for k in (2, 3, 7, 12345):
        pt = _to_affine(_jac_mul(k, _base_point(P192), P192), P192)
        x, y = pt
        assert (y * y - (x * x * x + P192.a * x + P192.b)) % P192.p == 0


def test_order_times_g_is_infinity():
    assert _to_affine(_jac_mul(P192.order, _base_point(P192), P192), P192) is None


def test_point_addition_consistency():
    g = _base_point(P192)
    two_g = _jac_double(g, P192)
    three_g_a = _jac_add(two_g, g, P192)
    three_g_b = _jac_mul(3, g, P192)
    assert _to_affine(three_g_a, P192) == _to_affine(three_g_b, P192)


def test_keypair_deterministic_from_seed():
    a = generate_keypair(7)
    b = generate_keypair(7)
    c = generate_keypair(8)
    assert a.private == b.private and a.public == b.public
    assert a.private != c.private


def test_sign_verify_roundtrip():
    kp = generate_keypair(1)
    sig = sign(b"merkle-root||metadata", kp)
    assert verify(b"merkle-root||metadata", sig, kp.public)


def test_signature_deterministic():
    kp = generate_keypair(1)
    assert sign(b"m", kp) == sign(b"m", kp)
    assert sign(b"m", kp) != sign(b"m2", kp)


def test_tampered_message_rejected():
    kp = generate_keypair(2)
    sig = sign(b"original", kp)
    assert not verify(b"0riginal", sig, kp.public)


def test_wrong_key_rejected():
    kp1, kp2 = generate_keypair(3), generate_keypair(4)
    sig = sign(b"msg", kp1)
    assert not verify(b"msg", sig, kp2.public)


def test_degenerate_signature_values_rejected():
    kp = generate_keypair(5)
    assert not verify(b"msg", EcdsaSignature(0, 1), kp.public)
    assert not verify(b"msg", EcdsaSignature(1, 0), kp.public)
    assert not verify(b"msg", EcdsaSignature(P192.order, 1), kp.public)


def test_signature_serialization_roundtrip():
    kp = generate_keypair(6)
    sig = sign(b"data", kp)
    raw = sig.to_bytes()
    assert len(raw) == 2 * P192.byte_len == 48
    assert EcdsaSignature.from_bytes(raw) == sig


def test_signature_wrong_length_rejected():
    with pytest.raises(AuthenticationError):
        EcdsaSignature.from_bytes(b"\x00" * 47)
