"""Tests for the replint static-analysis suite.

Every rule gets at least one fixture that triggers it and one that passes.
The suppression, baseline, ``--fix`` and CLI layers are exercised end to end
against temporary trees.
"""

from __future__ import annotations

import ast
import json
import textwrap
from pathlib import Path

import pytest

from replint import Baseline, analyze_source
from replint.cli import main
from replint.finding import RULES, RULES_BY_CODE, Severity
from replint.fixes import fix_source

SRC = "src/repro/protocols/example.py"  # generic library-code path


def codes(findings, *, include_suppressed=False):
    return sorted(
        f.rule for f in findings if include_suppressed or not f.suppressed
    )


def run(source: str, relpath: str = SRC, select=None):
    return analyze_source(textwrap.dedent(source), relpath, select=select)


# ---------------------------------------------------------------------------
# Rule registry sanity
# ---------------------------------------------------------------------------

def test_registry_is_complete():
    from replint.rules import RULE_CHECKS

    assert [r.code for r in RULES] == sorted(RULE_CHECKS)
    assert all(r.code in RULES_BY_CODE for r in RULES)
    assert all(r.summary and r.rationale for r in RULES)


# ---------------------------------------------------------------------------
# REP001 — global-random
# ---------------------------------------------------------------------------

def test_rep001_flags_global_random_calls():
    findings = run(
        """
        import random

        def jitter():
            return random.random() * 2
        """
    )
    assert "REP001" in codes(findings)


def test_rep001_flags_stream_construction_in_src():
    findings = run(
        """
        import random

        def make(seed):
            return random.Random(seed)
        """
    )
    assert "REP001" in codes(findings)


def test_rep001_flags_numpy_global_random():
    findings = run(
        """
        import numpy as np

        def noise():
            np.random.seed(0)
            return np.random.rand(4)
        """
    )
    assert codes(findings).count("REP001") == 2


def test_rep001_allows_rng_module_and_injected_streams():
    sanctioned = run(
        """
        import random

        def derived_stream(seed):
            return random.Random(seed)
        """,
        relpath="src/repro/sim/rng.py",
    )
    assert codes(sanctioned) == []

    injected = run(
        """
        def sample(rng):
            return rng.random()
        """
    )
    assert codes(injected) == []


def test_rep001_allows_seeded_fixture_streams_in_tests():
    findings = run(
        """
        import random
        import numpy as np

        def make_fixture():
            return random.Random(42), np.random.default_rng(7)
        """,
        relpath="tests/test_example.py",
    )
    assert codes(findings) == []
    # ...but unseeded generators and global draws stay flagged even in tests.
    bad = run(
        """
        import numpy as np

        def make_fixture():
            return np.random.default_rng()
        """,
        relpath="tests/test_example.py",
    )
    assert "REP001" in codes(bad)


# ---------------------------------------------------------------------------
# REP002 — wall-clock
# ---------------------------------------------------------------------------

def test_rep002_flags_wall_clock_reads():
    findings = run(
        """
        import time
        from datetime import datetime

        def stamp():
            return time.time(), time.monotonic(), datetime.now()
        """
    )
    assert codes(findings).count("REP002") == 3


def test_rep002_allows_the_reporting_shim():
    findings = run(
        """
        import time

        def stopwatch():
            return time.perf_counter()
        """,
        relpath="src/repro/experiments/reporting.py",
    )
    assert codes(findings) == []


def test_rep002_allows_the_profiler():
    findings = run(
        """
        import time

        def clock():
            return time.perf_counter()
        """,
        relpath="src/repro/obs/profile.py",
    )
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# REP003 — unordered-iteration
# ---------------------------------------------------------------------------

def test_rep003_flags_set_iteration():
    findings = run(
        """
        def emit(packets, send):
            pending = set(packets)
            for p in pending:
                send(p)
        """
    )
    assert "REP003" in codes(findings)


def test_rep003_flags_set_algebra_and_list_conversion():
    findings = run(
        """
        def union_order(a, b):
            merged = set(a) | set(b)
            return list(merged)
        """
    )
    assert "REP003" in codes(findings)


def test_rep003_allows_sorted_iteration():
    findings = run(
        """
        def emit(packets, send):
            pending = set(packets)
            for p in sorted(pending):
                send(p)
            return len(pending), sum(pending), max(pending)
        """
    )
    assert codes(findings) == []


def test_rep003_reassignment_clears_tracking():
    findings = run(
        """
        def rebind(items):
            xs = set(items)
            xs = sorted(xs)
            for x in xs:
                yield x
        """
    )
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# REP004 — crypto-hygiene
# ---------------------------------------------------------------------------

def test_rep004_flags_weak_hashes_anywhere():
    findings = run(
        """
        import hashlib

        def fingerprint(data):
            return hashlib.md5(data).digest(), hashlib.new("sha1", data)
        """
    )
    assert codes(findings).count("REP004") == 2


def test_rep004_flags_random_in_crypto():
    findings = run(
        """
        import random

        def make_nonce():
            return random.getrandbits(64)
        """,
        relpath="src/repro/crypto/nonce.py",
        select={"REP004"},
    )
    assert codes(findings) == ["REP004"]


def test_rep004_allows_sha256_and_noncrypto_randomness():
    findings = run(
        """
        import hashlib

        def fingerprint(data):
            return hashlib.sha256(data).digest()
        """,
        relpath="src/repro/crypto/hashing.py",
    )
    assert codes(findings) == []
    # The random module outside crypto/ is REP001's business, not REP004's.
    elsewhere = run(
        """
        import random

        def draw():
            return random.random()
        """,
        select={"REP004"},
    )
    assert codes(elsewhere) == []


# ---------------------------------------------------------------------------
# REP005 — swallowed-exceptions
# ---------------------------------------------------------------------------

def test_rep005_flags_bare_and_swallowing_excepts():
    findings = run(
        """
        def handle(pkt, process):
            try:
                process(pkt)
            except:
                pass

        def handle2(pkt, process):
            try:
                process(pkt)
            except Exception:
                pass
        """
    )
    assert codes(findings).count("REP005") == 2


def test_rep005_allows_narrow_and_handled_excepts():
    findings = run(
        """
        def handle(pkt, process, log):
            try:
                process(pkt)
            except ValueError:
                pass
            except Exception as exc:
                log(exc)
                raise
        """
    )
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# REP006 — mutable-default
# ---------------------------------------------------------------------------

def test_rep006_flags_mutable_defaults():
    findings = run(
        """
        def enqueue(item, queue=[]):
            queue.append(item)
            return queue

        def tally(key, counts={}, *, seen=set()):
            counts[key] = counts.get(key, 0) + 1
            seen.add(key)
            return counts
        """
    )
    assert codes(findings).count("REP006") == 3


def test_rep006_allows_none_and_immutable_defaults():
    findings = run(
        """
        def enqueue(item, queue=None, limits=(), name="q"):
            if queue is None:
                queue = []
            queue.append(item)
            return queue
        """
    )
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# REP007 — handler-purity
# ---------------------------------------------------------------------------

def test_rep007_flags_handlers_touching_module_state():
    findings = run(
        """
        EVENTS = []
        COUNTS = {}

        class Node:
            def start(self, sim):
                sim.schedule(1.0, self.on_timer)

            def on_timer(self):
                EVENTS.append("fired")
                COUNTS["fired"] = COUNTS.get("fired", 0) + 1
        """
    )
    assert codes(findings).count("REP007") == 2


def test_rep007_flags_global_declarations_in_handlers():
    findings = run(
        """
        TICKS = 0

        def on_tick():
            global TICKS
            TICKS += 1

        def start(sim):
            sim.schedule_at(0.0, on_tick)
        """
    )
    assert "REP007" in codes(findings)


def test_rep007_allows_instance_state_and_unscheduled_functions():
    findings = run(
        """
        EVENTS = []

        class Node:
            def __init__(self):
                self.fired = 0

            def start(self, sim):
                sim.schedule(1.0, self.on_timer)

            def on_timer(self):
                self.fired += 1

        def not_a_handler():
            EVENTS.append("ok here: never scheduled on the engine")
        """
    )
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# REP008 — assert-validation
# ---------------------------------------------------------------------------

def test_rep008_flags_asserts_in_src():
    findings = run(
        """
        def decode(blocks):
            assert blocks, "no blocks"
            return blocks[0]
        """
    )
    assert "REP008" in codes(findings)


def test_rep008_ignores_tests_and_tools():
    for relpath in ("tests/test_decode.py", "tools/replint/rules.py"):
        findings = run(
            """
            def test_decode():
                assert 1 + 1 == 2
            """,
            relpath=relpath,
        )
        assert codes(findings) == []


# ---------------------------------------------------------------------------
# REP009 — stray-print
# ---------------------------------------------------------------------------

def test_rep009_flags_print_in_library_code():
    findings = run(
        """
        def on_packet(pkt):
            print("got", pkt)
        """
    )
    assert "REP009" in codes(findings)
    assert RULES_BY_CODE["REP009"].severity is Severity.WARNING


def test_rep009_allows_cli_shims():
    for relpath in (
        "src/repro/simulate.py",
        "src/repro/experiments/__main__.py",
        "src/repro/experiments/figures.py",
    ):
        findings = run(
            """
            def report(result):
                print(result)
            """,
            relpath=relpath,
        )
        assert codes(findings) == []


# ---------------------------------------------------------------------------
# REP010 — env-dependence
# ---------------------------------------------------------------------------

def test_rep010_flags_environment_reads():
    findings = run(
        """
        import os
        import sys

        def load():
            root = os.environ["SIM_ROOT"]
            fallback = os.getenv("SIM_SEED", "0")
            prog = sys.argv[0]
            return root, fallback, prog
        """
    )
    assert codes(findings).count("REP010") == 3


def test_rep010_allows_config_and_cli_shims():
    for relpath in ("src/repro/core/config.py", "src/repro/simulate.py"):
        findings = run(
            """
            import os

            def load():
                return os.getenv("SIM_SEED", "0")
            """,
            relpath=relpath,
        )
        assert codes(findings) == []


# ---------------------------------------------------------------------------
# REP011 — unknown-metric
# ---------------------------------------------------------------------------

CATALOG_SNIPPET = """
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class MetricSpec:
    name: str
    kind: str = "counter"
    unit: str = ""
    help: str = ""


METRICS: Tuple[MetricSpec, ...] = (
    MetricSpec("tx_data", "counter", "packets", "data packets"),
    MetricSpec("span_page", "event", "spans", "page assembly"),
)

DYNAMIC_METRIC_PREFIXES: Tuple[str, ...] = (
    "tx_data_unit_",
)
"""


def vocab():
    from replint.rules import load_vocabulary

    return load_vocabulary(textwrap.dedent(CATALOG_SNIPPET))


def run_with_vocab(source: str, relpath: str = SRC):
    return analyze_source(textwrap.dedent(source), relpath, vocabulary=vocab())


def test_load_vocabulary_reads_specs_and_annotated_prefixes():
    v = vocab()
    assert v.names == frozenset({"tx_data", "span_page"})
    assert v.prefixes == ("tx_data_unit_",)
    assert v.known("tx_data")
    assert v.known("tx_data_unit_7")
    assert not v.known("txdata")


def test_load_vocabulary_handles_plain_assignments():
    from replint.rules import load_vocabulary

    v = load_vocabulary(
        'DYNAMIC_METRIC_PREFIXES = ("rx_page_",)\n'
    )
    assert v.prefixes == ("rx_page_",)


def test_rep011_flags_typo_kinds():
    findings = run_with_vocab(
        """
        def on_data(self, pkt):
            self.trace.count("txdata")
            self.trace.record(self.now, "tx_datas", node=1)
        """
    )
    assert codes(findings).count("REP011") == 2


def test_rep011_checks_span_calls():
    findings = run_with_vocab(
        """
        def on_data(trace, now):
            trace.span_begin(now, "span_pgae", node=1, key=0)
            trace.span_end(now, kind="span_pgae", node=1, key=0)
        """
    )
    assert codes(findings).count("REP011") == 2


def test_rep011_allows_declared_names_and_dynamic_families():
    findings = run_with_vocab(
        """
        def on_data(self, pkt, unit):
            self.trace.count("tx_data")
            self.trace.count("tx_data_unit_3")
            self.trace.count(f"tx_data_unit_{unit}")  # non-literal: skipped
            self.trace.record(self.now, "span_page", node=1)
        """
    )
    assert codes(findings) == []


def test_rep011_skips_tests_catalog_and_foreign_receivers():
    source = """
        def helper(log, trace):
            trace.count("txdata")
            log.count("txdata")  # not a trace recorder: out of scope
    """
    assert codes(run_with_vocab(source, relpath="tests/test_mod.py")) == []
    assert codes(
        run_with_vocab(source, relpath="src/repro/obs/catalog.py")
    ) == []
    in_src = run_with_vocab(source)
    assert codes(in_src).count("REP011") == 1  # only the trace.* call


def test_rep011_is_inert_without_a_vocabulary():
    findings = run(
        """
        def on_data(trace):
            trace.count("txdata")
        """
    )
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# REP013 — non-event-trace-kind
# ---------------------------------------------------------------------------

def test_rep013_flags_counter_kinds_in_record():
    findings = run_with_vocab(
        """
        def on_data(self, pkt):
            self.trace.record(self.now, "tx_data", node=1)
        """
    )
    assert "REP013" in codes(findings)
    assert "REP011" not in codes(findings)  # known name: not REP011's problem


def test_rep013_checks_span_calls_and_allows_event_kinds():
    findings = run_with_vocab(
        """
        def on_data(trace, now):
            trace.span_begin(now, "tx_data", node=1, key=0)
            trace.span_end(now, kind="span_page", node=1, key=0)
            trace.record(now, "span_page", node=1)
        """
    )
    assert codes(findings).count("REP013") == 1  # only the span_begin


def test_rep013_leaves_unknown_and_dynamic_kinds_to_rep011():
    findings = run_with_vocab(
        """
        def on_data(self, unit):
            self.trace.record(self.now, "tx_datas", node=1)
            self.trace.record(self.now, "tx_data_unit_3", node=1)
        """
    )
    # The typo is REP011's finding; the dynamic family has no declared kind.
    assert "REP013" not in codes(findings)
    assert "REP011" in codes(findings)


def test_rep013_ignores_counter_calls_and_tests():
    source = """
        def on_data(self):
            self.trace.count("tx_data")
    """
    assert codes(run_with_vocab(source)) == []
    flagged = """
        def on_data(self):
            self.trace.record(0.0, "tx_data", node=1)
    """
    assert codes(run_with_vocab(flagged, relpath="tests/test_mod.py")) == []
    assert codes(
        run_with_vocab(flagged, relpath="src/repro/obs/catalog.py")
    ) == []


def test_rep013_is_inert_without_a_vocabulary():
    findings = run(
        """
        def on_data(trace):
            trace.record(0.0, "tx_data", node=1)
        """
    )
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# REP012 — unsanctioned-artifact-write
# ---------------------------------------------------------------------------

def test_rep012_flags_open_for_write():
    findings = run(
        """
        def dump(path, data):
            with open(path, "w") as handle:
                handle.write(data)
        """
    )
    assert "REP012" in codes(findings)


def test_rep012_flags_write_modes_only():
    source = """
        def roundtrip(path):
            with open(path) as ro:
                data = ro.read()
            with open(path, mode="rb") as rb:
                rb.read()
            with open(path, "a") as log:
                log.write(data)
    """
    findings = run(source)
    assert codes(findings).count("REP012") == 1  # only the append


def test_rep012_flags_write_text():
    findings = run(
        """
        from pathlib import Path

        def export(path, text):
            Path(path).write_text(text, encoding="utf-8")
        """
    )
    assert "REP012" in codes(findings)


def test_rep012_allows_persist_tests_and_tools():
    source = """
        import os

        def atomic(path, text):
            fd = os.open(path, 0)
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
    """
    assert codes(run(source, relpath="src/repro/persist.py")) == []
    assert codes(run(source, relpath="tests/test_mod.py")) == []
    assert codes(run(source, relpath="tools/replint/cli.py")) == []
    assert "REP012" in codes(run(source))


def test_rep012_skips_dynamic_modes():
    findings = run(
        """
        def reopen(path, mode):
            return open(path, mode)
        """
    )
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# REP014 — queue-order-read
# ---------------------------------------------------------------------------

def test_rep014_flags_zero_delay_handler_reading_queue_state():
    findings = run(
        """
        class Node:
            def start(self, sim):
                sim.schedule(0.0, self.on_wake)

            def on_wake(self, sim):
                if sim.pending_events:
                    self.fire()
        """
    )
    assert "REP014" in codes(findings)


def test_rep014_flags_schedule_at_now_handlers():
    findings = run(
        """
        class Node:
            def start(self, sim):
                sim.schedule_at(sim.now, self.on_wake)

            def on_wake(self, sim):
                return len(sim._queue)
        """
    )
    assert "REP014" in codes(findings)


def test_rep014_allows_delayed_handlers_and_pure_same_ts_handlers():
    # A handler with real delay may inspect the queue (it runs in its own
    # timestamp group), and a zero-delay handler is fine if it only reads
    # simulated time / node state.
    findings = run(
        """
        class Node:
            def start(self, sim):
                sim.schedule(1.0, self.on_later)
                sim.schedule(0.0, self.on_now)
                sim.schedule_at(self.deadline, self.on_deadline)

            def on_later(self, sim):
                return sim.pending_events

            def on_now(self, sim):
                return sim.now + self.backoff

            def on_deadline(self, sim):
                return sim.pending_events
        """
    )
    assert "REP014" not in codes(findings)


def test_rep014_skips_tests():
    findings = run(
        """
        def start(sim):
            sim.schedule(0.0, probe)

        def probe(sim):
            assert sim.pending_events == 0
        """,
        relpath="tests/test_engine.py",
    )
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# REP015 — shared-class-state
# ---------------------------------------------------------------------------

def test_rep015_flags_mutable_class_attrs_and_method_defaults():
    findings = run(
        """
        class Node:
            peers = []
            cache: dict = {}

            def record(self, item, seen=set()):
                seen.add(item)
        """,
        select={"REP015"},
    )
    assert codes(findings).count("REP015") == 3


def test_rep015_allows_immutable_slots_and_per_instance_state():
    findings = run(
        """
        from dataclasses import dataclass, field

        class Node:
            __slots__ = ("peers",)
            LIMIT = 4
            name: str = "n"
            pending: list

            def __init__(self):
                self.peers = []

        @dataclass
        class Spec:
            items: list = field(default_factory=list)
        """,
        select={"REP015"},
    )
    assert codes(findings) == []


def test_rep015_is_scoped_to_per_node_modules():
    source = """
        class Sweeper:
            results = []
    """
    in_scope = run(source, relpath="src/repro/attacks/example.py",
                   select={"REP015"})
    assert "REP015" in codes(in_scope)
    out_of_scope = run(source, relpath="src/repro/experiments/example.py",
                       select={"REP015"})
    assert codes(out_of_scope) == []


# ---------------------------------------------------------------------------
# REP016 — hot-path-unordered
# ---------------------------------------------------------------------------

HOT = "src/repro/net/radio.py"


def test_rep016_flags_attribute_set_iteration_on_hot_path():
    findings = run(
        """
        class Radio:
            def __init__(self):
                self._detached = set()

            def survivors(self):
                return [n for n in self._detached]
        """,
        relpath=HOT,
    )
    assert "REP016" in codes(findings)


def test_rep016_flags_set_annotated_parameters():
    findings = run(
        """
        class Radio:
            def deliver(self, audible: set):
                for n in audible:
                    self.send(n)
        """,
        relpath=HOT,
    )
    assert "REP016" in codes(findings)


def test_rep016_defers_local_names_to_rep003():
    # A local set name is REP003's finding even on the hot path: one
    # defect, one code.
    findings = run(
        """
        def pump(queue, send):
            pending = set(queue)
            for p in pending:
                send(p)
        """,
        relpath=HOT,
    )
    assert codes(findings).count("REP003") == 1
    assert "REP016" not in codes(findings)


def test_rep016_allows_sorted_dicts_and_cold_modules():
    clean = run(
        """
        class Radio:
            def __init__(self):
                self._detached = set()
                self._queues = {}

            def survivors(self):
                for n in sorted(self._detached):
                    yield n
                for nid in self._queues:
                    yield nid
        """,
        relpath=HOT,
    )
    assert codes(clean) == []
    # The same attribute iteration off the hot path is out of scope.
    elsewhere = run(
        """
        class Planner:
            def __init__(self):
                self._seen = set()

            def emit(self):
                return [x for x in self._seen]
        """,
        select={"REP016"},
    )
    assert codes(elsewhere) == []


# ---------------------------------------------------------------------------
# REP017 — hot-path-allocation
# ---------------------------------------------------------------------------

ENGINE = "src/repro/sim/engine.py"


def test_rep017_flags_slotless_dataclass_on_hot_path():
    findings = run(
        """
        from dataclasses import dataclass

        @dataclass
        class Event:
            time: float
        """,
        relpath=ENGINE,
    )
    assert "REP017" in codes(findings)
    assert RULES_BY_CODE["REP017"].severity is Severity.WARNING


def test_rep017_flags_per_iteration_allocation_in_loops_and_handlers():
    findings = run(
        """
        class Engine:
            def drain(self, queue):
                while queue:
                    batch = [e for e in queue if e.ready]
                    self.fire(batch)

            def start(self, sim):
                sim.schedule(1.0, self.on_timer)

            def on_timer(self):
                return list(self.pending)
        """,
        relpath=ENGINE,
    )
    assert codes(findings).count("REP017") == 2


def test_rep017_allows_slotted_dataclasses_and_cold_allocation():
    findings = run(
        """
        from dataclasses import dataclass

        @dataclass(slots=True)
        class Event:
            time: float

        @dataclass
        class Stats:
            __slots__ = ("pushes",)
            pushes: int

        class Engine:
            def drain(self, queue, send):
                while queue:
                    send(e.size for e in queue)  # generator: no allocation churn
                    empty = list()  # no args: not a materialiser copy

            def snapshot(self):
                return [e for e in self.pending]  # not a loop, not a handler
        """,
        relpath=ENGINE,
    )
    assert codes(findings) == []


def test_rep017_is_scoped_to_hot_modules():
    findings = run(
        """
        from dataclasses import dataclass

        @dataclass
        class Row:
            label: str
        """,
        select={"REP017"},
    )
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# REP018 — unsanctioned-profiling
# ---------------------------------------------------------------------------

def test_rep018_flags_tracemalloc_import_and_calls():
    findings = run(
        """
        import tracemalloc

        def measure(fn):
            tracemalloc.start()
            fn()
            peak = tracemalloc.get_traced_memory()[1]
            tracemalloc.stop()
            return peak
        """
    )
    # the import plus each of the three driving calls
    assert codes(findings).count("REP018") == 4


def test_rep018_flags_aliased_tracemalloc_and_from_import():
    findings = run(
        """
        import tracemalloc as tm
        from tracemalloc import start

        def measure():
            tm.start()
        """
    )
    assert codes(findings).count("REP018") == 3


def test_rep018_flags_bare_from_imported_clock_calls():
    findings = run(
        """
        from time import perf_counter
        from time import monotonic as mono

        def stamp():
            return perf_counter() + mono()
        """,
        select={"REP018"},
    )
    assert codes(findings).count("REP018") == 2


def test_rep018_dotted_clock_stays_rep002_territory():
    findings = run(
        """
        import time

        def stamp():
            return time.perf_counter()
        """
    )
    assert "REP002" in codes(findings)
    assert "REP018" not in codes(findings)


def test_rep018_allows_profiler_stack_and_tests():
    for sanctioned in ("src/repro/obs/profile.py", "src/repro/obs/perf.py"):
        findings = run(
            """
            import tracemalloc
            from time import perf_counter

            def clock():
                tracemalloc.start()
                return perf_counter()
            """,
            relpath=sanctioned,
        )
        assert codes(findings) == []

    in_tests = run(
        """
        import tracemalloc

        def test_alloc():
            assert not tracemalloc.is_tracing()
        """,
        relpath="tests/obs/test_profile.py",
    )
    assert "REP018" not in codes(in_tests)


def test_rep018_allows_non_clock_time_imports():
    findings = run(
        """
        from time import sleep

        def pause():
            sleep(0.1)
        """,
        select={"REP018"},
    )
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# REP019 — unsanctioned-fs-syscall
# ---------------------------------------------------------------------------

def test_rep019_flags_direct_fs_mutations_in_src():
    findings = run(
        """
        import os

        def save(path, data):
            fd = os.open(path, os.O_WRONLY)
            os.write(fd, data)
            os.fsync(fd)
            os.replace(path + ".tmp", path)
        """,
        select={"REP019"},
    )
    assert codes(findings).count("REP019") == 4


def test_rep019_sees_aliased_and_from_imported_spellings():
    findings = run(
        """
        import os as _os
        from os import replace, unlink as rm

        def shuffle(a, b):
            replace(a, b)
            rm(a)
            _os.rename(b, a)
        """,
        select={"REP019"},
    )
    assert codes(findings).count("REP019") == 3


def test_rep019_ignores_read_only_os_calls():
    findings = run(
        """
        import os

        def tail(fd):
            os.lseek(fd, -64, os.SEEK_END)
            return os.read(fd, 64), os.stat("x").st_size
        """,
        select={"REP019"},
    )
    assert codes(findings) == []


def test_rep019_allows_the_persist_seam_chaos_tests_and_tools():
    source = """
        import os

        def raw(path, data):
            fd = os.open(path, os.O_WRONLY)
            os.write(fd, data)
        """
    for sanctioned in (
        "src/repro/persist.py",
        "src/repro/chaos/fs.py",
        "tests/chaos/test_fault_injection.py",
        "tools/replint/runner.py",
    ):
        findings = run(source, relpath=sanctioned, select={"REP019"})
        assert codes(findings) == [], sanctioned


# ---------------------------------------------------------------------------
# Parse errors
# ---------------------------------------------------------------------------

def test_unparseable_file_is_a_finding():
    findings = analyze_source("def broken(:\n", SRC)
    assert codes(findings) == ["REP000"]


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

def test_same_line_suppression():
    findings = run(
        """
        import time

        def stamp():
            return time.time()  # replint: disable=REP002
        """
    )
    assert codes(findings) == []
    assert codes(findings, include_suppressed=True) == ["REP002"]


def test_suppression_is_rule_specific():
    findings = run(
        """
        import time

        def stamp():
            return time.time()  # replint: disable=REP001
        """
    )
    assert codes(findings) == ["REP002"]


def test_bare_disable_suppresses_all_rules_on_line():
    findings = run(
        """
        import time, random

        def stamp():
            return time.time(), random.random()  # replint: disable
        """
    )
    assert codes(findings) == []


def test_directive_inside_string_is_not_a_suppression():
    findings = run(
        """
        import time

        def stamp():
            note = "# replint: disable=REP002"
            return time.time(), note
        """
    )
    assert codes(findings) == ["REP002"]


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def test_baseline_grandfathers_then_blocks_new(tmp_path):
    source = textwrap.dedent(
        """
        import time

        def stamp():
            return time.time()
        """
    )
    findings = analyze_source(source, SRC)
    baseline = Baseline.from_findings(findings)
    assert all(baseline.consume(f) for f in analyze_source(source, SRC))

    grown = source + "\n\ndef stamp2():\n    return time.time()\n"
    fresh = Baseline.from_findings(findings)
    leftover = [f for f in analyze_source(grown, SRC) if not fresh.consume(f)]
    assert len(leftover) == 1  # only the *new* violation escapes the baseline


def test_baseline_roundtrip(tmp_path):
    source = "import time\n\n\ndef f():\n    return time.time()\n"
    findings = analyze_source(source, SRC)
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).dump(path)
    loaded = Baseline.load(path)
    assert len(loaded) == len(findings) == 1
    assert loaded.consume(findings[0])
    assert not loaded.consume(findings[0])  # counts are a multiset
    assert Baseline.load(tmp_path / "missing.json").consume(findings[0]) is False


def test_baseline_survives_line_shifts():
    source = "import time\n\n\ndef f():\n    return time.time()\n"
    baseline = Baseline.from_findings(analyze_source(source, SRC))
    shifted = "import time\n\nPAD = 1\n\n\ndef f():\n    return time.time()\n"
    assert all(baseline.consume(f) for f in analyze_source(shifted, SRC))


def test_baseline_reports_unconsumed_entries():
    source = "import time\n\n\ndef f():\n    return time.time()\n"
    baseline = Baseline.from_findings(analyze_source(source, SRC))
    (path, rule, _line_hash, count), = baseline.unconsumed()
    assert (path, rule, count) == (SRC, "REP002", 1)
    for finding in analyze_source(source, SRC):
        baseline.consume(finding)
    assert baseline.unconsumed() == []


def test_cli_fails_on_stale_baseline_entry(tmp_path, capsys):
    """Drift check: a baselined finding that stops firing fails the run."""
    target = _make_tree(tmp_path, """
        import time

        def stamp():
            return time.time()
        """)
    src = str(tmp_path / "src")
    assert main([src, "--root", str(tmp_path), "--write-baseline"]) == 0
    assert main([src, "--root", str(tmp_path)]) == 0
    # Fix the violation: the baseline entry goes stale and CI must notice.
    target.write_text("def stamp(clock):\n    return clock()\n")
    capsys.readouterr()
    assert main([src, "--root", str(tmp_path)]) == 1
    err = capsys.readouterr().err
    assert "stale baseline entry" in err and "REP002" in err
    # Refreshing the baseline clears the failure.
    assert main([src, "--root", str(tmp_path), "--write-baseline"]) == 0
    assert main([src, "--root", str(tmp_path)]) == 0


def test_stale_check_skips_select_and_uncovered_paths(tmp_path, capsys):
    _make_tree(tmp_path, """
        import time

        def stamp():
            return time.time()
        """)
    other = tmp_path / "tests"
    other.mkdir()
    (other / "test_ok.py").write_text("def test_f():\n    assert True\n")
    src = str(tmp_path / "src")
    assert main([src, "--root", str(tmp_path), "--write-baseline"]) == 0
    # A --select subset never consumes other rules' entries: not drift.
    assert main([src, "--root", str(tmp_path), "--select", "REP008"]) == 0
    # A run over paths that don't cover the entry: not drift either.
    assert main([str(other), "--root", str(tmp_path)]) == 0


# ---------------------------------------------------------------------------
# Fixes
# ---------------------------------------------------------------------------

def test_fix_rewrites_asserts_preserving_behaviour():
    source = textwrap.dedent(
        """
        def pick(value):
            assert value is not None
            assert value >= 0, f"negative: {value}"
            return value
        """
    )
    fixed, n = fix_source(source, {"REP008"})
    assert n == 2
    assert "assert" not in fixed
    assert "if value is None:" in fixed  # mypy-narrowable special case
    namespace: dict = {}
    exec(compile(fixed, "<fixed>", "exec"), namespace)
    assert namespace["pick"](3) == 3
    with pytest.raises(AssertionError):
        namespace["pick"](None)
    with pytest.raises(AssertionError, match="negative: -1"):
        namespace["pick"](-1)


def test_fix_rewrites_mutable_defaults_without_state_leak():
    source = textwrap.dedent(
        """
        def enqueue(item, queue=[]):
            '''Append and return.'''
            queue.append(item)
            return queue
        """
    )
    fixed, n = fix_source(source, {"REP006"})
    assert n == 1
    assert "queue=None" in fixed.replace(" ", "").replace("queue =", "queue=") or "None" in fixed
    namespace: dict = {}
    exec(compile(fixed, "<fixed>", "exec"), namespace)
    assert namespace["enqueue"](1) == [1]
    assert namespace["enqueue"](2) == [2]  # no shared default any more
    assert namespace["enqueue"].__doc__ == "Append and return."


def test_fix_leaves_suppressed_lines_alone():
    source = (
        "def f(x):\n"
        "    assert x  # replint: disable=REP008\n"
        "    return x\n"
    )
    fixed, n = fix_source(source, {"REP008"})
    assert n == 0
    assert fixed == source


def test_fixed_output_is_flagged_clean():
    source = "def f(x):\n    assert x\n    return x\n"
    fixed, _ = fix_source(source, {"REP008"})
    assert codes(analyze_source(fixed, SRC)) == []
    ast.parse(fixed)


FIX_FIXTURES = {
    "REP006": textwrap.dedent(
        """
        def enqueue(item, queue=[], *, seen=set()):
            queue.append(item)
            seen.add(item)
            return queue
        """
    ),
    "REP008": textwrap.dedent(
        """
        def decode(blocks):
            assert blocks, "no blocks"
            assert blocks[0] is not None
            return blocks[0]
        """
    ),
}


@pytest.mark.parametrize("rule", sorted(FIX_FIXTURES))
def test_fix_is_idempotent(rule):
    """Fixing twice must equal fixing once, for every autofix rule."""
    once, n_once = fix_source(FIX_FIXTURES[rule], {rule})
    assert n_once == 2
    twice, n_twice = fix_source(once, {rule})
    assert n_twice == 0
    assert twice == once


@pytest.mark.parametrize("rule", sorted(FIX_FIXTURES))
def test_fix_is_a_noop_on_clean_files(rule):
    clean = textwrap.dedent(
        """
        def enqueue(item, queue=None):
            if queue is None:
                raise ValueError("queue required")
            queue.append(item)
            return queue
        """
    )
    fixed, n = fix_source(clean, {rule})
    assert n == 0
    assert fixed == clean


def test_fix_rule_inventory_matches_registry():
    """Every rule advertised as fixable has a fix fixture exercising it."""
    from replint.fixes import FIXABLE_RULES

    fixable = {rule.code for rule in RULES if rule.fixable}
    assert fixable == set(FIXABLE_RULES) == set(FIX_FIXTURES)


# ---------------------------------------------------------------------------
# CLI end-to-end
# ---------------------------------------------------------------------------

def _make_tree(tmp_path: Path, body: str) -> Path:
    target = tmp_path / "src" / "repro" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(body), encoding="utf-8")
    return target


def test_cli_exit_codes(tmp_path, capsys):
    _make_tree(tmp_path, """
        import time

        def stamp():
            return time.time()
        """)
    # Paths are resolved relative to the process cwd, so pass them absolute.
    assert main([str(tmp_path / "src"), "--root", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "REP002" in out

    clean = tmp_path / "clean"
    (clean / "src").mkdir(parents=True)
    (clean / "src" / "ok.py").write_text("def f(rng):\n    return rng.random()\n")
    assert main([str(clean / "src"), "--root", str(clean)]) == 0


def test_cli_select_limits_rules(tmp_path, capsys):
    _make_tree(tmp_path, """
        import time

        def stamp():
            assert time
            return time.time()
        """)
    assert main([str(tmp_path / "src"), "--root", str(tmp_path),
                 "--select", "REP008"]) == 1
    out = capsys.readouterr().out
    assert "REP008" in out and "REP002" not in out


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    _make_tree(tmp_path, """
        import time

        def stamp():
            return time.time()
        """)
    src = str(tmp_path / "src")
    assert main([src, "--root", str(tmp_path), "--write-baseline"]) == 0
    baseline_path = tmp_path / ".replint-baseline.json"
    assert baseline_path.exists()
    assert main([src, "--root", str(tmp_path)]) == 0
    capsys.readouterr()
    assert main([src, "--root", str(tmp_path), "--no-baseline"]) == 1


def test_cli_fix_applies_in_place(tmp_path, capsys):
    target = _make_tree(tmp_path, """
        def f(x):
            assert x
            return x
        """)
    assert main([str(tmp_path / "src"), "--root", str(tmp_path), "--fix"]) == 0
    assert "assert" not in target.read_text()
    assert "fix(es) applied" in capsys.readouterr().out


def test_cli_fix_never_touches_test_asserts(tmp_path):
    target = tmp_path / "tests" / "test_mod.py"
    target.parent.mkdir(parents=True)
    body = "def test_f():\n    assert 1 + 1 == 2\n"
    target.write_text(body)
    assert main([str(target.parent), "--root", str(tmp_path), "--fix"]) == 0
    assert target.read_text() == body


def test_cli_json_format(tmp_path, capsys):
    _make_tree(tmp_path, """
        import time

        def stamp():
            return time.time()
        """)
    main([str(tmp_path / "src"), "--root", str(tmp_path), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    assert payload["findings"][0]["rule"] == "REP002"


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule.code in out


def test_cli_strict_promotes_warnings(tmp_path, capsys):
    _make_tree(tmp_path, """
        def on_packet(pkt):
            print("got", pkt)
        """)
    src = str(tmp_path / "src")
    assert main([src, "--root", str(tmp_path)]) == 0  # REP009 is a warning
    capsys.readouterr()
    assert main([src, "--root", str(tmp_path), "--strict"]) == 1


def test_repo_tree_is_clean():
    """The acceptance gate: replint exits 0 on the real src/ and tests/."""
    root = Path(__file__).resolve().parents[2]
    assert main([str(root / "src"), str(root / "tests"),
                 "--root", str(root)]) == 0
