"""Make the ``tools/`` packages importable for the replint test suite.

The tier-1 invocation only puts ``src`` on PYTHONPATH; replint lives under
``tools/`` (it is repo tooling, not part of the shipped ``repro`` package).
"""

from __future__ import annotations

import sys
from pathlib import Path

_TOOLS_DIR = str(Path(__file__).resolve().parents[2] / "tools")
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)
