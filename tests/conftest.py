"""Shared fixtures: small protocol configurations and crypto materials."""

from __future__ import annotations

import pytest

from repro.core.config import DelugeParams, ImageConfig, LRSelugeParams, ProtocolTiming, SelugeParams
from repro.core.image import CodeImage
from repro.crypto.ecdsa import generate_keypair
from repro.crypto.puzzle import MessageSpecificPuzzle
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


@pytest.fixture(scope="session")
def keypair():
    return generate_keypair(42)


@pytest.fixture(scope="session")
def puzzle():
    # Low difficulty keeps the base station's solve step fast in tests.
    return MessageSpecificPuzzle(difficulty=6)


@pytest.fixture
def small_image_cfg():
    return ImageConfig(image_size=4096, version=3)


@pytest.fixture
def small_image(small_image_cfg):
    return CodeImage.synthetic(small_image_cfg.image_size,
                               version=small_image_cfg.version, seed=7)


@pytest.fixture
def lr_params(small_image_cfg):
    return LRSelugeParams(k=8, n=12, image=small_image_cfg)


@pytest.fixture
def seluge_params(small_image_cfg):
    return SelugeParams(k=8, image=small_image_cfg)


@pytest.fixture
def deluge_params(small_image_cfg):
    return DelugeParams(k=8, image=small_image_cfg)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def rngs():
    return RngRegistry(1234)


@pytest.fixture
def trace():
    return TraceRecorder()


@pytest.fixture
def sanitizer():
    """Run the determinism sanitizer over one cell; fail on any finding.

    Usage: ``report = sanitizer(cell, perturbations=2)``.  Fails the test
    with the divergence/alias/tripwire details when the cell is order-
    dependent; returns the :class:`~repro.sim.sanitize.CellReport` when
    clean.  Use before/after engine or protocol-timing refactors.
    """
    from repro.sim.sanitize import run_cell

    def _run(cell, perturbations=2):
        report = run_cell(cell, perturbations=perturbations)
        if not report.ok:
            details = [d.format() for d in report.divergences]
            details += [f"shared at setup: {a.format()}" for a in report.aliases_setup]
            details += [f"shared after run: {a.format()}" for a in report.aliases_final]
            details += [f"rng: {v}" for v in report.rng_violations]
            pytest.fail("sanitizer found order dependence:\n" + "\n".join(details))
        return report

    return _run


@pytest.fixture
def assert_invariants():
    """Replay a trace through the invariant library; fail on any violation."""
    from repro.obs.invariants import check_events

    def _check(events):
        report = check_events(events)
        assert report.ok, report.summary()
        return report

    return _check
