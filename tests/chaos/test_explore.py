"""Crash-point exploration: coverage, recovery invariants, SIGKILL fidelity."""

import json

import pytest

from repro.chaos import ChaosWorkload, enumerate_ops, explore_crash_points
from repro.chaos.explore import _check_recovery, _journal_snapshot
from repro.chaos.workload import _FAILING_LABEL


# One tiny cell per protocol; no failing cell in the micro workload so the
# per-test sweeps stay fast.  The full workload (both seeds + quarantine
# cell) runs in CI's chaos-smoke job and in the nightly full sweep.
MICRO = ChaosWorkload(seeds=(1,), include_failing_cell=False,
                      compact_every=2)


def test_workload_is_deterministic(tmp_path):
    first = MICRO.run(tmp_path / "one")
    second = MICRO.run(tmp_path / "two")
    assert first == second
    assert b"deluge:seed=1" in first and b"lr-seluge:seed=1" in first


def test_enumerate_ops_covers_every_journal(tmp_path):
    ops, csv = enumerate_ops(MICRO, tmp_path / "base")
    paths = " ".join(rec.path for rec in ops)
    assert "checkpoint.jsonl" in paths
    assert "quarantine.jsonl" in paths
    assert "results.jsonl" in paths
    assert "status.json" in paths
    assert "aggregate.csv" in paths
    assert csv.startswith(b"label,")
    # Forced compaction (compact_every=2) must appear in the stream as a
    # temp-then-rename rewrite of the live checkpoint journal.
    assert any(
        rec.op == "replace" and ".checkpoint.jsonl" in rec.path
        for rec in ops
    )


def test_full_sweep_recovers_at_every_point(tmp_path):
    report = explore_crash_points(MICRO, tmp_path, modes=("before",))
    assert report.points, "sweep explored nothing"
    assert len(report.points) == report.total_ops
    assert report.ok, report.summary()
    # Passing point directories are pruned; only the baseline remains.
    assert report.kept_dirs == []
    assert [p.name for p in tmp_path.iterdir()] == ["baseline"]


def test_torn_sweep_recovers_at_every_write(tmp_path):
    report = explore_crash_points(MICRO, tmp_path, modes=("torn",))
    assert report.points, "no write ops explored"
    assert all(p.op == "write" for p in report.points)
    assert report.ok, report.summary()


def test_quarantine_survives_crash_points(tmp_path):
    # The full workload's scripted-failure cell exercises the quarantine
    # journal; sample the op space rather than sweep it to stay quick.
    workload = ChaosWorkload(seeds=(1,), compact_every=2)
    report = explore_crash_points(workload, tmp_path, modes=("before",),
                                  stride=7)
    assert report.points
    assert report.ok, report.summary()
    baseline_csv = (tmp_path / "baseline" / "aggregate.csv").read_text()
    assert _FAILING_LABEL in baseline_csv


def test_sigkill_point_dies_by_signal_and_recovers(tmp_path):
    # One real SIGKILL spot check: full process-death fidelity for the
    # priciest persist op (a mid-campaign checkpoint append write).
    ops, _csv = enumerate_ops(MICRO, tmp_path / "base")
    target = next(
        rec.index for rec in ops
        if rec.op == "write" and rec.path.endswith("checkpoint.jsonl")
    )
    report = explore_crash_points(
        MICRO, tmp_path / "sweep", modes=("before",),
        crash_action="sigkill", indices=[target],
    )
    assert len(report.points) == 1
    assert report.points[0].crashed
    assert report.ok, report.summary()


def test_detects_a_corrupted_recovery(tmp_path):
    # The explorer must be falsifiable: hand it a directory whose journal
    # gained an interior corruption and whose CSV drifted, and every
    # violated invariant must be named.
    root = tmp_path / "run"
    baseline_csv = MICRO.run(root)
    pre = _journal_snapshot(MICRO, root)
    ckpt = MICRO.checkpoint_dir(root) / "checkpoint.jsonl"
    lines = ckpt.read_text(encoding="utf-8").splitlines(True)
    lines.insert(1, "garbage not json\n")
    ckpt.write_text("".join(lines), encoding="utf-8")
    MICRO.csv_path(root).write_text("label\nwrong\n", encoding="utf-8")

    problems = _check_recovery(MICRO, root, baseline_csv, pre)
    text = " | ".join(problems)
    assert "differs from uninterrupted baseline" in text
    assert "interior line" in text


def test_report_serialises(tmp_path):
    report = explore_crash_points(MICRO, tmp_path, modes=("before",),
                                  stride=50)
    data = report.to_jsonable()
    assert data["schema_version"] == 1
    assert data["points_checked"] == len(report.points)
    assert data["ok"] is True
    json.dumps(data)  # must be JSON-clean for the CI artifact


def test_explore_rejects_bad_arguments(tmp_path):
    with pytest.raises(ValueError):
        explore_crash_points(MICRO, tmp_path, modes=("sideways",))
    with pytest.raises(ValueError):
        explore_crash_points(MICRO, tmp_path, crash_action="meteor")
    with pytest.raises(ValueError):
        explore_crash_points(MICRO, tmp_path, stride=0)
