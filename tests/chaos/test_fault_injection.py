"""FaultyFS fault semantics, schedule determinism, and persist hardening."""

import errno
import json

import pytest

from repro.chaos import ChaosCrash, FaultSchedule, FaultSpec, FaultyFS
from repro.chaos.testing import faulty_fs
from repro.errors import ConfigError, PersistError
from repro.persist import (
    atomic_append_jsonl,
    atomic_write_json,
    atomic_write_text,
    read_jsonl,
    read_jsonl_report,
    use_fs,
)


# ---------------------------------------------------------------------------
# FaultyFS fault kinds
# ---------------------------------------------------------------------------

def test_passthrough_records_every_op(tmp_path):
    with faulty_fs() as fs:
        atomic_write_text(tmp_path / "a.txt", "hello")
    ops = [rec.op for rec in fs.ops]
    # temp open + write + fsync + replace + parent-dir open + parent fsync
    assert ops == ["open", "write", "fsync", "replace", "open", "fsync"]
    assert (tmp_path / "a.txt").read_text() == "hello"


def test_enospc_on_write_surfaces_partial_byte_count(tmp_path):
    spec = FaultSpec(kind="enospc", op="write")
    with faulty_fs(spec):
        with pytest.raises(PersistError) as err:
            atomic_write_text(tmp_path / "a.txt", "hello")
    assert err.value.errno == errno.ENOSPC
    assert err.value.partial_bytes == 0
    # The atomic write never exposes a partial target file.
    assert not (tmp_path / "a.txt").exists()


def test_short_write_is_retried_to_completion(tmp_path):
    # Every write is cut in half, repeatedly; the persist loop must keep
    # re-issuing the remainder until the payload is fully on disk.
    spec = FaultSpec(kind="short", op="write", once=False)
    with faulty_fs(spec) as fs:
        atomic_append_jsonl(tmp_path / "a.jsonl", {"payload": "x" * 64})
    assert read_jsonl(tmp_path / "a.jsonl") == [{"payload": "x" * 64}]
    assert sum(1 for rec in fs.ops if rec.op == "write") > 1


def test_eio_on_fsync_propagates(tmp_path):
    spec = FaultSpec(kind="eio", op="fsync")
    with faulty_fs(spec):
        with pytest.raises(OSError) as err:
            atomic_write_text(tmp_path / "a.txt", "hello")
    assert err.value.errno == errno.EIO


def test_crash_freezes_the_disk(tmp_path):
    with pytest.raises(ChaosCrash):
        with faulty_fs(crash_at=3):
            atomic_write_text(tmp_path / "a.txt", "first")
            atomic_write_text(tmp_path / "b.txt", "second")
    # Ops 0-2 are a.txt's temp open/write/fsync; the crash lands before the
    # replace, so neither target file ever appears...
    assert not (tmp_path / "a.txt").exists()
    assert not (tmp_path / "b.txt").exists()


def test_dead_fs_rejects_all_later_mutations(tmp_path):
    fs = FaultyFS(crash_at=0)
    with pytest.raises(ChaosCrash):
        with use_fs(fs):
            atomic_write_text(tmp_path / "a.txt", "x")
    assert fs.dead
    with pytest.raises(ChaosCrash):
        with use_fs(fs):
            atomic_write_text(tmp_path / "b.txt", "y")


def test_torn_write_leaves_a_half_payload(tmp_path):
    target = tmp_path / "a.jsonl"
    atomic_append_jsonl(target, {"complete": 1})
    size_before = target.stat().st_size
    with pytest.raises(ChaosCrash):
        with faulty_fs(crash_at=1, crash_mode="torn"):
            # op 0 is the append's open; op 1 the write, now half-delivered.
            atomic_append_jsonl(target, {"doomed": "x" * 80})
    torn_size = target.stat().st_size
    assert size_before < torn_size < size_before + 82
    report = read_jsonl_report(target)
    assert report.records == [{"complete": 1}]
    assert report.torn_tail and report.skipped_interior == 0


def test_next_append_heals_a_torn_tail(tmp_path):
    target = tmp_path / "a.jsonl"
    atomic_append_jsonl(target, {"complete": 1})
    with pytest.raises(ChaosCrash):
        with faulty_fs(crash_at=1, crash_mode="torn"):
            atomic_append_jsonl(target, {"doomed": True})
    atomic_append_jsonl(target, {"after": 2})
    # The torn fragment is truncated away, never promoted to an interior
    # line: the journal reads clean end to end.
    report = read_jsonl_report(target)
    assert report.records == [{"complete": 1}, {"after": 2}]
    assert report.clean


def test_interior_corruption_is_reported_not_swallowed(tmp_path, caplog):
    target = tmp_path / "a.jsonl"
    target.write_text('{"a": 1}\nnot json at all\n{"b": 2}\n',
                      encoding="utf-8")
    with caplog.at_level("WARNING", logger="repro.persist"):
        report = read_jsonl_report(target)
    assert report.records == [{"a": 1}, {"b": 2}]
    assert report.skipped_interior == 1
    assert not report.torn_tail
    assert not report.clean
    assert any("corruption" in r.getMessage() for r in caplog.records)


# ---------------------------------------------------------------------------
# Schedules
# ---------------------------------------------------------------------------

def _ops_after(schedule, tmp_path, name="a.jsonl"):
    fs = FaultyFS(schedule=schedule)
    with use_fs(fs):
        for i in range(6):
            try:
                atomic_append_jsonl(tmp_path / name, {"i": i})
            except (OSError, PersistError):
                pass
    return fs


def test_spec_nth_counts_matching_ops_only(tmp_path):
    spec = FaultSpec(kind="eio", op="fsync", nth=3)
    schedule = FaultSchedule(specs=[spec])
    _ops_after(schedule, tmp_path)
    injected = schedule.injected_summary()
    assert [e["kind"] for e in injected] == ["eio"]
    assert injected[0]["op"] == "fsync"


def test_spec_once_retires_after_first_fire(tmp_path):
    always = FaultSpec(kind="eio", op="fsync", once=False)
    one_shot = FaultSpec(kind="eio", op="fsync", once=True)
    assert len(_ops_after(FaultSchedule(specs=[always]),
                          tmp_path).schedule.injected) == 6
    assert len(_ops_after(FaultSchedule(specs=[one_shot]),
                          tmp_path, "b.jsonl").schedule.injected) == 1


def test_rate_faults_replay_from_the_seed(tmp_path):
    def run(seed, name):
        schedule = FaultSchedule(rates={"eio": 0.4}, seed=seed)
        _ops_after(schedule, tmp_path, name)
        return [
            (e["kind"], e["index"], e["op"])
            for e in schedule.injected_summary()
        ]

    first = run(7, "a.jsonl")
    again = run(7, "b.jsonl")
    other = run(8, "c.jsonl")
    assert first == again
    assert first  # 0.4 over ~18 ops: statistically certain to fire
    assert first != other


def test_schedule_round_trips_through_json(tmp_path):
    schedule = FaultSchedule(
        specs=[FaultSpec(kind="enospc", op="write", path_substring="x",
                         nth=2, once=False)],
        rates={"eio": 0.1},
        rate_paths=("status",),
        seed=9,
    )
    plan_path = tmp_path / "plan.json"
    atomic_write_json(plan_path, schedule.to_jsonable())
    loaded = FaultSchedule.load(plan_path)
    assert loaded.to_jsonable() == schedule.to_jsonable()


def test_schedule_validation():
    with pytest.raises(ConfigError):
        FaultSpec(kind="lightning")
    with pytest.raises(ConfigError):
        FaultSchedule(rates={"eio": 1.5})
    with pytest.raises(ConfigError):
        FaultSchedule(rates={"eio": 0.6, "enospc": 0.6})
    with pytest.raises(ConfigError):
        FaultSchedule.load("/nonexistent/plan.json")


def test_faulty_fs_rejects_specs_and_schedule_together():
    with pytest.raises(ValueError):
        with faulty_fs(FaultSpec(kind="eio"), schedule=FaultSchedule()):
            pass


# ---------------------------------------------------------------------------
# JSON write atomicity under injected faults
# ---------------------------------------------------------------------------

def test_failed_json_write_leaves_previous_content(tmp_path):
    target = tmp_path / "status.json"
    atomic_write_json(target, {"generation": 1})
    spec = FaultSpec(kind="enospc", op="write")
    with faulty_fs(spec):
        with pytest.raises(PersistError):
            atomic_write_json(target, {"generation": 2})
    assert json.loads(target.read_text(encoding="utf-8")) == {"generation": 1}
    # No orphaned temp file survives the failed attempt either.
    assert [p.name for p in tmp_path.iterdir()] == ["status.json"]
