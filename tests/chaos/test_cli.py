"""Exit-code and wiring tests for the ``python -m repro.chaos`` CLI."""

import json

from repro.chaos.__main__ import main


def test_explore_samples_and_writes_report(tmp_path, capsys):
    report_path = tmp_path / "report.json"
    rc = main([
        "explore", "--work-dir", str(tmp_path / "work"),
        "--seeds", "1", "--no-failing-cell",
        "--modes", "before", "--stride", "25",
        "--report", str(report_path),
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "all recovered" in out
    data = json.loads(report_path.read_text(encoding="utf-8"))
    assert data["ok"] is True
    assert data["points_checked"] >= 1


def test_inject_survivable_fault_exits_zero(tmp_path, capsys):
    rc = main([
        "inject", "--work-dir", str(tmp_path / "work"),
        "--seeds", "1", "--no-failing-cell",
        "--fault", "enospc::status.json",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "campaign survived" in out
    assert "enospc" in out
    assert (tmp_path / "work" / "aggregate.csv").exists()


def test_inject_fatal_fault_exits_one(tmp_path, capsys):
    rc = main([
        "inject", "--work-dir", str(tmp_path / "work"),
        "--seeds", "1", "--no-failing-cell",
        "--fault", "eio:fsync:checkpoint.jsonl",
    ])
    out = capsys.readouterr().out
    assert rc == 1
    assert "campaign died" in out


def test_inject_rate_schedule_is_reported(tmp_path, capsys):
    main([
        "inject", "--work-dir", str(tmp_path / "work"),
        "--seeds", "1", "--no-failing-cell",
        "--rate", "eio=0.0",  # rate layer armed, but never fires
    ])
    out = capsys.readouterr().out
    assert "injected faults: none" in out
    assert "campaign survived" in out


def test_bad_inputs_exit_two(tmp_path, capsys):
    work = str(tmp_path / "work")
    assert main(["inject", "--work-dir", work, "--fault", "meteor"]) == 2
    assert main(["inject", "--work-dir", work, "--fault", "eio:a:b:c:d"]) == 2
    assert main(["inject", "--work-dir", work, "--rate", "eio=lots"]) == 2
    assert main(["inject", "--work-dir", work,
                 "--schedule", str(tmp_path / "absent.json")]) == 2
    capsys.readouterr()
