"""Unit tests for the Trickle timer."""

import random

import pytest

from repro.errors import ConfigError
from repro.sim.engine import Simulator
from repro.trickle.timer import TrickleTimer


def _trickle(sim, fires, i_min=1.0, i_max=8.0, k=1, seed=1):
    return TrickleTimer(
        sim, lambda: fires.append(sim.now), random.Random(seed),
        i_min=i_min, i_max=i_max, redundancy_k=k,
    )


def test_fires_in_second_half_of_interval():
    sim = Simulator()
    fires = []
    t = _trickle(sim, fires)
    t.start()
    sim.run(until=1.0)
    assert len(fires) == 1
    assert 0.5 <= fires[0] <= 1.0


def test_interval_doubles_up_to_max():
    sim = Simulator()
    fires = []
    t = _trickle(sim, fires, i_min=1.0, i_max=4.0)
    t.start()
    sim.run(until=0.99)
    assert t.interval == 1.0
    sim.run(until=1.01)
    assert t.interval == 2.0
    sim.run(until=3.01)
    assert t.interval == 4.0
    sim.run(until=30.0)
    assert t.interval == 4.0  # capped


def test_consistent_messages_suppress_fire():
    sim = Simulator()
    fires = []
    t = _trickle(sim, fires, k=1)
    t.start()
    # Hear a consistent advertisement before the fire point of every interval.
    def chatter():
        t.heard_consistent()
        sim.schedule(0.4, chatter)
    sim.schedule(0.01, chatter)
    sim.run(until=20.0)
    assert fires == []


def test_redundancy_threshold():
    sim = Simulator()
    fires = []
    t = _trickle(sim, fires, k=3)
    t.start()
    t.heard_consistent()
    t.heard_consistent()  # only 2 < k=3: still fires
    sim.run(until=1.0)
    assert len(fires) == 1


def test_inconsistency_resets_interval():
    sim = Simulator()
    fires = []
    t = _trickle(sim, fires, i_min=1.0, i_max=64.0)
    t.start()
    sim.run(until=7.5)  # interval has grown past i_min
    assert t.interval > 1.0
    t.heard_inconsistent()
    assert t.interval == 1.0
    before = len(fires)
    sim.run(until=8.5)
    assert len(fires) > before  # fast gossip resumed


def test_inconsistent_at_min_interval_does_not_restart():
    sim = Simulator()
    fires = []
    t = _trickle(sim, fires, i_min=1.0, i_max=64.0)
    t.start()
    first_event_count = sim.pending_events
    t.heard_inconsistent()  # already at i_min: no reset churn
    assert sim.pending_events == first_event_count


def test_stop_halts_fires():
    sim = Simulator()
    fires = []
    t = _trickle(sim, fires)
    t.start()
    sim.run(until=1.0)
    t.stop()
    count = len(fires)
    sim.run(until=50.0)
    assert len(fires) == count
    assert not t.running


def test_restart_after_stop():
    sim = Simulator()
    fires = []
    t = _trickle(sim, fires, i_min=1.0, i_max=64.0)
    t.start()
    sim.run(until=10.0)
    t.stop()
    t.start()
    assert t.interval == 1.0


def test_start_idempotent():
    sim = Simulator()
    fires = []
    t = _trickle(sim, fires)
    t.start()
    pending = sim.pending_events
    t.start()
    assert sim.pending_events == pending


def test_validation():
    sim = Simulator()
    with pytest.raises(ConfigError):
        TrickleTimer(sim, lambda: None, random.Random(1), i_min=0.0)
    with pytest.raises(ConfigError):
        TrickleTimer(sim, lambda: None, random.Random(1), i_min=5.0, i_max=1.0)
    with pytest.raises(ConfigError):
        TrickleTimer(sim, lambda: None, random.Random(1), redundancy_k=0)
