"""Helpers for protocol-level tests: small networks on perfect/lossy channels."""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolTiming
from repro.core.image import CodeImage
from repro.experiments.runner import CompletionTracker, run_network
from repro.experiments.scenarios import build_protocol_network, make_params
from repro.net.channel import BernoulliLoss
from repro.net.radio import Radio, RadioConfig
from repro.net.topology import star_topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


class ProtocolHarness:
    """A ready-to-run one-hop network for a given protocol."""

    def __init__(self, protocol, receivers=4, loss=0.0, image_size=3000,
                 k=8, n=12, seed=5, collisions=False):
        self.protocol = protocol
        self.rngs = RngRegistry(seed)
        self.sim = Simulator()
        self.trace = TraceRecorder()
        topo = star_topology(receivers)
        self.radio = Radio(self.sim, topo, BernoulliLoss(loss), self.rngs,
                           self.trace, config=RadioConfig(collisions=collisions))
        self.params = make_params(protocol, image_size=image_size, k=k, n=n)
        self.image = CodeImage.synthetic(image_size, version=2, seed=seed)
        self.tracker = CompletionTracker(self.trace)
        self.base, self.nodes, self.pre = build_protocol_network(
            protocol, self.sim, self.radio, self.rngs, self.trace,
            self.params, self.image, self.tracker,
        )

    def run(self, max_time=3600.0):
        self.base.start()
        return run_network(self.sim, self.trace, self.tracker, self.nodes,
                           self.protocol, max_time=max_time,
                           expected_image=self.image.data)


@pytest.fixture
def harness():
    return ProtocolHarness
