"""The flag-gated hardening layer: config, guard mechanics, end-to-end."""

import pytest

from repro.attacks import AttackSpec
from repro.core.image import CodeImage
from repro.errors import ConfigError
from repro.experiments.adversarial import AdversarialScenario, build_adversarial, run_adversarial
from repro.experiments.scenarios import make_params
from repro.faults.plan import FaultEvent, FaultKind
from repro.net.channel import NoLoss
from repro.net.radio import Radio, RadioConfig
from repro.net.topology import star_topology
from repro.obs.invariants import check_events
from repro.protocols.defense import DEFENSE_FLAGS, DefenseConfig, NeighborGuard
from repro.protocols.lr_seluge import build_lr_seluge_network
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


# -- DefenseConfig -----------------------------------------------------------

def test_from_flags_parsing():
    assert DefenseConfig.from_flags("none") is None
    assert DefenseConfig.from_flags("off") is None
    assert DefenseConfig.from_flags("") is None
    allon = DefenseConfig.from_flags("all")
    assert allon.enabled_flags == tuple(DEFENSE_FLAGS)
    partial = DefenseConfig.from_flags("rate_limit, replay-filter")
    assert partial.rate_limit and partial.replay_filter
    assert not partial.backoff and not partial.stall_watchdog
    with pytest.raises(ConfigError):
        DefenseConfig.from_flags("rate_limit,warp_drive")


def test_labels_and_roundtrip():
    assert DefenseConfig().label == "none"
    assert DefenseConfig.all_on().label == "all"
    cfg = DefenseConfig(backoff=True, stall_watchdog=True, backoff_cap_s=4.0)
    assert cfg.label == "backoff+stall_watchdog"
    again = DefenseConfig.from_dict(cfg.to_dict())
    assert again == cfg


def test_config_validation():
    with pytest.raises(ConfigError):
        DefenseConfig(bucket_capacity=0.0)
    with pytest.raises(ConfigError):
        DefenseConfig(backoff_factor=0.5)
    with pytest.raises(ConfigError):
        DefenseConfig(stall_min_s=10.0, stall_max_s=5.0)


# -- NeighborGuard mechanics --------------------------------------------------

class _Clock:
    def __init__(self):
        self.now = 0.0


def _guard(**overrides):
    cfg = DefenseConfig(rate_limit=True, replay_filter=True,
                        bucket_capacity=2.0, bucket_refill_per_s=0.5,
                        quarantine_strikes=2, quarantine_duration_s=10.0,
                        **overrides)
    clock = _Clock()
    return NeighborGuard(cfg, clock, TraceRecorder(), node_id=1), clock


def test_token_bucket_strikes_then_quarantines():
    guard, clock = _guard()
    assert guard.admit_snack(9)
    assert guard.admit_snack(9)
    assert not guard.admit_snack(9)     # bucket empty: strike 1
    assert not guard.quarantined(9)
    assert not guard.admit_snack(9)     # strike 2 -> quarantine
    assert guard.quarantined(9)
    clock.now = 10.5                    # past quarantine_duration_s
    assert not guard.quarantined(9)
    assert guard.trace.counters["defense_quarantine"] == 1


def test_token_bucket_refills_and_forgives():
    guard, clock = _guard()
    assert guard.admit_snack(9) and guard.admit_snack(9)
    assert not guard.admit_snack(9)     # one strike
    clock.now = 4.0                     # 0.5/s refill -> back to capacity
    assert guard.admit_snack(9)         # full refill forgave the strike
    assert not guard.quarantined(9)


def test_honest_pacing_never_quarantined():
    guard, clock = _guard()
    for i in range(50):
        clock.now = i * 3.0             # one SNACK per 3 s vs 0.5/s refill
        assert guard.admit_snack(7)
    assert not guard.quarantined(7)


def test_replay_window_keys_on_identity_and_sender():
    guard, clock = _guard()
    identity = (2, 0, 3, 0, (1, 1))
    assert not guard.snack_replayed(identity, sender=3)  # first sighting
    assert not guard.snack_replayed(identity, sender=3)  # same sender: not a replay
    assert guard.snack_replayed(identity, sender=9)      # relayed verbatim: replay
    assert guard.data_replayed(("d", 0, 1), sender=3) is False
    assert guard.data_replayed(("d", 0, 1), sender=3) is True


def test_replay_window_is_bounded():
    guard, clock = _guard(replay_capacity=4)
    for i in range(10):
        guard.snack_replayed(("id", i), sender=2)
    assert len(guard._seen) <= 4


# -- protocol integration -----------------------------------------------------

def _scenario(**kwargs):
    defaults = dict(protocol="lr-seluge", topology="star:4", image_size=2048,
                    k=4, n=6, seed=1, max_time=1500.0)
    defaults.update(kwargs)
    return AdversarialScenario(**defaults)


def test_disabled_defense_matches_no_defense_exactly():
    """An all-off DefenseConfig must not perturb a single counter or draw."""
    off = run_adversarial(_scenario(defense=None))
    zero = run_adversarial(_scenario(defense=DefenseConfig()))
    assert zero.latency == off.latency
    assert zero.counters == off.counters


def test_backoff_delay_grows_and_caps():
    sim = Simulator()
    rngs = RngRegistry(3)
    trace = TraceRecorder()
    radio = Radio(sim, star_topology(2), NoLoss(), rngs, trace,
                  config=RadioConfig(collisions=False))
    defense = DefenseConfig(backoff=True, backoff_factor=2.0,
                            backoff_cap_s=6.0, backoff_jitter=0.25)
    params = make_params("lr-seluge", image_size=2048, k=4, n=6)
    image = CodeImage.synthetic(2048, version=2, seed=3)
    _base, nodes, _pre = build_lr_seluge_network(
        sim, radio, rngs, trace, params, image=image, defense=defense)
    node = nodes[0]
    base_timeout = node.timing.request_timeout
    node._request_tries = 1
    assert node._request_retry_delay() == base_timeout  # first retry: unchanged
    delays = []
    for tries in range(2, 12):
        node._request_tries = tries
        delays.append(node._request_retry_delay())
    assert delays[0] > base_timeout
    assert max(delays) <= 6.0 * 1.25  # cap plus jitter spread
    assert trace.counters["defense_backoff_applied"] == len(delays)


def test_stall_watchdog_rotates_after_base_crash():
    # Crash the base mid-dissemination: stuck receivers must re-request.
    faults = (FaultEvent(8.0, FaultKind.NODE_CRASH, node=0),)
    result = run_adversarial(_scenario(
        defense=DefenseConfig(stall_watchdog=True, stall_min_s=3.0),
        faults=faults, max_time=400.0))
    assert result.counters["defense_stall_rerequest"] > 0


def test_rate_limit_quarantines_dor_flooder():
    """Satellite: the token bucket bounds the victim's serve count."""
    attack = (AttackSpec(kind="denial-of-receipt", start=1.0, period=0.2,
                         params={"victim": 1, "unit": 0, "n_packets": 12}),)
    # The undefended victim crawls home in ~2000s of simulated time; give
    # both runs headroom so the comparison is between completed runs.
    undefended = build_adversarial(_scenario(attacks=attack, max_time=3000.0))
    r_open = undefended.run()
    defended = build_adversarial(_scenario(
        attacks=attack, defense=DefenseConfig(rate_limit=True),
        max_time=3000.0))
    r_shut = defended.run()
    assert r_open.completed and r_shut.completed
    assert defended.trace.counters["defense_quarantine"] >= 1
    assert defended.trace.counters["defense_snack_rate_limited"] > 0
    # Battery drain plateaus: the served flood stops once quarantine bites.
    assert r_shut.counters["tx_data"] < r_open.counters["tx_data"]
    base_tx_open = undefended.flight.tx_frame_counts()[0]
    base_tx_shut = defended.flight.tx_frame_counts()[0]
    assert base_tx_shut < base_tx_open
    # The invariant holds: no quarantined neighbor was ever served.
    report = check_events(defended.log)
    assert report.checked["quarantine_respected"] > 0
    assert not report.of_invariant("quarantine_respected")


def test_replay_filter_drops_replayed_control():
    attack = (AttackSpec(kind="replay", start=1.0, period=0.3),)
    rig = build_adversarial(_scenario(
        attacks=attack, defense=DefenseConfig(replay_filter=True),
        max_time=2400.0))
    result = rig.run()
    assert result.completed
    assert rig.trace.counters["defense_replay_dropped"] > 0
    report = check_events(rig.log)
    assert not report.of_invariant("replay_never_rebuffered")


def test_attacker_crash_composes_with_fault_plan():
    """Satellite: a FaultPlan can kill an attacker mid-run; victims finish."""
    attack = (AttackSpec(kind="sybil-snack", start=1.0, period=0.3),)
    faults = (FaultEvent(10.0, FaultKind.NODE_CRASH, node=5),)  # the attacker
    rig = build_adversarial(_scenario(attacks=attack, faults=faults))
    result = rig.run()
    assert result.completed and result.images_ok
    attacker = rig.attackers[0]
    assert attacker.crashed
    sent_at_crash = attacker.sent
    rig.sim.run(until=rig.sim.now + 60.0)
    assert attacker.sent == sent_at_crash
