"""End-to-end tests for the Seluge baseline."""


def test_completes_with_verified_image(harness):
    result = harness("seluge", receivers=3).run()
    assert result.completed and result.images_ok


def test_completes_under_heavy_loss(harness):
    result = harness("seluge", receivers=3, loss=0.35, seed=9).run()
    assert result.completed and result.images_ok


def test_signature_transmitted_and_verified(harness):
    h = harness("seluge", receivers=3)
    result = h.run()
    assert result.counters.get("tx_signature", 0) >= 1
    for node in h.nodes:
        assert node.pipeline.stats["signature_verifications"] >= 1
        assert node.pipeline.root is not None


def test_every_data_packet_authenticated(harness):
    h = harness("seluge", receivers=2)
    h.run()
    for node in h.nodes:
        stats = node.pipeline.stats
        checks = stats["hash_checks"] + stats["merkle_checks"]
        assert checks > 0
        assert stats.get("rejected_packets", 0) == 0  # no forgeries present


def test_receivers_can_serve_each_other(harness):
    """Completed receivers hold exact packet sets and can re-serve them."""
    h = harness("seluge", receivers=2)
    h.run()
    node = h.nodes[0]
    for unit in h.pre.units[1:]:
        assert node.pipeline.serving_packets(unit.index) == unit.packets


def test_snack_suppression_active(harness):
    h = harness("seluge", receivers=8, loss=0.1, seed=3)
    result = h.run()
    assert result.completed
    assert result.counters.get("snack_suppressed", 0) > 0
