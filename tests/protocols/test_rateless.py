"""End-to-end tests for the Rateless Deluge baseline."""


def test_completes_on_perfect_channel(harness):
    result = harness("rateless", receivers=3).run()
    assert result.completed and result.images_ok


def test_completes_under_loss(harness):
    result = harness("rateless", receivers=4, loss=0.3, seed=17).run()
    assert result.completed and result.images_ok


def test_fresh_combinations_never_repeat(harness):
    """Every transmitted data packet index is unique (rateless property)."""
    import repro.net.radio as radio_mod

    h = harness("rateless", receivers=3, loss=0.2, seed=18)
    seen = []
    original = radio_mod.Radio.send

    def record(self, frame):
        if frame.kind.value == "data":
            seen.append((frame.sender, frame.payload.unit, frame.payload.index))
        original(self, frame)

    radio_mod.Radio.send = record
    try:
        result = h.run()
    finally:
        radio_mod.Radio.send = original
    assert result.completed
    assert len(seen) == len(set(seen))


def test_senders_use_disjoint_index_ranges(harness):
    from repro.protocols.rateless import _INDEX_STRIDE

    h = harness("rateless", receivers=2, loss=0.1, seed=19)
    result = h.run()
    assert result.completed
    # Serving nodes derive their combination indices from their node id.
    node = h.nodes[0]
    policy = node.make_tx_policy(0)
    assert policy._sched.next_index == node.node_id * _INDEX_STRIDE


def test_no_security_machinery(harness):
    h = harness("rateless", receivers=2)
    result = h.run()
    assert result.counters.get("tx_signature", 0) == 0
    for node in h.nodes:
        assert not node.pipeline.secured
