"""Tests for control-packet authentication (cluster and pairwise keys)."""

import pytest

from repro.core.image import CodeImage
from repro.core.packets import Advertisement, SnackRequest
from repro.crypto.keys import ClusterKey
from repro.experiments.runner import CompletionTracker, run_network
from repro.experiments.scenarios import make_params
from repro.net.channel import NoLoss
from repro.net.radio import Radio, RadioConfig
from repro.net.topology import star_topology
from repro.protocols.attacks import ControlForger
from repro.protocols.control_auth import (
    ClusterAuthenticator,
    PairwiseAuthenticator,
    make_authenticator,
)
from repro.protocols.lr_seluge import build_lr_seluge_network
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

SECRET = b"cluster-secret-1"


def _adv(units=3):
    return Advertisement(version=2, units_complete=units, total_units=10)


def _snack(requester=3, server=0):
    return SnackRequest(version=2, unit=4, requester=requester, server=server,
                        needed=(0, 1, 5))


def test_cluster_roundtrip():
    a = ClusterAuthenticator(1, ClusterKey(SECRET))
    b = ClusterAuthenticator(2, ClusterKey(SECRET))
    adv = _adv()
    assert b.check_adv(adv, a.tag_adv(adv), sender=1)
    snack = _snack()
    assert b.check_snack(snack, a.tag_snack(snack), sender=3)


def test_cluster_rejects_wrong_key():
    a = ClusterAuthenticator(1, ClusterKey(SECRET))
    outsider = ClusterAuthenticator(9, ClusterKey(b"other-secret-xyz"))
    adv = _adv()
    assert not a.check_adv(adv, outsider.tag_adv(adv), sender=9)


def test_cluster_rejects_tampered_content():
    a = ClusterAuthenticator(1, ClusterKey(SECRET))
    tag = a.tag_adv(_adv(units=3))
    assert not a.check_adv(_adv(units=9), tag, sender=1)


def test_pairwise_roundtrip_and_source_binding():
    requester = PairwiseAuthenticator(3, ClusterKey(SECRET))
    server = PairwiseAuthenticator(0, ClusterKey(SECRET))
    snack = _snack(requester=3, server=0)
    tag = requester.tag_snack(snack)
    assert server.check_snack(snack, tag, sender=3)
    # A compromised node 7 replaying node 3's SNACK is rejected: the claimed
    # requester does not match the actual sender.
    assert not server.check_snack(snack, tag, sender=7)


def test_pairwise_rejects_spoofed_requester():
    """A compromised insider cannot SNACK in another node's name."""
    insider = PairwiseAuthenticator(7, ClusterKey(SECRET))
    server = PairwiseAuthenticator(0, ClusterKey(SECRET))
    spoofed = _snack(requester=3, server=0)  # claims to be node 3
    tag = insider._cluster.pairwise(7, 0).tag(b"whatever")
    assert not server.check_snack(spoofed, tag, sender=7)


def test_make_authenticator_modes():
    assert make_authenticator(None, 1, SECRET) is None
    assert make_authenticator("none", 1, SECRET) is None
    assert isinstance(make_authenticator("cluster", 1, SECRET), ClusterAuthenticator)
    assert isinstance(make_authenticator("pairwise", 1, SECRET), PairwiseAuthenticator)
    with pytest.raises(ValueError):
        make_authenticator("quantum", 1, SECRET)


def _network_under_control_forgery(control_auth):
    sim = Simulator()
    rngs = RngRegistry(6)
    trace = TraceRecorder()
    topo = star_topology(4)
    radio = Radio(sim, topo, NoLoss(), rngs, trace,
                  config=RadioConfig(collisions=False))
    params = make_params("lr-seluge", image_size=2500, k=8, n=12)
    image = CodeImage.synthetic(2500, version=2, seed=6)
    tracker = CompletionTracker(trace)
    base, nodes, pre = build_lr_seluge_network(
        sim, radio, rngs, trace, params, image=image,
        receiver_ids=[1, 2, 3], on_complete=tracker,
        control_auth=control_auth,
    )
    attacker = ControlForger(4, sim, radio, rngs, trace, period=0.3,
                             total_units=pre.total_units, n_packets=12)
    attacker.start()
    base.start()
    result = run_network(sim, trace, tracker, nodes, "lr-seluge",
                         max_time=1800.0, expected_image=image.data)
    return result, trace, attacker


def test_forged_control_rejected_with_auth():
    result, trace, attacker = _network_under_control_forgery("cluster")
    assert result.completed and result.images_ok
    assert attacker.sent > 0
    rejects = (trace.counters.get("ctrl_auth_reject_adv", 0)
               + trace.counters.get("ctrl_auth_reject_snack", 0))
    assert rejects > 0


def test_forged_control_processed_without_auth():
    result, trace, attacker = _network_under_control_forgery(None)
    # Without MACs the forged control packets are processed (the attack
    # surface the cluster key closes); dissemination may still complete.
    assert trace.counters.get("ctrl_auth_reject_adv", 0) == 0
    assert trace.counters.get("attack_forged_control", 0) > 0


def test_legit_dissemination_unaffected_by_pairwise_auth():
    sim = Simulator()
    rngs = RngRegistry(7)
    trace = TraceRecorder()
    topo = star_topology(3)
    radio = Radio(sim, topo, NoLoss(), rngs, trace,
                  config=RadioConfig(collisions=False))
    params = make_params("lr-seluge", image_size=2500, k=8, n=12)
    image = CodeImage.synthetic(2500, version=2, seed=7)
    tracker = CompletionTracker(trace)
    base, nodes, pre = build_lr_seluge_network(
        sim, radio, rngs, trace, params, image=image,
        on_complete=tracker, control_auth="pairwise",
    )
    base.start()
    result = run_network(sim, trace, tracker, nodes, "lr-seluge",
                         max_time=1800.0, expected_image=image.data)
    assert result.completed and result.images_ok
    assert trace.counters.get("ctrl_auth_reject_snack", 0) == 0