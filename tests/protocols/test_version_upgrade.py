"""Image-version upgrades: the operation code dissemination exists for."""

import dataclasses

import pytest

from repro.core.config import ImageConfig
from repro.core.image import CodeImage
from repro.core.preprocess import DelugePreprocessor, LRSelugePreprocessor
from repro.crypto.ecdsa import generate_keypair
from repro.crypto.puzzle import MessageSpecificPuzzle
from repro.experiments.runner import CompletionTracker, run_network
from repro.experiments.scenarios import _BUILDERS, make_params
from repro.net.channel import BernoulliLoss
from repro.net.radio import Radio, RadioConfig
from repro.net.topology import star_topology
from repro.protocols.attacks import _AttackerNode
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


def _network(protocol, receivers=3, loss=0.1, image_size=2500, seed=6,
             attacker_slot=False):
    sim = Simulator()
    rngs = RngRegistry(seed)
    trace = TraceRecorder()
    topo = star_topology(receivers + (1 if attacker_slot else 0))
    radio = Radio(sim, topo, BernoulliLoss(loss), rngs, trace,
                  config=RadioConfig(collisions=False))
    params = make_params(protocol, image_size=image_size, k=8, n=12, version=2)
    image_v2 = CodeImage.synthetic(image_size, version=2, seed=seed)
    tracker = CompletionTracker(trace)
    base, nodes, pre = _BUILDERS[protocol](
        sim, radio, rngs, trace, params, image=image_v2,
        receiver_ids=list(range(1, receivers + 1)), on_complete=tracker)
    return sim, trace, tracker, base, nodes, params, image_v2


def _build_v3(protocol, params, image_size, seed, base, rngs_seed):
    image_v3 = CodeImage.synthetic(image_size, version=3, seed=seed + 100)
    params_v3 = dataclasses.replace(
        params, image=ImageConfig(image_size=image_size, version=3))
    if protocol == "lr-seluge":
        keypair = generate_keypair(rngs_seed)
        pre = LRSelugePreprocessor(
            params_v3, keypair, MessageSpecificPuzzle(difficulty=10)
        ).build(image_v3)
    else:
        pre = DelugePreprocessor(params_v3).build(image_v3)
    return image_v3, pre


@pytest.mark.parametrize("protocol", ["lr-seluge", "deluge"])
def test_upgrade_after_initial_dissemination(protocol):
    sim, trace, tracker, base, nodes, params, image_v2 = _network(protocol)
    base.start()
    result = run_network(sim, trace, tracker, nodes, protocol,
                         max_time=2400.0, expected_image=image_v2.data)
    assert result.completed

    image_v3, pre_v3 = _build_v3(protocol, params, 2500, 6, base, rngs_seed=6)
    base.publish_image(pre_v3)
    limit = sim.now + 2400.0
    while sim.now < limit and not all(
        n.complete and (n.pipeline.version or 0) == 3 for n in nodes
    ):
        sim.run(until=sim.now + 5.0)
    for node in nodes:
        assert node.pipeline.version == 3
        assert node.complete
        assert node.image_bytes() == image_v3.data


def test_upgrade_mid_dissemination():
    """Publishing v3 while v2 is still spreading: everyone ends on v3."""
    protocol = "lr-seluge"
    sim, trace, tracker, base, nodes, params, image_v2 = _network(
        protocol, loss=0.2, image_size=4000)
    base.start()
    sim.run(until=8.0)  # v2 partially disseminated
    assert any(not n.complete for n in nodes)
    image_v3, pre_v3 = _build_v3(protocol, params, 4000, 6, base, rngs_seed=6)
    base.publish_image(pre_v3)
    limit = sim.now + 3600.0
    while sim.now < limit and not all(
        n.complete and (n.pipeline.version or 0) == 3 for n in nodes
    ):
        sim.run(until=sim.now + 5.0)
    for node in nodes:
        assert node.pipeline.version == 3
        assert node.image_bytes() == image_v3.data


class _VersionLiar(_AttackerNode):
    """Broadcasts advertisements claiming a bogus newer version."""

    def _attack_once(self):
        from repro.core.packets import Advertisement
        from repro.net.packet import FrameKind

        forged = Advertisement(version=99, units_complete=9, total_units=9)
        self.broadcast(FrameKind.ADV, 20, forged)
        self.sent += 1


def test_secure_nodes_ignore_forged_version_advertisements():
    """A version-99 advertisement must not reset secure nodes' state."""
    sim, trace, tracker, base, nodes, params, image_v2 = _network(
        "lr-seluge", receivers=3, attacker_slot=True)
    liar = _VersionLiar(4, sim, base.radio, RngRegistry(77), trace, period=0.5)
    liar.start()
    base.start()
    result = run_network(sim, trace, tracker, nodes, "lr-seluge",
                         max_time=2400.0, expected_image=image_v2.data)
    assert result.completed and result.images_ok
    for node in nodes:
        assert node.pipeline.version == 2  # never adopted the phantom v99


def test_deluge_wedged_by_forged_version_advertisement():
    """The insecure baseline trusts the forged version and stalls on it."""
    sim, trace, tracker, base, nodes, params, image_v2 = _network(
        "deluge", receivers=3, attacker_slot=True)
    liar = _VersionLiar(4, sim, base.radio, RngRegistry(78), trace, period=0.3)
    liar.start()
    base.start()
    result = run_network(sim, trace, tracker, nodes, "deluge",
                         max_time=600.0, expected_image=image_v2.data)
    # Nodes reset to "version 99" for which no data exists: v2 never finishes.
    assert not result.completed
    assert any((n.pipeline.version or 0) == 99 for n in nodes)
