"""Security experiments: the attacks of DESIGN.md E8 against real networks."""

from repro.core.image import CodeImage
from repro.experiments.runner import CompletionTracker, run_network
from repro.experiments.scenarios import build_protocol_network, make_params
from repro.net.channel import NoLoss
from repro.net.radio import Radio, RadioConfig
from repro.net.topology import star_topology
from repro.protocols.attacks import (
    BogusDataInjector,
    DenialOfReceiptAttacker,
    SignatureFlooder,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


def _attacked_network(protocol, attacker_cls, attacker_kwargs=None,
                      receivers=3, image_size=3000, seed=5,
                      snack_flood_threshold=None, base_start_delay=0.0):
    sim = Simulator()
    rngs = RngRegistry(seed)
    trace = TraceRecorder()
    # Reserve the highest node id for the attacker.
    topo = star_topology(receivers + 1)
    radio = Radio(sim, topo, NoLoss(), rngs, trace,
                  config=RadioConfig(collisions=False))
    params = make_params(protocol, image_size=image_size, k=8, n=12)
    image = CodeImage.synthetic(image_size, version=2, seed=seed)
    tracker = CompletionTracker(trace)
    builder_kwargs = {}
    if protocol in ("seluge", "lr-seluge") and snack_flood_threshold is not None:
        builder_kwargs["snack_flood_threshold"] = snack_flood_threshold
    from repro.experiments.scenarios import _BUILDERS
    attacker_id = receivers + 1
    base, nodes, pre = _BUILDERS[protocol](
        sim, radio, rngs, trace, params, image=image,
        receiver_ids=list(range(1, receivers + 1)),
        on_complete=tracker, **builder_kwargs,
    )
    attacker = attacker_cls(attacker_id, sim, radio, rngs, trace,
                            **(attacker_kwargs or {}))
    attacker.start()
    if base_start_delay:
        sim.schedule(base_start_delay, base.start)
    else:
        base.start()
    result = run_network(sim, trace, tracker, nodes, protocol,
                         max_time=2400.0, expected_image=image.data)
    return result, nodes, attacker, trace


def test_lr_seluge_rejects_bogus_data():
    result, nodes, attacker, trace = _attacked_network(
        "lr-seluge", BogusDataInjector, {"period": 0.3},
    )
    assert result.completed
    assert result.images_ok  # integrity preserved
    assert attacker.sent > 0
    rejected = sum(
        node.pipeline.stats.get("rejected_packets", 0)
        + node.pipeline.stats.get("rejected_no_expectation", 0)
        + node.pipeline.stats.get("rejected_no_root", 0)
        for node in nodes
    )
    assert rejected > 0  # forgeries were seen and dropped on arrival


def test_seluge_rejects_bogus_data():
    result, nodes, attacker, trace = _attacked_network(
        "seluge", BogusDataInjector, {"period": 0.3},
    )
    assert result.completed and result.images_ok


def test_deluge_is_vulnerable_to_pollution():
    """The insecure baseline accepts forged packets: integrity is lost."""
    result, nodes, attacker, trace = _attacked_network(
        "deluge", BogusDataInjector, {"period": 0.05, "payload_size": 72},
        seed=8,
    )
    # Either some node assembled a corrupted image, or dissemination wedged.
    assert (result.images_ok is False) or not result.completed


def test_signature_flooder_filtered_by_puzzle():
    # Flood before the legitimate signature arrives: nodes without the root
    # must puzzle-check (one hash) every forgery but never run ECDSA on one.
    result, nodes, attacker, trace = _attacked_network(
        "lr-seluge", SignatureFlooder, {"period": 0.2},
        base_start_delay=10.0,
    )
    assert result.completed and result.images_ok
    assert attacker.sent > 10
    for node in nodes:
        stats = node.pipeline.stats
        # Every forged signature packet costs one cheap puzzle check...
        assert stats["puzzle_checks"] > 1
        # ...but at most ~one expensive ECDSA verification ever runs.
        assert stats["signature_verifications"] <= 2


def test_denial_of_receipt_bounded_by_counter():
    result, nodes, attacker, trace = _attacked_network(
        "lr-seluge", DenialOfReceiptAttacker,
        {"period": 0.5, "victim": 0, "unit": 2, "n_packets": 12},
        snack_flood_threshold=5,
    )
    assert result.completed
    assert trace.counters.get("snack_ignored_flood", 0) > 0


def test_denial_of_receipt_unbounded_without_mitigation():
    result, nodes, attacker, trace = _attacked_network(
        "lr-seluge", DenialOfReceiptAttacker,
        {"period": 0.5, "victim": 0, "unit": 2, "n_packets": 12},
        snack_flood_threshold=None,
    )
    assert result.completed
    assert trace.counters.get("snack_ignored_flood", 0) == 0
    # The victim keeps serving the attacker: wasted transmissions accrue.
    assert trace.counters.get("attack_dor_snack", 0) > 10
