"""Tests of the shared MAINTAIN/RX/TX machinery through real networks."""

import pytest

from repro.core.packets import SnackRequest
from repro.net.packet import FrameKind


def test_single_receiver_completes_on_perfect_channel(harness):
    h = harness("lr-seluge", receivers=1)
    result = h.run()
    assert result.completed
    assert result.images_ok
    node = h.nodes[0]
    assert node.complete
    assert node.units_complete == h.pre.total_units
    assert node.completion_time > 0


def test_base_station_starts_complete(harness):
    h = harness("lr-seluge", receivers=1)
    assert h.base.complete
    assert h.base.units_complete == h.pre.total_units
    assert h.base.completion_time == 0.0


def test_completion_callback_invoked_once_per_node(harness):
    h = harness("seluge", receivers=3)
    result = h.run()
    assert result.completed
    assert set(result.per_node_completion) == {n.node_id for n in h.nodes}


def test_receivers_learn_neighbor_progress(harness):
    h = harness("deluge", receivers=2)
    h.run()
    node = h.nodes[0]
    assert node._neighbor_progress.get(0) == h.pre.total_units


def test_no_loss_means_minimal_data_transmissions(harness):
    """On a perfect channel every distinct packet is sent at most ~once."""
    h = harness("seluge", receivers=3)
    result = h.run()
    distinct = h.pre.data_packet_count() + 1  # + signature
    assert result.data_packets <= distinct * 1.25


def test_snack_flood_mitigation_bounds_service():
    """With the Section IV-E counter, repeated SNACKs are eventually ignored."""
    from repro.core.image import CodeImage
    from repro.experiments.runner import CompletionTracker
    from repro.net.channel import NoLoss
    from repro.net.radio import Radio, RadioConfig
    from repro.net.topology import star_topology
    from repro.protocols.seluge import build_seluge_network
    from repro.experiments.scenarios import make_params
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngRegistry
    from repro.sim.trace import TraceRecorder

    sim = Simulator()
    rngs = RngRegistry(3)
    trace = TraceRecorder()
    topo = star_topology(2)
    radio = Radio(sim, topo, NoLoss(), rngs, trace, config=RadioConfig(collisions=False))
    params = make_params("seluge", image_size=2000, k=8)
    image = CodeImage.synthetic(2000, version=2, seed=1)
    tracker = CompletionTracker(trace)
    base, nodes, pre = build_seluge_network(
        sim, radio, rngs, trace, params, image=image,
        on_complete=tracker, snack_flood_threshold=3,
    )
    # Node 1 behaves normally; node 2's pipeline is crippled so it keeps
    # requesting the same unit forever (a denial-of-receipt attacker).
    base.start()
    for node in nodes:
        node.start()
    attacker = nodes[1]
    victim_unit = 2

    def spam():
        request = SnackRequest(version=2, unit=victim_unit, requester=attacker.node_id,
                               server=0, needed=tuple(range(8)))
        attacker.broadcast(FrameKind.SNACK, 20, request, dest=0)
        sim.schedule(0.5, spam)

    sim.schedule(5.0, spam)
    sim.run(until=120.0)
    assert trace.counters.get("snack_ignored_flood", 0) > 0


def test_trickle_advertisements_continue_after_completion(harness):
    h = harness("deluge", receivers=2)
    h.run()
    before = h.trace.counters["tx_adv"]
    h.sim.run(until=h.sim.now + 300.0)
    assert h.trace.counters["tx_adv"] > before


def test_version_field_propagates(harness):
    h = harness("lr-seluge", receivers=1)
    h.run()
    assert h.nodes[0].pipeline.version == h.image.version
