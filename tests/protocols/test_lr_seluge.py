"""End-to-end tests for LR-Seluge (the paper's contribution)."""

import pytest


def test_completes_with_verified_image(harness):
    result = harness("lr-seluge", receivers=3).run()
    assert result.completed and result.images_ok


def test_completes_under_heavy_loss(harness):
    result = harness("lr-seluge", receivers=4, loss=0.4, seed=13).run()
    assert result.completed and result.images_ok


def test_receiver_decodes_without_all_packets(harness):
    """Loss forces nodes to decode pages from proper subsets of the n packets."""
    h = harness("lr-seluge", receivers=3, loss=0.3, seed=4)
    result = h.run()
    assert result.completed
    for node in h.nodes:
        assert node.pipeline.stats["decode_ops"] >= h.pre.total_units - 2


def test_serving_regenerates_exact_packets(harness):
    h = harness("lr-seluge", receivers=2, loss=0.2, seed=6)
    h.run()
    node = h.nodes[0]
    for unit in h.pre.units[1:]:
        assert node.pipeline.serving_packets(unit.index) == unit.packets


def test_beats_seluge_under_loss(harness):
    """The paper's headline: fewer data packets in lossy environments.

    Uses k=16 pages: with tiny k the per-page erasure overhead (k' - k and
    the in-page hash budget) dominates and hides the loss-resilience gain.
    """
    kwargs = dict(receivers=10, loss=0.3, image_size=8000, k=16, n=24, seed=21)
    lr = harness("lr-seluge", **kwargs).run()
    seluge = harness("seluge", **kwargs).run()
    assert lr.completed and seluge.completed
    assert lr.data_packets < seluge.data_packets
    assert lr.latency < seluge.latency


def test_costs_more_than_seluge_without_loss(harness):
    """...and the flip side: slightly more expensive on clean channels."""
    lr = harness("lr-seluge", receivers=4, loss=0.0, seed=22).run()
    seluge = harness("seluge", receivers=4, loss=0.0, seed=22).run()
    assert lr.data_packets > seluge.data_packets


def test_union_scheduler_ablation_still_completes(harness):
    h = harness("lr-seluge", receivers=3, loss=0.2, seed=7)
    for node in [h.base] + h.nodes:
        node.scheduler_kind = "union"
    result = h.run()
    assert result.completed and result.images_ok


def test_snack_bitvector_sized_for_n(harness):
    """LR-Seluge SNACKs carry n bits (n-k more than Seluge's k bits)."""
    h = harness("lr-seluge", receivers=2, loss=0.1, seed=8)
    result = h.run()
    n_bytes_lr = h.params.wire.snack_size(h.params.n)
    assert result.counters["tx_snack_bytes"] >= result.counters["tx_snack"] * (
        h.params.wire.snack_size(h.params.n0)
    )
    assert n_bytes_lr > h.params.wire.snack_size(h.params.k)


def test_kprime_mds_variant(harness):
    h = harness("lr-seluge", receivers=2, loss=0.2, seed=9)
    # Rebuild with k' = k (true MDS behaviour of the Reed-Solomon code).
    from repro.experiments.scenarios import make_params
    assert h.params.resolved_kprime == h.params.k + 2
    mds_params = make_params("lr-seluge", image_size=3000, k=8, n=12, kprime=8)
    assert mds_params.resolved_kprime == 8
