"""End-to-end tests for the Deluge baseline."""


def test_completes_on_perfect_channel(harness):
    result = harness("deluge", receivers=3).run()
    assert result.completed and result.images_ok


def test_completes_under_loss(harness):
    result = harness("deluge", receivers=4, loss=0.2, seed=11).run()
    assert result.completed and result.images_ok


def test_no_signature_traffic(harness):
    h = harness("deluge", receivers=2)
    result = h.run()
    assert result.counters.get("tx_signature", 0) == 0


def test_unit_count_is_page_count(harness):
    h = harness("deluge", receivers=1)
    assert h.pre.total_units == h.params.num_pages()
    result = h.run()
    assert result.completed


def test_loss_increases_cost(harness):
    clean = harness("deluge", receivers=3, seed=2).run()
    lossy = harness("deluge", receivers=3, loss=0.3, seed=2).run()
    assert lossy.completed
    assert lossy.data_packets > clean.data_packets
    assert lossy.latency > clean.latency
