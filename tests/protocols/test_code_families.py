"""LR-Seluge over every implemented erasure-code family.

The paper's design is code-agnostic (any fixed-rate k-n-k' code works); the
implementation must disseminate correctly whether the code is MDS (RS),
probabilistically MDS (RLC), or sparse/dense XOR with real reception
overhead (LT, Tornado).
"""

import pytest

from repro.core.config import ImageConfig, LRSelugeParams
from repro.core.image import CodeImage
from repro.experiments.runner import CompletionTracker, run_network
from repro.net.channel import BernoulliLoss
from repro.net.radio import Radio, RadioConfig
from repro.net.topology import star_topology
from repro.protocols.lr_seluge import build_lr_seluge_network
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


def _run(kind, loss=0.2, seed=4):
    rngs = RngRegistry(seed)
    sim = Simulator()
    trace = TraceRecorder()
    topo = star_topology(4)
    radio = Radio(sim, topo, BernoulliLoss(loss), rngs, trace,
                  config=RadioConfig(collisions=False))
    params = LRSelugeParams(k=16, n=24, code_kind=kind,
                            image=ImageConfig(image_size=5000, version=2))
    image = CodeImage.synthetic(5000, version=2, seed=seed)
    tracker = CompletionTracker(trace)
    base, nodes, pre = build_lr_seluge_network(
        sim, radio, rngs, trace, params, image=image, on_complete=tracker)
    base.start()
    result = run_network(sim, trace, tracker, nodes, f"lr-{kind}",
                         max_time=2400.0, expected_image=image.data)
    return result, nodes


@pytest.mark.parametrize("kind", ["rs", "rlc", "lt", "tornado"])
def test_dissemination_completes_with_verified_images(kind):
    result, nodes = _run(kind)
    assert result.completed
    assert result.images_ok


def test_mds_code_is_cheapest():
    """RS needs the fewest packets; XOR codes pay their reception overhead."""
    costs = {kind: _run(kind)[0].data_packets for kind in ("rs", "lt", "tornado")}
    assert costs["rs"] <= costs["tornado"] <= costs["lt"] * 1.2


def test_xor_codes_survive_rank_deficient_receptions():
    """Decode failures at k' received must retry, not wedge (regression)."""
    result, nodes = _run("lt", loss=0.3, seed=9)
    assert result.completed
    failures = sum(n.pipeline.stats.get("decode_failures", 0) for n in nodes)
    assert failures >= 0  # failures may occur; completion is what matters
