"""Unit tests for random linear codes (fixed-rate and rateless)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.erasure.rlc import RandomLinearCode
from repro.errors import CodingError, DecodeError


def _blocks(k, size=16, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size=size, dtype=np.uint8).tobytes() for _ in range(k)]


def test_systematic_prefix():
    code = RandomLinearCode(4, 8, seed=1)
    blocks = _blocks(4)
    encoded = code.encode(blocks)
    assert encoded[:4] == blocks


def test_default_kprime_has_overhead():
    code = RandomLinearCode(8, 12)
    assert code.kprime == 10  # k + 2


def test_decode_from_parity_combinations():
    code = RandomLinearCode(4, 10, seed=2)
    blocks = _blocks(4)
    encoded = code.encode(blocks)
    got = code.decode({i: encoded[i] for i in (4, 5, 6, 7, 8)})
    assert got == blocks


def test_rateless_indices_beyond_n():
    code = RandomLinearCode(4, 6, seed=3)
    blocks = _blocks(4)
    fresh = code.encode_indices(blocks, [100, 101, 102, 103, 104])
    got = code.decode({100 + i: fresh[i] for i in range(5)})
    assert got == blocks


def test_same_seed_same_rows_across_instances():
    a = RandomLinearCode(4, 8, seed=9, generation=2)
    b = RandomLinearCode(4, 8, seed=9, generation=2)
    for idx in (4, 7, 1000):
        assert np.array_equal(a.coefficient_row(idx), b.coefficient_row(idx))


def test_generations_differ():
    a = RandomLinearCode(4, 8, seed=9, generation=0)
    b = RandomLinearCode(4, 8, seed=9, generation=1)
    assert not np.array_equal(a.coefficient_row(5), b.coefficient_row(5))


def test_decodable_rank_check():
    code = RandomLinearCode(4, 8, seed=4)
    assert not code.decodable([0, 1, 2])
    assert code.decodable([0, 1, 2, 3])
    assert code.decodable([4, 5, 6, 7])


def test_insufficient_packets_rejected():
    code = RandomLinearCode(4, 8, seed=5)
    encoded = code.encode(_blocks(4))
    with pytest.raises(DecodeError):
        code.decode({0: encoded[0]})


def test_negative_index_rejected():
    code = RandomLinearCode(4, 8)
    with pytest.raises(CodingError):
        code.coefficient_row(-1)


def test_wrong_block_count_rejected():
    code = RandomLinearCode(4, 8)
    with pytest.raises(CodingError):
        code.encode(_blocks(5))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=10 ** 6))
def test_property_kplus2_random_combinations_decode(k, seed):
    """k+2 random (non-systematic) combinations decode w.h.p. over GF(256)."""
    code = RandomLinearCode(k, k + 2, seed=seed)
    blocks = _blocks(k, size=8, seed=seed % 1000)
    indices = list(range(k, k + 2)) + [1000 + i for i in range(k)]
    payloads = code.encode_indices(blocks, indices)
    received = dict(zip(indices, payloads))
    if code.decodable(indices):
        assert code.decode(received) == blocks
