"""Unit and property tests for GF(2^8) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.erasure.gf256 import GF256
from repro.errors import CodingError

elems = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


def test_mul_identity_and_zero():
    for a in range(256):
        assert GF256.mul(a, 1) == a
        assert GF256.mul(a, 0) == 0
        assert GF256.mul(0, a) == 0


@given(elems, elems)
def test_mul_commutative(a, b):
    assert GF256.mul(a, b) == GF256.mul(b, a)


@given(elems, elems, elems)
def test_mul_associative(a, b, c):
    assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))


@given(elems, elems, elems)
def test_distributive_over_xor(a, b, c):
    left = GF256.mul(a, b ^ c)
    right = GF256.mul(a, b) ^ GF256.mul(a, c)
    assert left == right


@given(nonzero)
def test_inverse(a):
    assert GF256.mul(a, GF256.inv(a)) == 1


@given(elems, nonzero)
def test_div_is_mul_by_inverse(a, b):
    assert GF256.div(a, b) == GF256.mul(a, GF256.inv(b))


def test_div_and_inv_by_zero_rejected():
    with pytest.raises(CodingError):
        GF256.div(5, 0)
    with pytest.raises(CodingError):
        GF256.inv(0)


def test_pow():
    assert GF256.pow(0, 0) == 1
    assert GF256.pow(0, 5) == 0
    assert GF256.pow(2, 8) == GF256.mul(GF256.pow(2, 4), GF256.pow(2, 4))
    with pytest.raises(CodingError):
        GF256.pow(0, -1)


@given(nonzero)
def test_pow_negative_is_inverse_power(a):
    assert GF256.pow(a, -1) == GF256.inv(a)


def test_generator_order_255():
    seen = set()
    value = 1
    for _ in range(255):
        seen.add(value)
        value = GF256.mul(value, 2)
    assert len(seen) == 255
    assert value == 1  # full cycle


@given(elems, st.binary(min_size=1, max_size=64))
def test_scale_vec_matches_scalar_mul(scalar, data):
    vec = np.frombuffer(data, dtype=np.uint8)
    out = GF256.scale_vec(scalar, vec)
    assert [int(x) for x in out] == [GF256.mul(scalar, int(v)) for v in vec]


@given(elems, st.binary(min_size=8, max_size=8), st.binary(min_size=8, max_size=8))
def test_addmul_vec(scalar, t, v):
    target = np.frombuffer(t, dtype=np.uint8).copy()
    vec = np.frombuffer(v, dtype=np.uint8)
    expect = [int(a) ^ GF256.mul(scalar, int(b)) for a, b in zip(target, vec)]
    GF256.addmul_vec(target, scalar, vec)
    assert [int(x) for x in target] == expect


def test_matmul_against_naive():
    rng = np.random.default_rng(1)
    a = rng.integers(0, 256, size=(4, 3), dtype=np.uint8)
    b = rng.integers(0, 256, size=(3, 10), dtype=np.uint8)
    fast = GF256.matmul(a, b)
    for i in range(4):
        for j in range(10):
            acc = 0
            for t in range(3):
                acc ^= GF256.mul(int(a[i, t]), int(b[t, j]))
            assert acc == int(fast[i, j])


def test_matmul_shape_mismatch():
    with pytest.raises(CodingError):
        GF256.matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((4, 5), dtype=np.uint8))


def test_vandermonde():
    v = GF256.vandermonde([1, 2, 3], 4)
    assert v.shape == (3, 4)
    for i, x in enumerate([1, 2, 3]):
        for j in range(4):
            assert int(v[i, j]) == GF256.pow(x, j)
