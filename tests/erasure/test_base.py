"""Unit tests for the erasure-code contract and helpers."""

import numpy as np
import pytest

from repro.erasure.base import array_to_blocks, blocks_to_array, make_code
from repro.erasure.rlc import RandomLinearCode
from repro.erasure.rs import ReedSolomonCode
from repro.errors import CodingError


def test_blocks_array_roundtrip():
    blocks = [b"abcd", b"efgh", b"ijkl"]
    arr = blocks_to_array(blocks)
    assert arr.shape == (3, 4)
    assert array_to_blocks(arr) == blocks


def test_blocks_to_array_rejects_empty():
    with pytest.raises(CodingError):
        blocks_to_array([])


def test_blocks_to_array_rejects_ragged():
    with pytest.raises(CodingError):
        blocks_to_array([b"abcd", b"ef"])


def test_factory_rs():
    code = make_code("rs", 8, 12)
    assert isinstance(code, ReedSolomonCode)
    assert (code.k, code.n, code.kprime) == (8, 12, 8)


def test_factory_rs_with_declared_overhead():
    code = make_code("rs", 8, 12, kprime=10)
    assert code.kprime == 10


def test_factory_rlc_default_overhead():
    code = make_code("rlc", 8, 12, seed=5)
    assert isinstance(code, RandomLinearCode)
    assert code.kprime == 10


def test_factory_unknown_kind():
    with pytest.raises(CodingError):
        make_code("fountain", 8, 12)


def test_contract_validation():
    with pytest.raises(CodingError):
        make_code("rs", 0, 4)
    with pytest.raises(CodingError):
        make_code("rs", 8, 4)
    with pytest.raises(CodingError):
        make_code("rs", 8, 12, kprime=7)  # below k


def test_can_attempt_decode_threshold():
    code = make_code("rs", 8, 12, kprime=9)
    assert not code.can_attempt_decode(8)
    assert code.can_attempt_decode(9)
    assert code.can_attempt_decode(12)
