"""Unit and property tests for the XOR-based codes (LT, Tornado)."""

import math
import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.erasure.base import make_code
from repro.erasure.lt import LTCode, robust_soliton
from repro.erasure.tornado import TornadoCode
from repro.erasure.xor_base import gf2_rank
from repro.errors import CodingError, DecodeError


def _blocks(k, size=16, seed=0):
    rnd = random.Random(seed)
    return [bytes(rnd.randrange(256) for _ in range(size)) for _ in range(k)]


# -- gf2 rank ------------------------------------------------------------------


def test_gf2_rank_basics():
    assert gf2_rank([]) == 0
    assert gf2_rank([0b001, 0b010, 0b100]) == 3
    assert gf2_rank([0b011, 0b011]) == 1
    assert gf2_rank([0b011, 0b101, 0b110]) == 2  # third = XOR of first two


@given(st.lists(st.integers(min_value=1, max_value=2 ** 16 - 1), max_size=20))
def test_gf2_rank_bounded(masks):
    r = gf2_rank(masks)
    assert 0 <= r <= min(len(masks), 16)


# -- robust soliton -------------------------------------------------------------


def test_robust_soliton_is_distribution():
    for k in (1, 2, 8, 32, 100):
        dist = robust_soliton(k)
        assert len(dist) == k
        assert all(p >= 0 for p in dist)
        assert sum(dist) == pytest.approx(1.0)


def test_robust_soliton_favours_small_degrees():
    dist = robust_soliton(64)
    assert dist[1] == max(dist[1:])  # degree 2 dominates beyond degree 1


def test_robust_soliton_validation():
    with pytest.raises(CodingError):
        robust_soliton(0)


# -- codes ------------------------------------------------------------------------


@pytest.mark.parametrize("cls", [LTCode, TornadoCode])
def test_roundtrip_from_full_set(cls):
    code = cls(8, 16, seed=5)
    blocks = _blocks(8)
    encoded = code.encode(blocks)
    assert code.decode({i: encoded[i] for i in range(16)}) == blocks


@pytest.mark.parametrize("cls", [LTCode, TornadoCode])
def test_roundtrip_from_decodable_subsets(cls):
    code = cls(8, 16, seed=6)
    blocks = _blocks(8, seed=2)
    encoded = code.encode(blocks)
    rnd = random.Random(7)
    for _ in range(10):
        order = list(range(16))
        rnd.shuffle(order)
        received = {}
        for idx in order:
            received[idx] = encoded[idx]
            if len(received) >= 8 and code.decodable(list(received)):
                break
        assert code.decode(received) == blocks


def test_tornado_is_systematic():
    code = TornadoCode(8, 14, seed=1)
    blocks = _blocks(8, seed=3)
    encoded = code.encode(blocks)
    assert encoded[:8] == blocks


def test_masks_deterministic_across_instances():
    a = LTCode(16, 24, seed=9, generation=4)
    b = LTCode(16, 24, seed=9, generation=4)
    assert [a.symbol_mask(i) for i in range(24)] == [b.symbol_mask(i) for i in range(24)]
    ta = TornadoCode(16, 24, seed=9)
    tb = TornadoCode(16, 24, seed=9)
    assert [ta.symbol_mask(i) for i in range(24)] == [tb.symbol_mask(i) for i in range(24)]


def test_generations_differ():
    a = LTCode(16, 24, seed=9, generation=0)
    b = LTCode(16, 24, seed=9, generation=1)
    assert [a.symbol_mask(i) for i in range(24)] != [b.symbol_mask(i) for i in range(24)]


@pytest.mark.parametrize("cls", [LTCode, TornadoCode])
def test_full_symbol_set_always_spans(cls):
    for seed in range(12):
        code = cls(10, 14, seed=seed)
        assert code.decodable(list(range(14))), f"seed {seed} not full rank"


@pytest.mark.parametrize("cls", [LTCode, TornadoCode])
def test_insufficient_symbols_rejected(cls):
    code = cls(8, 16, seed=5)
    encoded = code.encode(_blocks(8))
    with pytest.raises(DecodeError):
        code.decode({0: encoded[0]})


def test_rank_deficient_set_rejected():
    code = TornadoCode(8, 16, seed=5)
    blocks = _blocks(8)
    encoded = code.encode(blocks)
    # Eight copies of information from only 4 systematic symbols.
    received = {i: encoded[i] for i in range(4)}
    received.update({i: encoded[i] for i in range(4)})
    with pytest.raises(DecodeError):
        code.decode(received)


def test_declared_kprime_exceeds_k():
    assert LTCode(32, 48).kprime > 32
    assert TornadoCode(32, 48).kprime > 32


def test_empirical_overhead_positive_and_reasonable():
    tornado = TornadoCode(32, 48, seed=1)
    overhead = tornado.empirical_overhead(trials=100)
    assert 0.0 < overhead < 6.0
    lt = LTCode(32, 48, seed=1)
    assert 0.0 < lt.empirical_overhead(trials=100) < 15.0


def test_factory_kinds():
    assert isinstance(make_code("lt", 8, 16), LTCode)
    assert isinstance(make_code("tornado", 8, 16), TornadoCode)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=10 ** 6))
def test_property_tornado_roundtrips(k, seed):
    n = k + max(2, k // 2)
    code = TornadoCode(k, n, seed=seed)
    blocks = _blocks(k, size=8, seed=seed % 97)
    encoded = code.encode(blocks)
    assert code.decode({i: encoded[i] for i in range(n)}) == blocks
