"""Unit and property tests for GF(256) linear algebra."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.erasure.gf256 import GF256
from repro.erasure.matrix import gf_invert, gf_rank, gf_rref, gf_solve
from repro.errors import DecodeError


def test_rank_identity():
    assert gf_rank(np.eye(5, dtype=np.uint8)) == 5


def test_rank_zero_matrix():
    assert gf_rank(np.zeros((3, 4), dtype=np.uint8)) == 0


def test_rank_dependent_rows():
    a = np.array([[1, 2, 3], [2, 4, 6], [0, 0, 1]], dtype=np.uint8)
    # Row 2 = 2 * row 1 over GF(256): 2*2=4, 2*3=6 — dependent.
    assert gf_rank(a) == 2


def test_invert_identity():
    inv = gf_invert(np.eye(4, dtype=np.uint8))
    assert np.array_equal(inv, np.eye(4, dtype=np.uint8))


def test_invert_roundtrip():
    rng = np.random.default_rng(7)
    while True:
        a = rng.integers(0, 256, size=(5, 5), dtype=np.uint8)
        if gf_rank(a) == 5:
            break
    inv = gf_invert(a)
    assert np.array_equal(GF256.matmul(a, inv), np.eye(5, dtype=np.uint8))


def test_invert_singular_rejected():
    a = np.array([[1, 2], [2, 4]], dtype=np.uint8)
    with pytest.raises(DecodeError):
        gf_invert(a)


def test_invert_non_square_rejected():
    with pytest.raises(DecodeError):
        gf_invert(np.zeros((2, 3), dtype=np.uint8))


def test_solve_exact_system():
    rng = np.random.default_rng(3)
    a = rng.integers(0, 256, size=(4, 4), dtype=np.uint8)
    while gf_rank(a) < 4:
        a = rng.integers(0, 256, size=(4, 4), dtype=np.uint8)
    x = rng.integers(0, 256, size=(4, 16), dtype=np.uint8)
    b = GF256.matmul(a, x)
    solved = gf_solve(a, b)
    assert np.array_equal(solved, x)


def test_solve_overdetermined_consistent():
    rng = np.random.default_rng(4)
    a = rng.integers(0, 256, size=(6, 4), dtype=np.uint8)
    while gf_rank(a) < 4:
        a = rng.integers(0, 256, size=(6, 4), dtype=np.uint8)
    x = rng.integers(0, 256, size=(4, 8), dtype=np.uint8)
    b = GF256.matmul(a, x)
    assert np.array_equal(gf_solve(a, b), x)


def test_solve_rank_deficient_rejected():
    a = np.array([[1, 2], [2, 4], [3, 6]], dtype=np.uint8)
    b = np.zeros((3, 4), dtype=np.uint8)
    with pytest.raises(DecodeError):
        gf_solve(a, b)


def test_solve_shape_mismatch_rejected():
    with pytest.raises(DecodeError):
        gf_solve(np.eye(3, dtype=np.uint8), np.zeros((4, 2), dtype=np.uint8))


def test_rref_reports_rank_and_mirrors_augment():
    a = np.array([[0, 1], [1, 0]], dtype=np.uint8)
    aug = np.array([[10], [20]], dtype=np.uint8)
    rref, reduced, rank = gf_rref(a, aug)
    assert rank == 2
    assert np.array_equal(rref, np.eye(2, dtype=np.uint8))
    assert np.array_equal(reduced, np.array([[20], [10]], dtype=np.uint8))


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_property_solve_recovers_random_systems(k, seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 256, size=(k + 2, k), dtype=np.uint8)
    if gf_rank(a) < k:
        return  # rare for random matrices; nothing to assert
    x = rng.integers(0, 256, size=(k, 4), dtype=np.uint8)
    b = GF256.matmul(a, x)
    assert np.array_equal(gf_solve(a, b), x)
