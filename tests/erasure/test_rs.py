"""Unit and property tests for the systematic Reed-Solomon code."""

import itertools
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.erasure.gf256 import GF256
from repro.erasure.matrix import gf_rank
from repro.erasure.rs import ReedSolomonCode
from repro.errors import CodingError, DecodeError


def _blocks(k, size=16, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size=size, dtype=np.uint8).tobytes() for _ in range(k)]


def test_systematic_prefix():
    code = ReedSolomonCode(4, 8)
    blocks = _blocks(4)
    encoded = code.encode(blocks)
    assert encoded[:4] == blocks
    assert len(encoded) == 8


def test_rate_and_redundancy():
    code = ReedSolomonCode(4, 10)
    assert code.rate == 2.5
    assert code.redundancy == 6
    assert code.kprime == 4


def test_decode_from_systematic_subset():
    code = ReedSolomonCode(4, 8)
    blocks = _blocks(4)
    encoded = code.encode(blocks)
    assert code.decode({i: encoded[i] for i in range(4)}) == blocks


def test_decode_from_parity_only():
    code = ReedSolomonCode(4, 8)
    blocks = _blocks(4)
    encoded = code.encode(blocks)
    assert code.decode({i: encoded[i] for i in (4, 5, 6, 7)}) == blocks


def test_mds_every_k_subset_decodes():
    """The MDS property, exhaustively for a small code."""
    code = ReedSolomonCode(3, 6)
    blocks = _blocks(3, seed=5)
    encoded = code.encode(blocks)
    for subset in itertools.combinations(range(6), 3):
        got = code.decode({i: encoded[i] for i in subset})
        assert got == blocks, f"subset {subset} failed"


def test_extra_packets_ignored_gracefully():
    code = ReedSolomonCode(4, 8)
    blocks = _blocks(4)
    encoded = code.encode(blocks)
    assert code.decode({i: encoded[i] for i in range(6)}) == blocks


def test_too_few_packets_rejected():
    code = ReedSolomonCode(4, 8)
    encoded = code.encode(_blocks(4))
    with pytest.raises(DecodeError):
        code.decode({0: encoded[0], 1: encoded[1]})


def test_parameter_validation():
    with pytest.raises(CodingError):
        ReedSolomonCode(0, 4)
    with pytest.raises(CodingError):
        ReedSolomonCode(8, 4)
    with pytest.raises(CodingError):
        ReedSolomonCode(8, 300)
    with pytest.raises(CodingError):
        ReedSolomonCode(8, 12, kprime=13)


def test_wrong_block_count_rejected():
    code = ReedSolomonCode(4, 8)
    with pytest.raises(CodingError):
        code.encode(_blocks(3))


def test_unequal_block_sizes_rejected():
    code = ReedSolomonCode(2, 4)
    with pytest.raises(CodingError):
        code.encode([b"aaaa", b"bb"])


def test_coefficient_rows_full_rank_everywhere():
    code = ReedSolomonCode(4, 10)
    rows = np.stack([code.coefficient_row(i) for i in range(10)])
    for subset in itertools.combinations(range(10), 4):
        assert gf_rank(rows[list(subset)]) == 4


def test_coefficient_row_bounds():
    code = ReedSolomonCode(4, 8)
    with pytest.raises(CodingError):
        code.coefficient_row(8)


def test_declared_kprime_gates_decode_attempts():
    code = ReedSolomonCode(4, 8, kprime=6)
    assert not code.can_attempt_decode(5)
    assert code.can_attempt_decode(6)


def test_rate_one_code():
    code = ReedSolomonCode(4, 4)
    blocks = _blocks(4)
    assert code.encode(blocks) == blocks
    assert code.decode({i: b for i, b in enumerate(blocks)}) == blocks


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=0, max_value=8),
    st.integers(min_value=0, max_value=2 ** 31 - 1),
)
def test_property_random_subsets_roundtrip(k, extra, seed):
    n = k + extra
    code = ReedSolomonCode(k, n)
    blocks = _blocks(k, size=8, seed=seed)
    encoded = code.encode(blocks)
    rng = np.random.default_rng(seed + 1)
    subset = rng.choice(n, size=k, replace=False)
    assert code.decode({int(i): encoded[int(i)] for i in subset}) == blocks
