"""AttackSpec / AttackPlan: validation, normalisation, JSON round-trips."""

import pytest

from repro.attacks import AttackPlan, AttackSpec
from repro.errors import ConfigError


def test_spec_defaults_and_kwargs():
    spec = AttackSpec(kind="reactive-jammer", params={"duty": 0.2, "burst_s": 1.0})
    assert spec.start == 0.1 and spec.period == 0.5 and spec.stop is None
    # Mapping params normalise to a sorted tuple (hashable, canonical).
    assert spec.params == (("burst_s", 1.0), ("duty", 0.2))
    assert spec.kwargs() == {"duty": 0.2, "burst_s": 1.0}
    hash(spec)  # frozen specs embed in frozen scenario dataclasses


@pytest.mark.parametrize("bad", [
    dict(kind=""),
    dict(kind="replay", start=-1.0),
    dict(kind="replay", period=0.0),
    dict(kind="replay", start=5.0, stop=5.0),
    dict(kind="replay", reach=0.0),
    dict(kind="replay", position=(1.0, 2.0, 3.0)),
])
def test_spec_validation(bad):
    with pytest.raises(ConfigError):
        AttackSpec(**bad)


def test_plan_builder_and_merge():
    plan = AttackPlan().attack("greyhole", drop_rate=0.5).attack(
        "sybil-snack", start=2.0, period=1.0)
    other = AttackPlan([AttackSpec(kind="replay")])
    merged = plan.merge(other)
    assert len(plan) == 2 and len(merged) == 3
    assert [s.kind for s in merged] == ["greyhole", "sybil-snack", "replay"]
    assert merged.specs[0].kwargs() == {"drop_rate": 0.5}


def test_plan_json_roundtrip(tmp_path):
    plan = (AttackPlan()
            .attack("reactive-jammer", start=0.5, period=0.25, duty=0.1)
            .attack("replay", stop=300.0, position=(1.0, 2.0), reach=6.0))
    again = AttackPlan.from_json(plan.to_json())
    assert again == plan
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json(), encoding="utf-8")
    assert AttackPlan.from_json_file(path) == plan


def test_plan_json_accepts_bare_list():
    plan = AttackPlan.from_json('[{"kind": "greyhole"}]')
    assert len(plan) == 1 and plan.specs[0].kind == "greyhole"


@pytest.mark.parametrize("text", ["not json", '{"attacks": 3}', '[{"start": 1}]'])
def test_plan_json_rejects_malformed(text):
    with pytest.raises(ConfigError):
        AttackPlan.from_json(text)
