"""Behavior of the engine-native attack models against live networks."""

import pytest

from repro.attacks import ATTACK_KINDS, resolve_kind
from repro.errors import ConfigError
from repro.obs.invariants import check_events


def test_registry_has_every_attack_kind():
    assert {
        "bogus-data", "signature-flood", "control-forge", "denial-of-receipt",
        "reactive-jammer", "greyhole", "replay", "sybil-snack",
    } <= set(ATTACK_KINDS)


def test_resolve_kind_rejects_unknown():
    with pytest.raises(ConfigError):
        resolve_kind("meteor-strike")


def test_legacy_module_docstring_documents_every_export():
    """Regression: repro.protocols.attacks documents everything it exports."""
    import repro.protocols.attacks as legacy

    for name in legacy.__all__:
        assert name in legacy.__doc__, f"{name} missing from module docstring"


def test_reactive_jammer_emits_jam_frames(adversarial_rig):
    rig = adversarial_rig("reactive-jammer", params={"duty": 0.15})
    result = rig.run()
    assert result.completed and result.images_ok
    assert rig.trace.counters["attack_jam"] > 0
    assert rig.trace.counters["tx_jam"] == rig.trace.counters["attack_jam"]


def test_reactive_jammer_respects_duty_cycle(adversarial_rig):
    duty, burst = 0.05, 0.5
    rig = adversarial_rig("reactive-jammer",
                          params={"duty": duty, "burst_s": burst})
    result = rig.run()
    airtime = rig.radio.config.airtime(96)
    spent = rig.trace.counters["attack_jam"] * airtime
    # The lazy budget can never exceed duty * elapsed plus one full burst.
    assert spent <= duty * result.latency + burst + airtime


def test_greyhole_serves_and_drops(adversarial_rig):
    # seed 2 gives the attacker enough SNACK traffic that the 50% coin
    # lands on both outcomes within the run.
    rig = adversarial_rig("greyhole", params={"drop_rate": 0.5}, period=1.0,
                          seed=2)
    result = rig.run()
    assert result.completed and result.images_ok
    assert rig.trace.counters["attack_greyhole_served"] > 0
    assert rig.trace.counters["attack_greyhole_dropped"] > 0


def test_replay_reinjects_but_never_rebuffers(adversarial_rig):
    rig = adversarial_rig("replay", period=0.3, max_time=2400.0)
    result = rig.run()
    assert result.completed and result.images_ok
    assert rig.trace.counters["attack_replayed"] > 0
    report = check_events(rig.log)
    assert report.checked["replay_never_rebuffered"] > 0
    assert not report.of_invariant("replay_never_rebuffered")


def test_sybil_inflates_serving_cost(adversarial_rig):
    baseline = adversarial_rig().run()
    rig = adversarial_rig("sybil-snack", period=0.3)
    result = rig.run()
    assert result.completed
    assert rig.trace.counters["attack_sybil_snack"] > 0
    # Forged identities fold into tracking tables: the network transmits
    # measurably more than the attack-free run of the same seed.
    assert result.total_bytes > 1.05 * baseline.total_bytes


def test_denial_of_receipt_runs_through_engine(adversarial_rig):
    rig = adversarial_rig("denial-of-receipt",
                          params={"victim": 1, "unit": 0, "n_packets": 12})
    result = rig.run()
    assert result.completed
    assert rig.trace.counters["attack_dor_snack"] > 0
