"""AttackEngine: placement, deployment, and lifecycle (halt on completion)."""

import pytest

from repro.attacks import AttackEngine, AttackPlan, AttackSpec
from repro.errors import ConfigError


def test_deploy_places_attacker_into_topology(adversarial_rig):
    rig = adversarial_rig("reactive-jammer")
    topo = rig.radio.topology
    assert list(rig.engine.attacker_ids) == [5]  # star:4 is nodes 0..4
    assert 5 in topo.positions
    assert topo.neighbors[5]  # audible to someone
    assert all(5 in topo.neighbors[v] for v in topo.neighbors[5])  # symmetric
    assert rig.trace.counters["attack_deployed"] == 1


def test_deploy_twice_raises(adversarial_rig):
    rig = adversarial_rig("replay")
    with pytest.raises(ConfigError):
        rig.engine.deploy()


def test_position_and_reach_bound_audibility(adversarial_rig):
    # Dropped on the base station with a 1 m reach: in a radius-5 star the
    # only node in range is the base itself.
    spec = AttackSpec(kind="reactive-jammer", position=(0.0, 0.0), reach=1.0)
    rig = adversarial_rig(attacks=(spec,))
    aid = rig.engine.attacker_ids[0]
    assert set(rig.radio.topology.neighbors[aid]) == {0}


def test_unreachable_placement_raises(adversarial_rig):
    spec = AttackSpec(kind="replay", position=(500.0, 500.0), reach=1.0)
    with pytest.raises(ConfigError):
        adversarial_rig(attacks=(spec,))


def test_attackers_halt_once_victims_complete(adversarial_rig):
    """Regression: attacker loops stop at completion — no further firings."""
    rig = adversarial_rig("sybil-snack", period=0.3)
    result = rig.run()
    assert result.completed
    attacker = rig.attackers[0]
    assert attacker.halted
    assert rig.trace.counters["attack_halted"] == 1
    sent = attacker.sent
    fired = rig.trace.counters["attack_sybil_snack"]
    events_before = rig.sim.processed_events
    rig.sim.run(until=rig.sim.now + 120.0)
    assert rig.sim.processed_events >= events_before  # sim kept going...
    assert attacker.sent == sent                      # ...the attacker didn't
    assert rig.trace.counters["attack_sybil_snack"] == fired


def test_stop_time_halts_attack_window(adversarial_rig):
    spec = AttackSpec(kind="sybil-snack", start=1.0, period=0.3, stop=5.0)
    rig = adversarial_rig(attacks=(spec,))
    rig.engine.start_all()
    rig.base.start()
    rig.sim.run(until=30.0)
    attacker = rig.attackers[0]
    assert attacker.halted
    assert 0 < attacker.sent <= 1 + int((5.0 - 1.0) / 0.3)


def test_halt_all_is_safe_on_crashed_attackers(adversarial_rig):
    rig = adversarial_rig("replay")
    attacker = rig.attackers[0]
    rig.engine.start_all()
    rig.sim.run(until=2.0)
    attacker.crash()
    rig.engine.halt_all()
    attacker.reboot()  # a later fault-plan reboot must not revive it
    sent = attacker.sent
    rig.sim.run(until=rig.sim.now + 20.0)
    assert attacker.halted and attacker.sent == sent


def test_attacker_is_audible_on_per_link_grids(adversarial_rig):
    """Regression: attacker links spliced into ``Topology.link_loss`` after
    radio construction must reach the live ``PerLinkLoss`` table — a copied
    map defaults the new links to 100% loss and silently isolates the
    adversary on every grid topology."""
    rig = adversarial_rig("sybil-snack", topology="grid:3x3:3", period=0.3,
                          max_time=2400.0)
    result = rig.run()
    assert result.completed
    attacker = rig.attackers[0]
    assert attacker.sent > 0  # it overheard adverts, so it fired
    assert result.counters["adv_frames_delivered"] > 0  # and victims heard it


def test_engine_plan_from_json(adversarial_rig):
    plan = AttackPlan().attack("greyhole", drop_rate=0.9)
    again = AttackPlan.from_json(plan.to_json())
    rig = adversarial_rig(attacks=again.specs)
    assert [a.kind for a in rig.attackers] == ["greyhole"]
