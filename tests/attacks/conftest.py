import pytest

from repro.attacks import AttackSpec
from repro.experiments.adversarial import AdversarialScenario, build_adversarial


@pytest.fixture
def adversarial_rig():
    """Factory: a small wired star-network rig with one optional attacker."""

    def make(kind=None, params=None, attacks=None, defense=None, faults=(),
             protocol="lr-seluge", topology="star:4", image_size=2048,
             k=4, n=6, seed=1, max_time=1500.0, start=1.0, period=0.4):
        if attacks is None:
            attacks = () if kind is None else (
                AttackSpec(kind=kind, start=start, period=period,
                           params=params or {}),)
        scenario = AdversarialScenario(
            protocol=protocol, topology=topology, image_size=image_size,
            k=k, n=n, seed=seed, max_time=max_time, attacks=tuple(attacks),
            defense=defense, faults=tuple(faults),
        )
        return build_adversarial(scenario)

    return make
