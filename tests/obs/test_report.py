"""Report renderings and the CI perf-smoke entry point."""

import json

import pytest

from repro.obs.events import EventLog
from repro.obs.manifest import RunManifest
from repro.obs.report import (
    bench_compare,
    diff_report,
    manifest_summary,
    run_perf_smoke,
    trace_summary,
)


def _manifest(**overrides):
    base = dict(
        tool="test.tool",
        seed=3,
        config={"protocol": "lr-seluge", "k": 8},
        metrics={"latency_s": 40.0, "completed": 1.0},
        timings={"wall_s": 0.25},
        counters={"tx_data": 120, "mystery_counter": 2},
    )
    base.update(overrides)
    return RunManifest(**base)


def test_manifest_summary_annotates_counters_from_the_catalogue():
    text = manifest_summary(_manifest())
    assert "tool:        test.tool" in text
    assert "protocol=lr-seluge" in text
    assert "latency_s=40" in text
    # Known counters carry unit + help; orphans are called out.
    assert "data packets transmitted" in text
    assert "(not in catalogue)" in text


def test_manifest_summary_includes_profile_table():
    profile = {"handlers": [{"name": "radio.Radio._finish", "calls": 10,
                             "total_s": 0.01, "mean_us": 1000.0,
                             "max_us": 2000.0}]}
    text = manifest_summary(_manifest(profile=profile))
    assert "event-loop profile" in text
    assert "radio.Radio._finish" in text


def test_diff_report_no_differences():
    text = diff_report(_manifest(), _manifest(), "base", "cand")
    assert "no differences" in text
    assert "base: test.tool" in text


def test_diff_report_renders_deltas():
    a = _manifest()
    b = _manifest(counters={"tx_data": 100, "mystery_counter": 2})
    text = diff_report(a, b)
    assert "1 differing quantities" in text
    assert "counters.tx_data" in text
    assert "-20" in text


def test_trace_summary_counts_kinds_and_spans(tmp_path):
    log = EventLog()
    log.instant(1.0, "tx_data", node=1)
    log.instant(2.0, "tx_data", node=2)
    log.begin(0.0, "span_page", node=1, key=0)
    log.end(4.0, "span_page", node=1, key=0)
    path = tmp_path / "run.trace.jsonl"
    log.write_jsonl(path)
    text = trace_summary(path)
    assert "3 events" in text
    assert "tx_data" in text
    assert "span_page" in text
    assert "4.0" in text  # the span's mean duration


def test_run_perf_smoke_writes_all_artifacts(tmp_path):
    bench_path = tmp_path / "BENCH_sim_core.json"
    manifest_path = tmp_path / "perf.manifest.json"
    trace_path = tmp_path / "perf.trace.jsonl"
    chrome_path = tmp_path / "perf.chrome.json"
    bench, report = run_perf_smoke(
        bench_path, manifest_out=manifest_path, trace_out=trace_path,
        chrome_out=chrome_path, seed=1, receivers=2, image_kib=4,
    )
    assert bench["name"] == "sim_core_perf_smoke"
    assert bench["completed"] is True
    assert bench["events"] > 0
    assert bench["events_per_s"] > 0
    assert len(bench["top_handlers"]) >= 1
    assert "event-loop profile" in report

    written = json.loads(bench_path.read_text())
    assert written["config"]["receivers"] == 2

    manifest = RunManifest.load(manifest_path)
    assert manifest.tool == "repro.obs.perf-smoke"
    assert manifest.metrics["completed"] == 1.0
    assert manifest.profile is not None
    assert manifest.trace_file == str(trace_path)

    from repro.obs.events import load_jsonl
    header, events = load_jsonl(trace_path)
    assert header["events"] == len(events) > 0
    chrome = json.loads(chrome_path.read_text())
    assert any(e["ph"] == "X" for e in chrome["traceEvents"])


def test_manifest_summary_warns_about_dropped_trace_records():
    text = manifest_summary(_manifest(counters={"trace_dropped": 7}))
    assert "WARNING: 7 trace records dropped" in text
    clean = manifest_summary(_manifest())
    assert "WARNING" not in clean


def test_trace_summary_reports_flushed_open_spans(tmp_path):
    log = EventLog()
    log.begin(1.0, "span_page", node=1, key=0)
    log.flush_open_spans(5.0)
    path = tmp_path / "run.trace.jsonl"
    log.write_jsonl(path)
    text = trace_summary(path)
    assert "1 open spans flushed" in text


def test_run_perf_smoke_repeats_report_the_median(tmp_path):
    bench_path = tmp_path / "BENCH.json"
    bench, _report = run_perf_smoke(bench_path, seed=1, receivers=2,
                                    image_kib=2, repeats=3)
    assert bench["repeats"] == 3
    assert len(bench["wall_samples_s"]) == 3
    # wall_samples_s is rounded for the artifact; events_per_s comes from
    # the unrounded median, so compare within rounding noise.
    median = sorted(bench["wall_samples_s"])[1]
    assert bench["events_per_s"] == pytest.approx(
        bench["events"] / median, rel=1e-3)


def test_bench_compare_gates_on_regression():
    base = {"events_per_s": 1000.0, "events": 500, "git_rev": "aaa"}
    same = {"events_per_s": 990.0, "events": 500, "git_rev": "bbb"}
    ok, text = bench_compare(same, base)
    assert ok and "PASS" in text

    slow = {"events_per_s": 700.0, "events": 500}
    ok, text = bench_compare(slow, base)
    assert not ok and "FAIL" in text

    # Speedups never fail: the baseline is a floor, not a pin.
    fast = {"events_per_s": 5000.0, "events": 500}
    ok, _ = bench_compare(fast, base)
    assert ok

    # Tolerance is adjustable.
    ok, _ = bench_compare(slow, base, tolerance=0.5)
    assert ok


def test_run_perf_smoke_warmup_and_history(tmp_path):
    bench_path = tmp_path / "BENCH.json"
    history_path = tmp_path / "history.jsonl"
    bench, _report = run_perf_smoke(
        bench_path, seed=1, receivers=2, image_kib=2, warmup=1,
        history_out=history_path,
    )
    assert bench["warmup"] == 1

    from repro.obs.perf import config_key, load_history
    records = load_history(history_path)
    assert len(records) == 1
    assert records[0]["events_per_s"] == bench["events_per_s"]
    assert records[0]["config_key"] == config_key(bench["config"])

    with pytest.raises(ValueError):
        run_perf_smoke(bench_path, warmup=-1)
    with pytest.raises(ValueError):
        run_perf_smoke(bench_path, repeats=0)


def test_run_perf_smoke_grid_topology(tmp_path):
    bench_path = tmp_path / "BENCH_grid.json"
    bench, report = run_perf_smoke(
        bench_path, seed=1, image_kib=2, topology="grid:3x3:2",
    )
    assert bench["name"] == "sim_grid_perf_smoke"
    assert bench["config"]["topology"] == "grid:3x3:2"
    assert "receivers" not in bench["config"]
    assert bench["completed"] is True
    assert "event-loop profile" in report


def test_run_perf_smoke_excludes_first_call_outliers(tmp_path):
    """Each handler's first call per repeat lands in the warmup bucket, so
    max_us reflects steady-state cost, not one-time lazy init."""
    bench, _report = run_perf_smoke(tmp_path / "BENCH.json", seed=1,
                                    receivers=2, image_kib=2)
    for handler in bench["top_handlers"]:
        # With warmup_calls=1 the steady-state call count excludes one call
        # per handler; a handler observed only once contributes no stats.
        assert handler["calls"] >= 1
        assert handler["max_us"] >= handler["mean_us"] > 0


def test_bench_compare_notes_workload_changes_and_empty_baselines(tmp_path):
    base = {"events_per_s": 1000.0, "events": 500}
    changed = {"events_per_s": 900.0, "events": 800}
    ok, text = bench_compare(changed, base)
    assert ok and "workload changed" in text

    ok, text = bench_compare(changed, {"events_per_s": 0.0})
    assert ok and "skipping gate" in text

    # File inputs round-trip like dicts do.
    cur_path = tmp_path / "cur.json"
    base_path = tmp_path / "base.json"
    cur_path.write_text(json.dumps(changed))
    base_path.write_text(json.dumps(base))
    ok, text = bench_compare(cur_path, base_path)
    assert ok and "ratio:" in text


def _bench_with_handlers(eps, handlers, events=500):
    return {
        "events_per_s": eps,
        "events": events,
        "top_handlers": [
            {"name": name, "calls": 10, "total_s": mean_us * 10 / 1e6,
             "mean_us": mean_us, "max_us": mean_us * 2}
            for name, mean_us in handlers
        ],
    }


def test_bench_compare_per_handler_warn_and_fail():
    base = _bench_with_handlers(1000.0, [("radio", 100.0), ("timer", 50.0)])

    warned = _bench_with_handlers(1000.0, [("radio", 140.0), ("timer", 50.0)])
    ok, text = bench_compare(warned, base)
    assert ok
    assert "WARN handler radio" in text
    assert "FAIL handler" not in text

    # A handler blowing through the fail limit sinks the gate even when the
    # aggregate throughput still passes.
    regressed = _bench_with_handlers(1000.0, [("radio", 200.0),
                                              ("timer", 50.0)])
    ok, text = bench_compare(regressed, base)
    assert not ok
    assert "FAIL handler radio" in text
    assert "+100%" in text

    # Speedups are never flagged.
    faster = _bench_with_handlers(1000.0, [("radio", 20.0), ("timer", 50.0)])
    ok, text = bench_compare(faster, base)
    assert ok and "handler" not in text.replace("per-handler", "")


def test_bench_compare_handler_gate_skipped_on_workload_change():
    base = _bench_with_handlers(1000.0, [("radio", 100.0)], events=500)
    changed = _bench_with_handlers(1000.0, [("radio", 500.0)], events=900)
    ok, text = bench_compare(changed, base)
    assert ok  # no per-handler comparison across different workloads
    assert "per-handler gate skipped (workload changed)" in text


def test_bench_compare_handler_limits_adjustable():
    base = _bench_with_handlers(1000.0, [("radio", 100.0)])
    hot = _bench_with_handlers(1000.0, [("radio", 160.0)])
    ok, text = bench_compare(hot, base, handler_fail=0.65)
    assert ok and "WARN handler radio" in text  # 60% > warn, < raised fail
    ok, text = bench_compare(hot, base, handler_warn=0.7, handler_fail=0.8)
    assert ok and "WARN handler" not in text
    ok, _text = bench_compare(hot, base, handler_fail=0.5)
    assert not ok


def test_run_perf_smoke_degrades_when_history_disk_fails(tmp_path):
    from repro.chaos.schedule import FaultSpec
    from repro.chaos.testing import faulty_fs

    bench_path = tmp_path / "BENCH.json"
    history_path = tmp_path / "history.jsonl"
    spec = FaultSpec(kind="enospc", path_substring="history.jsonl",
                     once=False)
    with faulty_fs(spec):
        bench, _report = run_perf_smoke(bench_path, seed=1, receivers=2,
                                        image_kib=2,
                                        history_out=history_path)
    # The measurement is intact and on disk; only the trajectory append is
    # noted as degraded.
    assert "no space left" in bench["history_degraded"]
    assert not history_path.exists()
    written = json.loads(bench_path.read_text())
    assert written["history_degraded"] == bench["history_degraded"]
    assert written["events"] > 0


def test_run_perf_smoke_appends_history_when_disk_is_healthy(tmp_path):
    bench_path = tmp_path / "BENCH.json"
    history_path = tmp_path / "history.jsonl"
    bench, _report = run_perf_smoke(bench_path, seed=1, receivers=2,
                                    image_kib=2, history_out=history_path)
    assert "history_degraded" not in bench
    from repro.obs.perf import load_history
    assert len(load_history(history_path)) == 1
