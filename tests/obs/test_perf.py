"""Performance observatory: history store, handler deltas, flame export."""

import json

import pytest

from repro.obs.perf import (
    append_history,
    bench_history_report,
    chrome_counter_events,
    collapsed_stacks,
    config_key,
    handler_mean_deltas,
    history_record,
    load_history,
    prune_history,
)


def bench(eps=1000.0, rev="aaa", handlers=None, **config_overrides):
    config = {"protocol": "lr-seluge", "receivers": 2, "image_kib": 4}
    config.update(config_overrides)
    return {
        "name": "sim_core_perf_smoke",
        "config": config,
        "git_rev": rev,
        "created_utc": "2026-08-08T00:00:00Z",
        "events": 500,
        "events_per_s": eps,
        "wall_s": 500.0 / eps,
        "repeats": 1,
        "heap": {"pending": 0},
        "top_handlers": handlers if handlers is not None else [
            {"name": "radio.Radio._finish", "calls": 100, "total_s": 0.02,
             "mean_us": 200.0, "max_us": 900.0},
        ],
    }


# ---------------------------------------------------------------------------
# Config keys and the history store
# ---------------------------------------------------------------------------

def test_config_key_is_sorted_and_value_sensitive():
    key = config_key({"b": 2, "a": 1})
    assert key == "a=1,b=2"
    assert config_key({"a": 1, "b": 2}) == key  # insertion order irrelevant
    assert config_key({"a": 1, "b": 3}) != key


def test_history_record_compacts_a_bench_dict():
    record = history_record(bench(eps=1234.5, rev="abc"))
    assert record["config_key"] == config_key(bench()["config"])
    assert record["events_per_s"] == 1234.5
    assert record["git_rev"] == "abc"
    assert record["handlers"][0]["name"] == "radio.Radio._finish"
    # Missing fields degrade to None/defaults, never KeyError.
    sparse = history_record({})
    assert sparse["name"] == "?"
    assert sparse["repeats"] == 1


def test_append_history_is_append_only(tmp_path):
    path = tmp_path / "history.jsonl"
    append_history(path, bench(eps=1000.0, rev="aaa"))
    first_bytes = path.read_bytes()
    append_history(path, bench(eps=1100.0, rev="bbb"))
    # The second append leaves the first record byte-identical in place.
    assert path.read_bytes().startswith(first_bytes)
    records = load_history(path)
    assert [r["git_rev"] for r in records] == ["aaa", "bbb"]
    assert [r["events_per_s"] for r in records] == [1000.0, 1100.0]


def test_load_history_tolerates_missing_file_and_torn_tail(tmp_path):
    assert load_history(tmp_path / "absent.jsonl") == []
    path = tmp_path / "history.jsonl"
    append_history(path, bench(rev="aaa"))
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"torn": ')  # simulated crash mid-append
    records = load_history(path)
    assert [r["git_rev"] for r in records] == ["aaa"]


# ---------------------------------------------------------------------------
# Per-handler deltas
# ---------------------------------------------------------------------------

def test_handler_mean_deltas_sorted_most_regressed_first():
    baseline = [
        {"name": "a", "mean_us": 100.0},
        {"name": "b", "mean_us": 200.0},
        {"name": "only_in_base", "mean_us": 50.0},
        {"name": "zero", "mean_us": 0.0},
    ]
    current = [
        {"name": "a", "mean_us": 150.0},   # +50%
        {"name": "b", "mean_us": 100.0},   # -50%
        {"name": "zero", "mean_us": 10.0},  # zero baseline: not comparable
        {"name": "only_in_cur", "mean_us": 5.0},
    ]
    deltas = handler_mean_deltas(current, baseline)
    assert [d[0] for d in deltas] == ["a", "b"]
    assert deltas[0][3] == 0.5
    assert deltas[1][3] == -0.5


# ---------------------------------------------------------------------------
# The trajectory report
# ---------------------------------------------------------------------------

def test_bench_history_report_renders_trajectory_and_baseline_verdict():
    history = [
        history_record(bench(eps=1000.0, rev="aaa")),
        history_record(bench(eps=800.0, rev="bbb", handlers=[
            {"name": "radio.Radio._finish", "calls": 100, "total_s": 0.03,
             "mean_us": 300.0, "max_us": 900.0},
        ])),
    ]
    text = bench_history_report(history, baseline=bench(eps=1000.0, rev="aaa"))
    assert "2 recorded run(s)" in text
    assert "-20.0%" in text                      # run 2 vs run 1
    assert "REGRESSION" in text                  # latest vs committed baseline
    assert "committed baseline (rev aaa)" in text
    assert "radio.Radio._finish" in text         # per-handler delta table
    assert "+50.0%" in text                      # 200us -> 300us


def test_bench_history_report_without_baseline_uses_previous_run():
    history = [
        history_record(bench(eps=1000.0, rev="aaa")),
        history_record(bench(eps=1500.0, rev="bbb")),
    ]
    text = bench_history_report(history)
    assert "previous run (rev aaa)" in text
    assert "improvement" in text


def test_bench_history_report_groups_and_filters_by_config():
    history = [
        history_record(bench(eps=1000.0, rev="aaa")),
        history_record(bench(eps=500.0, rev="bbb", receivers=16)),
    ]
    both = bench_history_report(history)
    assert both.count("recorded run(s)") == 2
    only = bench_history_report(history, config_filter="receivers=16")
    assert only.count("recorded run(s)") == 1
    assert bench_history_report(history, config_filter="nope") == (
        "no recorded runs"
    )


def test_bench_history_report_baseline_ignored_for_other_configs():
    history = [history_record(bench(eps=1000.0, rev="aaa", receivers=16))]
    text = bench_history_report(history, baseline=bench(eps=2000.0, rev="zzz"))
    # One run, different config from the baseline: no verdict to render.
    assert "committed baseline" not in text
    assert "REGRESSION" not in text


# ---------------------------------------------------------------------------
# Flamegraph / counter-track export
# ---------------------------------------------------------------------------

def test_prune_history_keeps_last_n_per_config(tmp_path):
    path = tmp_path / "history.jsonl"
    for rev in ("aaa", "bbb", "ccc"):
        append_history(path, bench(rev=rev))
    for rev in ("ddd", "eee"):
        append_history(path, bench(rev=rev, receivers=16))

    before, after = prune_history(path, keep_per_config=2)
    assert (before, after) == (5, 4)
    records = load_history(path)
    # Last two of each config survive, original file order preserved.
    assert [r["git_rev"] for r in records] == ["bbb", "ccc", "ddd", "eee"]

    # Already within budget: the file is left untouched.
    assert prune_history(path, keep_per_config=2) == (4, 4)


def test_prune_history_edge_cases(tmp_path):
    path = tmp_path / "history.jsonl"
    assert prune_history(path, keep_per_config=3) == (0, 0)  # missing file
    with pytest.raises(ValueError, match="keep_per_config"):
        prune_history(path, keep_per_config=0)
    append_history(path, bench(rev="aaa"))
    append_history(path, bench(rev="bbb"))
    assert prune_history(path, keep_per_config=1) == (2, 1)
    assert [r["git_rev"] for r in load_history(path)] == ["bbb"]


def test_collapsed_stacks_prefers_kind_buckets():
    profile = {
        "handlers": [{"name": "radio.Radio._finish", "total_s": 0.003}],
        "kinds": [
            {"handler": "radio.Radio._finish", "kind": "data",
             "total_s": 0.002},
            {"handler": "radio.Radio._finish", "kind": "snack",
             "total_s": 0.001},
            {"handler": "noop", "kind": "-", "total_s": 0.0},  # dropped
        ],
    }
    text = collapsed_stacks(profile)
    assert "radio.Radio._finish;data 2000\n" in text
    assert "radio.Radio._finish;snack 1000\n" in text
    assert "noop" not in text
    # Every line is "frames <integer>" — the collapsed format contract.
    for line in text.strip().splitlines():
        frames, value = line.rsplit(" ", 1)
        assert frames and int(value) > 0


def test_collapsed_stacks_falls_back_to_handlers():
    profile = {"handlers": [{"name": "engine.step", "total_s": 0.001}]}
    assert collapsed_stacks(profile) == "engine.step 1000\n"
    assert collapsed_stacks({"handlers": []}) == ""


def test_chrome_counter_events_live_on_their_own_process():
    samples = [(50, 0.001, 7), (100, 0.002, 3)]
    events = chrome_counter_events(samples)
    assert events[0]["ph"] == "M"
    assert "wall time" in events[0]["args"]["name"]
    counters = [e for e in events if e["ph"] == "C"]
    assert len(counters) == 4  # two tracks per sample
    assert {e["pid"] for e in events} == {2}
    heap = [e for e in counters if e["name"] == "sim.heap"]
    assert [e["args"]["pending"] for e in heap] == [7, 3]
    assert heap[0]["ts"] == 1000.0  # wall seconds -> microseconds
    json.dumps(events)  # must be serialisable as-is
    assert chrome_counter_events([]) == []
