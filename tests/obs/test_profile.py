"""Event-loop profiler: handler attribution through the engine hook."""

import re

from repro.obs.profile import HandlerStat, LoopProfiler, utc_now_iso
from repro.sim.engine import Simulator


class Worker:
    """Two distinct handlers so attribution has something to separate."""

    def __init__(self, sim):
        self.sim = sim
        self.fast_calls = 0
        self.slow_calls = 0

    def fast(self):
        self.fast_calls += 1

    def slow(self):
        self.slow_calls += 1
        # Deterministic busywork: measurably slower than fast() without
        # touching the wall clock from simulation code.
        total = 0
        for i in range(20000):
            total += i
        self.sink = total


def test_profiler_attributes_every_event(sim):
    profiler = LoopProfiler()
    sim.set_profiler(profiler)
    worker = Worker(sim)
    for i in range(5):
        sim.schedule(1.0 + i, worker.fast)
    sim.schedule(10.0, worker.slow)
    sim.run()
    assert profiler.events == sim.processed_events == 6
    by_name = profiler.handlers
    fast = next(s for name, s in by_name.items() if name.endswith("Worker.fast"))
    slow = next(s for name, s in by_name.items() if name.endswith("Worker.slow"))
    assert fast.calls == 5
    assert slow.calls == 1
    assert slow.total_s >= 0.0 and fast.total_s >= 0.0
    assert profiler.total_s >= fast.total_s + slow.total_s - 1e-9
    assert profiler.peak_heap >= 1
    assert profiler.events_per_second() > 0.0


def test_bound_methods_of_one_function_share_a_stat(sim):
    profiler = LoopProfiler()
    sim.set_profiler(profiler)
    a, b = Worker(sim), Worker(sim)
    sim.schedule(1.0, a.fast)
    sim.schedule(2.0, b.fast)  # different bound method, same function
    sim.run()
    fast_stats = [s for name, s in profiler.handlers.items()
                  if name.endswith("Worker.fast")]
    assert len(fast_stats) == 1
    assert fast_stats[0].calls == 2


def test_top_handlers_ranked_by_total_time():
    profiler = LoopProfiler()
    profiler.handlers["b"] = HandlerStat("b", calls=1, total_s=2.0)
    profiler.handlers["a"] = HandlerStat("a", calls=1, total_s=5.0)
    profiler.handlers["c"] = HandlerStat("c", calls=1, total_s=2.0)
    ranked = profiler.top_handlers()
    assert [s.name for s in ranked] == ["a", "b", "c"]  # ties break by name
    assert [s.name for s in profiler.top_handlers(limit=1)] == ["a"]


def test_summary_and_report(sim):
    profiler = LoopProfiler()
    sim.set_profiler(profiler)
    worker = Worker(sim)
    sim.schedule(1.0, worker.fast)
    sim.run()
    summary = profiler.summary(heap_stats=sim.heap_stats())
    assert summary["events"] == 1
    assert summary["handlers"][0]["calls"] == 1
    assert set(summary["heap"]) == {"pending", "heap_len",
                                    "cancelled_garbage", "compactions"}
    report = profiler.report()
    assert "event-loop profile" in report
    assert "Worker.fast" in report


def test_handler_stat_mean():
    stat = HandlerStat("h", calls=4, total_s=2.0)
    assert stat.mean_s == 0.5
    assert HandlerStat("empty").mean_s == 0.0


def test_utc_now_iso_shape():
    assert re.fullmatch(r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z", utc_now_iso())
