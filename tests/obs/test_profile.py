"""Event-loop profiler: handler attribution through the engine hook."""

import re
import tracemalloc

from repro.obs.profile import (
    HandlerStat,
    LoopProfiler,
    classify_kind,
    utc_now_iso,
)
from repro.sim.engine import Simulator


class Worker:
    """Two distinct handlers so attribution has something to separate."""

    def __init__(self, sim):
        self.sim = sim
        self.fast_calls = 0
        self.slow_calls = 0

    def fast(self):
        self.fast_calls += 1

    def slow(self):
        self.slow_calls += 1
        # Deterministic busywork: measurably slower than fast() without
        # touching the wall clock from simulation code.
        total = 0
        for i in range(20000):
            total += i
        self.sink = total


def test_profiler_attributes_every_event(sim):
    profiler = LoopProfiler()
    sim.set_profiler(profiler)
    worker = Worker(sim)
    for i in range(5):
        sim.schedule(1.0 + i, worker.fast)
    sim.schedule(10.0, worker.slow)
    sim.run()
    assert profiler.events == sim.processed_events == 6
    by_name = profiler.handlers
    fast = next(s for name, s in by_name.items() if name.endswith("Worker.fast"))
    slow = next(s for name, s in by_name.items() if name.endswith("Worker.slow"))
    assert fast.calls == 5
    assert slow.calls == 1
    assert slow.total_s >= 0.0 and fast.total_s >= 0.0
    assert profiler.total_s >= fast.total_s + slow.total_s - 1e-9
    assert profiler.peak_heap >= 1
    assert profiler.events_per_second() > 0.0


def test_bound_methods_of_one_function_share_a_stat(sim):
    profiler = LoopProfiler()
    sim.set_profiler(profiler)
    a, b = Worker(sim), Worker(sim)
    sim.schedule(1.0, a.fast)
    sim.schedule(2.0, b.fast)  # different bound method, same function
    sim.run()
    fast_stats = [s for name, s in profiler.handlers.items()
                  if name.endswith("Worker.fast")]
    assert len(fast_stats) == 1
    assert fast_stats[0].calls == 2


def test_top_handlers_ranked_by_total_time():
    profiler = LoopProfiler()
    profiler.handlers["b"] = HandlerStat("b", calls=1, total_s=2.0)
    profiler.handlers["a"] = HandlerStat("a", calls=1, total_s=5.0)
    profiler.handlers["c"] = HandlerStat("c", calls=1, total_s=2.0)
    ranked = profiler.top_handlers()
    assert [s.name for s in ranked] == ["a", "b", "c"]  # ties break by name
    assert [s.name for s in profiler.top_handlers(limit=1)] == ["a"]


def test_summary_and_report(sim):
    profiler = LoopProfiler()
    sim.set_profiler(profiler)
    worker = Worker(sim)
    sim.schedule(1.0, worker.fast)
    sim.run()
    summary = profiler.summary(heap_stats=sim.heap_stats())
    assert summary["events"] == 1
    assert summary["handlers"][0]["calls"] == 1
    assert set(summary["heap"]) == {"pending", "heap_len",
                                    "cancelled_garbage", "compactions"}
    report = profiler.report()
    assert "event-loop profile" in report
    assert "Worker.fast" in report


def test_handler_stat_mean():
    stat = HandlerStat("h", calls=4, total_s=2.0)
    assert stat.mean_s == 0.5
    assert HandlerStat("empty").mean_s == 0.0


def test_utc_now_iso_shape():
    assert re.fullmatch(r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z", utc_now_iso())


# ---------------------------------------------------------------------------
# Warmup exclusion
# ---------------------------------------------------------------------------

def test_warmup_calls_are_excluded_from_steady_state(sim):
    profiler = LoopProfiler(warmup_calls=2)
    sim.set_profiler(profiler)
    worker = Worker(sim)
    for i in range(5):
        sim.schedule(1.0 + i, worker.fast)
    sim.run()
    fast = next(s for name, s in profiler.handlers.items()
                if name.endswith("Worker.fast"))
    assert fast.warmup_calls == 2
    assert fast.calls == 3                  # steady-state only
    assert profiler.events == 3
    assert profiler.warmup_events == 2
    summary = profiler.summary()
    assert summary["events"] == 3
    assert summary["warmup"]["calls_per_handler"] == 2
    assert summary["warmup"]["events"] == 2


def test_warmup_default_is_off(sim):
    profiler = LoopProfiler()
    sim.set_profiler(profiler)
    sim.schedule(1.0, Worker(sim).fast)
    sim.run()
    assert profiler.warmup_events == 0
    assert "warmup" not in profiler.summary()


# ---------------------------------------------------------------------------
# Event-kind classification and buckets
# ---------------------------------------------------------------------------

class _Kind:
    def __init__(self, value):
        self.value = value


class _Frame:
    def __init__(self, value):
        self.kind = _Kind(value)


class _Transmission:
    """Shape of a radio transmission: .frame.kind.value."""

    def __init__(self, value):
        self.frame = _Frame(value)


class _Timer:
    pass


def test_classify_kind_shapes():
    assert classify_kind(()) == "-"
    assert classify_kind((_Transmission("data"),)) == "data"
    assert classify_kind((_Frame("snack"),)) == "snack"  # bare .kind
    assert classify_kind((7,)) == "node"
    assert classify_kind((True,)) == "-"                # bool is not a node id
    assert classify_kind(((1, 2),)) == "-"              # builtin containers
    assert classify_kind(("label",)) == "-"
    assert classify_kind((_Timer(),)) == "timer"        # type-name fallback


def test_kind_buckets_split_one_handler_by_packet_kind(sim):
    profiler = LoopProfiler(kinds=True)
    sim.set_profiler(profiler)
    seen = []
    handler = seen.append
    sim.schedule(1.0, handler, _Transmission("data"))
    sim.schedule(2.0, handler, _Transmission("data"))
    sim.schedule(3.0, handler, _Transmission("snack"))
    sim.run()
    by_kind = {kind: s for (_name, kind), s in profiler.kind_buckets.items()}
    assert by_kind["data"].calls == 2
    assert by_kind["snack"].calls == 1
    summary = profiler.summary()
    assert {k["kind"] for k in summary["kinds"]} == {"data", "snack"}
    assert "per-event-kind attribution" in profiler.report()


def test_kind_buckets_off_by_default(sim):
    profiler = LoopProfiler()
    sim.set_profiler(profiler)
    sim.schedule(1.0, (lambda _x: None), _Transmission("data"))
    sim.run()
    assert profiler.kind_buckets == {}
    assert "kinds" not in profiler.summary()


# ---------------------------------------------------------------------------
# Allocation attribution
# ---------------------------------------------------------------------------

def test_alloc_attribution_charges_the_allocating_handler(sim):
    was_tracing = tracemalloc.is_tracing()
    profiler = LoopProfiler(alloc=True)
    sim.set_profiler(profiler)
    sink = []

    def allocator():
        sink.append(bytearray(64 * 1024))

    def thrifty():
        pass

    sim.schedule(1.0, allocator)
    sim.schedule(2.0, thrifty)
    sim.run()
    profiler.stop_alloc()
    # The profiler started tracing, so it must also have stopped it.
    assert tracemalloc.is_tracing() == was_tracing
    stats = {name.rsplit(".", 1)[-1]: s for name, s in profiler.handlers.items()}
    assert stats["allocator"].alloc_b > 32 * 1024
    assert stats["thrifty"].alloc_b < stats["allocator"].alloc_b
    summary = profiler.summary()
    assert summary["alloc"]["traced_peak_kb"] > 0
    assert all("alloc_kb" in h for h in summary["handlers"])


def test_alloc_off_keeps_summary_lean(sim):
    profiler = LoopProfiler()
    sim.set_profiler(profiler)
    sim.schedule(1.0, lambda: None)
    sim.run()
    summary = profiler.summary()
    assert "alloc" not in summary
    assert "alloc_kb" not in summary["handlers"][0]


# ---------------------------------------------------------------------------
# Sampling for counter tracks
# ---------------------------------------------------------------------------

def test_sample_every_collects_monotonic_samples(sim):
    profiler = LoopProfiler(sample_every=3)
    sim.set_profiler(profiler)
    for i in range(10):
        sim.schedule(1.0 + i, lambda: None)
    sim.run()
    assert len(profiler.samples) == 3  # events 3, 6, 9
    events = [s[0] for s in profiler.samples]
    assert events == [3, 6, 9]
    walls = [s[1] for s in profiler.samples]
    assert walls == sorted(walls)
    assert all(heap >= 0 for _e, _w, heap in profiler.samples)


def test_sampling_off_by_default(sim):
    profiler = LoopProfiler()
    sim.set_profiler(profiler)
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert profiler.samples == []
