"""Shared fixtures for observability tests: flight-recorded smoke runs."""

from __future__ import annotations

import pytest

from repro.experiments.scenarios import OneHopScenario, run_one_hop
from repro.obs.events import EventLog
from repro.obs.flight import FlightRecorder
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder


class FlightRun:
    """One finished flight-recorded one-hop dissemination."""

    def __init__(self, result, log, flight, sim, trace):
        self.result = result
        self.log = log
        self.flight = flight
        self.sim = sim
        self.trace = trace


def run_flight(protocol="lr-seluge", receivers=3, loss=0.1, seed=5,
               image_size=3000, k=8, n=12, max_time=3600.0) -> FlightRun:
    sim = Simulator()
    log = EventLog()
    flight = FlightRecorder(log)
    trace = TraceRecorder(sink=log, flight=flight)
    result = run_one_hop(OneHopScenario(
        protocol=protocol, loss_rate=loss, receivers=receivers,
        image_size=image_size, k=k, n=n, seed=seed, max_time=max_time,
    ), sim=sim, trace=trace)
    flight.finalize(sim.now)
    log.flush_open_spans(sim.now)
    return FlightRun(result, log, flight, sim, trace)


@pytest.fixture
def flight_run():
    return run_flight


class CausalRun:
    """One finished causal-traced dissemination (one-hop or multihop)."""

    def __init__(self, result, log, causal, sim, trace):
        self.result = result
        self.log = log
        self.causal = causal
        self.sim = sim
        self.trace = trace


def run_causal(protocol="lr-seluge", receivers=3, loss=0.1, seed=5,
               image_size=3000, k=8, n=12, max_time=3600.0,
               topology=None) -> CausalRun:
    from repro.obs.flight import CausalRecorder

    sim = Simulator()
    log = EventLog()
    causal = CausalRecorder(log)
    trace = TraceRecorder(sink=log, causal=causal)
    if topology is not None:
        from repro.experiments.scenarios import MultiHopScenario, run_multihop

        result = run_multihop(MultiHopScenario(
            protocol=protocol, topology=topology, image_size=image_size,
            k=k, n=n, seed=seed, max_time=max_time,
        ), sim=sim, trace=trace)
    else:
        result = run_one_hop(OneHopScenario(
            protocol=protocol, loss_rate=loss, receivers=receivers,
            image_size=image_size, k=k, n=n, seed=seed, max_time=max_time,
        ), sim=sim, trace=trace)
    log.flush_open_spans(sim.now)
    return CausalRun(result, log, causal, sim, trace)


@pytest.fixture
def causal_run():
    return run_causal
