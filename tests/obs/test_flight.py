"""Flight recorder: per-link accounting, tracker snapshots, determinism."""

from __future__ import annotations

import pytest

from repro.obs.events import EventLog
from repro.obs.flight import LOSS_CAUSES, FlightRecorder
from tests.obs.conftest import run_flight


def test_flight_meta_covers_every_node(flight_run):
    run = flight_run(protocol="lr-seluge", receivers=3)
    metas = run.log.of_kind("flight_meta")
    assert len(metas) == 4  # base + 3 receivers
    bases = [e for e in metas if e.detail["base"]]
    assert len(bases) == 1
    assert all(e.detail["secured"] for e in metas)
    assert all(e.detail["protocol"] == "lr-seluge" for e in metas)


def test_deluge_advertises_unsecured(flight_run):
    run = flight_run(protocol="deluge", receivers=2)
    metas = run.log.of_kind("flight_meta")
    assert metas and all(not e.detail["secured"] for e in metas)


def test_link_accounting_matches_event_stream(flight_run):
    run = flight_run(protocol="lr-seluge", receivers=3, loss=0.2)
    matrix = run.flight.link_matrix()
    assert matrix, "a completed run must have observed deliveries"
    assert sum(row["rx"] for row in matrix.values()) == \
        len(run.log.of_kind("link_rx"))
    assert sum(row["lost"] for row in matrix.values()) == \
        len(run.log.of_kind("link_lost"))
    # Bernoulli loss at 20% must drop something, attributed to the channel.
    lost = run.log.of_kind("link_lost")
    assert lost and all(e.detail["cause"] in LOSS_CAUSES for e in lost)
    assert any(e.detail["cause"] == "channel" for e in lost)


def test_data_tx_events_carry_the_unit(flight_run):
    run = flight_run(protocol="lr-seluge", receivers=2)
    txs = run.log.of_kind("link_tx")
    data_txs = [e for e in txs if e.detail["kind"] == "data"]
    assert data_txs and all("unit" in e.detail for e in data_txs)
    adv_txs = [e for e in txs if e.detail["kind"] == "adv"]
    assert adv_txs and all("unit" not in e.detail for e in adv_txs)


def test_finalize_emits_topology_and_link_stats(flight_run):
    run = flight_run(protocol="lr-seluge", receivers=3)
    topo = run.log.of_kind("flight_topology")
    assert len(topo) == 1
    hops = topo[0].detail["hops"]
    base = topo[0].detail["base"]
    assert hops[str(base)] == 0
    assert all(h == 1 for n, h in hops.items() if n != str(base))
    stats = run.log.of_kind("flight_link_stats")
    assert len(stats) == len(run.flight.link_matrix())
    # finalize is idempotent: a second call must not double-emit.
    before = len(run.log)
    run.flight.finalize(run.sim.now)
    assert len(run.log) == before


def test_tracker_snapshots_expose_distances(flight_run):
    run = flight_run(protocol="lr-seluge", receivers=3, loss=0.2)
    snaps = run.log.of_kind("tracker_snapshot")
    assert snaps, "LR-Seluge tracking table must be introspected"
    snack_snaps = [e for e in snaps if e.detail["trigger"] == "snack"]
    assert snack_snaps and all("requester" in e.detail for e in snack_snaps)
    with_state = [e for e in snaps if "distances" in e.detail]
    assert with_state and all("popularity" in e.detail for e in with_state)
    sent = [e for e in snaps if e.detail["trigger"] == "sent"]
    assert sent and all("index" in e.detail for e in sent)


def test_auth_events_track_the_packet_lifecycle(flight_run):
    run = flight_run(protocol="lr-seluge", receivers=2)
    auth_ok = run.log.of_kind("pkt_auth_ok")
    buffered = run.log.of_kind("pkt_buffered")
    assert auth_ok and buffered
    assert len(buffered) <= len(auth_ok)
    keys = lambda events: {
        (e.node, e.detail["version"], e.detail["unit"], e.detail["index"])
        for e in events
    }
    assert keys(buffered) <= keys(auth_ok)


@pytest.mark.parametrize("protocol", ["deluge", "seluge", "lr-seluge"])
def test_flight_recording_does_not_perturb_the_run(protocol):
    """Same seed, same flags: byte-identical outcome with and without flight."""
    from repro.experiments.scenarios import OneHopScenario, run_one_hop
    from repro.sim.engine import Simulator
    from repro.sim.trace import TraceRecorder

    scenario = OneHopScenario(protocol=protocol, loss_rate=0.15, receivers=3,
                              image_size=3000, k=8, n=12, seed=9)
    plain_sim = Simulator()
    plain_log = EventLog()
    plain_trace = TraceRecorder(sink=plain_log)
    plain = run_one_hop(scenario, sim=plain_sim, trace=plain_trace)

    flight_sim = Simulator()
    log = EventLog()
    flight_trace = TraceRecorder(sink=log, flight=FlightRecorder(log))
    recorded = run_one_hop(scenario, sim=flight_sim, trace=flight_trace)

    assert plain.latency == recorded.latency
    assert plain.data_packets == recorded.data_packets
    assert plain.snack_packets == recorded.snack_packets
    assert plain.total_bytes == recorded.total_bytes
    assert plain_sim.processed_events == flight_sim.processed_events
    assert plain_trace.registry.snapshot() == flight_trace.registry.snapshot()
    # The flight events interleave, but the underlying counter/span stream
    # is byte-identical: strip the flight-only kinds and compare.
    flight_kinds = {
        "link_tx", "link_rx", "link_lost", "link_auth_drop",
        "link_duplicate", "pkt_auth_ok", "pkt_buffered", "tracker_snapshot",
        "flight_meta", "flight_topology", "flight_link_stats",
    }
    stripped = [e for e in log.events if e.kind not in flight_kinds]
    assert stripped == plain_log.events
