"""Flight-trace analyzer: wavefront, stalls, link matrix, JSON artifact."""

from __future__ import annotations

import json

from repro.obs.analyze import analyze_events, analyze_jsonl, render_analysis
from repro.obs.events import TraceEvent


def _ev(ts, kind, node=None, **detail):
    return TraceEvent(ts=ts, kind=kind, node=node, detail=detail)


def test_analysis_of_a_real_run(flight_run):
    run = flight_run(protocol="lr-seluge", receivers=3, loss=0.2)
    analysis = analyze_events(run.log)
    assert analysis["type"] == "flight_analysis"
    assert analysis["nodes"] == 4
    assert analysis["completed"] == 3
    (hop1,) = analysis["wavefront"]
    assert hop1["hop"] == 1 and hop1["completed"] == hop1["nodes"] == 3
    assert hop1["t_first"] <= hop1["t_median"] <= hop1["t_last"]
    assert analysis["links"]
    for row in analysis["links"]:
        assert 0.0 <= row["loss_rate"] <= 1.0
        assert row["rx"] + row["lost"] > 0
    assert any(row["lost"] > 0 for row in analysis["links"])
    assert not analysis["stalls"]["incomplete_nodes"]


def test_stall_detection_and_stuck_nodes():
    events = [
        _ev(0.0, "flight_topology", None, base=0, hops={"0": 0, "1": 1, "2": 1}),
        _ev(1.0, "unit_complete", 1, unit=0),
        _ev(2.0, "unit_complete", 1, unit=1),
        _ev(3.0, "unit_complete", 1, unit=2),
        # 97-second gap against a ~1s median page cadence: a stall.
        _ev(100.0, "unit_complete", 1, unit=3),
        _ev(101.0, "node_complete", 1, total=4),
        # node 2 never completes and stops making progress at t=2.
        _ev(2.0, "unit_complete", 2, unit=0),
    ]
    analysis = analyze_events(events, stall_factor=5.0)
    (stall,) = analysis["stalls"]["events"]
    assert stall["node"] == 1 and stall["before_unit"] == 3
    assert stall["gap_s"] == 97.0
    (stuck,) = analysis["stalls"]["incomplete_nodes"]
    assert stuck["node"] == 2
    assert stuck["units_complete"] == 1
    assert stuck["stuck_for_s"] == 99.0


def test_unknown_hops_bucket_separately():
    events = [
        _ev(0.0, "flight_topology", None, base=0, hops={"0": 0, "1": 1}),
        _ev(1.0, "node_complete", 1, total=1),
        _ev(2.0, "node_complete", 5, total=1),  # not in the hop map
    ]
    analysis = analyze_events(events)
    hops = {w["hop"]: w for w in analysis["wavefront"]}
    assert hops[1]["completed"] == 1
    assert hops[None]["completed"] == 1


def test_analyze_jsonl_writes_the_artifact(flight_run, tmp_path):
    run = flight_run(protocol="lr-seluge", receivers=2)
    trace_path = tmp_path / "run.trace.jsonl"
    out_path = tmp_path / "analysis.json"
    run.log.write_jsonl(trace_path)
    analysis = analyze_jsonl(trace_path, out=out_path)
    assert analysis["trace_file"] == str(trace_path)
    persisted = json.loads(out_path.read_text(encoding="utf-8"))
    assert persisted == analysis


def test_render_analysis_is_human_readable(flight_run):
    run = flight_run(protocol="lr-seluge", receivers=2, loss=0.2)
    text = render_analysis(analyze_events(run.log))
    assert "completion wavefront" in text
    assert "per-link delivery matrix" in text
    assert "nodes:      3 (2 completed" in text
