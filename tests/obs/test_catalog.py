"""The metric catalogue: unique, fully documented, resolvable names."""

from repro.obs.catalog import (
    DYNAMIC_METRIC_PREFIXES,
    METRICS,
    METRICS_BY_NAME,
    MetricSpec,
    is_known_metric,
    spec_for,
)

VALID_KINDS = {"counter", "gauge", "histogram", "event"}


def test_names_are_unique():
    names = [spec.name for spec in METRICS]
    assert len(names) == len(set(names))
    assert set(METRICS_BY_NAME) == set(names)


def test_every_spec_is_fully_documented():
    for spec in METRICS:
        assert spec.kind in VALID_KINDS, spec.name
        assert spec.unit, spec.name
        assert spec.help, spec.name


def test_core_protocol_counters_are_declared():
    for name in ("tx_data", "tx_snack", "tx_adv", "rx_delivered",
                 "unit_complete", "node_complete", "fault_crash",
                 "trace_dropped"):
        assert is_known_metric(name)


def test_dynamic_prefixes_resolve_to_family_specs():
    for prefix in DYNAMIC_METRIC_PREFIXES:
        name = prefix + "17"
        assert is_known_metric(name)
        family = spec_for(name)
        assert family is not None
        assert family.name == prefix + "*"
    # A bare prefix with nothing appended is still part of the family.
    assert is_known_metric(DYNAMIC_METRIC_PREFIXES[0])


def test_unknown_names_are_rejected():
    assert not is_known_metric("txdata")
    assert spec_for("txdata") is None


def test_spec_for_exact_match_beats_family():
    spec = spec_for("tx_data")
    assert isinstance(spec, MetricSpec)
    assert spec.name == "tx_data"
    assert spec.unit == "packets"
