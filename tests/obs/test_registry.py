"""The typed metrics registry behind the TraceRecorder façade."""

from repro.obs.catalog import MetricSpec
from repro.obs.registry import MetricsRegistry


def test_counter_handle_shares_the_registry_store():
    reg = MetricsRegistry()
    handle = reg.counter("tx_data")
    handle.inc()
    handle.inc(4)
    assert handle.value == 5
    assert reg.counters["tx_data"] == 5
    reg.inc("tx_data", 2)
    assert handle.value == 7


def test_gauge_handle():
    reg = MetricsRegistry()
    gauge = reg.gauge("sim_heap_peak")
    assert gauge.value == 0.0
    gauge.set(128.0)
    assert gauge.value == 128.0
    reg.set_gauge("sim_heap_peak", 256.0)
    assert gauge.value == 256.0


def test_histogram_summary():
    reg = MetricsRegistry()
    hist = reg.histogram("handler_wall_s")
    assert hist.summary() == {
        "count": 0.0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
    }
    for value in (1.0, 3.0, 2.0):
        reg.observe("handler_wall_s", value)
    summary = hist.summary()
    assert summary["count"] == 3.0
    assert summary["sum"] == 6.0
    assert summary["mean"] == 2.0
    assert summary["min"] == 1.0
    assert summary["max"] == 3.0
    # histogram() returns the same accumulating instance every time.
    assert reg.histogram("handler_wall_s") is hist


def test_unregistered_names_reports_orphans_only():
    reg = MetricsRegistry()
    reg.inc("tx_data")              # catalogue name
    reg.inc("tx_data_unit_3")       # dynamic family
    reg.inc("zz_mystery")           # orphan
    reg.inc("aa_mystery")           # orphan
    assert reg.unregistered_names() == ["aa_mystery", "zz_mystery"]


def test_register_clears_unregistered_status():
    reg = MetricsRegistry()
    reg.inc("custom_thing")
    assert reg.unregistered_names() == ["custom_thing"]
    spec = reg.register(MetricSpec("custom_thing", "counter", "things", "ad hoc"))
    assert reg.spec("custom_thing") is spec
    assert reg.unregistered_names() == []


def test_spec_falls_back_to_catalogue_and_families():
    reg = MetricsRegistry(specs=())  # empty local declarations
    assert reg.spec("tx_data") is not None        # catalogue fallback
    assert reg.spec("tx_adv_unit_9") is not None  # dynamic family fallback
    assert reg.spec("nope") is None


def test_snapshots():
    reg = MetricsRegistry()
    reg.inc("tx_data", 3)
    reg.set_gauge("sim_events", 10.0)
    reg.observe("handler_wall_s", 0.5)
    snap = reg.snapshot()
    assert snap == {"tx_data": 3}
    snap["tx_data"] = 99
    assert reg.counters["tx_data"] == 3  # snapshot is a copy
    full = reg.full_snapshot()
    assert full["counters"] == {"tx_data": 3}
    assert full["gauges"] == {"sim_events": 10.0}
    assert full["histograms"]["handler_wall_s"]["count"] == 1.0
