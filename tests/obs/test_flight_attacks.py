"""Auth-before-buffer under active attack, with per-link forgery accounting.

Runs the DESIGN.md E8 forgery scenario (a :class:`BogusDataInjector` flooding
forged data packets into a one-hop network) with the flight recorder attached,
then replays the archived trace through the invariant checker:

* Seluge and LR-Seluge authenticate before buffering even under flood, and
  the per-link matrix pins the rejected forgeries on the attacker's links.
* Deluge has no packet authentication: the checker must *exempt* it (checked
  count 0), not flag the pollution as an invariant violation.
"""

from __future__ import annotations

import pytest

from repro.core.image import CodeImage
from repro.experiments.runner import CompletionTracker, run_network
from repro.experiments.scenarios import _BUILDERS, make_params
from repro.net.channel import NoLoss
from repro.net.radio import Radio, RadioConfig
from repro.net.topology import star_topology
from repro.obs.events import EventLog
from repro.obs.flight import FlightRecorder
from repro.obs.invariants import check_events
from repro.protocols.attacks import BogusDataInjector
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


def _attacked_flight_run(protocol, receivers=3, image_size=3000, seed=5,
                         period=0.3):
    sim = Simulator()
    rngs = RngRegistry(seed)
    log = EventLog()
    flight = FlightRecorder(log)
    trace = TraceRecorder(sink=log, flight=flight)
    topo = star_topology(receivers + 1)  # highest id is the attacker
    radio = Radio(sim, topo, NoLoss(), rngs, trace,
                  config=RadioConfig(collisions=False))
    params = make_params(protocol, image_size=image_size, k=8, n=12)
    image = CodeImage.synthetic(image_size, version=2, seed=seed)
    tracker = CompletionTracker(trace)
    attacker_id = receivers + 1
    base, nodes, _pre = _BUILDERS[protocol](
        sim, radio, rngs, trace, params, image=image,
        receiver_ids=list(range(1, receivers + 1)),
        on_complete=tracker,
    )
    attacker = BogusDataInjector(attacker_id, sim, radio, rngs, trace,
                                 period=period)
    attacker.start()
    base.start()
    result = run_network(sim, trace, tracker, nodes, protocol,
                         max_time=2400.0, expected_image=image.data)
    flight.finalize(sim.now)
    log.flush_open_spans(sim.now)
    return result, log, flight, attacker, attacker_id


@pytest.mark.parametrize("protocol", ["seluge", "lr-seluge"])
def test_secured_protocols_hold_auth_before_buffer_under_attack(protocol):
    result, log, flight, attacker, attacker_id = _attacked_flight_run(protocol)
    assert result.completed and result.images_ok
    assert attacker.sent > 0

    report = check_events(log)
    assert report.ok, report.summary()
    assert report.checked["auth_before_buffer"] > 0

    # Every forgery that reached a receiver shows up as an auth-drop on the
    # attacker's outbound links, and nowhere else.
    matrix = flight.link_matrix()
    attacker_drops = sum(row["auth_drop"] for (src, _dst), row in
                        matrix.items() if src == attacker_id)
    honest_drops = sum(row["auth_drop"] for (src, _dst), row in
                       matrix.items() if src != attacker_id)
    assert attacker_drops > 0
    assert honest_drops == 0
    drop_events = log.of_kind("link_auth_drop")
    assert drop_events
    assert all(e.detail["src"] == attacker_id for e in drop_events)


def test_deluge_is_exempt_not_falsely_flagged():
    result, log, flight, attacker, attacker_id = _attacked_flight_run(
        "deluge", period=0.05)
    assert attacker.sent > 0
    report = check_events(log)
    # No packet authentication exists to violate: the checker must report the
    # invariant as unexercised rather than blaming buffered forgeries on it.
    assert report.checked["auth_before_buffer"] == 0
    assert not report.of_invariant("auth_before_buffer")
    # The pollution is still visible in the flight data itself.
    polluted = [e for e in log.of_kind("pkt_buffered")
                if e.detail["src"] == attacker_id]
    assert polluted
