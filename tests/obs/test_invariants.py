"""Invariant checker: clean runs hold, injected violations are pinpointed."""

from __future__ import annotations

import pytest

from repro.obs.events import EventLog, TraceEvent
from repro.obs.invariants import INVARIANTS, check_events, check_jsonl


def _ev(ts, kind, node=None, **detail):
    return TraceEvent(ts=ts, kind=kind, node=node, detail=detail)


def _data_tx(ts, node, unit):
    # detail "kind" (the frame kind) collides with the event-kind kwarg above.
    return TraceEvent(ts=ts, kind="link_tx", node=node,
                      detail={"kind": "data", "size": 83, "unit": unit})


# ---------------------------------------------------------------------------
# Clean end-to-end runs
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", ["deluge", "seluge", "lr-seluge",
                                      "rateless"])
def test_clean_runs_satisfy_every_invariant(flight_run, protocol):
    run = flight_run(protocol=protocol, receivers=3, loss=0.15)
    assert run.result.completed
    report = check_events(run.log)
    assert report.ok, report.summary()
    assert report.events_seen == len(run.log)
    assert report.checked["pages_sequential"] > 0
    assert report.checked["complete_means_all_pages"] > 0
    assert report.checked["serve_only_decoded"] > 0
    if protocol in ("seluge", "lr-seluge"):
        assert report.checked["auth_before_buffer"] > 0
    else:
        # Unsecured baselines (Deluge, rateless Deluge) are exempt from the
        # auth invariant, not clean by accident — nothing was checked.
        assert report.checked["auth_before_buffer"] == 0
    if protocol == "lr-seluge":
        assert report.checked["tracker_monotone"] > 0


def test_check_jsonl_roundtrip(flight_run, tmp_path):
    run = flight_run(protocol="lr-seluge", receivers=2)
    path = tmp_path / "run.trace.jsonl"
    run.log.write_jsonl(path)
    report = check_jsonl(path)
    assert report.ok, report.summary()
    assert report.events_seen == len(run.log)


def test_assert_invariants_fixture(flight_run, assert_invariants):
    run = flight_run(protocol="seluge", receivers=2)
    report = assert_invariants(run.log)
    assert report.ok


def test_tampered_trace_is_flagged_with_location(flight_run):
    """Appending one unauthenticated buffer event to a real trace trips the
    checker, and the violation carries the offending event's coordinates."""
    run = flight_run(protocol="lr-seluge", receivers=2)
    run.log.instant(123.25, "pkt_buffered", 2,
                    {"src": 0, "version": 2, "unit": 0, "index": 63})
    report = check_events(run.log)
    assert not report.ok
    (violation,) = report.of_invariant("auth_before_buffer")
    assert violation.ts == 123.25
    assert violation.node == 2
    assert violation.kind == "pkt_buffered"
    assert "index=63" in violation.message
    assert "node 2" in violation.render()


# ---------------------------------------------------------------------------
# Hand-crafted traces, one invariant at a time
# ---------------------------------------------------------------------------

def test_auth_before_buffer_needs_prior_auth():
    events = [
        _ev(0.0, "flight_meta", 1, base=False, secured=True),
        _ev(1.0, "pkt_auth_ok", 1, src=0, version=2, unit=0, index=3),
        _ev(1.0, "pkt_buffered", 1, src=0, version=2, unit=0, index=3),
        _ev(2.0, "pkt_buffered", 1, src=0, version=2, unit=0, index=4),
    ]
    report = check_events(events)
    assert report.checked["auth_before_buffer"] == 2
    (v,) = report.violations
    assert v.invariant == "auth_before_buffer"
    assert (v.ts, v.node, v.kind) == (2.0, 1, "pkt_buffered")


def test_auth_before_buffer_exempts_unsecured_nodes():
    events = [
        _ev(0.0, "flight_meta", 1, base=False, secured=False),
        _ev(1.0, "pkt_buffered", 1, src=0, version=2, unit=0, index=4),
    ]
    report = check_events(events)
    assert report.ok
    assert report.checked["auth_before_buffer"] == 0


def test_tracker_monotone_catches_a_rising_distance():
    events = [
        _ev(1.0, "tracker_snapshot", 1, unit=0, trigger="sent",
            distances={"2": 5, "3": 4}),
        _ev(2.0, "tracker_snapshot", 1, unit=0, trigger="sent",
            distances={"2": 6, "3": 3}),
    ]
    report = check_events(events)
    (v,) = report.of_invariant("tracker_monotone")
    assert "neighbor 2" in v.message and "5 -> 6" in v.message


def test_tracker_monotone_exempts_the_snack_requester():
    events = [
        _ev(1.0, "tracker_snapshot", 1, unit=0, trigger="sent",
            distances={"2": 2}),
        _ev(2.0, "tracker_snapshot", 1, unit=0, trigger="snack", requester=2,
            distances={"2": 9}),
    ]
    assert check_events(events).ok


def test_tracker_state_resets_on_crash():
    events = [
        _ev(1.0, "tracker_snapshot", 1, unit=0, trigger="sent",
            distances={"2": 2}),
        _ev(2.0, "fault_crash", 1),
        _ev(3.0, "tracker_snapshot", 1, unit=0, trigger="sent",
            distances={"2": 9}),
    ]
    assert check_events(events).ok


def test_serve_only_decoded_flags_premature_service():
    events = [
        _ev(0.0, "flight_meta", 1, base=False, secured=True),
        _ev(1.0, "unit_complete", 1, unit=0),
        _data_tx(2.0, 1, unit=0),
        _data_tx(3.0, 1, unit=1),
    ]
    report = check_events(events)
    assert report.checked["serve_only_decoded"] == 2
    (v,) = report.of_invariant("serve_only_decoded")
    assert (v.ts, v.node) == (3.0, 1)


def test_serve_only_decoded_exempts_base_and_outsiders():
    events = [
        _ev(0.0, "flight_meta", 0, base=True, secured=True),
        _data_tx(1.0, 0, unit=7),
        # node 9 never emitted flight_meta (e.g. an attacker rig): untracked.
        _data_tx(2.0, 9, unit=7),
    ]
    report = check_events(events)
    assert report.ok
    assert report.checked["serve_only_decoded"] == 1  # only the base tx


def test_pages_sequential_flags_a_skip():
    events = [
        _ev(1.0, "unit_complete", 1, unit=0),
        _ev(2.0, "unit_complete", 1, unit=2),
    ]
    (v,) = check_events(events).of_invariant("pages_sequential")
    assert "completed unit 2, expected unit 1" in v.message


def test_pages_sequential_honours_reboot_resume():
    events = [
        _ev(1.0, "unit_complete", 1, unit=0),
        _ev(2.0, "unit_complete", 1, unit=1),
        _ev(3.0, "fault_reboot", 1, resume_unit=1),
        _ev(4.0, "unit_complete", 1, unit=1),
        _ev(5.0, "unit_complete", 1, unit=2),
    ]
    assert check_events(events).ok


def test_pages_sequential_restarts_on_version_adoption():
    events = [
        _ev(1.0, "unit_complete", 1, unit=0),
        _ev(2.0, "version_adopted", 1, version=3),
        _ev(3.0, "unit_complete", 1, unit=0),
    ]
    assert check_events(events).ok


def test_complete_means_all_pages():
    events = [
        _ev(1.0, "unit_complete", 1, unit=0),
        _ev(2.0, "node_complete", 1, total=3),
    ]
    (v,) = check_events(events).of_invariant("complete_means_all_pages")
    assert "1/3 units" in v.message


def test_report_summary_lists_checks_and_violations():
    events = [
        _ev(1.0, "unit_complete", 1, unit=0),
        _ev(2.0, "node_complete", 1, total=3),
    ]
    report = check_events(events)
    text = report.summary()
    assert "2 events" in text
    for name in INVARIANTS:
        assert name in text
    assert "1 violation(s)" in text

    clean = check_events([_ev(1.0, "unit_complete", 1, unit=0)])
    assert "all invariants hold" in clean.summary()


def test_check_events_accepts_an_event_log():
    log = EventLog()
    log.instant(1.0, "unit_complete", 1, {"unit": 0})
    report = check_events(log)
    assert report.events_seen == 1 and report.ok


# ---------------------------------------------------------------------------
# quarantine_respected
# ---------------------------------------------------------------------------

def test_quarantine_respected_flags_service_during_quarantine():
    events = [
        _ev(1.0, "defense_quarantine", 1, offender=9, until=100.0),
        _ev(5.0, "tracker_snapshot", 1, trigger="snack", via=9, unit=0,
            requester=9),
    ]
    report = check_events(events)
    assert [v.invariant for v in report.violations] == ["quarantine_respected"]
    assert "quarantined neighbor 9" in report.violations[0].render()


def test_quarantine_respected_allows_service_after_expiry():
    events = [
        _ev(1.0, "defense_quarantine", 1, offender=9, until=10.0),
        _ev(11.0, "tracker_snapshot", 1, trigger="snack", via=9, unit=0),
        _ev(12.0, "tracker_snapshot", 1, trigger="snack", via=9, unit=0),
    ]
    report = check_events(events)
    assert report.ok
    assert report.checked["quarantine_respected"] == 2


def test_quarantine_is_per_node_pair():
    # Node 2 never quarantined 9: its service of 9 is legitimate.
    events = [
        _ev(1.0, "defense_quarantine", 1, offender=9, until=100.0),
        _ev(5.0, "tracker_snapshot", 2, trigger="snack", via=9, unit=0),
    ]
    assert check_events(events).ok


# ---------------------------------------------------------------------------
# replay_never_rebuffered
# ---------------------------------------------------------------------------

def test_replay_never_rebuffered_flags_double_buffer():
    events = [
        _ev(1.0, "pkt_buffered", 2, version=2, unit=0, index=3),
        _ev(2.0, "pkt_buffered", 2, version=2, unit=0, index=3),
    ]
    report = check_events(events)
    assert [v.invariant for v in report.violations] == ["replay_never_rebuffered"]


def test_replay_never_rebuffered_allows_distinct_packets():
    events = [
        _ev(1.0, "pkt_buffered", 2, version=2, unit=0, index=3),
        _ev(2.0, "pkt_buffered", 2, version=2, unit=0, index=4),
        _ev(3.0, "pkt_buffered", 3, version=2, unit=0, index=3),  # other node
    ]
    report = check_events(events)
    assert report.ok
    assert report.checked["replay_never_rebuffered"] == 3


def test_replay_never_rebuffered_honours_reboot_resume():
    # Units at or above the resume point were lost with RAM: refetching
    # them after the reboot is legitimate, refetching persisted ones is not.
    events = [
        _ev(1.0, "pkt_buffered", 2, version=2, unit=1, index=0),
        _ev(2.0, "fault_crash", 2),
        _ev(3.0, "fault_reboot", 2, resume_unit=1),
        _ev(4.0, "pkt_buffered", 2, version=2, unit=1, index=0),
    ]
    assert check_events(events).ok


def test_replay_never_rebuffered_resets_on_version_adoption():
    events = [
        _ev(1.0, "pkt_buffered", 2, version=2, unit=0, index=0),
        _ev(2.0, "version_adopted", 2, version=3),
        _ev(3.0, "pkt_buffered", 2, version=3, unit=0, index=0),
    ]
    assert check_events(events).ok
