"""Run manifests: construction, (de)serialisation, and diffing."""

import json

import pytest

from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    collect_git_rev,
    diff_manifests,
)


class FakeResult:
    """RunResult-shaped object (manifests are duck-typed on purpose)."""

    def __init__(self, completed=True, completion_rate=None):
        self.completed = completed
        self.latency = 42.5
        self.data_packets = 100
        self.snack_packets = 10
        self.adv_packets = 20
        self.total_bytes = 5000
        self.completion_rate = completion_rate
        self.seed = 7
        self.counters = {"tx_data": 100, "tx_adv": 20}


class FakeSim:
    now = 42.5
    processed_events = 850

    def heap_stats(self):
        return {"pending": 0, "heap_len": 3, "cancelled_garbage": 3,
                "compactions": 1}


def test_from_run_collects_metrics_and_timings():
    manifest = RunManifest.from_run(
        "test.tool", FakeResult(), config={"protocol": "lr-seluge"},
        wall_s=0.5, sim=FakeSim(), unregistered=["oops"],
    )
    assert manifest.tool == "test.tool"
    assert manifest.seed == 7
    assert manifest.metrics["completed"] == 1.0
    assert manifest.metrics["latency_s"] == 42.5
    assert manifest.metrics["data_packets"] == 100.0
    assert "completion_rate" not in manifest.metrics  # None -> omitted
    assert manifest.timings["wall_s"] == 0.5
    assert manifest.timings["sim_time_s"] == 42.5
    assert manifest.timings["events"] == 850.0
    assert manifest.timings["events_per_s"] == 1700.0
    assert manifest.timings["heap_compactions"] == 1.0
    assert manifest.counters == {"tx_data": 100, "tx_adv": 20}
    assert manifest.unregistered_metrics == ["oops"]
    assert manifest.schema_version == MANIFEST_SCHEMA_VERSION
    assert manifest.created_utc  # stamped


def test_from_run_records_completion_rate_when_present():
    manifest = RunManifest.from_run("t", FakeResult(completion_rate=0.75))
    assert manifest.metrics["completion_rate"] == 0.75


def test_write_load_round_trip(tmp_path):
    manifest = RunManifest.from_run(
        "test.tool", FakeResult(), config={"k": 8}, wall_s=1.0, sim=FakeSim(),
        trace_file="run.trace.jsonl", profile={"events": 850},
        unregistered=["oops"],
    )
    path = tmp_path / "run.manifest.json"
    manifest.write(path)
    loaded = RunManifest.load(path)
    assert loaded.to_dict() == manifest.to_dict()
    # The unregistered count is surfaced under the catalogue's counter name.
    raw = json.loads(path.read_text())
    assert raw["obs_unregistered_metric"] == 1


def test_load_rejects_unknown_schema(tmp_path):
    path = tmp_path / "future.json"
    path.write_text(json.dumps({"schema_version": MANIFEST_SCHEMA_VERSION + 1,
                                "tool": "x"}))
    with pytest.raises(ValueError, match="unsupported manifest schema"):
        RunManifest.load(path)


def test_diff_manifests_rows():
    a = RunManifest("t", metrics={"latency_s": 10.0, "same": 1.0},
                    timings={"wall_s": 1.0},
                    counters={"tx_data": 100, "only_a": 5})
    b = RunManifest("t", metrics={"latency_s": 12.0, "same": 1.0},
                    timings={"wall_s": 2.0},
                    counters={"tx_data": 80, "only_b": 3})
    rows = diff_manifests(a, b)
    names = [row[0] for row in rows]
    # metrics first, then timings, then counters; unchanged rows omitted.
    assert names == ["metrics.latency_s", "timings.wall_s",
                     "counters.only_a", "counters.only_b", "counters.tx_data"]
    latency = rows[0]
    assert latency[1:4] == (10.0, 12.0, 2.0)
    assert latency[4] == pytest.approx(20.0)        # +20%
    only_b = next(r for r in rows if r[0] == "counters.only_b")
    assert only_b[1:4] == (0.0, 3.0, 3.0)
    assert only_b[4] is None                        # no baseline -> no pct


def test_diff_of_identical_manifests_is_empty():
    a = RunManifest("t", metrics={"x": 1.0}, counters={"c": 2})
    b = RunManifest("t", metrics={"x": 1.0}, counters={"c": 2})
    assert diff_manifests(a, b) == []


def test_collect_git_rev_inside_and_outside_a_repo(tmp_path):
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[2]
    rev = collect_git_rev(cwd=root)
    assert rev is None or isinstance(rev, str)
    if rev is not None:
        assert len(rev.replace("+dirty", "")) >= 7
    # A directory with no repository degrades to None, never raises.
    assert collect_git_rev(cwd=tmp_path) is None


def test_campaign_field_round_trips_and_stays_optional(tmp_path):
    campaign = {
        "total": 3, "completed": 3, "resumed": 1, "retried": 1,
        "quarantined": 0,
        "tasks": {"abc123": {"label": "cell", "status": "completed",
                             "attempts": [{"attempt": 1, "outcome": "ok"}]}},
    }
    m = RunManifest("repro.experiments", campaign=campaign)
    path = tmp_path / "manifest.json"
    m.write(path)
    loaded = RunManifest.load(path)
    assert loaded.campaign == campaign
    assert loaded.schema_version == m.schema_version  # additive, still v1

    # Absent campaign stays absent: not serialised, loads as None.
    plain = RunManifest("repro.simulate")
    plain.write(path)
    assert "campaign" not in plain.to_dict()
    assert RunManifest.load(path).campaign is None
