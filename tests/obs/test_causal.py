"""Causal tracer: DAG reconstruction, critical paths, attribution, CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs.__main__ import main
from repro.obs.causal import (
    WAIT_CATEGORIES,
    analyze_causal_jsonl,
    attribute_run,
    build_dag,
    comparison_report,
    critical_path,
    render_attribution,
    render_why,
)
from repro.obs.events import EventLog, TraceEvent
from repro.obs.invariants import check_events


def _ev(ts, kind, node=None, **detail):
    return TraceEvent(ts=ts, kind=kind, node=node, detail=detail)


def _tx(ts, node, frame, fkind, enq, **rest):
    # detail "kind" (the frame kind) collides with the event-kind kwarg.
    detail = {"frame": frame, "kind": fkind, "enq": enq, **rest}
    return TraceEvent(ts=ts, kind="causal_tx", node=node, detail=detail)


# ---------------------------------------------------------------------------
# Live traces: every protocol's causal stream is well-formed end to end
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", ["deluge", "seluge", "lr-seluge",
                                      "rateless"])
def test_causal_run_satisfies_causal_invariants(causal_run, protocol):
    run = causal_run(protocol=protocol, receivers=3, loss=0.15)
    assert run.result.completed
    report = check_events(run.log)
    assert report.ok, report.summary()
    assert report.checked["causal_rx_has_tx"] > 0
    assert report.checked["causal_monotone"] > 0


@pytest.mark.parametrize("protocol", ["deluge", "seluge", "lr-seluge"])
def test_full_attribution_on_lossy_one_hop(causal_run, protocol):
    """Critical paths reach the base root: >= 95% latency attributed."""
    run = causal_run(protocol=protocol, receivers=4, loss=0.2)
    assert run.result.completed
    analysis = attribute_run(run.log)
    assert analysis["completed"] == 4
    assert analysis["min_attribution"] >= 0.95
    # every second between root and completion lands in a named category
    for node in analysis["nodes"]:
        assert node["completed"]
        assert set(node["categories"]) <= set(WAIT_CATEGORIES)


def test_critical_path_edges_telescope(causal_run):
    """Edges partition [root, completion]: contiguous and monotone."""
    run = causal_run(protocol="lr-seluge", receivers=3, loss=0.2)
    dag = build_dag(run.log)
    node = dag.receivers()[0]
    cp = critical_path(dag, node)
    assert cp is not None
    assert cp.root_ts <= cp.t_end
    prev_end = cp.root_ts
    for edge in cp.edges:
        assert edge.t_from == pytest.approx(prev_end)
        assert edge.t_to >= edge.t_from
        assert edge.category in WAIT_CATEGORIES
        prev_end = edge.t_to
    assert prev_end == pytest.approx(cp.t_end)
    assert sum(cp.categories().values()) == pytest.approx(cp.attributed_s)


def test_causal_recorder_does_not_perturb_the_run(causal_run, flight_run):
    """With the recorder detached the event stream and counters are
    byte-identical: the causal layer only ever *adds* causal_* events."""
    from repro.experiments.scenarios import OneHopScenario, run_one_hop
    from repro.sim.engine import Simulator
    from repro.sim.trace import TraceRecorder

    def run_plain():
        sim = Simulator()
        log = EventLog()
        trace = TraceRecorder(sink=log)
        result = run_one_hop(OneHopScenario(
            protocol="lr-seluge", loss_rate=0.2, receivers=3,
            image_size=3000, k=8, n=12, seed=9,
        ), sim=sim, trace=trace)
        log.flush_open_spans(sim.now)
        return result, log, trace

    plain_result, plain_log, plain_trace = run_plain()
    causal = causal_run(protocol="lr-seluge", receivers=3, loss=0.2, seed=9)

    assert causal.result.latency == plain_result.latency
    assert causal.trace.counters == plain_trace.counters
    non_causal = [e.to_dict() for e in causal.log.events
                  if not e.kind.startswith("causal_")]
    assert non_causal == [e.to_dict() for e in plain_log.events]
    assert any(e.kind.startswith("causal_") for e in causal.log.events)


def test_grid_smoke_direction_matches_paper(causal_run):
    """On the lossy grid, LR-Seluge's critical paths wait less on
    retransmission than Deluge's — the paper's loss-resilience claim."""
    waits = {}
    for protocol in ("deluge", "lr-seluge"):
        run = causal_run(protocol=protocol, topology="grid:4x4:4",
                         image_size=8192, k=16, n=24, seed=3,
                         max_time=12000.0)
        assert run.result.completed
        analysis = attribute_run(run.log)
        assert analysis["min_attribution"] >= 0.95
        waits[protocol] = analysis["categories"]["retransmission"]
    assert waits["lr-seluge"] < waits["deluge"]


# ---------------------------------------------------------------------------
# Synthetic DAGs: the walk and the invariants, exactly
# ---------------------------------------------------------------------------

def _tiny_trace():
    """Base 0 advertises, node 1 requests, base serves, node 1 decodes."""
    return [
        _ev(0.0, "causal_meta", node=0, protocol="deluge", base=True,
            total_units=1, secured=False, profile="arq-union"),
        _ev(0.0, "causal_meta", node=1, protocol="deluge", base=False,
            total_units=1, secured=False, profile="arq-union"),
        # base ADV: frame 1, enqueued 1.0, on air 1.2, delivered 1.3
        _tx(1.2, 0, 1, "adv", 1.0, cause={"trigger": "trickle", "uc": 1}),
        _ev(1.3, "causal_rx", node=1, frame=1, src=0),
        # node 1 SNACK: armed by the ADV at 1.3, fires 2.3, airs 2.4
        _tx(2.4, 1, 2, "snack", 2.3,
            cause={"trigger": "request", "reason": "first_request",
                   "armed": 1.3, "parent": 1}),
        _ev(2.5, "causal_rx", node=0, frame=2, src=1),
        # base DATA burst: armed by the SNACK at 2.5, enqueued 3.0, airs 3.1
        _tx(3.1, 0, 3, "data", 3.0, unit=0,
            cause={"trigger": "serve", "unit": 0, "parent": 2,
                   "armed": 2.5}),
        _ev(3.4, "causal_rx", node=1, frame=3, src=0),
        _ev(3.4, "causal_decode", node=1, unit=0, frame=3, need=8, of=8),
        _ev(3.4, "unit_complete", node=1, unit=0),
        _ev(3.4, "node_complete", node=1, total=1),
    ]


def test_synthetic_walk_categories_and_attribution():
    dag = build_dag(_tiny_trace())
    cp = critical_path(dag, 1)
    assert cp is not None
    assert not cp.truncated
    assert cp.root_ts == 0.0           # rooted at the base advertisement
    assert cp.attribution == 1.0
    cats = cp.categories()
    assert cats["trickle"] == pytest.approx(1.0)         # 0.0 -> adv enq
    assert cats["request_backoff"] == pytest.approx(1.0)  # armed -> snack enq
    assert cats["serve_pacing"] == pytest.approx(0.5)     # snack rx -> data enq
    assert cats["airtime"] == pytest.approx(0.1 + 0.1 + 0.3)
    assert cats["mac"] == pytest.approx(0.2 + 0.1 + 0.1)
    assert cats["retransmission"] == 0.0
    assert cp.per_unit()[0]  # every edge explains page 0


def test_synthetic_trace_passes_causal_invariants():
    report = check_events(_tiny_trace())
    assert report.ok, report.summary()
    assert report.checked["causal_rx_has_tx"] == 3
    assert report.checked["causal_monotone"] > 0


def test_rx_without_tx_violates_grounding():
    events = _tiny_trace()
    events.insert(3, _ev(1.35, "causal_rx", node=1, frame=99, src=0))
    report = check_events(events)
    assert [v.invariant for v in report.violations] == ["causal_rx_has_tx"]
    assert "frame 99" in report.violations[0].message


def test_loss_without_tx_violates_grounding():
    events = _tiny_trace()
    events.append(TraceEvent(ts=3.5, kind="causal_loss", node=1,
                             detail={"frame": 77, "src": 0,
                                     "cause": "channel", "kind": "data"}))
    report = check_events(events)
    assert [v.invariant for v in report.violations] == ["causal_rx_has_tx"]


def test_delivery_before_air_violates_monotonicity():
    events = _tiny_trace()
    # frame 3 airs at 3.1 but this delivery claims 3.0
    events.insert(8, _ev(3.0, "causal_rx", node=1, frame=3, src=0))
    report = check_events(events)
    assert any(v.invariant == "causal_monotone" for v in report.violations)


def test_decode_parented_on_undelivered_frame_violates_monotonicity():
    events = [e for e in _tiny_trace()
              if not (e.kind == "causal_rx" and e.detail.get("frame") == 3)]
    report = check_events(events)
    kinds = {v.invariant for v in report.violations}
    assert "causal_monotone" in kinds


def test_cause_parent_after_tx_violates_monotonicity():
    events = _tiny_trace()
    # SNACK claims frame 3 (airs at 3.1, *after* this tx) caused it
    events[4] = _tx(2.4, 1, 2, "snack", 2.3,
                    cause={"trigger": "request", "reason": "first_request",
                           "armed": 1.3, "parent": 3})
    report = check_events(events)
    assert any(v.invariant == "causal_monotone" for v in report.violations)


def test_walk_truncates_on_mac_dropped_parent():
    """A retry parented on a frame that never aired roots early (no loop,
    no invented time) and is flagged truncated."""
    events = [
        _ev(0.0, "causal_meta", node=1, protocol="deluge", base=False,
            total_units=1, secured=False, profile="arq-union"),
        _tx(5.0, 1, 10, "snack", 4.9,
            cause={"trigger": "request", "reason": "retry", "armed": 4.0,
                   "parent": 7}),  # frame 7 was MAC-dropped: no causal_tx
        _tx(5.2, 0, 11, "data", 5.1, unit=0,
            cause={"trigger": "serve", "unit": 0, "parent": 10,
                   "armed": 5.05}),
        _ev(5.3, "causal_rx", node=1, frame=11, src=0),
        _ev(5.3, "causal_decode", node=1, unit=0, frame=11, need=8, of=8),
        _ev(5.3, "node_complete", node=1, total=1),
    ]
    # the serve parent (frame 10) was never recorded as delivered to the
    # base, so ground it:
    events.insert(2, _ev(5.05, "causal_rx", node=0, frame=10, src=1))
    dag = build_dag(events)
    cp = critical_path(dag, 1)
    assert cp is not None
    assert cp.truncated
    assert cp.root_ts == pytest.approx(4.0)  # the retry arm, not t=0
    assert cp.categories()["retransmission"] > 0


def test_attribute_run_reports_incomplete_nodes():
    events = _tiny_trace()
    events.append(_ev(0.0, "causal_meta", node=2, protocol="deluge",
                      base=False, total_units=1, secured=False,
                      profile="arq-union"))
    analysis = attribute_run(events)
    assert analysis["completed"] == 1
    stuck = [n for n in analysis["nodes"] if n["node"] == 2]
    assert stuck == [{"node": 2, "completed": False}]
    assert "never completed: 2" in render_attribution(analysis)


# ---------------------------------------------------------------------------
# Reports and persistence
# ---------------------------------------------------------------------------

def test_analyze_causal_jsonl_persists_json(causal_run, tmp_path):
    run = causal_run(protocol="seluge", receivers=2)
    trace = tmp_path / "run.trace.jsonl"
    run.log.write_jsonl(trace)
    out = tmp_path / "causal.json"
    analysis = analyze_causal_jsonl(trace, out=out)
    assert analysis["type"] == "causal_analysis"
    assert analysis["protocol"] == "seluge"
    assert analysis["profile"] == "arq-union-auth"
    on_disk = json.loads(out.read_text(encoding="utf-8"))
    assert on_disk == analysis


def test_render_why_names_the_waits(causal_run):
    run = causal_run(protocol="lr-seluge", receivers=3, loss=0.2)
    dag = build_dag(run.log)
    node = dag.receivers()[-1]
    cp = critical_path(dag, node)
    text = render_why(dag, cp)
    assert f"node {node} completed at" in text
    assert "longest wait" in text
    assert "%" in text


def test_comparison_report_has_one_column_per_run(causal_run):
    analyses = [attribute_run(causal_run(protocol=p, receivers=2).log)
                for p in ("deluge", "lr-seluge")]
    table = comparison_report(analyses)
    assert "deluge" in table and "lr-seluge" in table
    assert "retransmission" in table or "request_backoff" in table


def test_chrome_trace_exports_causal_kinds(causal_run):
    """Causal events land on the Perfetto timeline under the 'causal' cat."""
    run = causal_run(protocol="deluge", receivers=2)
    doc = run.log.to_chrome_trace()
    causal_events = [e for e in doc["traceEvents"]
                     if e.get("cat") == "causal"]
    assert causal_events
    kinds = {e["name"] for e in causal_events}
    assert "causal_tx" in kinds and "causal_rx" in kinds
    assert "causal_meta" in kinds and "causal_decode" in kinds
    tx = next(e for e in causal_events if e["name"] == "causal_tx")
    assert "frame" in tx["args"]


# ---------------------------------------------------------------------------
# CLI exit-code contract
# ---------------------------------------------------------------------------

def _write_trace(tmp_path, events, name="run.trace.jsonl"):
    log = EventLog()
    log.events.extend(events)
    path = tmp_path / name
    log.write_jsonl(path)
    return str(path)


def test_cli_critical_path_passes_gate(tmp_path, capsys):
    trace = _write_trace(tmp_path, _tiny_trace())
    out = tmp_path / "causal.json"
    assert main(["critical-path", trace, "--min-attribution", "0.95",
                 "--out", str(out)]) == 0
    assert "attribution" in capsys.readouterr().out
    assert json.loads(out.read_text(encoding="utf-8"))["completed"] == 1


def test_cli_critical_path_json_output(tmp_path, capsys):
    trace = _write_trace(tmp_path, _tiny_trace())
    assert main(["critical-path", trace, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["type"] == "causal_analysis"


def test_cli_critical_path_gates_on_attribution_and_completion(tmp_path,
                                                               capsys):
    # no completed receivers -> exit 1
    empty = _write_trace(tmp_path, [
        _ev(0.0, "causal_meta", node=0, protocol="deluge", base=True,
            total_units=1, secured=False, profile="arq-union"),
        _ev(0.0, "causal_meta", node=1, protocol="deluge", base=False,
            total_units=1, secured=False, profile="arq-union"),
    ], name="empty.jsonl")
    assert main(["critical-path", empty]) == 1
    assert "no completed receivers" in capsys.readouterr().err
    # missing file -> exit 2
    assert main(["critical-path", str(tmp_path / "absent.jsonl")]) == 2


def test_cli_critical_path_compares_multiple_traces(tmp_path, capsys):
    a = _write_trace(tmp_path, _tiny_trace(), name="a.jsonl")
    b = _write_trace(tmp_path, _tiny_trace(), name="b.jsonl")
    out = tmp_path / "both.json"
    assert main(["critical-path", a, b, "--out", str(out)]) == 0
    assert "by protocol" in capsys.readouterr().out
    assert len(json.loads(out.read_text(encoding="utf-8"))) == 2


def test_cli_why_explains_a_node(tmp_path, capsys):
    trace = _write_trace(tmp_path, _tiny_trace())
    assert main(["why", trace, "--node", "1"]) == 0
    assert "node 1 completed at" in capsys.readouterr().out


def test_cli_why_rejects_unknown_node_and_non_causal_trace(tmp_path, capsys):
    trace = _write_trace(tmp_path, _tiny_trace())
    assert main(["why", trace, "--node", "42"]) == 2
    assert "does not appear" in capsys.readouterr().err
    plain = _write_trace(tmp_path, [
        _ev(1.0, "node_complete", node=1, total=1),
    ], name="plain.jsonl")
    assert main(["why", plain, "--node", "1"]) == 2
    assert "--causal-trace" in capsys.readouterr().err


def test_cli_why_incomplete_node_exits_one(tmp_path, capsys):
    events = _tiny_trace()
    events.append(_ev(0.0, "causal_meta", node=2, protocol="deluge",
                      base=False, total_units=1, secured=False,
                      profile="arq-union"))
    trace = _write_trace(tmp_path, events)
    assert main(["why", trace, "--node", "2"]) == 1
    assert "never completed" in capsys.readouterr().out


def test_cli_analyze_json_is_machine_readable(flight_run, tmp_path, capsys):
    run = flight_run(protocol="deluge", receivers=2)
    trace = tmp_path / "run.trace.jsonl"
    run.log.write_jsonl(trace)
    assert main(["analyze", str(trace), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["type"] == "flight_analysis"
