"""Exit-code and error-path contract of ``python -m repro.obs``.

Convention under test: 0 success, 1 a gate failed (regression, violation,
empty history), 2 unusable input (missing file, malformed JSON).
"""

import json

from repro.obs.__main__ import main


def bench_dict(eps=1000.0, events=500):
    return {
        "name": "sim_core_perf_smoke",
        "config": {"protocol": "lr-seluge", "receivers": 2, "image_kib": 2},
        "git_rev": "aaa",
        "created_utc": "2026-08-08T00:00:00Z",
        "events": events,
        "events_per_s": eps,
        "wall_s": events / eps,
        "top_handlers": [],
    }


def write_json(path, payload):
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


# ---------------------------------------------------------------------------
# Unusable input -> exit 2
# ---------------------------------------------------------------------------

def test_report_missing_and_malformed_manifest(tmp_path, capsys):
    assert main(["report", str(tmp_path / "absent.json")]) == 2
    assert "not found" in capsys.readouterr().err

    broken = tmp_path / "broken.json"
    broken.write_text("{not json", encoding="utf-8")
    assert main(["report", str(broken)]) == 2
    assert "malformed manifest" in capsys.readouterr().err


def test_trace_commands_report_missing_files(tmp_path, capsys):
    missing = str(tmp_path / "absent.trace.jsonl")
    for command in ("trace", "check-invariants", "analyze"):
        assert main([command, missing]) == 2
        assert "trace file not found" in capsys.readouterr().err


def test_bench_compare_missing_and_malformed_inputs(tmp_path, capsys):
    current = write_json(tmp_path / "cur.json", bench_dict())
    assert main(["bench-compare", current,
                 str(tmp_path / "absent.json")]) == 2
    assert "baseline bench file not found" in capsys.readouterr().err

    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    assert main(["bench-compare", current, str(bad)]) == 2
    assert "malformed baseline bench JSON" in capsys.readouterr().err

    not_object = write_json(tmp_path / "list.json", [1, 2, 3])
    assert main(["bench-compare", not_object, current]) == 2
    assert "expected an object" in capsys.readouterr().err


def test_bench_history_malformed_baseline(tmp_path, capsys):
    history = tmp_path / "history.jsonl"
    history.write_text(json.dumps({
        "config_key": "a=1", "events_per_s": 1000.0, "events": 10,
    }) + "\n", encoding="utf-8")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    assert main(["bench-history", str(history), "--baseline", str(bad)]) == 2
    assert "malformed baseline bench JSON" in capsys.readouterr().err


def test_watch_missing_status_file(tmp_path, capsys):
    assert main(["watch", str(tmp_path / "nodir"), "--once"]) == 2
    assert "no status file" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Gate failures -> exit 1
# ---------------------------------------------------------------------------

def test_bench_compare_gate_pass_and_fail(tmp_path, capsys):
    base = write_json(tmp_path / "base.json", bench_dict(eps=1000.0))
    same = write_json(tmp_path / "same.json", bench_dict(eps=990.0))
    slow = write_json(tmp_path / "slow.json", bench_dict(eps=600.0))

    assert main(["bench-compare", same, base]) == 0
    assert "PASS" in capsys.readouterr().out

    assert main(["bench-compare", slow, base]) == 1
    assert "FAIL" in capsys.readouterr().out

    assert main(["bench-compare", slow, base, "--tolerance", "0.9"]) == 0


def test_bench_history_empty_store(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)  # keep the repo's committed baseline out
    empty = tmp_path / "empty.jsonl"
    empty.write_text("", encoding="utf-8")
    assert main(["bench-history", str(empty)]) == 1
    assert "no recorded runs" in capsys.readouterr().out
    assert main(["bench-history", str(tmp_path / "absent.jsonl")]) == 1


# ---------------------------------------------------------------------------
# Happy path: perf-smoke feeds the history store feeds bench-history
# ---------------------------------------------------------------------------

def test_perf_smoke_appends_history_and_bench_history_renders(
        tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    out = tmp_path / "BENCH.json"
    history = tmp_path / "history.jsonl"
    argv = ["perf-smoke", "--out", str(out), "--receivers", "2",
            "--image-kib", "2", "--warmup", "0",
            "--history", str(history)]
    assert main(argv) == 0
    assert main(argv) == 0
    assert "appended history record" in capsys.readouterr().out

    assert main(["bench-history", str(history),
                 "--baseline", str(out)]) == 0
    text = capsys.readouterr().out
    assert "2 recorded run(s)" in text
    assert "committed baseline" in text


def test_bench_history_prune_compacts_the_store(tmp_path, capsys,
                                                monkeypatch):
    monkeypatch.chdir(tmp_path)
    out = tmp_path / "BENCH.json"
    history = tmp_path / "history.jsonl"
    argv = ["perf-smoke", "--out", str(out), "--receivers", "2",
            "--image-kib", "2", "--warmup", "0",
            "--history", str(history)]
    for _ in range(3):
        assert main(argv) == 0
    capsys.readouterr()

    assert main(["bench-history", str(history), "--prune", "2"]) == 0
    text = capsys.readouterr().out
    assert "3 -> 2 record(s)" in text
    assert "2 recorded run(s)" in text  # report renders the pruned store
