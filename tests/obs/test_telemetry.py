"""Campaign telemetry: hub snapshots, the watch view, executor heartbeats."""

import json
import time

from repro.experiments.executor import CampaignConfig, Task, run_campaign
from repro.obs.telemetry import (
    STATUS_FILENAME,
    TelemetryHub,
    render_status,
    watch,
)


# Module-level runners so the supervised (multiprocessing) mode can pickle.

def double(payload):
    return payload["x"] * 2


def slow_double(payload):
    # Long enough to span several heartbeat intervals.
    time.sleep(0.25)
    return payload["x"] * 2


def task(key, runner, x=0):
    return Task(key=key, runner=runner, payload={"x": x}, label=key)


# ---------------------------------------------------------------------------
# TelemetryHub
# ---------------------------------------------------------------------------

def test_hub_lifecycle_counts_and_snapshot(tmp_path):
    hub = TelemetryHub(tmp_path, total=4, write_every_s=0.0)
    hub.task_resumed("r1")
    hub.task_started("a", "cell a")
    hub.task_started("b", "cell b")
    hub.task_done("a")
    hub.task_quarantined("b")
    status = hub.status()
    assert status["schema"] == 1
    assert status["total"] == 4
    assert status["done"] == 2          # one fresh + one resumed
    assert status["resumed"] == 1
    assert status["quarantined"] == 1
    assert status["running"] == []
    assert status["eta_s"] is not None  # 1 fresh cell done, 1 remaining
    hub.close()
    written = json.loads((tmp_path / STATUS_FILENAME).read_text())
    assert written["done"] == 2


def test_hub_eta_needs_a_fresh_completion(tmp_path):
    hub = TelemetryHub(tmp_path, total=2, write_every_s=0.0)
    assert hub.status()["eta_s"] is None
    hub.task_resumed("r1")  # resumed cells cost nothing: still no basis
    assert hub.status()["eta_s"] is None
    hub.close()


def test_hub_heartbeat_derives_events_per_second(tmp_path):
    hub = TelemetryHub(tmp_path, total=1, write_every_s=0.0)
    hub.task_started("a", "cell a")
    hub.heartbeat("a", {"events": 100, "wall_s": 1.0, "sim_time_s": 5.0})
    assert "events_per_s" not in hub.running["a"]  # needs two beats
    hub.heartbeat("a", {"events": 300, "wall_s": 2.0, "sim_time_s": 9.0})
    entry = hub.running["a"]
    assert entry["events_per_s"] == 200.0
    assert entry["sim_time_s"] == 9.0
    # A late beat for a worker already classified is dropped silently.
    hub.heartbeat("ghost", {"events": 1, "wall_s": 1.0})
    assert "ghost" not in hub.running
    status = hub.status()
    assert status["running"][0]["key"] == "a"
    hub.close()


def test_hub_retry_clears_the_running_entry(tmp_path):
    hub = TelemetryHub(tmp_path, total=1, write_every_s=0.0)
    hub.task_started("a", "cell a")
    hub.task_retrying("a")
    assert hub.running == {}
    assert hub.done == 0
    hub.close()


def test_hub_throttles_intermediate_writes(tmp_path):
    hub = TelemetryHub(tmp_path, total=3, write_every_s=3600.0)
    hub.task_started("a", "cell a")  # throttled: nothing forced yet
    for i in range(20):
        hub.heartbeat("a", {"events": i, "wall_s": float(i)})
    assert not (tmp_path / STATUS_FILENAME).exists()
    hub.task_done("a")               # lifecycle edges force a write
    assert (tmp_path / STATUS_FILENAME).exists()
    hub.close()


# ---------------------------------------------------------------------------
# Rendering and the watch loop
# ---------------------------------------------------------------------------

def _status(total=4, done=2, running=(), eta=12.5, quarantined=0):
    return {
        "schema": 1,
        "updated_utc": "2026-08-08T00:00:00Z",
        "elapsed_s": 3.2,
        "total": total,
        "done": done,
        "resumed": 0,
        "quarantined": quarantined,
        "running": list(running),
        "eta_s": eta,
    }


def test_render_status_panel_and_worker_table():
    text = render_status(_status(running=[
        {"key": "a", "label": "grid 15x15", "events": 1200,
         "sim_time_s": 4.5, "events_per_s": 9000.0},
    ]))
    assert "2/4" in text
    assert "eta 12.5s" in text
    assert "running workers" in text
    assert "grid 15x15" in text
    assert "9000" in text
    bare = render_status(_status(running=[], eta=None))
    assert "eta -" in bare
    assert "running workers" not in bare


def test_watch_exit_codes(tmp_path, capsys):
    assert watch(tmp_path / "nodir", once=True) == 2
    assert "no status file" in capsys.readouterr().out

    bad = tmp_path / "bad"
    bad.mkdir()
    (bad / STATUS_FILENAME).write_text("{not json", encoding="utf-8")
    assert watch(bad, once=True) == 2
    assert "unreadable status file" in capsys.readouterr().out

    good = tmp_path / "good"
    good.mkdir()
    (good / STATUS_FILENAME).write_text(
        json.dumps(_status(total=2, done=2, eta=None)), encoding="utf-8")
    assert watch(good, once=True) == 0
    assert "campaign progress" in capsys.readouterr().out


def test_watch_polls_until_finished_or_budget(tmp_path, capsys):
    live = tmp_path / "live"
    live.mkdir()
    (live / STATUS_FILENAME).write_text(
        json.dumps(_status(total=4, done=1)), encoding="utf-8")
    # Unfinished campaign: the poll budget, not completion, ends the loop.
    assert watch(live, interval_s=0.01, max_polls=3) == 0
    assert capsys.readouterr().out.count("campaign progress") == 3


# ---------------------------------------------------------------------------
# Executor integration
# ---------------------------------------------------------------------------

def test_inline_campaign_publishes_status(tmp_path):
    telemetry = tmp_path / "telemetry"
    outcome = run_campaign(
        [task(f"t{i}", double, x=i) for i in range(3)],
        CampaignConfig(telemetry_dir=telemetry),
    )
    assert outcome.report.completed == 3
    status = json.loads((telemetry / STATUS_FILENAME).read_text())
    assert status["done"] == status["total"] == 3
    assert status["running"] == []


def test_supervised_campaign_with_heartbeats_completes(tmp_path):
    telemetry = tmp_path / "telemetry"
    outcome = run_campaign(
        [task(f"t{i}", slow_double, x=i) for i in range(2)],
        CampaignConfig(processes=2, telemetry_dir=telemetry,
                       heartbeat_s=0.05),
    )
    assert outcome.results == {"t0": 0, "t1": 2}
    status = json.loads((telemetry / STATUS_FILENAME).read_text())
    assert status["done"] == 2
    assert status["quarantined"] == 0


def test_heartbeats_without_telemetry_dir_are_harmless():
    outcome = run_campaign(
        [task("t0", slow_double, x=3)],
        CampaignConfig(processes=1, heartbeat_s=0.05),
    )
    assert outcome.results == {"t0": 6}


def test_campaign_config_rejects_negative_heartbeat():
    import pytest

    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        CampaignConfig(heartbeat_s=-1.0)


# ---------------------------------------------------------------------------
# degraded telemetry: status writes failing under disk faults
# ---------------------------------------------------------------------------

def test_hub_survives_enospc_and_counts_the_failures(tmp_path):
    from repro.chaos.schedule import FaultSpec
    from repro.chaos.testing import faulty_fs

    hub = TelemetryHub(tmp_path, total=2, write_every_s=0.0)
    spec = FaultSpec(kind="enospc", path_substring=STATUS_FILENAME,
                     once=False)
    with faulty_fs(spec):
        hub.task_started("a", "cell a")
        hub.task_done("a")           # every write hits ENOSPC; no raise
    assert hub.write_errors >= 2
    assert "ENOSPC" in hub.last_write_error or "no space" in hub.last_write_error
    assert not (tmp_path / STATUS_FILENAME).exists()
    # Disk recovers: the next snapshot lands and self-reports the outage.
    hub.task_started("b", "cell b")
    hub.task_done("b")
    status = json.loads((tmp_path / STATUS_FILENAME).read_text())
    assert status["degraded"]["write_errors"] == hub.write_errors
    assert status["done"] == 2
    hub.close()


def test_campaign_finishes_despite_dead_telemetry_disk(tmp_path):
    from repro.chaos.schedule import FaultSpec
    from repro.chaos.testing import faulty_fs

    config = CampaignConfig(
        processes=None, telemetry_dir=tmp_path / "telemetry",
        telemetry_write_every_s=0.0,
    )
    spec = FaultSpec(kind="eio", path_substring="status.json", once=False)
    with faulty_fs(spec):
        outcome = run_campaign([task("a", double, 3), task("b", double, 4)],
                               config)
    # The observability side-channel degraded; the campaign did not.
    assert outcome.results == {"a": 6, "b": 8}
    assert not outcome.quarantined
