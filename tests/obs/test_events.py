"""Structured event log: spans, JSONL round trips, Chrome trace export."""

import json

import pytest

from repro.obs.events import (
    SUPPORTED_SCHEMA_VERSIONS,
    TRACE_SCHEMA_VERSION,
    EventLog,
    TraceEvent,
    load_jsonl,
)


def test_instant_events_append():
    log = EventLog()
    log.instant(1.0, "tx_data", node=3, detail={"unit": 0})
    log.instant(2.0, "rx_lost")
    assert len(log) == 2
    first = log.events[0]
    assert first.ph == "i"
    assert first.node == 3
    assert first.detail == {"unit": 0}
    assert log.events[1].node is None


def test_span_begin_end_emits_one_complete_event():
    log = EventLog()
    log.begin(1.0, "span_page", node=2, key=0, detail={"unit": 0})
    log.end(3.5, "span_page", node=2, key=0, detail={"ok": True})
    assert len(log) == 1
    span = log.events[0]
    assert span.ph == "X"
    assert span.ts == 1.0
    assert span.dur == 2.5
    assert span.detail == {"unit": 0, "ok": True}  # begin+end detail merged


def test_duplicate_begin_restarts_the_span():
    log = EventLog()
    log.begin(1.0, "span_page", node=2, key=0)
    log.begin(4.0, "span_page", node=2, key=0)  # e.g. assembly restarted
    log.end(5.0, "span_page", node=2, key=0)
    assert [e.ts for e in log.events] == [4.0]
    assert log.events[0].dur == 1.0


def test_unmatched_end_degrades_to_instant():
    log = EventLog()
    log.end(2.0, "span_page", node=1, key=7)
    assert len(log) == 1
    assert log.events[0].ph == "i"


def test_spans_are_keyed_by_kind_node_and_key():
    log = EventLog()
    log.begin(1.0, "span_page", node=1, key=0)
    log.begin(2.0, "span_page", node=2, key=0)   # other node: distinct span
    log.end(3.0, "span_page", node=2, key=0)
    assert len(log.spans("span_page")) == 1
    assert log.spans("span_page")[0].node == 2
    assert log.flush_open_spans(9.0) == 1        # node 1's span still open


def test_flush_open_spans_marks_and_clears():
    log = EventLog()
    log.begin(1.0, "span_disseminate", node=4)
    log.begin(2.0, "span_page", node=4, key=0)
    flushed = log.flush_open_spans(10.0)
    assert flushed == 2
    opens = [e for e in log.events if e.detail.get("open")]
    assert len(opens) == 2
    assert all(e.ph == "X" for e in opens)
    assert [e.ts for e in opens] == [1.0, 2.0]   # flushed in start order
    assert log.flush_open_spans(11.0) == 0       # nothing left


def test_max_events_bounds_the_log_and_counts_drops():
    log = EventLog(max_events=3)
    for i in range(5):
        log.instant(float(i), "tx_data")
    assert len(log) == 3
    assert log.dropped == 2
    assert [e.ts for e in log.events] == [0.0, 1.0, 2.0]  # oldest kept
    assert log.header()["dropped"] == 2


def test_jsonl_round_trip(tmp_path):
    log = EventLog()
    log.instant(1.0, "tx_data", node=1, detail={"unit": 2})
    log.begin(2.0, "span_page", node=1, key=0)
    log.end(4.0, "span_page", node=1, key=0)
    path = tmp_path / "run.trace.jsonl"
    log.write_jsonl(path)
    header, events = load_jsonl(path)
    assert header["schema_version"] == TRACE_SCHEMA_VERSION
    assert header["events"] == 2
    assert events == list(log.events)


def test_load_jsonl_rejects_bad_headers(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_jsonl(empty)

    headerless = tmp_path / "headerless.jsonl"
    headerless.write_text('{"ts": 1.0, "kind": "tx_data"}\n')
    with pytest.raises(ValueError, match="not a trace header"):
        load_jsonl(headerless)

    future = tmp_path / "future.jsonl"
    future.write_text(json.dumps({
        "type": "header", "schema_version": TRACE_SCHEMA_VERSION + 1,
        "events": 0, "dropped": 0,
    }) + "\n")
    with pytest.raises(ValueError, match="unsupported trace schema"):
        load_jsonl(future)


def test_schema_v1_traces_remain_readable(tmp_path):
    # Schema v2 added the causal_* event kinds without changing the event
    # record shape, so v1 traces written before the bump must still load,
    # analyze, and pass the invariant checker.
    assert TRACE_SCHEMA_VERSION == 2
    assert SUPPORTED_SCHEMA_VERSIONS == frozenset({1, 2})
    path = tmp_path / "legacy.trace.jsonl"
    lines = [json.dumps({
        "type": "header", "schema_version": 1, "events": 3, "dropped": 0,
    })]
    for record in (
        {"ts": 0.5, "kind": "tx_data", "ph": "i", "node": 0,
         "detail": {"unit": 0}},
        {"ts": 0.9, "kind": "unit_complete", "ph": "i", "node": 1,
         "detail": {"unit": 0}},
        {"ts": 0.9, "kind": "node_complete", "ph": "i", "node": 1,
         "detail": {"total": 1}},
    ):
        lines.append(json.dumps(record))
    path.write_text("\n".join(lines) + "\n")

    header, events = load_jsonl(path)
    assert header["schema_version"] == 1
    assert [e.kind for e in events] == [
        "tx_data", "unit_complete", "node_complete",
    ]

    from repro.obs.analyze import analyze_jsonl
    analysis = analyze_jsonl(path)
    assert analysis["type"] == "flight_analysis"
    assert analysis["completed"] == 1

    from repro.obs.invariants import check_jsonl
    report = check_jsonl(path)
    assert report.ok
    assert report.events_seen == 3


def test_trace_event_dict_round_trip():
    event = TraceEvent(ts=1.5, kind="span_page", ph="X", node=3, dur=2.0,
                       detail={"unit": 1})
    assert TraceEvent.from_dict(event.to_dict()) == event
    sparse = TraceEvent(ts=0.0, kind="tx_adv")
    data = sparse.to_dict()
    assert "node" not in data and "dur" not in data and "detail" not in data
    assert TraceEvent.from_dict(data) == sparse


def test_chrome_trace_structure():
    log = EventLog()
    log.instant(1.0, "tx_data", node=0)
    log.begin(2.0, "span_page", node=2, key=0)
    log.end(3.0, "span_page", node=2, key=0)
    log.instant(4.0, "fault_partition")  # network-wide, no node
    doc = log.to_chrome_trace(process_name="test-sim")
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    # process name + network thread + one thread per named node (0 and 2).
    names = {e["args"]["name"] for e in meta}
    assert {"test-sim", "network", "node 0", "node 2"} <= names
    instants = [e for e in events if e["ph"] == "i"]
    assert all(e["s"] == "t" for e in instants)
    span = next(e for e in events if e["ph"] == "X")
    assert span["tid"] == 3            # node 2 -> track 3 (0 is the network)
    assert span["ts"] == 2.0 * 1e6     # microseconds
    assert span["dur"] == 1.0 * 1e6
    assert span["cat"] == "span"
    network = next(e for e in events if e["ph"] == "i"
                   and e["name"] == "fault_partition")
    assert network["tid"] == 0
    assert doc["otherData"]["schema_version"] == TRACE_SCHEMA_VERSION


def test_of_kind_and_spans_queries():
    log = EventLog()
    log.instant(1.0, "tx_data")
    log.instant(2.0, "tx_adv")
    log.begin(1.0, "span_page", key=0)
    log.end(2.0, "span_page", key=0)
    assert [e.kind for e in log.of_kind("tx_data")] == ["tx_data"]
    assert len(log.spans()) == 1
    assert log.spans("span_disseminate") == []


def test_header_counts_flushed_open_spans():
    log = EventLog()
    log.begin(1.0, "span_page", node=1, key=0)
    assert log.header()["open_spans_flushed"] == 0
    assert log.flush_open_spans(3.0) == 1
    header = log.header()
    assert header["open_spans_flushed"] == 1
    (span,) = log.spans("span_page")
    assert span.detail["open"] is True
