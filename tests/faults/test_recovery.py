"""End-to-end crash/reboot recovery: flash-persisted resume, churn survival."""

import pytest

from repro.core.packets import DataPacket
from repro.experiments.scenarios import FaultyGridScenario, run_faulty_grid
from repro.faults import FaultPlan, NodeFlash
from repro.sim.trace import TraceRecorder

PROTOCOLS = ("deluge", "seluge", "lr-seluge")

SMALL_GRID = dict(topology="grid:2x2:3", image_size=3072, k=8, n=12,
                  max_time=600.0)


# -- NodeFlash unit behaviour -------------------------------------------------


def _pkt(unit, index):
    return DataPacket(version=2, unit=unit, index=index, payload=b"x" * 8)


def test_flash_starts_empty_and_records_writes():
    flash = NodeFlash(5)
    assert flash.empty
    flash.write_unit(2, 1, {0: _pkt(1, 0)}, total_units=4)
    assert not flash.empty
    assert flash.stored_units == [1]
    assert flash.total_units == 4
    assert flash.writes == 1
    assert flash.unit_packets(1)[0].unit == 1
    assert flash.unit_packets(9) is None


def test_flash_new_version_wipes_old_contents():
    flash = NodeFlash(5)
    flash.write_unit(2, 1, {0: _pkt(1, 0)})
    flash.set_units_complete(2)
    flash.write_unit(3, 1, {0: _pkt(1, 0)})
    assert flash.version == 3
    assert flash.wipes == 1
    assert flash.units_complete == 0  # progress for v2 is gone


def test_flash_truncate_from_drops_suffix():
    flash = NodeFlash(5)
    for unit in (1, 2, 3):
        flash.write_unit(2, unit, {0: _pkt(unit, 0)})
    flash.set_units_complete(4)
    flash.truncate_from(2)
    assert flash.stored_units == [1]
    assert flash.units_complete == 2


def test_flash_unit_packets_returns_a_copy():
    flash = NodeFlash(5)
    flash.write_unit(2, 1, {0: _pkt(1, 0)})
    flash.unit_packets(1).clear()
    assert flash.unit_packets(1)  # internal store unchanged


# -- scripted crash/reboot: flash resume --------------------------------------


def _crash_run(protocol, plan, seed=7, trace=None, **overrides):
    scenario = FaultyGridScenario(
        protocol=protocol, seed=seed, plan=plan,
        **{**SMALL_GRID, **overrides},
    )
    return run_faulty_grid(scenario, trace=trace)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_rebooted_node_resumes_from_flash_not_page_zero(protocol):
    plan = FaultPlan().crash(8.0, node=3, reboot_after=15.0)
    trace = TraceRecorder(keep_records=True)
    result = _crash_run(protocol, plan, trace=trace)
    assert result.completed and result.images_ok
    reboots = [r for r in trace.records if r.kind == "fault_reboot"]
    assert len(reboots) == 1
    assert reboots[0].node == 3
    # the crashed node had completed pages in flash: resume index > 0
    assert reboots[0].get("resume_unit") > 0
    assert result.counters.get("flash_units_restored", 0) > 0


def test_cold_reboot_without_flash_restarts_from_zero():
    plan = FaultPlan().crash(8.0, node=3, reboot_after=15.0)
    trace = TraceRecorder(keep_records=True)
    scenario = FaultyGridScenario(protocol="lr-seluge", seed=7, plan=plan,
                                  **SMALL_GRID)
    # run_faulty_grid attaches NodeFlash; strip node 3's to model a node
    # whose flash is absent (factory-fresh or corrupted beyond use)
    import repro.experiments.scenarios as scenarios_mod

    original = scenarios_mod.NodeFlash
    try:
        scenarios_mod.NodeFlash = (
            lambda node_id: None if node_id == 3 else original(node_id)
        )
        result = run_faulty_grid(scenario, trace=trace)
    finally:
        scenarios_mod.NodeFlash = original
    assert result.completed and result.images_ok
    reboots = [r for r in trace.records if r.kind == "fault_reboot"]
    assert reboots[0].get("resume_unit") == 0


def test_base_station_outage_stalls_then_recovers():
    # Base (node 0) goes down early and comes back: dissemination still
    # finishes because the base re-advertises after reboot.
    plan = FaultPlan().crash(3.0, node=0, reboot_after=20.0)
    trace = TraceRecorder(keep_records=True)
    result = _crash_run("lr-seluge", plan, trace=trace)
    assert result.completed and result.images_ok
    reboots = [r for r in trace.records if r.kind == "fault_reboot"]
    assert [r.node for r in reboots] == [0]
    assert result.latency > 20.0  # the outage cost real time


# -- stochastic churn ---------------------------------------------------------


CHURN = dict(topology="grid:2x2:3", image_size=3000, k=8, n=12, seed=1,
             max_time=600.0, mtbf=5.0, mttr=4.0, churn_horizon=60.0)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_all_protocols_complete_under_churn(protocol):
    result = run_faulty_grid(FaultyGridScenario(protocol=protocol, **CHURN))
    assert result.completed and result.images_ok
    assert result.completion_rate == 1.0
    assert result.crash_count > 0
    assert result.reboot_count > 0


def test_churn_costs_latency_vs_fault_free_baseline():
    scenario = FaultyGridScenario(protocol="lr-seluge", **CHURN)
    faulty = run_faulty_grid(scenario)
    baseline = run_faulty_grid(scenario.fault_free())
    assert baseline.crash_count == 0
    assert faulty.latency > baseline.latency
