"""Unit tests for FaultPlan / FaultEvent and the stochastic generators."""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    crash_reboot_churn,
    link_flap_churn,
)
from repro.sim.rng import RngRegistry


def test_builders_produce_expected_kinds():
    plan = (
        FaultPlan()
        .crash(5.0, node=2, reboot_after=3.0)
        .link_down(1.0, 0, 1)
        .link_up(2.0, 0, 1)
        .partition(4.0, [0, 1], [2, 3], heal_after=2.0)
        .corrupt(0.5, duration=2.0, rate=0.4, mode="truncate")
    )
    kinds = [e.kind for e in plan]
    assert kinds == [
        FaultKind.CORRUPT,      # t=0.5
        FaultKind.LINK_DOWN,    # t=1.0
        FaultKind.LINK_UP,      # t=2.0
        FaultKind.PARTITION,    # t=4.0
        FaultKind.NODE_CRASH,   # t=5.0
        FaultKind.HEAL,         # t=6.0
        FaultKind.NODE_REBOOT,  # t=8.0
    ]


def test_events_sorted_stably_by_time():
    plan = FaultPlan().reboot(3.0, 1).crash(3.0, 2).crash(1.0, 3)
    events = plan.events
    assert [e.time for e in events] == [1.0, 3.0, 3.0]
    # same-time events keep insertion order (reboot added before crash)
    assert events[1].kind is FaultKind.NODE_REBOOT
    assert events[2].kind is FaultKind.NODE_CRASH


def test_merge_keeps_both_plans_events():
    a = FaultPlan().crash(1.0, 1)
    b = FaultPlan().crash(2.0, 2)
    merged = a.merge(b)
    assert len(merged) == 2
    assert len(a) == 1 and len(b) == 1  # inputs untouched


def test_json_round_trip():
    plan = (
        FaultPlan()
        .crash(8.0, node=3, reboot_after=15.0)
        .partition(10.0, [0, 1], [2, 3])
        .heal(20.0)
        .corrupt(1.0, duration=5.0, rate=0.25, mode="drop")
        .link_down(2.0, 4, 5)
    )
    restored = FaultPlan.from_json(plan.to_json())
    assert restored == plan


def test_from_json_accepts_bare_list():
    plan = FaultPlan.from_json('[{"time": 1.0, "kind": "crash", "node": 7}]')
    assert len(plan) == 1
    assert plan.events[0].node == 7


@pytest.mark.parametrize("bad", [
    "not json",
    '{"events": 42}',
    '{"events": [{"time": 1.0, "kind": "meteor"}]}',
    '{"events": [{"kind": "crash", "node": 1}]}',
])
def test_from_json_rejects_malformed(bad):
    with pytest.raises(ConfigError):
        FaultPlan.from_json(bad)


def test_event_validation():
    with pytest.raises(ConfigError):
        FaultEvent(-1.0, FaultKind.NODE_CRASH, node=1)       # negative time
    with pytest.raises(ConfigError):
        FaultEvent(1.0, FaultKind.NODE_CRASH)                # missing node
    with pytest.raises(ConfigError):
        FaultEvent(1.0, FaultKind.LINK_DOWN)                 # missing link
    with pytest.raises(ConfigError):
        FaultEvent(1.0, FaultKind.PARTITION, groups=((1, 2),))   # one group
    with pytest.raises(ConfigError):
        FaultEvent(1.0, FaultKind.PARTITION, groups=((1,), (1,)))  # overlap
    with pytest.raises(ConfigError):
        FaultEvent(1.0, FaultKind.CORRUPT, duration=0.0)     # zero duration
    with pytest.raises(ConfigError):
        FaultEvent(1.0, FaultKind.CORRUPT, duration=1.0, rate=0.0)
    with pytest.raises(ConfigError):
        FaultEvent(1.0, FaultKind.CORRUPT, duration=1.0, mode="scramble")
    with pytest.raises(ConfigError):
        FaultPlan().crash(1.0, 1, reboot_after=0.0)
    with pytest.raises(ConfigError):
        FaultPlan().partition(1.0, [0], [1], heal_after=-1.0)


# -- stochastic generators ----------------------------------------------------


def test_crash_reboot_churn_is_deterministic():
    a = crash_reboot_churn(RngRegistry(42), [1, 2, 3], mtbf=10.0, mttr=5.0,
                           horizon=100.0)
    b = crash_reboot_churn(RngRegistry(42), [1, 2, 3], mtbf=10.0, mttr=5.0,
                           horizon=100.0)
    assert a == b
    c = crash_reboot_churn(RngRegistry(43), [1, 2, 3], mtbf=10.0, mttr=5.0,
                           horizon=100.0)
    assert a != c


def test_crash_reboot_churn_pairs_every_crash_with_a_reboot():
    plan = crash_reboot_churn(RngRegistry(7), [1, 2], mtbf=5.0, mttr=2.0,
                              horizon=60.0)
    crashes = [e for e in plan if e.kind is FaultKind.NODE_CRASH]
    reboots = [e for e in plan if e.kind is FaultKind.NODE_REBOOT]
    assert len(crashes) == len(reboots) > 0
    assert all(e.time < 60.0 for e in crashes)  # crashes respect the horizon
    # per node, crash/reboot strictly alternate and never overlap
    for node in (1, 2):
        times = sorted(
            (e.time, e.kind) for e in plan if e.node == node
        )
        for (t1, k1), (t2, k2) in zip(times, times[1:]):
            assert k1 != k2
            assert t2 > t1


def test_link_flap_churn_windows_do_not_overlap():
    plan = link_flap_churn(RngRegistry(3), [(0, 1), (1, 0)], p_flap=0.5,
                           down_time=4.0, check_interval=2.0, horizon=80.0)
    downs = [e for e in plan if e.kind is FaultKind.LINK_DOWN]
    ups = [e for e in plan if e.kind is FaultKind.LINK_UP]
    assert len(downs) == len(ups) > 0
    for link in ((0, 1), (1, 0)):
        events = sorted((e.time, e.kind) for e in plan if e.link == link)
        for (t1, k1), (t2, k2) in zip(events, events[1:]):
            assert k1 != k2  # down, up, down, up ...


def test_generator_validation():
    rngs = RngRegistry(1)
    with pytest.raises(ConfigError):
        crash_reboot_churn(rngs, [1], mtbf=0.0, mttr=1.0, horizon=10.0)
    with pytest.raises(ConfigError):
        crash_reboot_churn(rngs, [1], mtbf=1.0, mttr=-1.0, horizon=10.0)
    with pytest.raises(ConfigError):
        link_flap_churn(rngs, [(0, 1)], p_flap=1.5, down_time=1.0,
                        check_interval=1.0, horizon=10.0)
    with pytest.raises(ConfigError):
        link_flap_churn(rngs, [(0, 1)], p_flap=0.5, down_time=0.0,
                        check_interval=1.0, horizon=10.0)
