"""Unit tests for FaultInjector and the radio-level fault hooks."""

import pytest

from repro.core.packets import DataPacket
from repro.errors import SimulationError
from repro.faults import FaultInjector, FaultPlan
from repro.net.channel import NoLoss
from repro.net.node import NetworkNode
from repro.net.packet import FrameKind
from repro.net.radio import Radio, RadioConfig
from repro.net.topology import Topology, star_topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


class Sink(NetworkNode):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def on_receive(self, frame, sender):
        self.received.append((frame, sender))


def _network(topo=None, n_receivers=3):
    sim = Simulator()
    rngs = RngRegistry(1)
    trace = TraceRecorder(keep_records=True)
    topo = topo or star_topology(n_receivers)
    radio = Radio(sim, topo, NoLoss(), rngs, trace,
                  config=RadioConfig(collisions=False))
    nodes = [Sink(i, sim, radio, rngs, trace) for i in topo.node_ids]
    return sim, radio, nodes, trace, rngs


def _install(sim, radio, trace, nodes, plan, rngs):
    injector = FaultInjector(sim, radio, trace, nodes, plan, rngs)
    injector.install()
    return injector


def _line_topology():
    # 0 - 1 - 2 - 3 chain
    neighbors = {0: [1], 1: [0, 2], 2: [1, 3], 3: [2]}
    positions = {i: (float(i), 0.0) for i in range(4)}
    loss = {(u, v): 0.0 for u, vs in neighbors.items() for v in vs}
    return Topology(positions=positions, neighbors=neighbors, link_loss=loss)


# -- radio primitives ---------------------------------------------------------


def test_detached_node_neither_sends_nor_receives():
    sim, radio, nodes, trace, rngs = _network()
    radio.detach(1)
    nodes[0].broadcast(FrameKind.DATA, 50, "x")
    sim.run()
    assert nodes[1].received == []
    assert len(nodes[2].received) == 1
    nodes[1].broadcast(FrameKind.DATA, 50, "y")
    sim.run()
    assert all(not n.received or n.received[-1][0].payload != "y"
               for n in (nodes[0], nodes[2]))
    radio.attach(1)
    nodes[0].broadcast(FrameKind.DATA, 50, "z")
    sim.run()
    assert nodes[1].received[-1][0].payload == "z"


def test_detach_aborts_in_flight_transmission():
    sim, radio, nodes, trace, rngs = _network()
    nodes[1].broadcast(FrameKind.DATA, 200, "doomed")
    sim.schedule(radio.config.airtime(200) / 2, radio.detach, 1)
    sim.run()
    assert nodes[0].received == []
    assert nodes[2].received == []
    assert trace.counters.get("tx_aborted", 0) == 1


def test_link_down_is_directional():
    sim, radio, nodes, trace, rngs = _network()
    radio.set_link(0, 1, up=False)
    nodes[0].broadcast(FrameKind.DATA, 50, "a")
    sim.run()
    assert nodes[1].received == []        # 0 -> 1 cut
    assert len(nodes[2].received) == 1    # 0 -> 2 unaffected
    nodes[1].broadcast(FrameKind.DATA, 50, "b")
    sim.run()
    assert nodes[0].received[-1][0].payload == "b"  # 1 -> 0 still up
    radio.set_link(0, 1, up=True)
    nodes[0].broadcast(FrameKind.DATA, 50, "c")
    sim.run()
    assert nodes[1].received[-1][0].payload == "c"


# -- injector plan replay -----------------------------------------------------


def test_injector_crash_reboot_calls_node_hooks():
    calls = []

    class Crashable(Sink):
        def crash(self):
            calls.append(("crash", self.node_id))

        def reboot(self):
            calls.append(("reboot", self.node_id))

    sim = Simulator()
    rngs = RngRegistry(1)
    trace = TraceRecorder()
    topo = star_topology(2)
    radio = Radio(sim, topo, NoLoss(), rngs, trace,
                  config=RadioConfig(collisions=False))
    nodes = [Crashable(i, sim, radio, rngs, trace) for i in topo.node_ids]
    plan = FaultPlan().crash(1.0, 2, reboot_after=2.0)
    _install(sim, radio, trace, nodes, plan, rngs)
    sim.run()
    assert calls == [("crash", 2), ("reboot", 2)]


def test_injector_rejects_double_install_and_unknown_node():
    sim, radio, nodes, trace, rngs = _network()
    injector = _install(sim, radio, trace, nodes, FaultPlan(), rngs)
    with pytest.raises(SimulationError):
        injector.install()
    sim2, radio2, nodes2, trace2, rngs2 = _network()
    plan = FaultPlan().crash(1.0, 99)
    _install(sim2, radio2, trace2, nodes2, plan, rngs2)
    with pytest.raises(SimulationError):
        sim2.run()


def test_partition_and_heal():
    sim, radio, nodes, trace, rngs = _network(topo=_line_topology())
    plan = FaultPlan().partition(1.0, [0, 1], [2, 3], heal_after=5.0)
    _install(sim, radio, trace, nodes, plan, rngs)
    sim.run(until=2.0)
    nodes[1].broadcast(FrameKind.DATA, 50, "cut")
    sim.run(until=3.0)
    assert nodes[0].received[-1][0].payload == "cut"   # same group
    assert nodes[2].received == []                     # across the cut
    sim.run(until=7.0)                                 # heal at t=6
    nodes[1].broadcast(FrameKind.DATA, 50, "healed")
    sim.run()
    assert nodes[2].received[-1][0].payload == "healed"


def test_heal_does_not_restore_explicitly_downed_links():
    sim, radio, nodes, trace, rngs = _network(topo=_line_topology())
    plan = (
        FaultPlan()
        .link_down(0.5, 1, 0)
        .partition(1.0, [0, 1], [2, 3], heal_after=1.0)
    )
    _install(sim, radio, trace, nodes, plan, rngs)
    sim.run(until=3.0)
    assert radio.link_is_up(1, 2)       # partition healed
    assert not radio.link_is_up(1, 0)   # explicit link-down stays down


# -- frame corruption ---------------------------------------------------------


def _data_frame_payload():
    return DataPacket(version=2, unit=3, index=1, payload=b"\x55" * 16)


def test_corrupt_flip_mangles_data_payloads():
    sim, radio, nodes, trace, rngs = _network()
    plan = FaultPlan().corrupt(0.0, duration=100.0, rate=1.0, mode="flip")
    _install(sim, radio, trace, nodes, plan, rngs)
    nodes[0].broadcast(FrameKind.DATA, 50, _data_frame_payload())
    sim.run()
    for node in nodes[1:]:
        payload = node.received[0][0].payload.payload
        assert payload[0] == 0x55 ^ 0xFF
        assert payload[1:] == b"\x55" * 15
    assert trace.counters["fault_corrupt_delivered"] == 3


def test_corrupt_truncate_shortens_payload():
    sim, radio, nodes, trace, rngs = _network()
    plan = FaultPlan().corrupt(0.0, duration=100.0, rate=1.0, mode="truncate")
    _install(sim, radio, trace, nodes, plan, rngs)
    nodes[0].broadcast(FrameKind.DATA, 50, _data_frame_payload())
    sim.run()
    assert len(nodes[1].received[0][0].payload.payload) == 8


def test_corrupt_drop_and_non_data_frames_vanish():
    sim, radio, nodes, trace, rngs = _network()
    plan = FaultPlan().corrupt(0.0, duration=100.0, rate=1.0, mode="drop")
    _install(sim, radio, trace, nodes, plan, rngs)
    nodes[0].broadcast(FrameKind.DATA, 50, _data_frame_payload())
    nodes[0].broadcast(FrameKind.ADV, 30, "not-a-data-packet")
    sim.run()
    assert all(n.received == [] for n in nodes[1:])
    assert trace.counters["fault_corrupt_dropped"] == 6


def test_corrupt_window_expires():
    sim, radio, nodes, trace, rngs = _network()
    plan = FaultPlan().corrupt(0.0, duration=1.0, rate=1.0, mode="drop")
    _install(sim, radio, trace, nodes, plan, rngs)
    sim.run(until=2.0)
    nodes[0].broadcast(FrameKind.DATA, 50, _data_frame_payload())
    sim.run()
    assert len(nodes[1].received) == 1  # delivered untouched
    assert nodes[1].received[0][0].payload.payload == b"\x55" * 16
