"""Unit tests for loss models."""

import pytest

from repro.net.channel import (
    BernoulliLoss,
    CompositeLoss,
    GilbertElliottLoss,
    NoLoss,
    PerLinkLoss,
    SyntheticNoiseTrace,
    snr_to_prr,
)
from repro.net.packet import Frame, FrameKind
from repro.sim.rng import RngRegistry
from repro.errors import ConfigError


def _frame():
    return Frame(kind=FrameKind.DATA, sender=0, size_bytes=50, payload=None)


def _drop_rate(model, trials=4000, receiver=1):
    rngs = RngRegistry(7)
    frame = _frame()
    drops = sum(
        model.should_drop(rngs, 0, receiver, frame, t * 0.01) for t in range(trials)
    )
    return drops / trials


def test_no_loss():
    assert _drop_rate(NoLoss()) == 0.0


def test_bernoulli_zero_and_validation():
    assert _drop_rate(BernoulliLoss(0.0)) == 0.0
    with pytest.raises(ConfigError):
        BernoulliLoss(1.0)
    with pytest.raises(ConfigError):
        BernoulliLoss(-0.1)


def test_bernoulli_empirical_rate():
    rate = _drop_rate(BernoulliLoss(0.3))
    assert 0.27 < rate < 0.33


def test_per_link_uses_directed_probabilities():
    model = PerLinkLoss({(0, 1): 0.0, (0, 2): 1.0})
    rngs = RngRegistry(1)
    frame = _frame()
    assert not model.should_drop(rngs, 0, 1, frame, 0.0)
    assert model.should_drop(rngs, 0, 2, frame, 0.0)
    # unknown links use the default (1.0 = always drop)
    assert model.should_drop(rngs, 0, 3, frame, 0.0)


def test_per_link_validation():
    with pytest.raises(ConfigError):
        PerLinkLoss({(0, 1): 1.5})


def test_gilbert_elliott_mean_loss_between_states():
    model = GilbertElliottLoss(loss_good=0.0, loss_bad=1.0, mean_good=1.0, mean_bad=1.0)
    rate = _drop_rate(model, trials=8000)
    assert 0.35 < rate < 0.65  # half the time in each state


def test_gilbert_elliott_burstiness():
    """Consecutive outcomes should be positively correlated (bursty)."""
    model = GilbertElliottLoss(loss_good=0.01, loss_bad=0.95,
                               mean_good=5.0, mean_bad=5.0)
    rngs = RngRegistry(3)
    frame = _frame()
    outcomes = [
        model.should_drop(rngs, 0, 1, frame, t * 0.05) for t in range(6000)
    ]
    same = sum(a == b for a, b in zip(outcomes, outcomes[1:]))
    assert same / (len(outcomes) - 1) > 0.75


def test_gilbert_elliott_validation():
    with pytest.raises(ConfigError):
        GilbertElliottLoss(loss_good=1.5)
    with pytest.raises(ConfigError):
        GilbertElliottLoss(mean_good=0.0)


def test_composite_any_drop_wins():
    model = CompositeLoss(NoLoss(), BernoulliLoss(0.0), PerLinkLoss({(0, 1): 1.0}))
    rngs = RngRegistry(1)
    assert model.should_drop(rngs, 0, 1, _frame(), 0.0)
    model2 = CompositeLoss(NoLoss(), BernoulliLoss(0.0))
    assert not model2.should_drop(rngs, 0, 1, _frame(), 0.0)
    with pytest.raises(ConfigError):
        CompositeLoss()


def test_snr_to_prr_monotonic_and_saturating():
    values = [snr_to_prr(s) for s in (-5, 0, 3, 6, 9, 12, 20)]
    assert all(b >= a for a, b in zip(values, values[1:]))
    assert values[0] < 0.01
    assert values[-1] > 0.99


def test_noise_trace_deterministic_and_bounded():
    a = SyntheticNoiseTrace(RngRegistry(5))
    b = SyntheticNoiseTrace(RngRegistry(5))
    samples_a = [a.noise_at(t * 0.05) for t in range(200)]
    samples_b = [b.noise_at(t * 0.05) for t in range(200)]
    assert samples_a == samples_b
    assert all(-120 < x < -60 for x in samples_a)


def test_noise_trace_has_heavy_periods():
    trace = SyntheticNoiseTrace(RngRegistry(11))
    samples = [trace.noise_at(t * 0.05) for t in range(2000)]
    heavy = sum(1 for x in samples if x > -90)
    assert 0 < heavy < len(samples)


def test_gilbert_elliott_empirical_rate_matches_stationary_mix():
    """Long-run loss rate ~= f_bad*loss_bad + f_good*loss_good where
    f_bad = mean_bad / (mean_good + mean_bad) (alternating renewal)."""
    model = GilbertElliottLoss(loss_good=0.05, loss_bad=0.5,
                               mean_good=6.0, mean_bad=2.0)
    rate = _drop_rate(model, trials=40000)
    expected = (6.0 * 0.05 + 2.0 * 0.5) / 8.0  # 0.1625
    assert abs(rate - expected) < 0.04


def test_gilbert_elliott_mean_burst_length():
    """With loss_good=0 / loss_bad=1, drop bursts trace BAD sojourns: the
    mean burst length (in samples) should be ~ mean_bad / sample period."""
    dt = 0.05
    model = GilbertElliottLoss(loss_good=0.0, loss_bad=1.0,
                               mean_good=4.0, mean_bad=2.0)
    rngs = RngRegistry(13)
    frame = _frame()
    outcomes = [
        model.should_drop(rngs, 0, 1, frame, t * dt) for t in range(60000)
    ]
    bursts = []
    run = 0
    for dropped in outcomes:
        if dropped:
            run += 1
        elif run:
            bursts.append(run)
            run = 0
    assert len(bursts) > 50
    mean_burst = sum(bursts) / len(bursts)
    expected = 2.0 / dt  # 40 samples
    assert 0.6 * expected < mean_burst < 1.5 * expected


def test_gilbert_elliott_links_evolve_independently():
    """Each directed link has its own chain + rng stream: interleaving
    queries to another link must not perturb the first link's outcomes."""
    times = [t * 0.05 for t in range(3000)]
    frame = _frame()

    model_a = GilbertElliottLoss(loss_good=0.0, loss_bad=1.0,
                                 mean_good=3.0, mean_bad=3.0)
    rngs_a = RngRegistry(21)
    alone = [model_a.should_drop(rngs_a, 0, 1, frame, t) for t in times]

    model_b = GilbertElliottLoss(loss_good=0.0, loss_bad=1.0,
                                 mean_good=3.0, mean_bad=3.0)
    rngs_b = RngRegistry(21)
    interleaved = []
    for t in times:
        model_b.should_drop(rngs_b, 0, 2, frame, t)  # other link traffic
        interleaved.append(model_b.should_drop(rngs_b, 0, 1, frame, t))
        model_b.should_drop(rngs_b, 2, 1, frame, t)

    assert alone == interleaved
    # and the two links are not mirroring each other's state
    other = [model_b.should_drop(rngs_b, 0, 2, frame, 3000 * 0.05 + i * 0.05)
             for i in range(500)]
    assert other != alone[:500]
