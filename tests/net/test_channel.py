"""Unit tests for loss models."""

import pytest

from repro.net.channel import (
    BernoulliLoss,
    CompositeLoss,
    GilbertElliottLoss,
    NoLoss,
    PerLinkLoss,
    SyntheticNoiseTrace,
    snr_to_prr,
)
from repro.net.packet import Frame, FrameKind
from repro.sim.rng import RngRegistry
from repro.errors import ConfigError


def _frame():
    return Frame(kind=FrameKind.DATA, sender=0, size_bytes=50, payload=None)


def _drop_rate(model, trials=4000, receiver=1):
    rngs = RngRegistry(7)
    frame = _frame()
    drops = sum(
        model.should_drop(rngs, 0, receiver, frame, t * 0.01) for t in range(trials)
    )
    return drops / trials


def test_no_loss():
    assert _drop_rate(NoLoss()) == 0.0


def test_bernoulli_zero_and_validation():
    assert _drop_rate(BernoulliLoss(0.0)) == 0.0
    with pytest.raises(ConfigError):
        BernoulliLoss(1.0)
    with pytest.raises(ConfigError):
        BernoulliLoss(-0.1)


def test_bernoulli_empirical_rate():
    rate = _drop_rate(BernoulliLoss(0.3))
    assert 0.27 < rate < 0.33


def test_per_link_uses_directed_probabilities():
    model = PerLinkLoss({(0, 1): 0.0, (0, 2): 1.0})
    rngs = RngRegistry(1)
    frame = _frame()
    assert not model.should_drop(rngs, 0, 1, frame, 0.0)
    assert model.should_drop(rngs, 0, 2, frame, 0.0)
    # unknown links use the default (1.0 = always drop)
    assert model.should_drop(rngs, 0, 3, frame, 0.0)


def test_per_link_validation():
    with pytest.raises(ConfigError):
        PerLinkLoss({(0, 1): 1.5})


def test_gilbert_elliott_mean_loss_between_states():
    model = GilbertElliottLoss(loss_good=0.0, loss_bad=1.0, mean_good=1.0, mean_bad=1.0)
    rate = _drop_rate(model, trials=8000)
    assert 0.35 < rate < 0.65  # half the time in each state


def test_gilbert_elliott_burstiness():
    """Consecutive outcomes should be positively correlated (bursty)."""
    model = GilbertElliottLoss(loss_good=0.01, loss_bad=0.95,
                               mean_good=5.0, mean_bad=5.0)
    rngs = RngRegistry(3)
    frame = _frame()
    outcomes = [
        model.should_drop(rngs, 0, 1, frame, t * 0.05) for t in range(6000)
    ]
    same = sum(a == b for a, b in zip(outcomes, outcomes[1:]))
    assert same / (len(outcomes) - 1) > 0.75


def test_gilbert_elliott_validation():
    with pytest.raises(ConfigError):
        GilbertElliottLoss(loss_good=1.5)
    with pytest.raises(ConfigError):
        GilbertElliottLoss(mean_good=0.0)


def test_composite_any_drop_wins():
    model = CompositeLoss(NoLoss(), BernoulliLoss(0.0), PerLinkLoss({(0, 1): 1.0}))
    rngs = RngRegistry(1)
    assert model.should_drop(rngs, 0, 1, _frame(), 0.0)
    model2 = CompositeLoss(NoLoss(), BernoulliLoss(0.0))
    assert not model2.should_drop(rngs, 0, 1, _frame(), 0.0)
    with pytest.raises(ConfigError):
        CompositeLoss()


def test_snr_to_prr_monotonic_and_saturating():
    values = [snr_to_prr(s) for s in (-5, 0, 3, 6, 9, 12, 20)]
    assert all(b >= a for a, b in zip(values, values[1:]))
    assert values[0] < 0.01
    assert values[-1] > 0.99


def test_noise_trace_deterministic_and_bounded():
    a = SyntheticNoiseTrace(RngRegistry(5))
    b = SyntheticNoiseTrace(RngRegistry(5))
    samples_a = [a.noise_at(t * 0.05) for t in range(200)]
    samples_b = [b.noise_at(t * 0.05) for t in range(200)]
    assert samples_a == samples_b
    assert all(-120 < x < -60 for x in samples_a)


def test_noise_trace_has_heavy_periods():
    trace = SyntheticNoiseTrace(RngRegistry(11))
    samples = [trace.noise_at(t * 0.05) for t in range(2000)]
    heavy = sum(1 for x in samples if x > -90)
    assert 0 < heavy < len(samples)
