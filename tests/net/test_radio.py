"""Unit tests for the broadcast radio and MAC."""

import pytest

from repro.errors import SimulationError
from repro.net.channel import BernoulliLoss, NoLoss, PerLinkLoss
from repro.net.node import NetworkNode
from repro.net.packet import Frame, FrameKind
from repro.net.radio import Radio, RadioConfig
from repro.net.topology import star_topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


class Sink(NetworkNode):
    """Records every delivered frame."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def on_receive(self, frame, sender):
        self.received.append((frame, sender, self.sim.now))


def _network(n_receivers=3, loss=None, collisions=True):
    sim = Simulator()
    rngs = RngRegistry(1)
    trace = TraceRecorder()
    topo = star_topology(n_receivers)
    radio = Radio(sim, topo, loss or NoLoss(), rngs, trace,
                  config=RadioConfig(collisions=collisions))
    nodes = [Sink(i, sim, radio, rngs, trace) for i in topo.node_ids]
    return sim, radio, nodes, trace


def test_broadcast_reaches_all_neighbors():
    sim, radio, nodes, trace = _network()
    nodes[0].broadcast(FrameKind.DATA, 50, "payload")
    sim.run()
    for node in nodes[1:]:
        assert len(node.received) == 1
        frame, sender, _ = node.received[0]
        assert sender == 0
        assert frame.payload == "payload"
    assert nodes[0].received == []  # no self-delivery


def test_airtime_determines_delivery_time():
    sim, radio, nodes, trace = _network()
    nodes[0].broadcast(FrameKind.DATA, 50, "x")
    sim.run()
    expected = radio.config.airtime(50)
    assert nodes[1].received[0][2] == pytest.approx(expected)


def test_counters_by_kind_and_bytes():
    sim, radio, nodes, trace = _network()
    nodes[0].broadcast(FrameKind.DATA, 50, "d")
    nodes[1].broadcast(FrameKind.SNACK, 20, "s")
    sim.run()
    assert trace.counters["tx_data"] == 1
    assert trace.counters["tx_snack"] == 1
    assert trace.counters["tx_data_bytes"] == 50
    assert trace.counters["tx_total"] == 2
    assert trace.counters["rx_delivered"] == 2 * 3  # two frames, three listeners each


def test_sender_queue_serialises_frames():
    sim, radio, nodes, trace = _network()
    nodes[0].broadcast(FrameKind.DATA, 50, "a")
    nodes[0].broadcast(FrameKind.DATA, 50, "b")
    assert radio.queue_length(0) >= 1
    sim.run()
    times = [t for _, _, t in nodes[1].received]
    assert len(times) == 2
    assert times[1] >= times[0] + radio.config.airtime(50)


def test_bernoulli_loss_drops_some():
    sim, radio, nodes, trace = _network(n_receivers=5, loss=BernoulliLoss(0.5))
    for _ in range(40):
        nodes[0].broadcast(FrameKind.DATA, 30, "x")
    sim.run()
    delivered = sum(len(n.received) for n in nodes[1:])
    assert 40 < delivered < 160  # of 200 possible, ~100 expected
    assert trace.counters["rx_lost"] + trace.counters["rx_delivered"] == 200


def test_per_link_loss_respected():
    loss = PerLinkLoss({(0, 1): 0.0, (0, 2): 1.0, (0, 3): 0.0}, default=0.0)
    sim, radio, nodes, trace = _network(n_receivers=3, loss=loss)
    nodes[0].broadcast(FrameKind.DATA, 30, "x")
    sim.run()
    assert len(nodes[1].received) == 1
    assert len(nodes[2].received) == 0
    assert len(nodes[3].received) == 1


def _custom_network(neighbors, collisions=True):
    from repro.net.topology import Topology

    positions = {i: (float(i), 0.0) for i in neighbors}
    topo = Topology(positions=positions, neighbors={u: list(vs) for u, vs in neighbors.items()})
    for u, vs in neighbors.items():
        for v in vs:
            topo.link_loss[(u, v)] = 0.0
    sim = Simulator()
    rngs = RngRegistry(1)
    trace = TraceRecorder()
    radio = Radio(sim, topo, NoLoss(), rngs, trace,
                  config=RadioConfig(collisions=collisions))
    nodes = {i: Sink(i, sim, radio, rngs, trace) for i in neighbors}
    return sim, radio, nodes, trace


def test_collision_hidden_terminal():
    # 1 -- 2 -- 3: nodes 1 and 3 cannot hear each other (no carrier sense),
    # so their simultaneous frames collide at node 2.
    sim, radio, nodes, trace = _custom_network({1: [2], 2: [1, 3], 3: [2]})
    nodes[1].broadcast(FrameKind.DATA, 50, "a")
    nodes[3].broadcast(FrameKind.DATA, 50, "b")
    sim.run()
    assert trace.counters.get("rx_collision", 0) == 2  # both lost at node 2
    assert len(nodes[2].received) == 0


def test_half_duplex_sender_misses_concurrent_frame():
    # Node 2 cannot hear node 1 (asymmetric), so it happily transmits while
    # node 1's frame is inbound — and misses it (half-duplex).
    sim, radio, nodes, trace = _custom_network({1: [2, 3], 2: [3], 3: []})
    nodes[1].broadcast(FrameKind.DATA, 50, "a")
    nodes[2].broadcast(FrameKind.DATA, 50, "b")
    sim.run()
    assert trace.counters.get("rx_halfduplex_miss", 0) >= 1
    assert len(nodes[2].received) == 0


def test_no_collisions_when_disabled():
    sim, radio, nodes, trace = _network(n_receivers=3, collisions=False)
    nodes[1].broadcast(FrameKind.DATA, 50, "a")
    nodes[2].broadcast(FrameKind.DATA, 50, "b")
    sim.run()
    assert trace.counters.get("rx_collision", 0) == 0
    # Everyone except the senders hears both frames.
    assert len(nodes[3].received) == 2


def test_carrier_sense_defers_second_sender():
    sim, radio, nodes, trace = _network(n_receivers=3, collisions=True)
    nodes[1].broadcast(FrameKind.DATA, 200, "long")
    # Start the second transmission while the first is on the air.
    sim.schedule(radio.config.airtime(200) / 2,
                 lambda: nodes[2].broadcast(FrameKind.DATA, 50, "late"))
    sim.run()
    # The late frame must not have collided: carrier sense deferred it.
    assert len(nodes[3].received) == 2


def test_cancel_queued_frames():
    sim, radio, nodes, trace = _network()
    nodes[0].broadcast(FrameKind.DATA, 50, "a")
    nodes[0].broadcast(FrameKind.DATA, 50, "b")
    nodes[0].broadcast(FrameKind.DATA, 50, "c")
    removed = radio.cancel_queued(0, lambda f: f.payload == "b")
    assert removed == 1
    sim.run()
    payloads = [f.payload for f, _, _ in nodes[1].received]
    assert payloads == ["a", "c"]


def test_duplicate_registration_rejected():
    sim, radio, nodes, trace = _network()
    with pytest.raises(SimulationError):
        Sink(1, sim, radio, RngRegistry(2), trace)


def test_unknown_node_id_rejected():
    sim, radio, nodes, trace = _network()
    with pytest.raises(SimulationError):
        Sink(99, sim, radio, RngRegistry(2), trace)


def test_frame_size_must_be_positive():
    with pytest.raises(ValueError):
        Frame(kind=FrameKind.DATA, sender=0, size_bytes=0, payload=None)
