"""Tests for TinyOS-style topology file I/O."""

import pytest

from repro.errors import ConfigError
from repro.net.topology import mica2_grid_tight
from repro.net.topology_file import load_topology, save_topology
from repro.sim.rng import RngRegistry


def test_roundtrip_preserves_structure(tmp_path):
    original = mica2_grid_tight(RngRegistry(3), rows=4, cols=4)
    path = tmp_path / "grid.txt"
    save_topology(original, path)
    loaded = load_topology(path)
    assert set(loaded.positions) == set(original.positions)
    for node_id, (x, y) in original.positions.items():
        lx, ly = loaded.positions[node_id]
        assert lx == pytest.approx(x, abs=1e-4)
        assert ly == pytest.approx(y, abs=1e-4)
    assert set(loaded.link_loss) == set(original.link_loss)
    for link, loss in original.link_loss.items():
        assert loaded.link_loss[link] == pytest.approx(loss, abs=1e-5)
    for node_id in original.node_ids:
        assert sorted(loaded.neighbors[node_id]) == sorted(original.neighbors[node_id])


def test_comments_and_blanks_ignored(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text(
        "# a comment\n\nnode 0 0 0\nnode 1 3.0 0\n\n# links\nlink 0 1 0.9\nlink 1 0 0.8\n"
    )
    topo = load_topology(path)
    assert topo.size == 2
    assert topo.link_loss[(0, 1)] == pytest.approx(0.1)
    assert topo.link_loss[(1, 0)] == pytest.approx(0.2)


def test_gain_mode_derives_prr(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("node 0 0 0\nnode 1 3 0\nlink 0 1 -70.0\nlink 1 0 -97.0\n")
    topo = load_topology(path, gain=True)
    assert topo.link_loss[(0, 1)] < 0.05   # strong signal: near-perfect
    assert (1, 0) not in topo.link_loss or topo.link_loss[(1, 0)] > 0.5


def test_zero_prr_links_omitted(tmp_path):
    path = tmp_path / "z.txt"
    path.write_text("node 0 0 0\nnode 1 3 0\nlink 0 1 0.0\n")
    topo = load_topology(path)
    assert (0, 1) not in topo.link_loss
    assert topo.neighbors[0] == []


def test_malformed_records_rejected(tmp_path):
    cases = [
        "node 0 0\n",                       # too few fields
        "node 0 0 0\nlink 0 1\n",           # too few link fields
        "frobnicate 1 2 3\n",               # unknown record
        "node 0 0 0\nnode 1 1 0\nlink 0 1 1.5\n",   # PRR out of range
        "node 0 0 0\nlink 0 9 0.5\n",       # unknown node
    ]
    for i, content in enumerate(cases):
        path = tmp_path / f"bad{i}.txt"
        path.write_text(content)
        with pytest.raises(ConfigError):
            load_topology(path)


def test_loaded_topology_runs_a_dissemination(tmp_path):
    """A file-loaded topology is a first-class simulation substrate."""
    from repro.core.image import CodeImage
    from repro.experiments.runner import CompletionTracker, run_network
    from repro.experiments.scenarios import make_params
    from repro.net.channel import PerLinkLoss
    from repro.net.radio import Radio, RadioConfig
    from repro.protocols.seluge import build_seluge_network
    from repro.sim.engine import Simulator
    from repro.sim.trace import TraceRecorder

    original = mica2_grid_tight(RngRegistry(5), rows=3, cols=3)
    path = tmp_path / "grid.txt"
    save_topology(original, path)
    topo = load_topology(path)

    sim = Simulator()
    rngs = RngRegistry(5)
    trace = TraceRecorder()
    radio = Radio(sim, topo, PerLinkLoss(topo.link_loss), rngs, trace,
                  config=RadioConfig(collisions=True))
    params = make_params("seluge", image_size=2000, k=8)
    image = CodeImage.synthetic(2000, version=2, seed=5)
    tracker = CompletionTracker(trace)
    base, nodes, pre = build_seluge_network(
        sim, radio, rngs, trace, params, image=image, on_complete=tracker)
    base.start()
    result = run_network(sim, trace, tracker, nodes, "seluge",
                         max_time=2400.0, expected_image=image.data)
    assert result.completed and result.images_ok
