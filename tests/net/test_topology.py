"""Unit tests for topologies and the propagation model."""

import pytest

from repro.errors import ConfigError
from repro.net.topology import (
    PropagationModel,
    grid_topology,
    mica2_grid_medium,
    mica2_grid_tight,
    random_disk_topology,
    star_topology,
)
from repro.sim.rng import RngRegistry


def test_star_fully_connected_and_lossless():
    topo = star_topology(5)
    assert topo.size == 6
    for u in topo.node_ids:
        assert sorted(topo.neighbors[u]) == [v for v in topo.node_ids if v != u]
    assert all(loss == 0.0 for loss in topo.link_loss.values())


def test_star_needs_receivers():
    with pytest.raises(ConfigError):
        star_topology(0)


def test_grid_positions_and_base_station():
    rngs = RngRegistry(1)
    topo = grid_topology(3, 4, spacing=2.0, rngs=rngs)
    assert topo.size == 13  # 12 grid nodes + base
    assert topo.positions[1] == (0.0, 0.0)
    assert topo.positions[12] == (6.0, 4.0)
    assert 0 in topo.positions


def test_grid_center_base_station():
    topo = grid_topology(3, 3, spacing=2.0, rngs=RngRegistry(1), base_station="center")
    assert topo.positions[0] == (2.0, 2.0)
    with pytest.raises(ConfigError):
        grid_topology(3, 3, spacing=2.0, base_station="edge")


def test_links_are_symmetric_in_existence_and_quality():
    topo = grid_topology(5, 5, spacing=3.0, rngs=RngRegistry(2))
    for (u, v), loss in topo.link_loss.items():
        assert (v, u) in topo.link_loss
        assert topo.link_loss[(v, u)] == pytest.approx(loss)


def test_closer_links_are_better_on_average():
    topo = grid_topology(6, 6, spacing=3.0, rngs=RngRegistry(3))
    near = [l for (u, v), l in topo.link_loss.items()
            if abs(topo.distance(u, v) - 3.0) < 0.1]
    far = [l for (u, v), l in topo.link_loss.items()
           if topo.distance(u, v) > 7.0]
    assert near and far
    assert sum(near) / len(near) < sum(far) / len(far)


def test_mica2_density_contrast():
    rngs = RngRegistry(4)
    tight = mica2_grid_tight(rngs, rows=10, cols=10)
    medium = mica2_grid_medium(RngRegistry(4), rows=10, cols=10)
    assert tight.average_degree() > 2 * medium.average_degree()
    assert tight.is_connected()
    assert medium.is_connected()


def test_mica2_medium_is_lossier():
    tight = mica2_grid_tight(RngRegistry(5), rows=10, cols=10)
    medium = mica2_grid_medium(RngRegistry(5), rows=10, cols=10)
    mean = lambda topo: sum(topo.link_loss.values()) / len(topo.link_loss)
    assert mean(medium) > mean(tight)


def test_propagation_model_monotone_in_distance():
    model = PropagationModel()
    rx = [model.rx_power(d, 0.0) for d in (1, 2, 4, 8, 16)]
    assert all(b < a for a, b in zip(rx, rx[1:]))
    assert model.rx_power(0.5, 0.0) == model.rx_power(1.0, 0.0)  # clamped at d0


def test_random_disk():
    topo = random_disk_topology(30, area_side=30.0, rngs=RngRegistry(6))
    assert topo.size == 30
    assert len(topo.link_loss) > 0
    with pytest.raises(ConfigError):
        random_disk_topology(1, 10.0, RngRegistry(1))


def test_grid_validation():
    with pytest.raises(ConfigError):
        grid_topology(0, 5, spacing=1.0)


def test_is_connected_detects_partition():
    topo = star_topology(3)
    # Sever node 3 entirely.
    topo.neighbors[3] = []
    for u in topo.node_ids:
        topo.neighbors[u] = [v for v in topo.neighbors[u] if v != 3]
    assert not topo.is_connected()
