"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_initial_state(sim):
    assert sim.now == 0.0
    assert sim.pending_events == 0
    assert sim.processed_events == 0


def test_events_run_in_time_order(sim):
    seen = []
    sim.schedule(3.0, seen.append, "c")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(2.0, seen.append, "b")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 3.0


def test_simultaneous_events_run_in_scheduling_order(sim):
    seen = []
    for tag in ("first", "second", "third"):
        sim.schedule(1.0, seen.append, tag)
    sim.run()
    assert seen == ["first", "second", "third"]


def test_run_until_stops_and_advances_clock(sim):
    seen = []
    sim.schedule(1.0, seen.append, 1)
    sim.schedule(5.0, seen.append, 5)
    executed = sim.run(until=2.0)
    assert executed == 1
    assert seen == [1]
    assert sim.now == 2.0  # clock advanced to the boundary
    sim.run()
    assert seen == [1, 5]


def test_cancelled_event_does_not_fire(sim):
    seen = []
    event = sim.schedule(1.0, seen.append, "x")
    event.cancel()
    sim.run()
    assert seen == []
    assert sim.pending_events == 0


def test_cancel_is_idempotent(sim):
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_schedule_in_past_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.5, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_events_scheduled_during_run_execute(sim):
    seen = []

    def outer():
        seen.append("outer")
        sim.schedule(1.0, seen.append, "inner")

    sim.schedule(1.0, outer)
    sim.run()
    assert seen == ["outer", "inner"]
    assert sim.now == 2.0


def test_max_events_bound(sim):
    def reschedule():
        sim.schedule(1.0, reschedule)

    sim.schedule(1.0, reschedule)
    executed = sim.run(max_events=10)
    assert executed == 10


def test_run_not_reentrant(sim):
    def nested():
        sim.run()

    sim.schedule(1.0, nested)
    with pytest.raises(SimulationError):
        sim.run()


def test_run_until_idle_guard():
    sim = Simulator()

    def reschedule():
        sim.schedule(0.1, reschedule)

    sim.schedule(0.1, reschedule)
    with pytest.raises(SimulationError):
        sim.run_until_idle(max_events=50)


def test_processed_events_accumulates(sim):
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.processed_events == 5


def test_pending_events_counts_live_only(sim):
    events = [sim.schedule(1.0 + i, lambda: None) for i in range(10)]
    assert sim.pending_events == 10
    for ev in events[:4]:
        ev.cancel()
    assert sim.pending_events == 6
    sim.run()
    assert sim.pending_events == 0
    assert sim.processed_events == 6


def test_pending_events_is_o1_not_a_scan(sim):
    """pending_events must not iterate the queue (it's called per chunk in
    hot loops): reading it many times with a large queue stays instant."""
    for i in range(5000):
        sim.schedule(1.0 + i * 0.001, lambda: None)
    for _ in range(10000):
        assert sim.pending_events == 5000


def test_compaction_purges_cancelled_events(sim):
    events = [sim.schedule(10.0 + i, lambda: None) for i in range(100)]
    assert len(sim._queue) == 100
    for ev in events[:80]:
        ev.cancel()
    # compaction fires whenever tombstones exceed half the heap, so the
    # queue stays within a small factor of the live count (not 100)
    assert len(sim._queue) < 2 * 20 + 10
    assert sim.pending_events == 20
    fired = []
    sim.schedule(5.0, fired.append, 1)
    sim.run()
    assert fired == [1]
    assert sim.processed_events == 21


def test_cancel_after_execution_does_not_corrupt_count(sim):
    """Timers often cancel handles that already fired (e.g. a periodic
    process stopping itself): that must not decrement the live count."""
    ev = sim.schedule(1.0, lambda: None)
    later = sim.schedule(2.0, lambda: None)
    sim.run(until=1.5)
    ev.cancel()  # already executed: must be a no-op
    ev.cancel()
    assert sim.pending_events == 1
    sim.run()
    assert sim.processed_events == 2
    later.cancel()  # executed too: still a no-op
    assert sim.pending_events == 0


class CountingProfiler:
    """Minimal SimProfiler: a deterministic clock and a call log."""

    def __init__(self):
        self.ticks = 0
        self.records = []

    def clock(self):
        self.ticks += 1
        return float(self.ticks)

    def record(self, fn, args, elapsed, heap_len):
        self.records.append((fn, args, elapsed, heap_len))


def test_profiler_hook_sees_every_executed_event(sim):
    profiler = CountingProfiler()
    sim.set_profiler(profiler)
    seen = []
    append = seen.append
    sim.schedule(1.0, append, "a")
    cancelled = sim.schedule(2.0, append, "never")
    cancelled.cancel()
    sim.schedule(3.0, append, "b")
    sim.run()
    assert seen == ["a", "b"]
    # Exactly one record per *executed* event; cancelled events cost nothing.
    assert len(profiler.records) == 2
    assert profiler.ticks == 4  # clock read before and after each handler
    for fn, event_args, elapsed, heap_len in profiler.records:
        assert fn is append
        assert event_args in (("a",), ("b",))  # scheduled args, for kind buckets
        assert elapsed == 1.0  # deterministic clock: end - start
        assert heap_len >= 0


def test_profiler_can_be_detached(sim):
    profiler = CountingProfiler()
    sim.set_profiler(profiler)
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert len(profiler.records) == 1
    sim.set_profiler(None)
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert len(profiler.records) == 1  # no longer observed


def test_heap_stats_reports_queue_shape(sim):
    stats = sim.heap_stats()
    assert stats == {"pending": 0, "heap_len": 0, "cancelled_garbage": 0,
                     "compactions": 0}
    events = [sim.schedule(1.0 + i, lambda: None) for i in range(10)]
    events[0].cancel()
    stats = sim.heap_stats()
    assert stats["pending"] == 9
    assert stats["heap_len"] == 10       # tombstone still queued
    assert stats["cancelled_garbage"] == 1
    sim.run()
    assert sim.heap_stats()["pending"] == 0


def test_heap_stats_counts_compactions(sim):
    events = [sim.schedule(10.0 + i, lambda: None) for i in range(100)]
    for ev in events[:80]:
        ev.cancel()
    stats = sim.heap_stats()
    assert stats["compactions"] >= 1
    assert stats["heap_len"] < 100


def test_cancel_inside_handler_of_same_timestamp(sim):
    """An event may cancel a sibling scheduled for the same instant."""
    fired = []
    second = sim.schedule(1.0, fired.append, 2)

    def first():
        fired.append(1)
        second.cancel()

    # 'first' was scheduled after 'second' -> runs second at t=1.0?  No:
    # insertion order is the tiebreak, so re-schedule first ahead of it.
    third = sim.schedule(0.5, first)
    sim.run()
    assert fired == [1]
    assert sim.pending_events == 0
    assert third is not None


# ---------------------------------------------------------------------------
# Watchdog (SimulationRunawayError)
# ---------------------------------------------------------------------------

def test_watchdog_max_events_raises_runaway():
    from repro.errors import SimulationRunawayError

    sim = Simulator(max_events=50)

    def respawn():
        sim.schedule(sim.now + 0.1, respawn)

    sim.schedule(0.1, respawn)
    with pytest.raises(SimulationRunawayError) as excinfo:
        sim.run()
    assert excinfo.value.events == 50
    assert excinfo.value.heap_stats["pending"] >= 0


def test_watchdog_max_sim_time_raises_before_executing_late_event():
    from repro.errors import SimulationRunawayError

    sim = Simulator(max_sim_time=10.0)
    fired = []
    sim.schedule(5.0, fired.append, "early")
    sim.schedule(50.0, fired.append, "late")
    with pytest.raises(SimulationRunawayError) as excinfo:
        sim.run()
    assert fired == ["early"]
    assert excinfo.value.sim_time == 5.0


def test_watchdog_distinct_from_run_budget():
    """run(max_events=N) is a cooperative budget, not a watchdog failure."""
    sim = Simulator(max_events=100)

    def respawn():
        sim.schedule(sim.now + 0.1, respawn)

    sim.schedule(0.1, respawn)
    assert sim.run(max_events=10) == 10  # returns control, no exception


def test_default_watchdog_is_inherited_and_restorable():
    from repro.errors import SimulationRunawayError
    from repro.sim.engine import get_default_watchdog, set_default_watchdog

    saved = get_default_watchdog()
    try:
        set_default_watchdog(5, None)
        sim = Simulator()

        def respawn():
            sim.schedule(sim.now + 0.1, respawn)

        sim.schedule(0.1, respawn)
        with pytest.raises(SimulationRunawayError):
            sim.run()
        # An explicit argument overrides the process default.
        assert Simulator(max_events=10**9)._watchdog_events == 10**9
    finally:
        set_default_watchdog(*saved)
    assert get_default_watchdog() == saved
