"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_initial_state(sim):
    assert sim.now == 0.0
    assert sim.pending_events == 0
    assert sim.processed_events == 0


def test_events_run_in_time_order(sim):
    seen = []
    sim.schedule(3.0, seen.append, "c")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(2.0, seen.append, "b")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 3.0


def test_simultaneous_events_run_in_scheduling_order(sim):
    seen = []
    for tag in ("first", "second", "third"):
        sim.schedule(1.0, seen.append, tag)
    sim.run()
    assert seen == ["first", "second", "third"]


def test_run_until_stops_and_advances_clock(sim):
    seen = []
    sim.schedule(1.0, seen.append, 1)
    sim.schedule(5.0, seen.append, 5)
    executed = sim.run(until=2.0)
    assert executed == 1
    assert seen == [1]
    assert sim.now == 2.0  # clock advanced to the boundary
    sim.run()
    assert seen == [1, 5]


def test_cancelled_event_does_not_fire(sim):
    seen = []
    event = sim.schedule(1.0, seen.append, "x")
    event.cancel()
    sim.run()
    assert seen == []
    assert sim.pending_events == 0


def test_cancel_is_idempotent(sim):
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_schedule_in_past_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.5, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_events_scheduled_during_run_execute(sim):
    seen = []

    def outer():
        seen.append("outer")
        sim.schedule(1.0, seen.append, "inner")

    sim.schedule(1.0, outer)
    sim.run()
    assert seen == ["outer", "inner"]
    assert sim.now == 2.0


def test_max_events_bound(sim):
    def reschedule():
        sim.schedule(1.0, reschedule)

    sim.schedule(1.0, reschedule)
    executed = sim.run(max_events=10)
    assert executed == 10


def test_run_not_reentrant(sim):
    def nested():
        sim.run()

    sim.schedule(1.0, nested)
    with pytest.raises(SimulationError):
        sim.run()


def test_run_until_idle_guard():
    sim = Simulator()

    def reschedule():
        sim.schedule(0.1, reschedule)

    sim.schedule(0.1, reschedule)
    with pytest.raises(SimulationError):
        sim.run_until_idle(max_events=50)


def test_processed_events_accumulates(sim):
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.processed_events == 5
