"""The determinism sanitizer: perturbation, tripwire, alias scan, digests.

The end-to-end cells here are deliberately small (3 receivers, 1 KiB image)
so the suite stays fast; CI's ``sanitizer-smoke`` job runs the full
quick-grid cells with ``python -m repro.sim.sanitize``.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.sim.engine import Simulator
from repro.sim.sanitize import (
    DEFAULT_CELLS,
    HandlerContext,
    PerturbedSimulator,
    SanitizeCell,
    TripwireRegistry,
    canonical_events,
    default_cells,
    event_digest,
    find_shared_state,
    first_divergence,
    metrics_digest,
    run_cell,
    run_sanitizer,
)
from repro.sim.sanitize.harness import _run_scenario


# A small, fast cell reused by the end-to-end tests below.
PIN_CELL = SanitizeCell(name="pin", protocol="lr-seluge", receivers=3,
                        image_size=1024, k=4, n=6, seed=3, max_time=900.0)


# -- PerturbedSimulator -------------------------------------------------------

def _run_order(sim, times):
    """Schedule one marker per entry of ``times`` and return firing order."""
    order = []
    for index, t in enumerate(times):
        sim.schedule_at(t, order.append, index)
    sim.run()
    return order


def test_perturbation_preserves_distinct_time_order():
    times = [5.0, 1.0, 3.0, 2.0, 4.0]
    order = _run_order(PerturbedSimulator(7), times)
    assert order == [1, 3, 2, 4, 0]  # strictly by timestamp


def test_perturbation_shuffles_same_timestamp_ties():
    ties = [1.0] * 12
    fifo = _run_order(Simulator(), ties)
    assert fifo == list(range(12))  # production engine: FIFO among ties
    orders = {p: tuple(_run_order(PerturbedSimulator(p), ties))
              for p in range(1, 5)}
    for order in orders.values():
        assert sorted(order) == list(range(12))  # a permutation, nothing lost
    assert any(order != tuple(fifo) for order in orders.values())
    assert len(set(orders.values())) > 1  # different seeds, different orders


def test_perturbation_is_deterministic_per_seed():
    ties = [2.0] * 10
    assert _run_order(PerturbedSimulator(3), ties) == \
        _run_order(PerturbedSimulator(3), ties)


def test_perturbed_rejects_past_times_like_the_engine():
    sim = PerturbedSimulator(1)
    sim.schedule_at(5.0, lambda: None)
    sim.run()
    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


# -- HandlerContext -----------------------------------------------------------

class _FakeNode:
    def __init__(self, node_id, rngs):
        self.node_id = node_id
        self.rngs = rngs

    def draw(self, stream):
        return self.rngs.get(stream).random()


def test_handler_context_labels_nodes_and_anonymous_owners():
    ctx = HandlerContext()
    node = _FakeNode(4, None)
    assert ctx.current == HandlerContext.SETUP
    assert ctx.label_for(node.draw) == "node/4"

    class Widget:
        def tick(self):
            pass

    a, b = Widget(), Widget()
    assert ctx.label_for(a.tick) == "Widget#0"
    assert ctx.label_for(b.tick) == "Widget#1"
    assert ctx.label_for(a.tick) == "Widget#0"  # stable on re-query


def test_handler_context_publishes_during_perturbed_events():
    ctx = HandlerContext()
    sim = PerturbedSimulator(1, context=ctx)
    labels = []

    class Probe:
        def __init__(self, node_id):
            self.node_id = node_id

        def fire(self):
            labels.append(ctx.current)

    sim.schedule_at(1.0, Probe(9).fire)
    sim.run()
    assert labels == ["node/9"]
    assert ctx.current == HandlerContext.SETUP  # restored after the event


# -- TripwireRegistry ---------------------------------------------------------

def test_tripwire_flags_streams_shared_across_nodes():
    ctx = HandlerContext()
    rngs = TripwireRegistry(1, context=ctx)
    a, b = _FakeNode(1, rngs), _FakeNode(2, rngs)
    for node in (a, b):
        previous = ctx.enter(node.draw)
        node.draw("shared")
        node.draw(f"node/{node.node_id}")
        ctx.exit(previous)
    violations = rngs.violations()
    assert [v.name for v in violations] == ["shared"]
    assert set(violations[0].node_contexts) == {"node/1", "node/2"}
    assert rngs.consumers("node/1") == {"node/1"}


def test_tripwire_ignores_setup_and_infrastructure_draws():
    ctx = HandlerContext()
    rngs = TripwireRegistry(1, context=ctx)
    rngs.get("topology/shadowing")  # setup context
    node = _FakeNode(3, rngs)
    previous = ctx.enter(node.draw)
    node.draw("topology/shadowing")
    ctx.exit(previous)
    # setup + one node: not two distinct *node* contexts.
    assert rngs.violations() == []


def test_tripwire_is_a_dropin_registry():
    plain = __import__("repro.sim.rng", fromlist=["RngRegistry"]).RngRegistry(5)
    wired = TripwireRegistry(5)
    assert plain.get("x").random() == wired.get("x").random()


# -- shared-state detection ---------------------------------------------------

class _Holder:
    def __init__(self, buf):
        self.buf = buf
        self.own = []


def test_alias_scan_finds_cross_owner_containers():
    shared = {"window": []}
    owners = {"node/1": _Holder(shared), "node/2": _Holder(shared)}
    findings = find_shared_state(owners)
    assert findings, "shared dict must be reported"
    assert any(set(f.owners) == {"node/1", "node/2"} for f in findings)


def test_alias_scan_respects_sanction_list_and_private_state():
    shared = {"window": []}
    owners = {"node/1": _Holder(shared), "node/2": _Holder(shared)}
    assert find_shared_state(owners, sanctioned=[shared]) == []
    private = {"node/1": _Holder({}), "node/2": _Holder({})}
    assert find_shared_state(private) == []


# -- digests ------------------------------------------------------------------

class _FakeEvent:
    def __init__(self, ts, kind):
        self.ts, self.kind = ts, kind

    def to_dict(self):
        return {"ts": self.ts, "kind": self.kind}


class _FakeLog:
    def __init__(self, events):
        self.events = events


def test_canonical_events_are_tie_order_insensitive():
    a = _FakeLog([_FakeEvent(1.0, "x"), _FakeEvent(1.0, "y"), _FakeEvent(2.0, "z")])
    b = _FakeLog([_FakeEvent(1.0, "y"), _FakeEvent(1.0, "x"), _FakeEvent(2.0, "z")])
    assert canonical_events(a) == canonical_events(b)
    assert event_digest(a) == event_digest(b)
    # ...but distinct-time reorders are real divergence:
    c = _FakeLog([_FakeEvent(2.0, "x"), _FakeEvent(1.0, "y")])
    d = _FakeLog([_FakeEvent(1.0, "x"), _FakeEvent(2.0, "y")])
    assert event_digest(c) != event_digest(d)


def test_first_divergence_reports_minimal_diff():
    assert first_divergence(["a", "b"], ["a", "b"]) is None
    assert first_divergence(["a", "b"], ["a", "c"]) == (1, "b", "c")
    assert first_divergence(["a"], ["a", "b"]) == (1, "<absent>", "b")
    assert first_divergence(["a", "b"], ["a"]) == (1, "b", "<absent>")


# -- harness ------------------------------------------------------------------

def test_default_cells_cover_the_acceptance_grid():
    names = [cell.name for cell in DEFAULT_CELLS]
    assert names == ["deluge", "seluge", "lr-seluge",
                     "lr-seluge+faults", "lr-seluge+attack"]
    assert any(cell.faults for cell in DEFAULT_CELLS)
    assert any(cell.attacks for cell in DEFAULT_CELLS)
    assert default_cells(["seluge"]) == (DEFAULT_CELLS[1],)
    with pytest.raises(ConfigError):
        default_cells(["warp-grid"])


def test_run_sanitizer_rejects_zero_perturbations():
    with pytest.raises(ConfigError):
        run_sanitizer(perturbations=0, cells=(PIN_CELL,))


def test_small_cell_is_order_independent(sanitizer):
    """Regression for the request-timer re-arm race: with the per-node
    re-arm jitter in place, tie-break permutations must not change results."""
    report = sanitizer(PIN_CELL, perturbations=2)
    assert report.events > 0
    assert set(report.perturbed) == {1, 2}
    assert report.aliases_setup == [] and report.aliases_final == []
    assert report.rng_violations == []


def test_pinned_baseline_digests():
    """Digest pin for the ``_rearm_delay`` jitter fix (PR: determinism
    sanitizer).  Constant request/tx timer re-arms used to synchronise whole
    neighborhoods onto one timestamp and hand the outcome to the engine's
    tie-break; the fix draws +/-5% jitter from each node's own stream.

    If a deliberate protocol/timing change lands, re-pin with::

        PYTHONPATH=src python -c "
        from repro.sim.engine import Simulator
        from repro.sim.sanitize import TripwireRegistry, metrics_digest, event_digest
        from tests.sim.test_sanitize import PIN_CELL
        from repro.sim.sanitize.harness import _run_scenario
        r, log, _, _ = _run_scenario(PIN_CELL, Simulator(), TripwireRegistry(PIN_CELL.seed))
        print(metrics_digest(r)); print(event_digest(log))"

    An *accidental* change here means run results shifted for every seed —
    investigate before re-pinning.
    """
    result, log, _, _ = _run_scenario(
        PIN_CELL, Simulator(), TripwireRegistry(PIN_CELL.seed))
    assert result.completed
    assert metrics_digest(result) == (
        "03aea5b8e769ffb44afbc226d2d9042ceb6f615ce9cf1df72429dbdb9d737e45")
    assert event_digest(log) == (
        "58dc69b79e7ed113afa9e79a3d4aa9ac1ed963ce37bacacb0d692381e60c761b")


def test_divergence_detection_catches_an_injected_race():
    """The harness must actually detect order dependence, not just pass:
    run the pin cell against a *different seed's* baseline digests and
    check the machinery that would report a divergence fires."""
    result_a, log_a, _, _ = _run_scenario(
        PIN_CELL, Simulator(), TripwireRegistry(PIN_CELL.seed))
    other = SanitizeCell(name="pin-b", protocol="lr-seluge", receivers=3,
                         image_size=1024, k=4, n=6, seed=4, max_time=900.0)
    result_b, log_b, _, _ = _run_scenario(
        other, Simulator(), TripwireRegistry(other.seed))
    assert metrics_digest(result_a) != metrics_digest(result_b)
    diff = first_divergence(canonical_events(log_a), canonical_events(log_b))
    assert diff is not None and diff[0] >= 0
