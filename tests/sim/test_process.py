"""Unit tests for Timer and PeriodicProcess."""

from repro.sim.process import PeriodicProcess, Timer


def test_timer_fires_with_args(sim):
    seen = []
    timer = Timer(sim, lambda a, b: seen.append((a, b)))
    timer.start(2.0, "x", 1)
    assert timer.armed
    assert timer.expires_at == 2.0
    sim.run()
    assert seen == [("x", 1)]
    assert not timer.armed


def test_timer_restart_replaces_pending_expiry(sim):
    seen = []
    timer = Timer(sim, seen.append)
    timer.start(1.0, "first")
    timer.start(3.0, "second")
    sim.run()
    assert seen == ["second"]
    assert sim.now == 3.0


def test_timer_cancel(sim):
    seen = []
    timer = Timer(sim, seen.append)
    timer.start(1.0, "x")
    timer.cancel()
    sim.run()
    assert seen == []


def test_timer_cancel_when_idle_is_noop(sim):
    timer = Timer(sim, lambda: None)
    timer.cancel()
    assert not timer.armed


def test_timer_can_rearm_from_callback(sim):
    seen = []
    timer = Timer(sim, lambda: None)

    def fire():
        seen.append(sim.now)
        if len(seen) < 3:
            timer.start(1.0)

    timer._fn = fire
    timer.start(1.0)
    sim.run()
    assert seen == [1.0, 2.0, 3.0]


def test_periodic_process_fixed_interval(sim):
    ticks = []
    proc = PeriodicProcess(sim, lambda: ticks.append(sim.now), interval=2.0)
    sim.run(until=7.0)
    assert ticks == [2.0, 4.0, 6.0]
    proc.stop()
    sim.run(until=20.0)
    assert len(ticks) == 3


def test_periodic_process_callable_interval(sim):
    gaps = iter([1.0, 2.0, 4.0, 100.0])
    ticks = []
    PeriodicProcess(sim, lambda: ticks.append(sim.now), interval=lambda: next(gaps))
    sim.run(until=8.0)
    assert ticks == [1.0, 3.0, 7.0]


def test_periodic_process_start_delay(sim):
    ticks = []
    PeriodicProcess(sim, lambda: ticks.append(sim.now), interval=5.0, start_delay=1.0)
    sim.run(until=12.0)
    assert ticks == [1.0, 6.0, 11.0]


def test_periodic_stop_from_callback(sim):
    ticks = []
    proc = None

    def tick():
        ticks.append(sim.now)
        if len(ticks) == 2:
            proc.stop()

    proc = PeriodicProcess(sim, tick, interval=1.0)
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0]
