"""Unit tests for the trace recorder."""

import pytest

from repro.sim.trace import TraceRecorder


def test_counters_accumulate():
    t = TraceRecorder()
    t.count("tx", 2)
    t.count("tx")
    assert t.counters["tx"] == 3
    assert t.snapshot() == {"tx": 3}


def test_snapshot_is_a_copy():
    t = TraceRecorder()
    t.count("a")
    snap = t.snapshot()
    t.count("a")
    assert snap["a"] == 1
    assert t.counters["a"] == 2


def test_record_counts_without_keeping_records_by_default():
    t = TraceRecorder()
    t.record(1.0, "rx", node=3, unit=2)
    assert t.counters["rx"] == 1
    assert t.records == []


def test_record_keeps_records_when_enabled():
    t = TraceRecorder(keep_records=True)
    t.record(1.5, "rx", node=3, unit=2, index=7)
    t.record(2.0, "tx", node=4)
    assert len(t.records) == 2
    rx = t.of_kind("rx")[0]
    assert rx.time == 1.5
    assert rx.node == 3
    assert rx.get("unit") == 2
    assert rx.get("missing", "default") == "default"


def test_marks_first_write_wins():
    t = TraceRecorder()
    t.mark("done", 5.0)
    t.mark("done", 9.0)
    assert t.get_mark("done") == 5.0
    assert t.get_mark("other") is None


def test_unbounded_records_stay_a_plain_list():
    t = TraceRecorder(keep_records=True)
    assert isinstance(t.records, list)
    t.record(1.0, "rx")
    assert t.counters.get("trace_dropped", 0) == 0


def test_max_records_ring_buffer_evicts_oldest_and_counts_drops():
    t = TraceRecorder(max_records=3)
    assert t.keep_records  # a bound implies recording
    for i in range(5):
        t.record(float(i), "rx", node=i)
    assert len(t.records) == 3
    assert [r.node for r in t.records] == [2, 3, 4]  # oldest two evicted
    assert t.counters["trace_dropped"] == 2
    assert t.counters["rx"] == 5  # counters never drop


def test_max_records_must_be_positive():
    with pytest.raises(ValueError):
        TraceRecorder(max_records=0)
    with pytest.raises(ValueError):
        TraceRecorder(max_records=-5)


def test_recorder_is_a_facade_over_the_registry():
    t = TraceRecorder()
    assert t.counters is t.registry.counters
    t.count("tx_data", 3)
    assert t.registry.snapshot() == {"tx_data": 3}
    t.registry.inc("tx_data")
    assert t.counters["tx_data"] == 4


class RecordingSink:
    """Captures the TraceSink calls the recorder forwards."""

    def __init__(self):
        self.calls = []

    def instant(self, ts, kind, node=None, detail=None):
        self.calls.append(("instant", ts, kind, node, detail))

    def begin(self, ts, kind, node=None, key=None, detail=None):
        self.calls.append(("begin", ts, kind, node, key, detail))

    def end(self, ts, kind, node=None, key=None, detail=None):
        self.calls.append(("end", ts, kind, node, key, detail))


def test_record_forwards_instants_to_the_sink():
    sink = RecordingSink()
    t = TraceRecorder(sink=sink)
    t.record(1.0, "rx", node=3, unit=2)
    t.record(2.0, "tx")
    assert sink.calls == [
        ("instant", 1.0, "rx", 3, {"unit": 2}),
        ("instant", 2.0, "tx", None, None),
    ]
    assert t.counters["rx"] == 1  # counting still happens


def test_spans_forward_to_the_sink_and_count_completions():
    sink = RecordingSink()
    t = TraceRecorder(sink=sink)
    t.span_begin(1.0, "span_page", node=2, key=0, unit=0)
    assert t.counters.get("span_page", 0) == 0  # begins are not completions
    t.span_end(3.0, "span_page", node=2, key=0)
    assert t.counters["span_page"] == 1
    assert sink.calls == [
        ("begin", 1.0, "span_page", 2, 0, {"unit": 0}),
        ("end", 3.0, "span_page", 2, 0, None),
    ]


def test_spans_without_a_sink_are_no_ops():
    t = TraceRecorder()
    t.span_begin(1.0, "span_page", node=2, key=0)
    t.span_end(3.0, "span_page", node=2, key=0)
    assert t.counters.get("span_page", 0) == 0
    assert t.records == []
