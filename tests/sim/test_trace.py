"""Unit tests for the trace recorder."""

from repro.sim.trace import TraceRecorder


def test_counters_accumulate():
    t = TraceRecorder()
    t.count("tx", 2)
    t.count("tx")
    assert t.counters["tx"] == 3
    assert t.snapshot() == {"tx": 3}


def test_snapshot_is_a_copy():
    t = TraceRecorder()
    t.count("a")
    snap = t.snapshot()
    t.count("a")
    assert snap["a"] == 1
    assert t.counters["a"] == 2


def test_record_counts_without_keeping_records_by_default():
    t = TraceRecorder()
    t.record(1.0, "rx", node=3, unit=2)
    assert t.counters["rx"] == 1
    assert t.records == []


def test_record_keeps_records_when_enabled():
    t = TraceRecorder(keep_records=True)
    t.record(1.5, "rx", node=3, unit=2, index=7)
    t.record(2.0, "tx", node=4)
    assert len(t.records) == 2
    rx = t.of_kind("rx")[0]
    assert rx.time == 1.5
    assert rx.node == 3
    assert rx.get("unit") == 2
    assert rx.get("missing", "default") == "default"


def test_marks_first_write_wins():
    t = TraceRecorder()
    t.mark("done", 5.0)
    t.mark("done", 9.0)
    assert t.get_mark("done") == 5.0
    assert t.get_mark("other") is None
