"""Unit tests for deterministic random-stream management."""

from repro.sim.rng import RngRegistry, derive_seed


def test_same_name_same_stream_object():
    rngs = RngRegistry(5)
    assert rngs.get("a") is rngs.get("a")


def test_streams_reproducible_across_registries():
    a = [RngRegistry(9).get("loss/3").random() for _ in range(5)]
    b = [RngRegistry(9).get("loss/3").random() for _ in range(5)]
    assert a == b


def test_different_names_are_independent():
    rngs = RngRegistry(9)
    a = [rngs.get("x").random() for _ in range(5)]
    b = [rngs.get("y").random() for _ in range(5)]
    assert a != b


def test_different_root_seeds_differ():
    a = RngRegistry(1).get("x").random()
    b = RngRegistry(2).get("x").random()
    assert a != b


def test_derive_seed_is_stable_and_64bit():
    s1 = derive_seed(10, "alpha")
    s2 = derive_seed(10, "alpha")
    assert s1 == s2
    assert 0 <= s1 < 2 ** 64
    assert derive_seed(10, "beta") != s1


def test_numpy_streams():
    rngs = RngRegistry(3)
    a = rngs.get_numpy("np/x").integers(0, 1000, size=8).tolist()
    b = RngRegistry(3).get_numpy("np/x").integers(0, 1000, size=8).tolist()
    assert a == b
    assert rngs.get_numpy("np/x") is rngs.get_numpy("np/x")


def test_spawn_child_registry():
    parent = RngRegistry(7)
    child1 = parent.spawn("sub")
    child2 = RngRegistry(7).spawn("sub")
    assert child1.root_seed == child2.root_seed
    assert child1.get("s").random() == child2.get("s").random()
    assert child1.root_seed != parent.root_seed
