#!/usr/bin/env python
"""Quickstart: disseminate a firmware image with LR-Seluge in one page.

Builds a 8 KiB synthetic image, preprocesses it at the base station
(erasure coding + hash chaining + Merkle tree + ECDSA signature), runs a
one-hop dissemination to 8 receivers over a 20%-lossy channel, and checks
that every node reassembled the exact image.

Run:  python examples/quickstart.py
"""

from repro.core.image import CodeImage
from repro.experiments.runner import CompletionTracker, run_network
from repro.experiments.scenarios import build_protocol_network, make_params
from repro.net.channel import BernoulliLoss
from repro.net.radio import Radio, RadioConfig
from repro.net.topology import star_topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


def main() -> None:
    # 1. Deterministic substrate: one root seed drives every random stream.
    rngs = RngRegistry(root_seed=2026)
    sim = Simulator()
    trace = TraceRecorder()

    # 2. One-hop star: the base station (node 0) plus 8 receivers, with each
    #    reception dropped independently with probability 0.2 (the paper's
    #    application-layer loss emulation).
    topology = star_topology(n_receivers=8)
    radio = Radio(sim, topology, BernoulliLoss(0.2), rngs, trace,
                  config=RadioConfig(collisions=False))

    # 3. The image and the LR-Seluge parameters: pages of k=32 blocks
    #    erasure-coded into n=48 packets, any k'=34 of which decode a page.
    params = make_params("lr-seluge", image_size=8 * 1024)
    image = CodeImage.synthetic(8 * 1024, version=2, seed=1)
    print(f"image: {image.size} bytes, version {image.version}")
    print(f"LR-Seluge: k={params.k}, n={params.n}, k'={params.resolved_kprime}, "
          f"{params.num_pages()} pages + hash page + signature")

    # 4. Build the network (this also runs the base station preprocessing:
    #    reverse-order chained encoding, page 0, Merkle tree, signature).
    tracker = CompletionTracker(trace)
    base, nodes, pre = build_protocol_network(
        "lr-seluge", sim, radio, rngs, trace, params, image, tracker,
    )
    print(f"preprocessed: {pre.total_units} units, "
          f"{pre.data_packet_count()} distinct data packets, "
          f"Merkle root {pre.merkle_root.hex()}")

    # 5. Run until every receiver holds (and has verified) the image.
    base.start()
    result = run_network(sim, trace, tracker, nodes, "lr-seluge",
                         max_time=3600.0, expected_image=image.data)

    # 6. Report the five paper metrics.
    print()
    print(f"completed:            {result.completed}")
    print(f"images bit-identical: {result.images_ok}")
    print(f"data packets:         {result.data_packets}")
    print(f"SNACK packets:        {result.snack_packets}")
    print(f"advertisements:       {result.adv_packets}")
    print(f"total bytes on air:   {result.total_bytes}")
    print(f"dissemination time:   {result.latency:.1f} s")

    # 7. Per-node verification workload (all real crypto, not mocks).
    node = nodes[0]
    stats = node.pipeline.stats
    print()
    print(f"node {node.node_id} verification work: "
          f"{stats['signature_verifications']} ECDSA, "
          f"{stats['merkle_checks']} Merkle paths, "
          f"{stats['hash_checks']} hash images, "
          f"{stats['decode_ops']} erasure decodes")


if __name__ == "__main__":
    main()
