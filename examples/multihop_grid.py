#!/usr/bin/env python
"""Multi-hop reprogramming of a mica2-style sensor grid (Tables II/III style).

Disseminates an image from a corner base station across a grid with
distance-based link quality, CSMA collisions, and bursty ambient noise (our
meyer-heavy substitution), then prints an ASCII heat map of per-node
completion times — the dissemination wavefront.

Run:  python examples/multihop_grid.py [--rows 8] [--cols 8] [--medium]
"""

import argparse

from repro.experiments.scenarios import MultiHopScenario, run_multihop


def wavefront_map(result, rows: int, cols: int) -> str:
    """Render per-node completion times as a 0-9 heat map (corner = base)."""
    times = result.per_node_completion
    if not times:
        return "(no node completed)"
    t_max = max(times.values()) or 1.0
    lines = []
    for r in range(rows):
        cells = []
        for c in range(cols):
            node_id = 1 + r * cols + c
            t = times.get(node_id)
            cells.append("." if t is None else str(min(9, int(9 * t / t_max))))
        lines.append(" ".join(cells))
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=8)
    parser.add_argument("--cols", type=int, default=8)
    parser.add_argument("--medium", action="store_true",
                        help="low-density grid (6 m spacing) instead of tight (3 m)")
    parser.add_argument("--image-kib", type=int, default=8)
    args = parser.parse_args()

    density = "medium" if args.medium else "tight"
    topology = f"{density}:{args.rows}x{args.cols}"

    for protocol in ("seluge", "lr-seluge"):
        result = run_multihop(MultiHopScenario(
            protocol=protocol, topology=topology,
            image_size=args.image_kib * 1024, seed=1,
        ))
        print(f"== {protocol} on {topology} "
              f"({args.image_kib} KiB image) ==")
        print(f"completed: {result.completed}   images ok: {result.images_ok}")
        print(f"data={result.data_packets}  snack={result.snack_packets}  "
              f"adv={result.adv_packets}  bytes={result.total_bytes}  "
              f"latency={result.latency:.0f}s")
        print("completion wavefront (0 = earliest, 9 = last; base at corner):")
        print(wavefront_map(result, args.rows, args.cols))
        print()


if __name__ == "__main__":
    main()
