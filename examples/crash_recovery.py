#!/usr/bin/env python
"""Crash-recovery walkthrough: flash-persisted resume after a node reboot.

Part 1 replays a deterministic :class:`FaultPlan` — one node crashes
mid-dissemination and reboots 15 s later.  The trace shows the rebooted
node resuming from its flash-persisted page index (``resume_unit > 0``),
not from page 0: completed pages survive the crash, and the receiver
pipeline re-authenticates every persisted packet before trusting it.

Part 2 runs all three protocols under stochastic crash/reboot churn
(exponential MTBF/MTTR) and reports the degradation — extra packets and
latency penalty — relative to the fault-free baseline of the same seed.

Run:  python examples/crash_recovery.py
"""

from repro.experiments.metrics import degradation
from repro.experiments.scenarios import FaultyGridScenario, run_faulty_grid
from repro.faults import FaultPlan
from repro.sim.trace import TraceRecorder

PROTOCOLS = ("deluge", "seluge", "lr-seluge")


def part1_deterministic_crash() -> None:
    print("=== Part 1: scripted crash at t=8s, reboot at t=23s ===")
    plan = FaultPlan().crash(8.0, node=3, reboot_after=15.0)
    scenario = FaultyGridScenario(
        protocol="lr-seluge", topology="grid:2x2:3",
        image_size=3072, k=8, n=12, seed=7, max_time=600.0, plan=plan,
    )
    trace = TraceRecorder(keep_records=True)
    result = run_faulty_grid(scenario, trace=trace)
    for rec in trace.records:
        if rec.kind.startswith("fault_"):
            extra = f" {dict(rec.detail)}" if rec.detail else ""
            node = f" node={rec.node}" if rec.node is not None else ""
            print(f"  t={rec.time:7.2f}  {rec.kind}{node}{extra}")
    restored = result.counters.get("flash_units_restored", 0)
    print(f"  completed={result.completed} images_ok={result.images_ok} "
          f"latency={result.latency:.1f}s")
    print(f"  units restored from flash on reboot: {restored}")
    print()


def part2_churn_degradation() -> None:
    print("=== Part 2: crash/reboot churn (MTBF=5s, MTTR=4s) vs baseline ===")
    churn = FaultyGridScenario(
        topology="grid:2x2:3", image_size=3000, k=8, n=12, seed=1,
        max_time=600.0, mtbf=5.0, mttr=4.0, churn_horizon=60.0,
    )
    header = (f"  {'protocol':10s} {'done':>5s} {'crashes':>7s} "
              f"{'latency':>8s} {'penalty':>8s} {'extra pkts':>10s}")
    print(header)
    for protocol in PROTOCOLS:
        faulty = run_faulty_grid(churn.with_protocol(protocol))
        baseline = run_faulty_grid(churn.with_protocol(protocol).fault_free())
        report = degradation(faulty, baseline)
        print(f"  {protocol:10s} {str(faulty.completed):>5s} "
              f"{report.crashes:7d} {faulty.latency:7.1f}s "
              f"{report.latency_penalty_s:+7.1f}s "
              f"{report.extra_data_packets:10d}")
    print()
    print("Every protocol still reaches 100% completion: the base station's")
    print("golden copy plus flash-persisted pages let rebooted nodes catch")
    print("up instead of restarting from page 0.")


if __name__ == "__main__":
    part1_deterministic_crash()
    part2_churn_degradation()
