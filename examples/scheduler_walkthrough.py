#!/usr/bin/env python
"""Interactive walkthrough of the greedy round-robin TX scheduler (Table I).

Recreates the paper's Section IV-D3 example style: a sender with a tracking
table of three requesting neighbors, showing the bitmap, per-packet
popularity, distances, and each scheduling decision until the table drains.

Run:  python examples/scheduler_walkthrough.py
"""

from repro.core.scheduler import GreedyRoundRobinScheduler, TrackingTable

N, KPRIME = 4, 3


def show(table: TrackingTable) -> None:
    header = "node | " + " ".join(f"P{j+1}" for j in range(table.n)) + " | d"
    print(header)
    print("-" * len(header))
    for node_id in sorted(table.entries):
        entry = table.entries[node_id]
        bits = " ".join(" 1" if j in entry.wanted else " 0" for j in range(table.n))
        print(f"v{node_id}   | {bits} | {entry.distance}")
    pops = table.popularity_vector()
    print("pop  | " + " ".join(f"{p:2d}" for p in pops))
    print()


def main() -> None:
    print(__doc__)
    table = TrackingTable(n_packets=N, threshold=KPRIME)
    # Three SNACKs arrive (bit-vectors of still-needed packets).  With
    # n=4, k'=3 the distance is d = q + k' - n = q - 1.
    demands = {1: {1, 2}, 2: {1, 2, 3}, 3: {0, 1, 3}}
    for node_id, wanted in demands.items():
        table.update_from_snack(node_id, wanted)
        print(f"SNACK from v{node_id}: needs packets "
              f"{sorted(j + 1 for j in wanted)} -> distance "
              f"{table.entries[node_id].distance}")
    print()
    show(table)

    scheduler = GreedyRoundRobinScheduler(table)
    step = 1
    while not table.empty:
        choice = scheduler.next_packet()
        pops = table.popularity_vector()
        print(f"step {step}: transmit P{choice + 1} "
              f"(popularity {pops[choice]}, round-robin from previous pick)")
        table.mark_sent(choice)
        satisfied = set(demands) - set(table.entries)
        if satisfied:
            print(f"         satisfied so far: "
                  f"{', '.join(f'v{v}' for v in sorted(satisfied))}")
        show(table)
        step += 1

    print(f"Done in {step - 1} transmissions — the union rule (Deluge/Seluge "
          f"semantics) would have transmitted "
          f"{len(set().union(*demands.values()))} packets for the same demands.")


if __name__ == "__main__":
    main()
