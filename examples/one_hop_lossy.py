#!/usr/bin/env python
"""Head-to-head: Seluge vs LR-Seluge across channel loss rates (Fig. 4 style).

The motivating scenario from the paper's introduction: a sensor network in
a harsh RF environment must be reprogrammed securely.  This example sweeps
the packet-loss rate and prints all five evaluation metrics for both secure
protocols, showing the crossover (~p=0.01) and LR-Seluge's growing margin.

Run:  python examples/one_hop_lossy.py [--quick]
"""

import sys

from repro.experiments.reporting import format_table
from repro.experiments.scenarios import OneHopScenario, run_one_hop


def main() -> None:
    quick = "--quick" in sys.argv
    loss_rates = (0.01, 0.1, 0.3) if quick else (0.0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4)
    image_size = (6 if quick else 20) * 1024
    receivers = 10 if quick else 20

    rows = []
    for p in loss_rates:
        row = [p]
        for protocol in ("seluge", "lr-seluge"):
            result = run_one_hop(OneHopScenario(
                protocol=protocol, loss_rate=p, receivers=receivers,
                image_size=image_size, seed=1,
            ))
            assert result.completed and result.images_ok, (protocol, p)
            row += [result.data_packets, result.snack_packets,
                    result.total_bytes, round(result.latency, 1)]
        seluge_bytes, lr_bytes = row[3], row[7]
        row.append(f"{100 * (1 - lr_bytes / seluge_bytes):+.0f}%")
        rows.append(row)

    print(format_table(
        ["p",
         "sel_data", "sel_snack", "sel_bytes", "sel_lat",
         "lr_data", "lr_snack", "lr_bytes", "lr_lat",
         "lr_saving"],
        rows,
        title=f"Seluge vs LR-Seluge, one hop, N={receivers}, "
              f"{image_size // 1024} KiB image",
    ))
    print("\nReading guide: LR-Seluge pays a small redundancy tax on clean "
          "channels (negative saving at p~0) and wins decisively once losses "
          "are real — the paper's headline result.")


if __name__ == "__main__":
    main()
