#!/usr/bin/env python
"""Secure over-the-air reprogramming across image versions.

The whole point of code dissemination: nodes running version 2 must pick up
version 3 when the base station publishes it — and must *not* be fooled by
an adversary advertising a phantom "version 99".  This example runs both
situations:

1. v2 disseminates; the base then publishes v3; every node verifies the new
   signature packet (one ECDSA), resets, and reassembles v3 bit-exactly.
2. A version liar floods v99 advertisements: LR-Seluge nodes request the
   v99 signature a bounded number of times, never receive a verifiable one,
   back off, and stay on the genuine image.

Run:  python examples/version_upgrade.py
"""

import dataclasses

from repro.core.config import ImageConfig
from repro.core.image import CodeImage
from repro.core.preprocess import LRSelugePreprocessor
from repro.crypto.ecdsa import generate_keypair
from repro.crypto.puzzle import MessageSpecificPuzzle
from repro.experiments.runner import CompletionTracker, run_network
from repro.experiments.scenarios import _BUILDERS, make_params
from repro.net.channel import BernoulliLoss
from repro.net.packet import FrameKind
from repro.net.radio import Radio, RadioConfig
from repro.net.topology import star_topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

RECEIVERS = 6
IMAGE_SIZE = 4 * 1024


def main() -> None:
    sim = Simulator()
    rngs = RngRegistry(9)
    trace = TraceRecorder()
    topo = star_topology(RECEIVERS)
    radio = Radio(sim, topo, BernoulliLoss(0.15), rngs, trace,
                  config=RadioConfig(collisions=False))
    params = make_params("lr-seluge", image_size=IMAGE_SIZE, k=8, n=12, version=2)
    image_v2 = CodeImage.synthetic(IMAGE_SIZE, version=2, seed=9)
    tracker = CompletionTracker(trace)
    base, nodes, pre_v2 = _BUILDERS["lr-seluge"](
        sim, radio, rngs, trace, params, image=image_v2, on_complete=tracker)

    print("== phase 1: disseminate v2 ==")
    base.start()
    result = run_network(sim, trace, tracker, nodes, "lr-seluge",
                         max_time=2400.0, expected_image=image_v2.data)
    print(f"v2 complete at t={result.latency:.1f}s; "
          f"all nodes verified: {result.images_ok}")

    print("\n== phase 2: publish v3 ==")
    image_v3 = CodeImage.synthetic(IMAGE_SIZE, version=3, seed=109)
    params_v3 = dataclasses.replace(
        params, image=ImageConfig(image_size=IMAGE_SIZE, version=3))
    keypair = generate_keypair(rngs.root_seed)
    pre_v3 = LRSelugePreprocessor(
        params_v3, keypair, MessageSpecificPuzzle(difficulty=10)).build(image_v3)
    publish_time = sim.now
    base.publish_image(pre_v3)
    while not all(n.complete and n.pipeline.version == 3 for n in nodes):
        sim.run(until=sim.now + 5.0)
        if sim.now - publish_time > 2400:
            break
    upgraded = sum(1 for n in nodes if n.pipeline.version == 3
                   and n.image_bytes() == image_v3.data)
    print(f"v3 upgrade finished in {sim.now - publish_time:.1f}s; "
          f"{upgraded}/{len(nodes)} nodes verified the new image")

    print("\n== phase 3: a version liar appears ==")
    # Deliver forged version-99 advertisements straight to every node (as a
    # compromised neighbor would) and watch the bounded upgrade logic shrug
    # them off.
    from repro.core.packets import Advertisement
    from repro.net.packet import Frame

    liar_adv_count = 0
    for _ in range(20):
        forged = Advertisement(version=99, units_complete=9, total_units=9)
        for node in nodes:
            frame = Frame(kind=FrameKind.ADV, sender=RECEIVERS,
                          size_bytes=20, payload=forged)
            node.on_receive(frame, RECEIVERS)
        liar_adv_count += 1
        sim.run(until=sim.now + 1.0)
    abandoned = trace.counters.get("upgrade_abandoned", 0)
    still_v3 = sum(1 for n in nodes if n.pipeline.version == 3)
    print(f"{liar_adv_count} forged v99 advertisements delivered; "
          f"{abandoned} bounded upgrade attempts abandoned; "
          f"{still_v3}/{len(nodes)} nodes still on genuine v3")


if __name__ == "__main__":
    main()
