#!/usr/bin/env python
"""Attack resilience demo: why dissemination needs Seluge-style security.

Runs three adversaries from the paper's threat model against live
disseminations and reports what each protocol does:

1. bogus-data injection — Deluge is polluted; LR-Seluge drops every forgery
   with a single hash comparison, on arrival, before buffering;
2. signature flooding — the message-specific puzzle filters forgeries at
   one hash each, so at most one ECDSA verification ever runs per node;
3. denial of receipt — a compromised node SNACK-spams a victim; the
   optional per-neighbor counter (Section IV-E) bounds the damage.

Run:  python examples/attack_resilience.py
"""

from repro.core.image import CodeImage
from repro.experiments.runner import CompletionTracker, run_network
from repro.experiments.scenarios import _BUILDERS, make_params
from repro.net.channel import NoLoss
from repro.net.radio import Radio, RadioConfig
from repro.net.topology import star_topology
from repro.protocols.attacks import (
    BogusDataInjector,
    DenialOfReceiptAttacker,
    SignatureFlooder,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

RECEIVERS = 5
IMAGE_SIZE = 3 * 1024


def run_attack(protocol, attacker_cls, attacker_kwargs, base_delay=0.0,
               snack_flood_threshold=None, seed=5):
    sim = Simulator()
    rngs = RngRegistry(seed)
    trace = TraceRecorder()
    topo = star_topology(RECEIVERS + 1)
    radio = Radio(sim, topo, NoLoss(), rngs, trace,
                  config=RadioConfig(collisions=False))
    params = make_params(protocol, image_size=IMAGE_SIZE, k=8, n=12)
    image = CodeImage.synthetic(IMAGE_SIZE, version=2, seed=seed)
    tracker = CompletionTracker(trace)
    kwargs = {}
    if protocol != "deluge" and snack_flood_threshold is not None:
        kwargs["snack_flood_threshold"] = snack_flood_threshold
    base, nodes, pre = _BUILDERS[protocol](
        sim, radio, rngs, trace, params, image=image,
        receiver_ids=list(range(1, RECEIVERS + 1)), on_complete=tracker, **kwargs,
    )
    attacker = attacker_cls(RECEIVERS + 1, sim, radio, rngs, trace,
                            **attacker_kwargs)
    attacker.start()
    if base_delay:
        sim.schedule(base_delay, base.start)
    else:
        base.start()
    result = run_network(sim, trace, tracker, nodes, protocol,
                         max_time=2400.0, expected_image=image.data)
    return result, nodes, attacker, trace


def main() -> None:
    print("=== 1. Bogus data injection ===")
    for protocol in ("deluge", "lr-seluge"):
        result, nodes, attacker, trace = run_attack(
            protocol, BogusDataInjector, {"period": 0.1}, seed=8)
        verdict = ("IMAGE CORRUPTED / STALLED"
                   if not (result.completed and result.images_ok)
                   else "image intact")
        print(f"{protocol:>10}: {attacker.sent} forgeries injected -> {verdict}")
        if protocol == "lr-seluge":
            rejected = sum(n.pipeline.stats.get("rejected_packets", 0)
                           + n.pipeline.stats.get("rejected_no_expectation", 0)
                           for n in nodes)
            print(f"{'':>12}every forgery dropped on arrival "
                  f"({rejected} rejections, 1 hash each)")

    print("\n=== 2. Signature flooding ===")
    result, nodes, attacker, trace = run_attack(
        "lr-seluge", SignatureFlooder, {"period": 0.1}, base_delay=5.0)
    puzzle_checks = sum(n.pipeline.stats["puzzle_checks"] for n in nodes)
    ecdsa = sum(n.pipeline.stats["signature_verifications"] for n in nodes)
    print(f"{attacker.sent} forged signature packets broadcast")
    print(f"puzzle checks (1 hash each): {puzzle_checks}; "
          f"ECDSA verifications across {len(nodes)} nodes: {ecdsa}")
    print(f"dissemination completed: {result.completed}, images ok: {result.images_ok}")

    print("\n=== 3. Denial of receipt ===")
    for threshold, label in ((None, "no mitigation"), (5, "SNACK counter = 5")):
        result, nodes, attacker, trace = run_attack(
            "lr-seluge", DenialOfReceiptAttacker,
            {"period": 0.5, "victim": 0, "unit": 2, "n_packets": 12},
            snack_flood_threshold=threshold)
        wasted = trace.counters.get("tx_data_unit_2", 0)
        ignored = trace.counters.get("snack_ignored_flood", 0)
        print(f"{label:>18}: victim transmitted {wasted} unit-2 packets for the "
              f"attacker; {ignored} SNACKs ignored; completed={result.completed}")


if __name__ == "__main__":
    main()
