"""Shared machinery for XOR (GF(2)) erasure codes.

LT and Tornado-style codes combine source blocks with plain XOR.  Each
encoded symbol is described by a *bitmask* over the ``k`` source blocks
(bit ``j`` set means block ``j`` participates).  Decoding is exact Gaussian
elimination over GF(2): bitmasks are Python ints (cheap XOR), payload rows
are numpy uint8 arrays (vectorised XOR), and a set of received symbols
decodes iff its bitmask matrix has rank ``k`` — which is precisely why
these codes need ``k' > k`` received symbols in practice, the reception
overhead the paper attributes to its erasure code.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.erasure.base import ErasureCode, blocks_to_array
from repro.errors import CodingError, DecodeError
from repro.sim.rng import derived_stream

__all__ = ["XorErasureCode", "gf2_rank"]


def _xor_basis(masks: Sequence[int]) -> Dict[int, int]:
    """Reduced XOR basis keyed by leading-bit position."""
    table: Dict[int, int] = {}
    for mask in masks:
        while mask:
            msb = mask.bit_length() - 1
            pivot = table.get(msb)
            if pivot is None:
                table[msb] = mask
                break
            mask ^= pivot
    return table


def gf2_rank(masks: Sequence[int]) -> int:
    """Rank over GF(2) of the given bitmask rows."""
    return len(_xor_basis(masks))


class XorErasureCode(ErasureCode):
    """Base class: subclasses define the bitmask of every encoded symbol."""

    def symbol_mask(self, index: int) -> int:
        """Bitmask over source blocks for encoded symbol ``index``."""
        raise NotImplementedError

    def _ensure_full_rank(self) -> None:
        """Guarantee the n predetermined symbols span all k source blocks.

        A randomly drawn symbol set can (rarely) miss a source block
        entirely, which would make the page undecodable no matter how many
        packets arrive.  Repair deterministically: replace the last symbols
        with singletons of the missing pivot columns.  Subclasses call this
        once at construction; every node runs the same repair, so the
        symbol set stays globally consistent.
        """
        patch_index = self.n - 1
        while True:
            basis = _xor_basis([self.symbol_mask(i) for i in range(self.n)])
            if len(basis) == self.k:
                return
            if patch_index < 0:
                raise CodingError(
                    f"cannot repair symbol set to full rank (k={self.k}, n={self.n})"
                )
            # Overriding a symbol can itself remove a rank contributor, so
            # patch one symbol at a time and re-evaluate.
            missing = next(j for j in range(self.k) if j not in basis)
            self._override_mask(patch_index, 1 << missing)
            patch_index -= 1

    def _override_mask(self, index: int, mask: int) -> None:
        """Subclasses with mask caches may support deterministic repair."""
        cache = getattr(self, "_mask_cache", None)
        if cache is None:
            cache = getattr(self, "_parity_masks", None)
        if cache is None:  # pragma: no cover - subclasses always have one
            raise CodingError("code does not support mask repair")
        cache[index] = mask

    # -- encoding ---------------------------------------------------------------

    def encode(self, blocks: Sequence[bytes]) -> List[bytes]:
        if len(blocks) != self.k:
            raise CodingError(f"expected {self.k} source blocks, got {len(blocks)}")
        data = blocks_to_array(blocks)
        out: List[bytes] = []
        for index in range(self.n):
            mask = self.symbol_mask(index)
            if mask == 0:
                raise CodingError(f"symbol {index} has an empty combination")
            acc = np.zeros(data.shape[1], dtype=np.uint8)
            j = 0
            m = mask
            while m:
                if m & 1:
                    np.bitwise_xor(acc, data[j], out=acc)
                m >>= 1
                j += 1
            out.append(acc.tobytes())
        return out

    # -- decoding ---------------------------------------------------------------

    def decode(self, packets: Dict[int, bytes]) -> List[bytes]:
        if len(packets) < self.k:
            raise DecodeError(
                f"need at least k={self.k} symbols to decode, got {len(packets)}"
            )
        indices = sorted(packets)
        length = len(packets[indices[0]])
        rows: List[Tuple[int, np.ndarray]] = [
            (
                self.symbol_mask(i),
                np.frombuffer(packets[i], dtype=np.uint8).copy(),
            )
            for i in indices
        ]
        # Forward elimination over GF(2) with partial pivoting by lowest bit.
        solution: Dict[int, Tuple[int, np.ndarray]] = {}  # pivot column -> row
        for mask, payload in rows:
            while mask:
                pivot = (mask & -mask).bit_length() - 1
                existing = solution.get(pivot)
                if existing is None:
                    solution[pivot] = (mask, payload)
                    break
                mask ^= existing[0]
                payload = payload ^ existing[1]
        if len(solution) < self.k:
            raise DecodeError(
                f"received symbols span rank {len(solution)} < k={self.k}"
            )
        # Back substitution: reduce every pivot row to a singleton mask.
        for pivot in sorted(solution, reverse=True):
            mask, payload = solution[pivot]
            m = mask & ~(1 << pivot)
            while m:
                other = (m & -m).bit_length() - 1
                omask, opayload = solution[other]
                mask ^= omask
                payload = payload ^ opayload
                m = mask & ~(1 << pivot)
            solution[pivot] = (mask, payload)
        return [solution[j][1].tobytes() for j in range(self.k)]

    def decodable(self, indices: Sequence[int]) -> bool:
        """True when the given symbol indices span the source over GF(2)."""
        if len(indices) < self.k:
            return False
        return gf2_rank([self.symbol_mask(i) for i in indices]) == self.k

    def empirical_overhead(
        self,
        trials: int = 200,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> float:
        """Mean extra symbols (beyond k) needed to decode random receptions.

        Measures the code's true reception overhead — the quantity the
        protocol's declared ``k'`` must cover.  Pass an injected ``rng`` to
        share a stream with the caller; by default an independent stream is
        derived from ``seed`` and the code's parameters.
        """
        if rng is None:
            rng = derived_stream("erasure/overhead", type(self).__name__,
                                 self.k, self.n, seed)
        total_extra = 0
        for _ in range(trials):
            order = list(range(self.n))
            rng.shuffle(order)
            received: List[int] = []
            for count, idx in enumerate(order, start=1):
                received.append(idx)
                if count >= self.k and self.decodable(received):
                    total_extra += count - self.k
                    break
            else:
                total_extra += self.n - self.k
        return total_extra / trials
