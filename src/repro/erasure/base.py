"""The k-n-k' erasure-code contract (paper Section II-C).

A code transforms ``k`` equal-length source blocks into ``n >= k`` encoded
blocks such that any ``k'`` of them (``k <= k' <= n``) recover the source.
``k'`` is the *declared reception threshold* the protocol waits for before
attempting a decode; for an MDS code ``k' = k``, while Tornado-style codes
need a small overhead (``k' > k``), which the paper assumes.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import CodingError

__all__ = ["ErasureCode", "blocks_to_array", "array_to_blocks", "make_code"]


def blocks_to_array(blocks: Sequence[bytes]) -> np.ndarray:
    """Stack equal-length byte blocks into a (count x L) uint8 array."""
    if not blocks:
        raise CodingError("cannot encode zero blocks")
    length = len(blocks[0])
    for i, b in enumerate(blocks):
        if len(b) != length:
            raise CodingError(
                f"block {i} has length {len(b)}, expected {length}"
            )
    return np.frombuffer(b"".join(blocks), dtype=np.uint8).reshape(len(blocks), length)


def array_to_blocks(array: np.ndarray) -> List[bytes]:
    """Split a (count x L) uint8 array back into byte blocks."""
    return [row.tobytes() for row in array]


class ErasureCode(abc.ABC):
    """Abstract fixed-rate erasure code with parameters ``k``, ``n``, ``k'``."""

    def __init__(self, k: int, n: int, kprime: int) -> None:
        if k < 1:
            raise CodingError(f"k must be >= 1, got {k}")
        if n < k:
            raise CodingError(f"n ({n}) must be >= k ({k})")
        if not k <= kprime <= n:
            raise CodingError(f"k' ({kprime}) must lie in [k={k}, n={n}]")
        self.k = k
        self.n = n
        self.kprime = kprime

    @property
    def rate(self) -> float:
        """Expansion ratio n/k."""
        return self.n / self.k

    @property
    def redundancy(self) -> int:
        """Number of redundant blocks n - k."""
        return self.n - self.k

    @abc.abstractmethod
    def encode(self, blocks: Sequence[bytes]) -> List[bytes]:
        """Encode ``k`` source blocks into ``n`` encoded blocks."""

    @abc.abstractmethod
    def decode(self, packets: Dict[int, bytes]) -> List[bytes]:
        """Recover the ``k`` source blocks from ``{index: encoded block}``.

        Raises :class:`~repro.errors.DecodeError` when the supplied packets
        cannot determine the source (too few, or linearly dependent).
        """

    def can_attempt_decode(self, received_count: int) -> bool:
        """Protocol-level gate: decode is attempted once ``k'`` packets arrived."""
        return received_count >= self.kprime

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(k={self.k}, n={self.n}, kprime={self.kprime})"
        )


def make_code(kind: str, k: int, n: int, kprime: int = 0, seed: int = 0) -> ErasureCode:
    """Factory over the implemented code families.

    ``kind``: ``"rs"`` (systematic Reed-Solomon, MDS), ``"rlc"`` (random
    linear over GF(256)), ``"lt"`` (fixed-rate LT, Robust Soliton), or
    ``"tornado"`` (systematic staircase XOR).  ``kprime=0`` selects each
    code's default declared reception threshold.
    """
    from repro.erasure.lt import LTCode
    from repro.erasure.rlc import RandomLinearCode
    from repro.erasure.rs import ReedSolomonCode
    from repro.erasure.tornado import TornadoCode

    kind = kind.lower()
    if kind == "rs":
        return ReedSolomonCode(k, n, kprime or k)
    if kind == "rlc":
        return RandomLinearCode(k, n, kprime or min(n, k + 2), seed=seed)
    if kind == "lt":
        return LTCode(k, n, kprime, seed=seed)
    if kind == "tornado":
        return TornadoCode(k, n, kprime, seed=seed)
    raise CodingError(f"unknown erasure code kind {kind!r}")
