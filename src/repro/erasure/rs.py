"""Systematic Reed-Solomon code over GF(256) via a Cauchy parity matrix.

The full encoding matrix is ``[I_k ; C]`` where ``C`` is the (n-k) x k Cauchy
matrix ``C[i, j] = 1 / (x_i + y_j)`` with distinct ``x_i = k + i`` and
``y_j = j``.  Every square submatrix of a Cauchy matrix is nonsingular, which
makes the code MDS: *any* ``k`` of the ``n`` encoded blocks recover the page.

LR-Seluge's protocol threshold ``k'`` may be declared larger than ``k`` to
emulate the reception overhead of the non-MDS (Tornado-style) codes the paper
assumes; decoding itself only ever needs ``k`` blocks.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.erasure.base import ErasureCode, array_to_blocks, blocks_to_array
from repro.erasure.gf256 import GF256
from repro.erasure.matrix import gf_solve
from repro.errors import CodingError, DecodeError

__all__ = ["ReedSolomonCode"]


class ReedSolomonCode(ErasureCode):
    """Systematic MDS code: encoded blocks 0..k-1 are the source itself."""

    def __init__(self, k: int, n: int, kprime: int = 0) -> None:
        super().__init__(k, n, kprime or k)
        if n > 256:
            raise CodingError(f"RS over GF(256) supports n <= 256, got {n}")
        self._parity = self._cauchy_matrix(k, n - k)
        # Full row for encoded index j: identity row if j < k else parity row.
        self._rows = np.vstack([np.eye(k, dtype=np.uint8), self._parity]) if n > k else np.eye(k, dtype=np.uint8)

    @staticmethod
    def _cauchy_matrix(k: int, parity_rows: int) -> np.ndarray:
        if parity_rows == 0:
            return np.zeros((0, k), dtype=np.uint8)
        if k + parity_rows > 256:
            raise CodingError("Cauchy construction needs k + (n-k) <= 256")
        out = np.zeros((parity_rows, k), dtype=np.uint8)
        for i in range(parity_rows):
            x = k + i
            for j in range(k):
                out[i, j] = GF256.inv(x ^ j)
        return out

    def coefficient_row(self, index: int) -> np.ndarray:
        """The GF(256) combination row that produced encoded block ``index``."""
        if not 0 <= index < self.n:
            raise CodingError(f"encoded index {index} out of range [0, {self.n})")
        return self._rows[index]

    def encode(self, blocks: Sequence[bytes]) -> List[bytes]:
        if len(blocks) != self.k:
            raise CodingError(f"expected {self.k} source blocks, got {len(blocks)}")
        data = blocks_to_array(blocks)
        encoded = list(blocks)  # systematic prefix, no copy of bytes needed
        if self.n > self.k:
            parity = GF256.matmul(self._parity, data)
            encoded = list(blocks) + array_to_blocks(parity)
        return encoded

    def decode(self, packets: Dict[int, bytes]) -> List[bytes]:
        if len(packets) < self.k:
            raise DecodeError(
                f"need at least k={self.k} packets to decode, got {len(packets)}"
            )
        indices = sorted(packets)[: self.k]
        # Fast path: all-systematic reception needs no algebra.
        if indices == list(range(self.k)):
            return [packets[i] for i in indices]
        coeffs = np.stack([self._rows[i] for i in indices])
        payloads = blocks_to_array([packets[i] for i in indices])
        solved = gf_solve(coeffs, payloads)
        return array_to_blocks(solved)
