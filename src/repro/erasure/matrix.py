"""Dense linear algebra over GF(256): elimination, rank, inversion, solving.

Used by the Reed-Solomon and random-linear-code decoders.  All matrices are
numpy uint8 arrays; row operations are vectorised through the field tables.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.erasure.gf256 import GF256
from repro.errors import DecodeError

__all__ = ["gf_rank", "gf_invert", "gf_solve", "gf_rref"]


def gf_rref(matrix: np.ndarray, augment: Optional[np.ndarray] = None) -> Tuple[np.ndarray, Optional[np.ndarray], int]:
    """Reduced row-echelon form over GF(256).

    Row-reduces ``matrix`` (copied) and mirrors every row operation on the
    optional ``augment`` block.  Returns ``(rref, reduced_augment, rank)``.
    """
    a = matrix.astype(np.uint8).copy()
    aug = augment.astype(np.uint8).copy() if augment is not None else None
    rows, cols = a.shape
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        pivot = None
        for r in range(pivot_row, rows):
            if a[r, col] != 0:
                pivot = r
                break
        if pivot is None:
            continue
        if pivot != pivot_row:
            a[[pivot_row, pivot]] = a[[pivot, pivot_row]]
            if aug is not None:
                aug[[pivot_row, pivot]] = aug[[pivot, pivot_row]]
        inv = GF256.inv(int(a[pivot_row, col]))
        if inv != 1:
            a[pivot_row] = GF256.scale_vec(inv, a[pivot_row])
            if aug is not None:
                aug[pivot_row] = GF256.scale_vec(inv, aug[pivot_row])
        for r in range(rows):
            if r != pivot_row and a[r, col] != 0:
                factor = int(a[r, col])
                GF256.addmul_vec(a[r], factor, a[pivot_row])
                if aug is not None:
                    GF256.addmul_vec(aug[r], factor, aug[pivot_row])
        pivot_row += 1
    return a, aug, pivot_row


def gf_rank(matrix: np.ndarray) -> int:
    """Rank of ``matrix`` over GF(256)."""
    _, _, rank = gf_rref(matrix)
    return rank


def gf_invert(matrix: np.ndarray) -> np.ndarray:
    """Inverse of a square matrix; raises :class:`DecodeError` if singular."""
    n, m = matrix.shape
    if n != m:
        raise DecodeError(f"cannot invert non-square matrix {matrix.shape}")
    identity = np.eye(n, dtype=np.uint8)
    rref, inv, rank = gf_rref(matrix, identity)
    if rank < n:
        raise DecodeError(f"matrix is singular (rank {rank} < {n})")
    del rref
    if inv is None:
        raise AssertionError('invariant violated: inv is not None')
    return inv


def gf_solve(coeffs: np.ndarray, payloads: np.ndarray) -> np.ndarray:
    """Solve ``coeffs @ X = payloads`` for X over GF(256).

    ``coeffs`` is (m x k) with m >= k and rank k; ``payloads`` is (m x L).
    Returns the (k x L) solution.  Raises :class:`DecodeError` when the
    system is rank-deficient (not enough independent packets).
    """
    m, k = coeffs.shape
    if payloads.shape[0] != m:
        raise DecodeError(
            f"coefficient rows ({m}) != payload rows ({payloads.shape[0]})"
        )
    rref, reduced, rank = gf_rref(coeffs, payloads)
    if rank < k:
        raise DecodeError(f"system is rank-deficient (rank {rank} < {k})")
    if reduced is None:
        raise AssertionError('invariant violated: reduced is not None')
    # After full reduction the first k pivot rows carry the solution in order.
    solution = np.zeros((k, payloads.shape[1]), dtype=np.uint8)
    for r in range(rank):
        pivot_cols = np.nonzero(rref[r])[0]
        if len(pivot_cols) == 0:
            continue
        solution[pivot_cols[0]] = reduced[r]
    return solution
