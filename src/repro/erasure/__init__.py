"""Erasure-coding substrate.

LR-Seluge encodes every page with a fixed-rate ``k``-``n``-``k'`` erasure code
(Section II-C): ``k`` source blocks become ``n`` encoded blocks and any ``k'``
of them recover the page.  This package provides real codes, not stand-ins:

* :class:`ReedSolomonCode` — systematic MDS code built from a Cauchy matrix
  over GF(256); ``k' = k`` plus an optional declared reception overhead to
  emulate the non-MDS (Tornado-style) codes the paper assumes (``k' > k``).
* :class:`RandomLinearCode` — fixed-rate random linear code over GF(256),
  also usable ratelessly (the Rateless-Deluge baseline).
"""

from repro.erasure.base import ErasureCode, make_code
from repro.erasure.gf256 import GF256
from repro.erasure.rs import ReedSolomonCode
from repro.erasure.rlc import RandomLinearCode
from repro.erasure.lt import LTCode
from repro.erasure.tornado import TornadoCode

__all__ = [
    "ErasureCode",
    "make_code",
    "GF256",
    "ReedSolomonCode",
    "RandomLinearCode",
    "LTCode",
    "TornadoCode",
]
