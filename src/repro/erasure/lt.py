"""LT code (Luby, FOCS'02) used at a fixed rate.

Each encoded symbol draws a degree from the Robust Soliton distribution and
XORs that many uniformly chosen source blocks.  LT codes are rateless by
nature; LR-Seluge's trick is to *predetermine* the first ``n`` symbols (the
symbol derivation is seeded by ``(seed, generation, index)``, so every node
generates identical symbols), which is exactly what makes hash-chaining —
and therefore immediate authentication — possible.

The price is reception overhead: peeling/Gaussian decoding needs somewhat
more than ``k`` symbols.  The default declared threshold uses the classic
``k + O(sqrt(k) ln^2(k/delta))`` margin, and
:meth:`~repro.erasure.xor_base.XorErasureCode.empirical_overhead` measures
the real figure.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.erasure.xor_base import XorErasureCode
from repro.errors import CodingError
from repro.sim.rng import derived_stream

__all__ = ["LTCode", "robust_soliton"]


def robust_soliton(k: int, c: float = 0.1, delta: float = 0.5) -> List[float]:
    """The Robust Soliton degree distribution over degrees 1..k.

    Returns a probability vector ``p[d-1] = P[degree = d]``.
    """
    if k < 1:
        raise CodingError(f"k must be >= 1, got {k}")
    if k == 1:
        return [1.0]
    # Ideal Soliton.
    rho = [0.0] * (k + 1)
    rho[1] = 1.0 / k
    for d in range(2, k + 1):
        rho[d] = 1.0 / (d * (d - 1))
    # Robust addition tau.
    big_r = c * math.log(k / delta) * math.sqrt(k)
    big_r = max(big_r, 1.0)
    pivot = int(round(k / big_r))
    pivot = min(max(pivot, 1), k)
    tau = [0.0] * (k + 1)
    for d in range(1, pivot):
        tau[d] = big_r / (d * k)
    tau[pivot] = big_r * math.log(big_r / delta) / k if big_r > delta else 0.0
    total = sum(rho) + sum(tau)
    return [(rho[d] + tau[d]) / total for d in range(1, k + 1)]


class LTCode(XorErasureCode):
    """Fixed-rate LT code: the first ``n`` symbols of a seeded LT stream."""

    def __init__(self, k: int, n: int, kprime: int = 0, seed: int = 0,
                 generation: int = 0, c: float = 0.1, delta: float = 0.5) -> None:
        if not kprime:
            # ~90th-percentile of the empirical reception overhead: mean is
            # ~sqrt(k)·ln(k)·0.35 for this distribution; failing a decode
            # attempt is cheap (the receiver just waits for one more packet).
            margin = int(math.ceil(math.sqrt(k) * math.log(max(k, 2)) * 0.5)) + 1
            kprime = min(n, k + margin)
        super().__init__(k, n, kprime)
        self.seed = seed
        self.generation = generation
        self._dist = robust_soliton(k, c, delta)
        self._cdf: List[float] = []
        acc = 0.0
        for p in self._dist:
            acc += p
            self._cdf.append(acc)
        self._mask_cache: Dict[int, int] = {}
        self._ensure_full_rank()

    def symbol_mask(self, index: int) -> int:
        mask = self._mask_cache.get(index)
        if mask is not None:
            return mask
        # Derived, not injected: symbol identity across nodes requires the
        # stream to be a pure function of (seed, generation, index).
        rng = derived_stream("lt", self.seed, self.generation, index)
        u = rng.random()
        degree = 1 + next(
            (d for d, cum in enumerate(self._cdf) if u <= cum), self.k - 1
        )
        chosen = rng.sample(range(self.k), min(degree, self.k))
        mask = 0
        for j in chosen:
            mask |= 1 << j
        # Guarantee the *set* of predetermined symbols spans every block at
        # least plausibly: degree-1 symbols for the first few indices help
        # the peeling start (systematic-ish head).
        if index < max(2, self.k // 8) and index < self.k:
            mask = 1 << index
        self._mask_cache[index] = mask
        return mask
