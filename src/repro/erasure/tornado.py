"""Tornado-style systematic XOR code (Luby et al., STOC'97 flavour).

A practical stand-in for the cascaded-bipartite-graph Tornado construction:
systematic (the first ``k`` symbols are the source blocks) with ``n - k``
parity symbols, each XORing a dense pseudo-random subset (~``k/2``) of the
source blocks.  Encoding and decoding are pure XOR, and decoding needs
slightly more than ``k`` received symbols — the genuine reception overhead
the paper's ``k' > k`` models.

Simplification note: real Tornado codes cascade sparse bipartite layers to
get *linear-time* decoding; our dense single layer keeps the XOR-only
arithmetic and the k'>k reception behaviour (what the protocol depends on)
while using Gaussian elimination over GF(2) bitmasks to decode — still
microseconds at sensor-page sizes.  The sparse, peeling-friendly profile is
available separately via :class:`repro.erasure.lt.LTCode`.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.erasure.xor_base import XorErasureCode
from repro.sim.rng import derived_stream

__all__ = ["TornadoCode"]


class TornadoCode(XorErasureCode):
    """Systematic XOR code with dense random parities."""

    def __init__(self, k: int, n: int, kprime: int = 0, seed: int = 0,
                 generation: int = 0) -> None:
        if not kprime:
            kprime = min(n, k + max(2, int(math.ceil(0.08 * k)) + 1))
        super().__init__(k, n, kprime)
        self.seed = seed
        self.generation = generation
        self._parity_masks: Dict[int, int] = {}
        self._ensure_full_rank()

    def symbol_mask(self, index: int) -> int:
        if index < self.k:
            return 1 << index
        mask = self._parity_masks.get(index)
        if mask is not None:
            return mask
        # Derived, not injected: every node must reproduce the identical
        # parity graph from (seed, generation, index) alone, so the stream
        # comes from the sanctioned per-name derivation in sim/rng.
        rng = derived_stream("tornado", self.seed, self.generation, index)
        degree = max(2, self.k // 2 + rng.choice((-1, 0, 1)))
        degree = min(degree, self.k)
        mask = 0
        for j in rng.sample(range(self.k), degree):
            mask |= 1 << j
        self._parity_masks[index] = mask
        return mask
