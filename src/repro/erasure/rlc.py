"""Random linear codes over GF(256).

Two uses:

* **Fixed-rate** (``n`` predetermined rows): an alternative LR-Seluge code
  whose packets are random combinations of the source.  Any ``k`` received
  rows decode iff they are linearly independent — true with probability
  > 0.996 over GF(256) — so the declared threshold ``k' = k + 2`` makes
  decode failures negligible, matching the paper's ``k' > k`` assumption.
* **Rateless** (unbounded indices): the Rateless-Deluge baseline; every new
  index yields a fresh random combination.

Rows are derived deterministically from ``(seed, generation, index)`` so
every node in a simulation generates identical packets — exactly the paper's
requirement that "every node can generate the same n encoded packets".
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.erasure.base import ErasureCode, array_to_blocks, blocks_to_array
from repro.erasure.gf256 import GF256
from repro.erasure.matrix import gf_rank, gf_solve
from repro.errors import CodingError, DecodeError

__all__ = ["RandomLinearCode"]


def _row_from_hash(seed: int, generation: int, index: int, k: int) -> np.ndarray:
    """Deterministic pseudo-random GF(256) row for packet ``index``."""
    out = np.zeros(k, dtype=np.uint8)
    filled = 0
    counter = 0
    while filled < k:
        digest = hashlib.sha256(
            f"rlc:{seed}:{generation}:{index}:{counter}".encode()
        ).digest()
        take = min(k - filled, len(digest))
        out[filled : filled + take] = np.frombuffer(digest[:take], dtype=np.uint8)
        filled += take
        counter += 1
    if not out.any():  # all-zero row would be useless; perturb deterministically
        out[index % k] = 1
    return out


class RandomLinearCode(ErasureCode):
    """Fixed-rate random linear code with systematic prefix.

    The first ``k`` encoded blocks are the source blocks themselves (this
    mirrors practical RLC deployments and keeps the loss-free path cheap);
    indices ``k..n-1`` are dense random combinations.  Indices ``>= n`` are
    still well-defined, which provides the rateless mode.
    """

    def __init__(self, k: int, n: int, kprime: int = 0, seed: int = 0, generation: int = 0) -> None:
        super().__init__(k, n, kprime or min(n, k + 2))
        self.seed = seed
        self.generation = generation
        self._row_cache: Dict[int, np.ndarray] = {}

    def coefficient_row(self, index: int) -> np.ndarray:
        """Combination row for encoded block ``index`` (any index >= 0)."""
        if index < 0:
            raise CodingError(f"encoded index must be >= 0, got {index}")
        row = self._row_cache.get(index)
        if row is None:
            if index < self.k:
                row = np.zeros(self.k, dtype=np.uint8)
                row[index] = 1
            else:
                row = _row_from_hash(self.seed, self.generation, index, self.k)
            self._row_cache[index] = row
        return row

    def encode(self, blocks: Sequence[bytes]) -> List[bytes]:
        if len(blocks) != self.k:
            raise CodingError(f"expected {self.k} source blocks, got {len(blocks)}")
        return self.encode_indices(blocks, range(self.n))

    def encode_indices(self, blocks: Sequence[bytes], indices: Iterable[int]) -> List[bytes]:
        """Encode only the requested indices (supports rateless operation)."""
        data = blocks_to_array(blocks)
        out: List[bytes] = []
        for idx in indices:
            if idx < self.k:
                out.append(bytes(blocks[idx]))
                continue
            acc = np.zeros(data.shape[1], dtype=np.uint8)
            row = self.coefficient_row(idx)
            for j in range(self.k):
                GF256.addmul_vec(acc, int(row[j]), data[j])
            out.append(acc.tobytes())
        return out

    def decode(self, packets: Dict[int, bytes]) -> List[bytes]:
        if len(packets) < self.k:
            raise DecodeError(
                f"need at least k={self.k} packets to decode, got {len(packets)}"
            )
        indices = sorted(packets)
        coeffs = np.stack([self.coefficient_row(i) for i in indices])
        payloads = blocks_to_array([packets[i] for i in indices])
        solved = gf_solve(coeffs, payloads)
        return array_to_blocks(solved)

    def decodable(self, indices: Sequence[int]) -> bool:
        """True when the given packet indices span the source (rank k)."""
        if len(indices) < self.k:
            return False
        coeffs = np.stack([self.coefficient_row(i) for i in indices])
        return gf_rank(coeffs) == self.k
