"""Declarative attack plans.

An :class:`AttackPlan` is an ordered list of :class:`AttackSpec` records —
pure data, exactly like :class:`repro.faults.plan.FaultPlan`: building a plan
performs no simulation work, so plans can be generated, merged, serialised to
JSON (the ``--attack-plan`` CLI flag), embedded in frozen scenario
dataclasses (stable campaign task keys), and deployed deterministically by an
:class:`~repro.attacks.engine.AttackEngine`.

Each spec names an attack *kind* from the plugin registry
(:data:`repro.attacks.model.ATTACK_KINDS`), its activation window, its firing
period, and a kind-specific parameter mapping passed to the attack model's
constructor.  ``position``/``reach`` control where the engine drops the
attacker into the topology (default: the victim centroid, audible to every
node within the longest legitimate link distance).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from repro.errors import ConfigError

__all__ = ["AttackSpec", "AttackPlan"]


def _frozen_params(params: Optional[Mapping[str, object]]) -> Tuple[Tuple[str, object], ...]:
    if not params:
        return ()
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class AttackSpec:
    """One attacker: kind, schedule, placement, and model parameters.

    ``params`` is stored as a sorted tuple of ``(name, value)`` pairs so the
    spec stays hashable and canonicalises deterministically inside frozen
    scenario dataclasses; :meth:`kwargs` rebuilds the constructor mapping.
    """

    kind: str
    start: float = 0.1
    period: float = 0.5
    stop: Optional[float] = None
    position: Optional[Tuple[float, float]] = None
    reach: Optional[float] = None
    params: Tuple[Tuple[str, object], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.kind:
            raise ConfigError("attack spec needs a kind")
        if self.start < 0:
            raise ConfigError(f"attack start must be >= 0, got {self.start}")
        if self.period <= 0:
            raise ConfigError(f"attack period must be > 0, got {self.period}")
        if self.stop is not None and self.stop <= self.start:
            raise ConfigError(
                f"attack stop {self.stop} must come after start {self.start}")
        if self.reach is not None and self.reach <= 0:
            raise ConfigError(f"attack reach must be > 0, got {self.reach}")
        if self.position is not None and len(self.position) != 2:
            raise ConfigError("attack position must be an (x, y) pair")
        # Normalise a mapping passed by a caller into the canonical tuple form.
        if isinstance(self.params, Mapping):
            object.__setattr__(self, "params", _frozen_params(self.params))

    def kwargs(self) -> dict:
        """The kind-specific constructor keyword arguments."""
        return dict(self.params)

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, "start": self.start, "period": self.period}
        if self.stop is not None:
            out["stop"] = self.stop
        if self.position is not None:
            out["position"] = list(self.position)
        if self.reach is not None:
            out["reach"] = self.reach
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, raw: dict) -> "AttackSpec":
        if not isinstance(raw, dict) or "kind" not in raw:
            raise ConfigError(f"attack spec missing kind: {raw!r}")
        position = raw.get("position")
        return cls(
            kind=str(raw["kind"]),
            start=float(raw.get("start", 0.1)),
            period=float(raw.get("period", 0.5)),
            stop=(float(raw["stop"]) if raw.get("stop") is not None else None),
            position=(tuple(position) if position is not None else None),
            reach=(float(raw["reach"]) if raw.get("reach") is not None else None),
            params=_frozen_params(raw.get("params")),
        )


class AttackPlan:
    """A buildable, mergeable, JSON-round-trippable list of attack specs."""

    def __init__(self, specs: Iterable[AttackSpec] = ()):
        self._specs: List[AttackSpec] = list(specs)

    # -- building ------------------------------------------------------------

    def add(self, spec: AttackSpec) -> "AttackPlan":
        self._specs.append(spec)
        return self

    def attack(self, kind: str, start: float = 0.1, period: float = 0.5,
               stop: Optional[float] = None,
               position: Optional[Tuple[float, float]] = None,
               reach: Optional[float] = None,
               **params: object) -> "AttackPlan":
        """Append one attacker of ``kind`` with model parameters ``params``."""
        return self.add(AttackSpec(
            kind=kind, start=start, period=period, stop=stop,
            position=position, reach=reach, params=_frozen_params(params),
        ))

    def merge(self, other: "AttackPlan") -> "AttackPlan":
        """A new plan holding this plan's specs followed by ``other``'s."""
        return AttackPlan(self._specs + other._specs)

    # -- access --------------------------------------------------------------

    @property
    def specs(self) -> Tuple[AttackSpec, ...]:
        """All specs in insertion order (one attacker node each)."""
        return tuple(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[AttackSpec]:
        return iter(self._specs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttackPlan):
            return NotImplemented
        return self.specs == other.specs

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AttackPlan({len(self._specs)} attackers)"

    # -- serialisation -------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({"attacks": [s.to_dict() for s in self._specs]},
                          indent=2)

    @classmethod
    def from_json(cls, text: str) -> "AttackPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"attack plan is not valid JSON: {exc}")
        specs = raw.get("attacks") if isinstance(raw, dict) else raw
        if not isinstance(specs, list):
            raise ConfigError('attack plan JSON must be {"attacks": [...]} or a list')
        return cls(AttackSpec.from_dict(s) for s in specs)

    @classmethod
    def from_json_file(cls, path: Union[str, Path]) -> "AttackPlan":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
