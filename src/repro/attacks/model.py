"""The adversary plugin base and its kind registry.

An :class:`AttackModel` is a radio-attached node that fires attack traffic on
a period (via :class:`~repro.sim.process.PeriodicProcess`), snoops
advertisements to target its victims, and supports the full node lifecycle
the rest of the harness expects:

* :meth:`crash`/:meth:`reboot` — so a PR 1 :class:`~repro.faults.plan.
  FaultPlan` can target attacker node ids exactly like protocol nodes;
* :meth:`halt` — the :class:`~repro.attacks.engine.AttackEngine` halts every
  attacker the instant all victims report completion, so attack scenarios
  stop inflating event counts after the interesting part is over;
* an optional absolute ``stop_time`` from the spec's activation window.

Concrete attacks subclass this, set a class-level ``kind`` string, and
register themselves with :func:`register_attack`; the registry is what makes
:class:`~repro.attacks.plan.AttackSpec` kinds resolvable by the engine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Dict, Optional, Type

from repro.errors import ConfigError
from repro.net.node import NetworkNode
from repro.net.packet import Frame, FrameKind
from repro.net.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.attacks.engine import AttackContext

__all__ = ["AttackModel", "ATTACK_KINDS", "register_attack", "resolve_kind"]

#: kind string -> attack class; populated by :func:`register_attack`.
ATTACK_KINDS: Dict[str, Type["AttackModel"]] = {}


def register_attack(cls: Type["AttackModel"]) -> Type["AttackModel"]:
    """Class decorator: add ``cls`` to the attack-kind registry."""
    if not cls.kind:
        raise ConfigError(f"{cls.__name__} must set a non-empty kind")
    if cls.kind in ATTACK_KINDS:
        raise ConfigError(f"duplicate attack kind {cls.kind!r}")
    ATTACK_KINDS[cls.kind] = cls
    return cls


def resolve_kind(kind: str) -> Type["AttackModel"]:
    """Look up a registered attack class; raise ConfigError on unknown kinds."""
    try:
        return ATTACK_KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(ATTACK_KINDS)) or "<none registered>"
        raise ConfigError(f"unknown attack kind {kind!r} (known: {known})")


class AttackModel(NetworkNode):
    """Base adversary: periodic attack traffic plus lifecycle management."""

    kind: ClassVar[str] = ""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        radio: Radio,
        rngs: RngRegistry,
        trace: TraceRecorder,
        period: float = 0.5,
        start_delay: float = 0.1,
        stop_time: Optional[float] = None,
        context: Optional["AttackContext"] = None,
    ):
        super().__init__(node_id, sim, radio, rngs, trace)
        self.sent = 0
        self.halted = False
        self.crashed = False
        self.context = context
        self._period = period
        self._start_delay = start_delay
        self._stop_time = stop_time
        self._process: Optional[PeriodicProcess] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Arm the periodic attack loop (idempotent while running)."""
        if self._process is not None or self.halted or self.crashed:
            return
        self._process = PeriodicProcess(
            self.sim, self._fire, self._period, start_delay=self._start_delay
        )

    def stop(self) -> None:
        """Cancel the pending tick without marking the attacker finished."""
        if self._process is not None:
            self._process.stop()
            self._process = None

    def halt(self) -> None:
        """Permanently stop attacking (victims completed, or window closed)."""
        if self.halted:
            return
        self.stop()
        self.halted = True
        self.trace.record(self.sim.now, "attack_halted", self.node_id,
                          attack=self.kind, sent=self.sent)

    def crash(self) -> None:
        """Power loss: leave the air and stop the attack loop."""
        if self.crashed:
            return
        self.crashed = True
        self.stop()
        self.radio.detach(self.node_id)
        self.trace.record(self.sim.now, "fault_crash", self.node_id)

    def reboot(self) -> None:
        """Power restored: resume attacking unless already halted."""
        if not self.crashed:
            return
        self.crashed = False
        self.radio.attach(self.node_id)
        self.trace.record(self.sim.now, "fault_reboot", self.node_id,
                          resume_unit=0)
        if not self.halted:
            self._start_delay = self._period
            self.start()

    # -- attack machinery ----------------------------------------------------

    def _fire(self) -> None:
        if self._stop_time is not None and self.sim.now >= self._stop_time:
            self.halt()
            return
        self._attack_once()

    def _attack_once(self) -> None:
        raise NotImplementedError

    def on_receive(self, frame: Frame, sender: int) -> None:
        if self.crashed or self.halted:
            return
        # Attackers snoop advertisements to target the current page.
        if frame.kind is FrameKind.ADV:
            self._observe_adv(frame.payload, sender)
        self._observe(frame, sender)

    def _observe_adv(self, adv, sender: int) -> None:
        """Hook: an advertisement was overheard."""

    def _observe(self, frame: Frame, sender: int) -> None:
        """Hook: any frame was overheard (reactive attacks live here)."""
