"""The attack library (DESIGN.md §12).

Eight registered adversaries:

* :class:`BogusDataInjector` (``bogus-data``) — floods forged data packets
  for the page its victims are collecting; secure receivers reject each at
  one hash check, Deluge accepts and corrupts the installed image.
* :class:`SignatureFlooder` (``signature-flood``) — floods forged signature
  packets; the message-specific puzzle filters them at one hash each.
* :class:`ControlForger` (``control-forge``) — an outsider forging
  advertisements and SNACKs; control-packet authentication drops every one
  at a single MAC check.
* :class:`DenialOfReceiptAttacker` (``denial-of-receipt``) — a compromised
  node spamming all-ones SNACKs at one victim to drain its battery.
* :class:`ReactiveJammer` (``reactive-jammer``) — transmits jam frames on
  overheard activity, under an airtime duty-cycle budget (an energy-limited
  jammer); jam frames carry no protocol payload and hurt purely through
  channel occupancy and collisions.
* :class:`GreyholeRelay` (``greyhole``) — an insider holding the authentic
  image that advertises full progress to lure requesters, then serves each
  requested packet only with probability ``1 - drop_rate``.
* :class:`ReplayAttacker` (``replay``) — captures authentic frames off the
  air and re-injects them later: replayed SNACKs make servers re-serve full
  bursts, replayed stale-page data trips receivers' quiet-window deferrals.
* :class:`SybilSnackForger` (``sybil-snack``) — one radio, many fabricated
  requester identities: defeats any per-*claimed-identity* counter (each
  fake identity stays under threshold) so only link-layer rate limiting
  (``DefenseConfig.rate_limit``) bounds it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.packets import Advertisement, DataPacket, SignaturePacket, SnackRequest
from repro.net.packet import Frame, FrameKind
from repro.attacks.model import AttackModel, register_attack

__all__ = [
    "BogusDataInjector",
    "SignatureFlooder",
    "ControlForger",
    "DenialOfReceiptAttacker",
    "ReactiveJammer",
    "GreyholeRelay",
    "ReplayAttacker",
    "SybilSnackForger",
]


def _snack_size(n_packets: int) -> int:
    """Header + ids + bit-vector — matches the protocols' SNACK wire size."""
    return 11 + 4 + (n_packets + 7) // 8


@register_attack
class BogusDataInjector(AttackModel):
    """Injects forged data packets for the page victims are collecting."""

    kind = "bogus-data"

    def __init__(self, *args, payload_size: int = 72, version: int = 2, **kwargs):
        super().__init__(*args, **kwargs)
        self.payload_size = payload_size
        self.version = version
        self._progress: Dict[int, int] = {}
        self._counter = 0

    def _observe_adv(self, adv, sender: int) -> None:
        self._progress[sender] = adv.units_complete

    @property
    def _target_unit(self) -> int:
        # Victims collect the unit right after what they advertise; aim at
        # the least-progressed neighborhood member so forgeries hit nodes
        # actively buffering that unit.
        if not self._progress:
            return 0
        return min(self._progress.values())

    def _attack_once(self) -> None:
        self._counter += 1
        forged = DataPacket(
            version=self.version,
            unit=self._target_unit,
            index=self._counter % 64,
            payload=bytes([self._counter % 251]) * self.payload_size,
        )
        size = 11 + self.payload_size
        self.broadcast(FrameKind.DATA, size, forged)
        self.sent += 1
        self.trace.count("attack_bogus_data")


@register_attack
class SignatureFlooder(AttackModel):
    """Floods forged signature packets (no valid puzzle solution)."""

    kind = "signature-flood"

    def __init__(self, *args, version: int = 2, **kwargs):
        super().__init__(*args, **kwargs)
        self.version = version
        self._counter = 0

    def _attack_once(self) -> None:
        self._counter += 1
        forged = SignaturePacket(
            version=self.version,
            root=bytes([self._counter % 251]) * 8,
            metadata=b"\x00" * 13,
            signature=bytes(48),
            puzzle=None,
        )
        self.broadcast(FrameKind.SIGNATURE, 88, forged)
        self.sent += 1
        self.trace.count("attack_bogus_signature")


@register_attack
class ControlForger(AttackModel):
    """An outsider forging control traffic (no cluster key).

    Alternates forged advertisements (claiming to own the whole image, to
    lure victims into requesting from a server that will never answer) and
    forged all-ones SNACKs (to make victims transmit).  With control-packet
    authentication enabled, every one of these is dropped at one MAC check.
    """

    kind = "control-forge"

    def __init__(self, *args, version: int = 2, total_units: int = 13,
                 n_packets: int = 48, **kwargs):
        super().__init__(*args, **kwargs)
        self.version = version
        self.total_units = total_units
        self.n_packets = n_packets
        self._victims: set = set()
        self._counter = 0

    def _observe_adv(self, adv, sender: int) -> None:
        self._victims.add(sender)

    def _attack_once(self) -> None:
        self._counter += 1
        if self._counter % 2 == 0 or not self._victims:
            forged_adv = Advertisement(
                version=self.version,
                units_complete=self.total_units,
                total_units=self.total_units,
                mac=b"\x00\x00\x00\x00",
            )
            self.broadcast(FrameKind.ADV, 20, forged_adv)
        else:
            victim = sorted(self._victims)[self._counter % len(self._victims)]
            forged = SnackRequest(
                version=self.version, unit=0, requester=self.node_id,
                server=victim, needed=tuple(range(self.n_packets)),
                mac=b"\x00\x00\x00\x00",
            )
            self.broadcast(FrameKind.SNACK, 21, forged, dest=victim)
        self.sent += 1
        self.trace.count("attack_forged_control")


@register_attack
class DenialOfReceiptAttacker(AttackModel):
    """A compromised node spamming all-ones SNACKs at one victim."""

    kind = "denial-of-receipt"

    def __init__(self, *args, victim: int = 0, unit: int = 2, n_packets: int = 48,
                 version: int = 2, **kwargs):
        super().__init__(*args, **kwargs)
        self.victim = victim
        self.unit = unit
        self.n_packets = n_packets
        self.version = version

    def _attack_once(self) -> None:
        request = SnackRequest(
            version=self.version,
            unit=self.unit,
            requester=self.node_id,
            server=self.victim,
            needed=tuple(range(self.n_packets)),
        )
        self.broadcast(FrameKind.SNACK, _snack_size(self.n_packets), request,
                       dest=self.victim)
        self.sent += 1
        self.trace.count("attack_dor_snack")


@register_attack
class ReactiveJammer(AttackModel):
    """Jams on overheard activity, bounded by an airtime duty cycle.

    Hearing a frame of a reactive kind (data by default — the frames worth
    destroying) triggers one jam transmission, provided the attacker's
    energy budget allows: jam airtime accrues at ``duty`` seconds per second
    up to a ``burst_s`` reservoir, so a defended network that keeps moving
    eventually outruns the jammer.  Jam frames are :data:`FrameKind.JAM` —
    protocol nodes ignore their content entirely; the damage is channel
    occupancy (CSMA backoff at every neighbor) and collisions.
    """

    kind = "reactive-jammer"

    def __init__(self, *args, jam_size: int = 96, duty: float = 0.15,
                 burst_s: float = 0.5, react_to: Tuple[str, ...] = ("data",),
                 **kwargs):
        super().__init__(*args, **kwargs)
        self.jam_size = jam_size
        self.duty = duty
        self.burst_s = burst_s
        self.react_to = tuple(react_to)
        self._budget = burst_s
        self._budget_at = 0.0

    def _refill(self) -> None:
        now = self.sim.now
        self._budget = min(self.burst_s,
                           self._budget + (now - self._budget_at) * self.duty)
        self._budget_at = now

    def _jam(self) -> bool:
        self._refill()
        airtime = self.radio.config.airtime(self.jam_size)
        if self._budget < airtime:
            return False
        self._budget -= airtime
        self.broadcast(FrameKind.JAM, self.jam_size, None)
        self.sent += 1
        self.trace.count("attack_jam")
        return True

    def _observe(self, frame: Frame, sender: int) -> None:
        if frame.kind.value in self.react_to:
            self._jam()

    def _attack_once(self) -> None:
        # Background pressure: spend whatever budget silence accumulated.
        self._jam()


@register_attack
class GreyholeRelay(AttackModel):
    """An insider with the authentic image that forwards selectively.

    Advertises full progress every period (an irresistible server for any
    neighbor that cannot hear a better-tied one), then serves each packet a
    SNACK asks of it only with probability ``1 - drop_rate``.  Victims burn
    request retries on it before rotating away; the stall-recovery watchdog
    (``DefenseConfig.stall_watchdog``) is the defense that re-aims them.

    Requires the engine's :class:`~repro.attacks.engine.AttackContext` (the
    insider holds the base station's preprocessed image).
    """

    kind = "greyhole"

    def __init__(self, *args, drop_rate: float = 0.8, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= drop_rate <= 1.0:
            from repro.errors import ConfigError
            raise ConfigError(f"greyhole drop_rate {drop_rate} outside [0, 1]")
        self.drop_rate = drop_rate

    @property
    def _version(self) -> int:
        return self.context.base.pipeline.version or 0

    @property
    def _total_units(self) -> int:
        return self.context.base.units_complete

    def _attack_once(self) -> None:
        if self.context is None:
            return
        adv = Advertisement(
            version=self._version,
            units_complete=self._total_units,
            total_units=self._total_units,
        )
        self.broadcast(FrameKind.ADV, 20, adv)
        self.sent += 1

    def _observe(self, frame: Frame, sender: int) -> None:
        if self.context is None or frame.kind is not FrameKind.SNACK:
            return
        request = frame.payload
        if request.server != self.node_id or request.version != self._version:
            return
        if not 0 <= request.unit < self._total_units:
            return
        base = self.context.base
        wire = self.context.wire
        if base.uses_signature and request.unit == 0:
            if self.rng.random() >= self.drop_rate:
                self.broadcast(FrameKind.SIGNATURE, wire.signature_packet_size(),
                               self.context.preprocessed.signature_packet)
                self.sent += 1
                self.trace.count("attack_greyhole_served")
            else:
                self.trace.count("attack_greyhole_dropped")
            return
        packets = base.pipeline.serving_packets(request.unit)
        for index in request.needed:
            if not 0 <= index < len(packets):
                continue
            if self.rng.random() < self.drop_rate:
                self.trace.count("attack_greyhole_dropped")
                continue
            pkt = packets[index]
            size = wire.data_packet_size(len(pkt.payload), len(pkt.auth_path))
            self.broadcast(FrameKind.DATA, size, pkt)
            self.sent += 1
            self.trace.count("attack_greyhole_served")


@register_attack
class ReplayAttacker(AttackModel):
    """Captures authentic frames off the air and re-injects them later.

    Every overheard data/SNACK frame lands in a bounded capture ring; each
    period the attacker re-broadcasts the next captured frame at least
    ``min_age`` seconds old, byte-for-byte.  The payloads are *authentic*,
    so per-packet authentication never rejects them: replayed SNACKs make
    their named server re-serve a full burst, and replayed stale-page data
    refreshes receivers' quiet windows (deferring their own requests).  Only
    the replay window (``DefenseConfig.replay_filter``) stops the loop.
    """

    kind = "replay"

    def __init__(self, *args, min_age: float = 1.0, capture: int = 256,
                 capture_kinds: Tuple[str, ...] = ("data", "snack"), **kwargs):
        super().__init__(*args, **kwargs)
        self.min_age = min_age
        self.capture = capture
        self.capture_kinds = tuple(capture_kinds)
        self._captured: List[Tuple[float, Frame]] = []
        self._cursor = 0

    def _observe(self, frame: Frame, sender: int) -> None:
        if frame.kind.value not in self.capture_kinds:
            return
        self._captured.append((self.sim.now, frame))
        if len(self._captured) > self.capture:
            self._captured.pop(0)

    def _attack_once(self) -> None:
        now = self.sim.now
        eligible = [f for ts, f in self._captured if now - ts >= self.min_age]
        if not eligible:
            return
        frame = eligible[self._cursor % len(eligible)]
        self._cursor += 1
        self.broadcast(frame.kind, frame.size_bytes, frame.payload,
                       dest=frame.dest)
        self.sent += 1
        self.trace.count("attack_replayed")


@register_attack
class SybilSnackForger(AttackModel):
    """One radio, many fabricated requester identities.

    Each period it picks its best-progressed neighbor as the server and
    issues an all-ones SNACK under the next fake identity.  A per-identity
    counter (the paper's Section IV-E mitigation, keyed on the *claimed*
    requester id) never trips — every identity stays under threshold — so
    the server's tracking table holds ``n_identities`` phantom neighbors
    that are refreshed forever.  The link-layer token bucket + quarantine
    (``DefenseConfig.rate_limit``), keyed on the unforgeable radio sender,
    is the defense that bounds it.
    """

    kind = "sybil-snack"

    def __init__(self, *args, n_identities: int = 8, n_packets: int = 12,
                 version: int = 2, **kwargs):
        super().__init__(*args, **kwargs)
        self.n_identities = n_identities
        self.n_packets = n_packets
        self.version = version
        self._progress: Dict[int, int] = {}
        self._counter = 0

    def _observe_adv(self, adv, sender: int) -> None:
        self._progress[sender] = adv.units_complete
        self.version = max(self.version, adv.version)

    def _target_server(self) -> Optional[Tuple[int, int]]:
        served = [(p, s) for s, p in self._progress.items() if p > 0]
        if not served:
            return None
        progress, server = max(served, key=lambda kv: (kv[0], -kv[1]))
        return server, progress

    def _attack_once(self) -> None:
        target = self._target_server()
        if target is None:
            return
        server, progress = target
        identity = 100_000 + self.node_id * 100 + (self._counter % self.n_identities)
        self._counter += 1
        request = SnackRequest(
            version=self.version,
            unit=progress - 1,
            requester=identity,
            server=server,
            needed=tuple(range(self.n_packets)),
        )
        self.broadcast(FrameKind.SNACK, _snack_size(self.n_packets), request,
                       dest=server)
        self.sent += 1
        self.trace.count("attack_sybil_snack")
