"""Deploying attack plans into live scenarios.

The :class:`AttackEngine` turns a declarative :class:`~repro.attacks.plan.
AttackPlan` into radio-attached attacker nodes: it allocates fresh node ids
above the legitimate population, extends the scenario's :class:`~repro.net.
topology.Topology` *in place* (so per-link channel models that hold a
reference to ``link_loss`` see the new links), instantiates each spec's
registered model, and manages the fleet's lifecycle — most importantly
:meth:`halt_all`, which the completion callback wires up so attackers stop
firing the instant every victim reports completion instead of inflating
event counts until ``max_time``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from repro.attacks.model import AttackModel, resolve_kind
from repro.attacks.plan import AttackPlan
from repro.errors import ConfigError
from repro.net.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import WireFormat
    from repro.core.preprocess import PreprocessedImage
    from repro.protocols.common import DisseminationNode

__all__ = ["AttackContext", "AttackEngine"]

#: Synthetic links to/from attackers are clean and loud: the adversary picks
#: its spot and transmit power, so the *channel* never saves the victims.
_ATTACK_LINK_RX_DBM = -50.0


class AttackContext:
    """What an *insider* adversary knows about the deployment.

    Outsider attacks (jamming, forging, replaying) ignore this; insider
    attacks like :class:`~repro.attacks.models.GreyholeRelay` use the base
    station's pipeline to emit authentic packets.
    """

    def __init__(
        self,
        base: "DisseminationNode",
        nodes: Iterable["DisseminationNode"] = (),
        preprocessed: Optional["PreprocessedImage"] = None,
    ):
        self.base = base
        self.nodes = tuple(nodes)
        self.preprocessed = preprocessed

    @property
    def wire(self) -> "WireFormat":
        return self.base.wire


class AttackEngine:
    """Instantiate, place, and manage the attackers of an attack plan."""

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        rngs: RngRegistry,
        trace: TraceRecorder,
        plan: AttackPlan,
        context: Optional[AttackContext] = None,
    ):
        self.sim = sim
        self.radio = radio
        self.rngs = rngs
        self.trace = trace
        self.plan = plan
        self.context = context
        self.attackers: List[AttackModel] = []

    # -- placement -----------------------------------------------------------

    def _default_position(self) -> Tuple[float, float]:
        """The victim centroid: maximally audible without a site survey."""
        positions = list(self.radio.topology.positions.values())
        n = len(positions)
        return (sum(p[0] for p in positions) / n, sum(p[1] for p in positions) / n)

    def _default_reach(self) -> float:
        """The longest legitimate link: the attacker is at least as capable."""
        topo = self.radio.topology
        dists = [topo.distance(u, v) for (u, v) in topo.link_loss]
        return max(dists) if dists else float("inf")

    def _place(self, node_id: int, position: Optional[Tuple[float, float]],
               reach: Optional[float]) -> None:
        topo = self.radio.topology
        pos = tuple(position) if position is not None else self._default_position()
        radius = reach if reach is not None else self._default_reach()
        victims = topo.node_ids  # before the attacker joins
        topo.positions[node_id] = (float(pos[0]), float(pos[1]))
        topo.neighbors[node_id] = []
        for v in victims:
            if topo.distance(node_id, v) > radius + 1e-9:
                continue
            for a, b in ((node_id, v), (v, node_id)):
                topo.neighbors[a].append(b)
                topo.link_loss[(a, b)] = 0.0
                topo.link_rx_power[(a, b)] = _ATTACK_LINK_RX_DBM
        if not topo.neighbors[node_id]:
            raise ConfigError(
                f"attacker {node_id} at {pos} reaches no nodes "
                f"(reach {radius:g}); widen reach or move it")

    # -- lifecycle -----------------------------------------------------------

    def deploy(self) -> List[AttackModel]:
        """Create one attacker node per plan spec (ids above the victims)."""
        if self.attackers:
            raise ConfigError("attack engine already deployed")
        topo = self.radio.topology
        next_id = (max(topo.node_ids) + 1) if topo.positions else 0
        for spec in self.plan:
            node_id = next_id
            next_id += 1
            self._place(node_id, spec.position, spec.reach)
            cls = resolve_kind(spec.kind)
            attacker = cls(
                node_id, self.sim, self.radio, self.rngs, self.trace,
                period=spec.period, start_delay=spec.start,
                stop_time=spec.stop, context=self.context,
                **spec.kwargs(),
            )
            self.trace.record(self.sim.now, "attack_deployed", node_id,
                              attack=spec.kind)
            self.attackers.append(attacker)
        return list(self.attackers)

    @property
    def attacker_ids(self) -> Tuple[int, ...]:
        return tuple(a.node_id for a in self.attackers)

    def start_all(self) -> None:
        for attacker in self.attackers:
            attacker.start()

    def halt_all(self) -> None:
        """Permanently silence the fleet (all victims completed).

        Safe on crashed attackers too: ``halt`` marks them finished so a
        later :meth:`~repro.attacks.model.AttackModel.reboot` cannot resume
        the attack loop.
        """
        for attacker in self.attackers:
            attacker.halt()
