"""The composable adversary engine (DESIGN.md §12).

Declarative :class:`AttackPlan`s (JSON-round-trippable, like
:class:`repro.faults.plan.FaultPlan`) name attackers from a plugin registry;
an :class:`AttackEngine` deploys them into any scenario's topology and halts
them the moment every victim completes.
"""

from repro.attacks.engine import AttackContext, AttackEngine
from repro.attacks.model import (
    ATTACK_KINDS,
    AttackModel,
    register_attack,
    resolve_kind,
)
from repro.attacks.models import (
    BogusDataInjector,
    ControlForger,
    DenialOfReceiptAttacker,
    GreyholeRelay,
    ReactiveJammer,
    ReplayAttacker,
    SignatureFlooder,
    SybilSnackForger,
)
from repro.attacks.plan import AttackPlan, AttackSpec

__all__ = [
    "ATTACK_KINDS",
    "AttackContext",
    "AttackEngine",
    "AttackModel",
    "AttackPlan",
    "AttackSpec",
    "BogusDataInjector",
    "ControlForger",
    "DenialOfReceiptAttacker",
    "GreyholeRelay",
    "ReactiveJammer",
    "ReplayAttacker",
    "SignatureFlooder",
    "SybilSnackForger",
    "register_attack",
    "resolve_kind",
]
