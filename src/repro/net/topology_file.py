"""TinyOS-style topology file I/O.

The paper's multi-hop experiments load ``15-15-tight-mica2-grid.txt`` /
``15-15-medium-mica2-grid.txt`` — TinyOS/TOSSIM topology files.  Those
artifacts are not shipped with the paper, but supporting the *format* lets
users plug in their own site surveys (and lets us persist/share the
regenerated grids).  We support two line-oriented record types, ``#``
comments and blank lines ignored:

``node <id> <x> <y>``
    A node position in meters.

``link <src> <dst> <value>``
    Directed link quality.  ``value`` is a packet-reception ratio in
    [0, 1] by default, or a TOSSIM-style gain in dBm when ``gain=True``
    (then PRR is derived through the propagation model's SNR curve).

:func:`save_topology` writes this format; :func:`load_topology` reads it.
A round-trip preserves positions and link loss exactly (PRR mode).
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.net.topology import PropagationModel, Topology

__all__ = ["load_topology", "save_topology"]

PathLike = Union[str, Path]


def save_topology(topo: Topology, path: PathLike) -> None:
    """Write ``topo`` as a TinyOS-style topology file (PRR link values)."""
    lines: List[str] = [
        f"# topology: {topo.name}",
        f"# nodes: {topo.size}  links: {len(topo.link_loss)}",
    ]
    for node_id in topo.node_ids:
        x, y = topo.positions[node_id]
        lines.append(f"node {node_id} {x:.4f} {y:.4f}")
    for (u, v), loss in sorted(topo.link_loss.items()):
        lines.append(f"link {u} {v} {1.0 - loss:.6f}")
    from repro.persist import atomic_write_text

    atomic_write_text(Path(path), "\n".join(lines) + "\n")


def load_topology(
    path: PathLike,
    name: str = "",
    gain: bool = False,
    model: Optional[PropagationModel] = None,
) -> Topology:
    """Parse a TinyOS-style topology file.

    With ``gain=True`` the link values are received powers in dBm (TOSSIM
    gain-model style) and PRR is derived via ``model`` (default
    :class:`PropagationModel`).
    """
    model = model or PropagationModel()
    positions: Dict[int, Tuple[float, float]] = {}
    links: List[Tuple[int, int, float]] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        kind = fields[0].lower()
        try:
            if kind == "node":
                if len(fields) != 4:
                    raise ValueError("expected: node <id> <x> <y>")
                positions[int(fields[1])] = (float(fields[2]), float(fields[3]))
            elif kind == "link":
                if len(fields) != 4:
                    raise ValueError("expected: link <src> <dst> <value>")
                links.append((int(fields[1]), int(fields[2]), float(fields[3])))
            else:
                raise ValueError(f"unknown record type {kind!r}")
        except ValueError as exc:
            raise ConfigError(f"{path}:{lineno}: {exc}") from exc

    topo = Topology(
        positions=positions,
        name=name or Path(path).stem,
    )
    for node_id in positions:
        topo.neighbors[node_id] = []
    for u, v, value in links:
        if u not in positions or v not in positions:
            raise ConfigError(f"link {u}->{v} references an unknown node")
        if gain:
            prr = model.prr(value)
            rx = value
        else:
            if not 0.0 <= value <= 1.0:
                raise ConfigError(
                    f"link {u}->{v}: PRR {value} outside [0, 1] "
                    f"(did you mean gain=True?)"
                )
            prr = value
            rx = model.noise_floor_dbm + 10.0  # nominal; unknown in PRR mode
        if prr <= 0.0:
            continue
        topo.neighbors[u].append(v)
        topo.link_loss[(u, v)] = 1.0 - prr
        topo.link_rx_power[(u, v)] = rx
    return topo
