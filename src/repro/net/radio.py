"""Broadcast radio with CSMA MAC, half-duplex nodes, and collision modelling.

Every transmission is a local broadcast: each neighbor of the sender receives
the frame at transmission end unless (a) it was itself transmitting
(half-duplex), (b) another audible transmission overlapped in time
(collision), or (c) the loss model drops it.  Carrier sensing defers a send
while any audible transmission is on the air, then retries after a random
backoff — a deliberately simple CSMA in the spirit of the mica2 stack.

The one-hop experiments can disable collision modelling (the paper places
nodes "close enough to eliminate packet transmission errors caused by channel
impairments" and emulates all losses at the application layer).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.errors import SimulationError
from repro.net.channel import LossModel
from repro.net.packet import Frame
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import NetworkNode

__all__ = ["RadioConfig", "Radio"]


@dataclass(frozen=True)
class RadioConfig:  # replint: disable=REP017 -- built once per run, not per event; slots=True needs py>=3.10 and the CI matrix still runs 3.9
    """Physical/MAC constants (mica2 CC1000 flavour)."""

    bitrate_bps: float = 19200.0
    preamble_bytes: int = 8
    backoff_min_s: float = 0.005
    backoff_max_s: float = 0.040
    collisions: bool = True
    max_backoff_attempts: int = 60

    def airtime(self, size_bytes: int) -> float:
        """Seconds a frame of ``size_bytes`` occupies the channel."""
        return (size_bytes + self.preamble_bytes) * 8.0 / self.bitrate_bps


class _Transmission:
    __slots__ = ("sender", "frame", "start", "end", "aborted")

    def __init__(self, sender: int, frame: Frame, start: float, end: float):
        self.sender = sender
        self.frame = frame
        self.start = start
        self.end = end
        self.aborted = False  # sender crashed mid-frame; delivers to nobody


class Radio:
    """The shared broadcast medium plus one MAC queue per node."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        loss_model: LossModel,
        rngs: RngRegistry,
        trace: TraceRecorder,
        config: Optional[RadioConfig] = None,
    ):
        self.sim = sim
        self.topology = topology
        self.loss_model = loss_model
        self.rngs = rngs
        self.trace = trace
        self.config = config or RadioConfig()
        self._nodes: Dict[int, "NetworkNode"] = {}
        self._queues: Dict[int, Deque[Frame]] = {}
        self._sending: Dict[int, bool] = {}
        self._backoffs: Dict[int, int] = {}
        self._active: List[_Transmission] = []
        self._history: List[_Transmission] = []
        self._detached: Set[int] = set()
        self._links_down: Set[Tuple[int, int]] = set()
        # Fault hook: may rewrite a frame per delivery (corruption) or return
        # None to model a link-layer CRC drop.  Installed by a FaultInjector.
        self.tamper: Optional[Callable[[Frame, int, int], Optional[Frame]]] = None
        if trace.flight is not None:
            trace.flight.observe_radio(self)

    # -- registration -------------------------------------------------------

    def register(self, node: "NetworkNode") -> None:
        """Attach a node; it must have a unique id present in the topology."""
        if node.node_id in self._nodes:
            raise SimulationError(f"node id {node.node_id} registered twice")
        if node.node_id not in self.topology.positions:
            raise SimulationError(f"node id {node.node_id} not in topology")
        self._nodes[node.node_id] = node
        self._queues[node.node_id] = deque()
        self._sending[node.node_id] = False
        self._backoffs[node.node_id] = 0

    def node(self, node_id: int) -> "NetworkNode":
        return self._nodes[node_id]

    def neighbors(self, node_id: int) -> List[int]:
        """Registered, attached neighbors reachable over up links."""
        if node_id in self._detached:
            return []
        return [
            v
            for v in self.topology.neighbors.get(node_id, [])
            if v in self._nodes
            and v not in self._detached
            and (node_id, v) not in self._links_down
        ]

    # -- fault surface -------------------------------------------------------

    def detach(self, node_id: int) -> None:
        """Take a node off the air (crash/outage): it neither sends nor hears.

        A frame the node was mid-way through transmitting is aborted — the
        truncated waveform still occupies the channel until its scheduled end
        (so overlapping receptions keep colliding) but decodes at nobody.
        """
        if node_id not in self._nodes:
            raise SimulationError(f"cannot detach unknown node {node_id}")
        if node_id in self._detached:
            return
        self._detached.add(node_id)
        self._queues[node_id].clear()
        self._backoffs[node_id] = 0
        for tx in self._active:
            if tx.sender == node_id:
                tx.aborted = True
        self._sending[node_id] = False

    def attach(self, node_id: int) -> None:
        """Put a detached node back on the air with an empty MAC queue."""
        if node_id not in self._nodes:
            raise SimulationError(f"cannot attach unknown node {node_id}")
        self._detached.discard(node_id)

    def is_detached(self, node_id: int) -> bool:
        return node_id in self._detached

    def set_link(self, sender: int, receiver: int, up: bool) -> None:
        """Force a directed link down (churn/partition) or back up."""
        if up:
            self._links_down.discard((sender, receiver))
        else:
            self._links_down.add((sender, receiver))

    def link_is_up(self, sender: int, receiver: int) -> bool:
        return (sender, receiver) not in self._links_down

    # -- send path -----------------------------------------------------------

    def send(self, frame: Frame) -> None:
        """Enqueue a frame on the sender's MAC queue."""
        if frame.sender in self._detached:
            # Defensive: a crashed node's stray timer must not transmit.
            self.trace.count("tx_dropped_detached")
            return
        if self.trace.causal is not None:
            self.trace.causal.on_enqueue(self.sim.now, frame)
        self._queues[frame.sender].append(frame)
        self._pump(frame.sender)

    def queue_length(self, node_id: int) -> int:
        return len(self._queues[node_id])

    def cancel_queued(self, node_id: int, predicate: Callable[[Frame], bool]) -> int:
        """Drop queued (not yet on-air) frames matching ``predicate``.

        Supports data-packet suppression: a sender that overhears the packet
        it was about to transmit removes it from its queue.
        """
        queue = self._queues[node_id]
        kept = [f for f in queue if not predicate(f)]
        removed = len(queue) - len(kept)
        queue.clear()
        queue.extend(kept)
        return removed

    def _channel_busy(self, node_id: int) -> bool:
        """Carrier sense: any audible transmission in progress?"""
        if self._sending[node_id]:
            return True
        if not self.config.collisions:
            # Without a physical channel model there is still a single
            # sender-side radio: a node's own queue serialises its sends,
            # but concurrent senders never interfere.
            return False
        now = self.sim.now
        audible = set(self.topology.neighbors.get(node_id, ()))
        for tx in self._active:
            if tx.end > now and (tx.sender == node_id or tx.sender in audible):
                return True
        return False

    def _pump(self, node_id: int) -> None:
        if node_id in self._detached:
            return
        if self._sending[node_id] or not self._queues[node_id]:
            return
        if self._channel_busy(node_id):
            self._backoffs[node_id] += 1
            if self._backoffs[node_id] > self.config.max_backoff_attempts:
                # Give up on this frame (models MAC drop under congestion).
                dropped = self._queues[node_id].popleft()
                self.trace.record(self.sim.now, "mac_drop", node_id, frame_kind=dropped.kind.value)
                if self.trace.causal is not None:
                    self.trace.causal.on_mac_drop(dropped)
                self._backoffs[node_id] = 0
                self._pump(node_id)
                return
            rng = self.rngs.get(f"mac/{node_id}")
            delay = rng.uniform(self.config.backoff_min_s, self.config.backoff_max_s)
            self.sim.schedule(delay, self._pump, node_id)
            return
        self._backoffs[node_id] = 0
        frame = self._queues[node_id].popleft()
        duration = self.config.airtime(frame.size_bytes)
        tx = _Transmission(node_id, frame, self.sim.now, self.sim.now + duration)
        self._active.append(tx)
        self._sending[node_id] = True
        self.trace.count(frame.kind.metric_name)
        self.trace.count(f"{frame.kind.metric_name}_bytes", frame.size_bytes)
        self.trace.count("tx_total")
        self.trace.count("tx_total_bytes", frame.size_bytes)
        unit = getattr(frame.payload, "unit", None)
        if unit is not None:
            self.trace.count(f"{frame.kind.metric_name}_unit_{unit}")
        if self.trace.flight is not None:
            self.trace.flight.on_tx(self.sim.now, node_id, frame.kind.value,
                                    frame.size_bytes, unit)
        if self.trace.causal is not None:
            self.trace.causal.on_air(self.sim.now, frame, unit)
        self.sim.schedule(duration, self._finish, tx)

    def _finish(self, tx: _Transmission) -> None:
        self._active.remove(tx)
        if tx.aborted:
            self.trace.count("tx_aborted")
            return
        self._sending[tx.sender] = False
        if self.config.collisions:
            self._history.append(tx)
            self._prune_history(tx.start)
        for receiver in self.neighbors(tx.sender):
            self._attempt_delivery(tx, receiver)
        self._pump(tx.sender)

    def _prune_history(self, horizon: float) -> None:
        if len(self._history) > 256:
            self._history = [t for t in self._history if t.end >= horizon]

    def _overlaps(self, tx: _Transmission, receiver: int) -> bool:
        """Did another audible transmission overlap ``tx`` at ``receiver``?"""
        audible = set(self.topology.neighbors.get(receiver, ()))
        for other in self._active + self._history:
            if other is tx or other.sender == tx.sender:
                continue
            if other.end <= tx.start or other.start >= tx.end:
                continue
            if other.sender in audible or other.sender == receiver:
                return True
        return False

    def _was_transmitting(self, node_id: int, tx: _Transmission) -> bool:
        for other in self._active + self._history:
            if other.sender != node_id:
                continue
            if other.end <= tx.start or other.start >= tx.end:
                continue
            return True
        return False

    def _attempt_delivery(self, tx: _Transmission, receiver: int) -> None:
        flight = self.trace.flight
        causal = self.trace.causal
        kind = tx.frame.kind.value
        if self.config.collisions:
            if self._was_transmitting(receiver, tx):
                self.trace.count("rx_halfduplex_miss")
                if flight is not None:
                    flight.on_loss(self.sim.now, tx.sender, receiver,
                                   "halfduplex", kind)
                if causal is not None:
                    causal.on_loss(self.sim.now, tx.sender, receiver,
                                   "halfduplex", tx.frame)
                return
            if self._overlaps(tx, receiver):
                self.trace.count("rx_collision")
                if flight is not None:
                    flight.on_loss(self.sim.now, tx.sender, receiver,
                                   "collision", kind)
                if causal is not None:
                    causal.on_loss(self.sim.now, tx.sender, receiver,
                                   "collision", tx.frame)
                return
        if self.loss_model.should_drop(self.rngs, tx.sender, receiver, tx.frame, self.sim.now):
            self.trace.count("rx_lost")
            if flight is not None:
                flight.on_loss(self.sim.now, tx.sender, receiver, "channel", kind)
            if causal is not None:
                causal.on_loss(self.sim.now, tx.sender, receiver, "channel",
                               tx.frame)
            return
        frame = tx.frame
        if self.tamper is not None:
            frame = self.tamper(frame, tx.sender, receiver)
            if frame is None:
                self.trace.count("rx_fault_dropped")
                if flight is not None:
                    flight.on_loss(self.sim.now, tx.sender, receiver,
                                   "tamper", kind)
                if causal is not None:
                    causal.on_loss(self.sim.now, tx.sender, receiver,
                                   "tamper", tx.frame)
                return
        self.trace.count("rx_delivered")
        self.trace.count("rx_delivered_bytes", frame.size_bytes)
        if flight is not None:
            flight.on_rx(self.sim.now, tx.sender, receiver, kind,
                         getattr(frame.payload, "unit", None))
        if causal is None:
            self._nodes[receiver].on_receive(frame, tx.sender)
            return
        # Cross-node causal edge, then run the handler inside an rx context
        # so protocol code can name this frame as the parent of whatever it
        # triggers (a SNACK arm, a decode, a trickle reset).
        causal.on_rx(self.sim.now, tx.sender, receiver, tx.frame)
        causal.enter_rx(receiver, tx.frame.frame_id)
        try:
            self._nodes[receiver].on_receive(frame, tx.sender)
        finally:
            causal.exit_rx(receiver)
