"""Base class for simulated network nodes."""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional

from repro.net.packet import Frame, FrameKind
from repro.net.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

__all__ = ["NetworkNode"]


class NetworkNode(abc.ABC):
    """A node attached to a :class:`Radio`.

    Subclasses implement :meth:`on_receive`; :meth:`broadcast` builds and
    queues a frame.  Each node owns a named RNG stream for protocol jitter so
    simulations stay reproducible.
    """

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        radio: Radio,
        rngs: RngRegistry,
        trace: TraceRecorder,
    ):
        self.node_id = node_id
        self.sim = sim
        self.radio = radio
        self.rngs = rngs
        self.trace = trace
        self.rng = rngs.get(f"node/{node_id}")
        radio.register(self)

    @property
    def neighbors(self) -> List[int]:
        return self.radio.neighbors(self.node_id)

    def broadcast(
        self,
        kind: FrameKind,
        size_bytes: int,
        payload: Any,
        dest: Optional[int] = None,
        cause: Optional[Dict[str, Any]] = None,
    ) -> Frame:
        """Queue a local broadcast; returns the frame for bookkeeping.

        ``cause`` is the optional causal-provenance stamp (built by protocol
        code only when ``trace.causal`` is attached); it rides on the frame
        object, never on the wire.
        """
        frame = Frame(
            kind=kind,
            sender=self.node_id,
            size_bytes=size_bytes,
            payload=payload,
            dest=dest,
            cause=cause,
        )
        self.radio.send(frame)
        return frame

    @abc.abstractmethod
    def on_receive(self, frame: Frame, sender: int) -> None:
        """Handle a frame delivered by the radio."""
