"""Network topologies and the propagation model that labels their links.

The paper's multi-hop experiments use the TinyOS example topologies
``15-15-tight-mica2-grid.txt`` (high density) and
``15-15-medium-mica2-grid.txt`` (low density).  Those files are not shipped
with the paper, so we regenerate their *structure*: a 15x15 grid of mica2
nodes with tight (small) or medium (larger) spacing, links labelled with a
reception probability from a log-distance path-loss model with per-link
shadowing.  Tight spacing yields a dense graph with near-perfect inner links;
medium spacing yields moderate degree with lossy fringe links — the contrast
Tables II/III rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError
from repro.sim.rng import RngRegistry

__all__ = [
    "PropagationModel",
    "Topology",
    "star_topology",
    "grid_topology",
    "mica2_grid_tight",
    "mica2_grid_medium",
    "random_disk_topology",
]

Position = Tuple[float, float]


@dataclass(frozen=True)
class PropagationModel:
    """Log-distance path loss with lognormal shadowing, mica2-flavoured.

    ``rx_dbm = tx_dbm - pl_d0 - 10*exponent*log10(d/d0) + shadowing`` where
    shadowing ~ N(0, sigma) is sampled once per directed link (static
    environment).  Links whose average PRR falls below ``prr_floor`` are
    treated as non-links.
    """

    tx_dbm: float = 0.0          # mica2 CC1000 max output
    pl_d0: float = 55.0          # path loss at reference distance (dB)
    d0: float = 1.0              # reference distance (m)
    exponent: float = 3.2        # indoor/outdoor-rough exponent
    shadowing_sigma: float = 3.0
    noise_floor_dbm: float = -98.0
    prr_floor: float = 0.05

    def rx_power(self, distance: float, shadow_db: float) -> float:
        if distance < self.d0:
            distance = self.d0
        loss = self.pl_d0 + 10.0 * self.exponent * math.log10(distance / self.d0)
        return self.tx_dbm - loss + shadow_db

    def prr(self, rx_dbm: float) -> float:
        from repro.net.channel import snr_to_prr

        return snr_to_prr(rx_dbm - self.noise_floor_dbm)


@dataclass
class Topology:
    """Node positions plus derived link quality.

    ``neighbors[u]`` lists nodes that can hear ``u`` at all;
    ``link_loss[(u, v)]`` is the per-packet drop probability on ``u → v``;
    ``link_rx_power[(u, v)]`` the received signal strength (dBm).
    """

    positions: Dict[int, Position]
    neighbors: Dict[int, List[int]] = field(default_factory=dict)
    link_loss: Dict[Tuple[int, int], float] = field(default_factory=dict)
    link_rx_power: Dict[Tuple[int, int], float] = field(default_factory=dict)
    name: str = "custom"

    @property
    def node_ids(self) -> List[int]:
        return sorted(self.positions)

    @property
    def size(self) -> int:
        return len(self.positions)

    def distance(self, u: int, v: int) -> float:
        (x1, y1), (x2, y2) = self.positions[u], self.positions[v]
        return math.hypot(x1 - x2, y1 - y2)

    def average_degree(self) -> float:
        if not self.neighbors:
            return 0.0
        return sum(len(v) for v in self.neighbors.values()) / len(self.neighbors)

    def is_connected(self) -> bool:
        """Breadth-first reachability over the (directed) neighbor sets."""
        nodes = self.node_ids
        if not nodes:
            return True
        seen = {nodes[0]}
        frontier = [nodes[0]]
        while frontier:
            u = frontier.pop()
            for v in self.neighbors.get(u, []):
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return len(seen) == len(nodes)


def _finalize_links(
    topo: Topology,
    model: PropagationModel,
    rngs: Optional[RngRegistry],
    max_range: float,
) -> None:
    """Populate neighbor lists and link qualities from the propagation model."""
    rng = rngs.get("topology/shadowing") if rngs is not None else None
    ids = topo.node_ids
    for u in ids:
        topo.neighbors[u] = []
    for i, u in enumerate(ids):
        for v in ids[i + 1 :]:
            d = topo.distance(u, v)
            if d > max_range:
                continue
            # Shadowing is an environment property: one sample per pair, so
            # links stay symmetric (no hear-but-cannot-reply pathologies).
            shadow = rng.gauss(0.0, model.shadowing_sigma) if rng else 0.0
            rx = model.rx_power(d, shadow)
            prr = model.prr(rx)
            if prr >= model.prr_floor:
                for a, b in ((u, v), (v, u)):
                    topo.neighbors[a].append(b)
                    topo.link_loss[(a, b)] = 1.0 - prr
                    topo.link_rx_power[(a, b)] = rx


def _repair_connectivity(topo: Topology, model: PropagationModel) -> int:
    """Bridge disconnected components over their geographically closest pair.

    Shadowing occasionally isolates a node (or the base station) entirely;
    a real deployment would site-survey and move it.  We model that repair
    by adding the best no-shadowing link between the closest cross-cut pair
    until the network is connected.  Returns the number of links added.
    """
    added = 0
    ids = topo.node_ids
    while True:
        reachable = {ids[0]}
        frontier = [ids[0]]
        while frontier:
            u = frontier.pop()
            for v in topo.neighbors.get(u, []):
                if v not in reachable:
                    reachable.add(v)
                    frontier.append(v)
        unreachable = [v for v in ids if v not in reachable]
        if not unreachable:
            return added
        best: Optional[Tuple[float, int, int]] = None
        # Sorted scan so equal-distance candidates tie-break by node id
        # instead of set hash order (REP003).
        for u in sorted(reachable):
            for v in unreachable:
                d = topo.distance(u, v)
                if best is None or d < best[0]:
                    best = (d, u, v)
        if best is None:
            raise AssertionError('invariant violated: best is not None')
        _, u, v = best
        rx = model.rx_power(best[0], 0.0)
        prr = max(model.prr(rx), 0.5)  # surveyed link: at least usable
        for a, b in ((u, v), (v, u)):
            topo.neighbors[a].append(b)
            topo.link_loss[(a, b)] = 1.0 - prr
            topo.link_rx_power[(a, b)] = rx
        added += 1


def star_topology(n_receivers: int, radius: float = 5.0) -> Topology:
    """One sender (node 0) at the center, ``n_receivers`` on a circle.

    All links are perfect at the physical layer — the paper's one-hop setup
    applies losses at the application layer via :class:`BernoulliLoss`.
    """
    if n_receivers < 1:
        raise ConfigError("star topology needs at least one receiver")
    positions: Dict[int, Position] = {0: (0.0, 0.0)}
    for i in range(1, n_receivers + 1):
        angle = 2.0 * math.pi * (i - 1) / n_receivers
        positions[i] = (radius * math.cos(angle), radius * math.sin(angle))
    topo = Topology(positions=positions, name=f"star-{n_receivers}")
    ids = topo.node_ids
    for u in ids:
        topo.neighbors[u] = [v for v in ids if v != u]
        for v in ids:
            if v != u:
                topo.link_loss[(u, v)] = 0.0
                topo.link_rx_power[(u, v)] = -50.0
    return topo


def grid_topology(
    rows: int,
    cols: int,
    spacing: float,
    rngs: Optional[RngRegistry] = None,
    model: Optional[PropagationModel] = None,
    max_range_multiple: float = 3.2,
    base_station: str = "corner",
    name: Optional[str] = None,
) -> Topology:
    """A rows x cols grid with ``spacing`` meters between adjacent nodes.

    Node 0 is the base station, placed at the grid corner (default) or
    center; grid nodes are numbered 1..rows*cols.
    """
    if rows < 1 or cols < 1:
        raise ConfigError("grid needs at least one row and column")
    model = model or PropagationModel()
    positions: Dict[int, Position] = {}
    node_id = 1
    for r in range(rows):
        for c in range(cols):
            positions[node_id] = (c * spacing, r * spacing)
            node_id += 1
    if base_station == "corner":
        positions[0] = (-spacing * 0.7, -spacing * 0.7)
    elif base_station == "center":
        positions[0] = ((cols - 1) * spacing / 2.0, (rows - 1) * spacing / 2.0)
    else:
        raise ConfigError(f"unknown base_station placement {base_station!r}")
    topo = Topology(
        positions=positions,
        name=name or f"grid-{rows}x{cols}-s{spacing:g}",
    )
    _finalize_links(topo, model, rngs, max_range=spacing * max_range_multiple)
    _repair_connectivity(topo, model)
    return topo


# Ambient noise raised above the quiet floor, in the spirit of the
# meyer-heavy.txt trace the paper simulates with: a noticeable share of
# intermediate-quality links even at tight spacing.
_MICA2_NOISY = PropagationModel(noise_floor_dbm=-91.0, shadowing_sigma=4.0)


def mica2_grid_tight(rngs: RngRegistry, rows: int = 15, cols: int = 15) -> Topology:
    """High-density grid (stand-in for ``15-15-tight-mica2-grid.txt``).

    3 m spacing under heavy ambient noise: inner nodes hear ~18 neighbors,
    mean link loss ~0.15 with a clean-link core and a lossy fringe.
    """
    return grid_topology(
        rows, cols, spacing=3.0, rngs=rngs, model=_MICA2_NOISY,
        name=f"mica2-tight-{rows}x{cols}",
    )


def mica2_grid_medium(rngs: RngRegistry, rows: int = 15, cols: int = 15) -> Topology:
    """Lower-density grid (stand-in for ``15-15-medium-mica2-grid.txt``).

    6 m spacing under the same noise: ~5 neighbors, mean link loss ~0.22 —
    the sparse, lossy contrast Tables II/III rely on.
    """
    return grid_topology(
        rows, cols, spacing=6.0, rngs=rngs, model=_MICA2_NOISY,
        name=f"mica2-medium-{rows}x{cols}",
    )


def random_disk_topology(
    n_nodes: int,
    area_side: float,
    rngs: RngRegistry,
    model: Optional[PropagationModel] = None,
    max_range: float = 12.0,
) -> Topology:
    """Uniform random placement in a square (TinyOS topology-tool analogue)."""
    if n_nodes < 2:
        raise ConfigError("random topology needs at least two nodes")
    model = model or PropagationModel()
    rng = rngs.get("topology/placement")
    positions: Dict[int, Position] = {0: (area_side / 2.0, area_side / 2.0)}
    for i in range(1, n_nodes):
        positions[i] = (rng.uniform(0, area_side), rng.uniform(0, area_side))
    topo = Topology(positions=positions, name=f"random-{n_nodes}")
    _finalize_links(topo, model, rngs, max_range=max_range)
    _repair_connectivity(topo, model)
    return topo
