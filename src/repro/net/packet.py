"""Wire frames.

A :class:`Frame` is what the radio carries: a kind, a sender, an explicit
on-air size in bytes (protocols compute their own packet sizes, including
hash images, bit-vectors, and Merkle paths), and an opaque protocol payload
object.  All frames are local broadcasts; ``dest`` is advisory (SNACKs name
the neighbor being asked to serve, but everyone in range overhears).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["FrameKind", "Frame"]

_frame_ids = itertools.count()


class FrameKind(enum.Enum):
    """Categories the evaluation reports separately (Section VI metrics)."""

    DATA = "data"
    SNACK = "snack"
    ADV = "adv"
    SIGNATURE = "signature"
    #: Meaningless noise from a jammer: no protocol handles it, but it
    #: occupies airtime (carrier sense, collisions) like any other frame.
    JAM = "jam"

    @property
    def metric_name(self) -> str:
        return f"tx_{self.value}"


@dataclass
class Frame:
    """One on-air transmission unit."""

    kind: FrameKind
    sender: int
    size_bytes: int
    payload: Any
    dest: Optional[int] = None
    frame_id: int = field(default_factory=lambda: next(_frame_ids))
    #: Causal provenance stamp (``--causal-trace`` only): what triggered this
    #: transmission — ``{"trigger": ..., "parent": frame_id, "armed": ts}``.
    #: Not part of the wire format; None on every frame when tracing is off.
    cause: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"frame size must be positive, got {self.size_bytes}")
