"""Packet-loss models.

The paper's one-hop evaluation emulates losses at the application layer:
every received data/advertisement/SNACK packet is dropped independently with
probability ``p`` (Section VI-A).  :class:`BernoulliLoss` reproduces exactly
that.  Multi-hop grids use :class:`PerLinkLoss` with per-link reception
probabilities produced by a propagation model (see
:mod:`repro.net.topology`), and :class:`GilbertElliottLoss` adds bursty,
time-correlated losses in the spirit of the TinyOS ``meyer-heavy`` noise
trace (our documented substitution).
"""

from __future__ import annotations

import abc
import math
import random
from typing import Dict, Tuple, TYPE_CHECKING

from repro.errors import ConfigError
from repro.net.packet import Frame
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.topology import Topology

__all__ = [
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "PerLinkLoss",
    "GilbertElliottLoss",
    "CompositeLoss",
    "SyntheticNoiseTrace",
    "noise_trace_prr_map",
]


class LossModel(abc.ABC):
    """Decides, per (link, frame, time), whether a reception is dropped."""

    @abc.abstractmethod
    def should_drop(
        self, rngs: RngRegistry, sender: int, receiver: int, frame: Frame, time: float
    ) -> bool:
        """True when ``receiver`` loses this frame from ``sender``."""


class NoLoss(LossModel):
    """Perfect channel (useful for unit tests and p=0 baselines)."""

    def should_drop(
        self, rngs: RngRegistry, sender: int, receiver: int, frame: Frame, time: float
    ) -> bool:
        return False


class BernoulliLoss(LossModel):
    """Independent drop with probability ``p`` at every receiver.

    This is the paper's application-layer loss emulation: it applies to
    data, advertisement, and SNACK packets alike.
    """

    def __init__(self, p: float):
        if not 0.0 <= p < 1.0:
            raise ConfigError(f"loss probability {p} outside [0, 1)")
        self.p = p

    def should_drop(
        self, rngs: RngRegistry, sender: int, receiver: int, frame: Frame, time: float
    ) -> bool:
        if self.p == 0.0:
            return False
        return rngs.get(f"loss/{receiver}").random() < self.p


class PerLinkLoss(LossModel):
    """Per-directed-link drop probabilities (from a propagation model).

    Holds a live reference to ``loss_map`` rather than a copy: components
    that extend the topology after radio construction (the attack engine
    splicing adversary links into ``Topology.link_loss``) must be visible
    here, or the new links fall through to ``default`` and go silent.
    """

    def __init__(self, loss_map: Dict[Tuple[int, int], float], default: float = 1.0):
        for link, p in loss_map.items():
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"loss probability {p} for link {link} outside [0, 1]")
        self.loss_map = loss_map
        self.default = default

    def should_drop(
        self, rngs: RngRegistry, sender: int, receiver: int, frame: Frame, time: float
    ) -> bool:
        p = self.loss_map.get((sender, receiver), self.default)
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return rngs.get(f"loss/{sender}-{receiver}").random() < p


class GilbertElliottLoss(LossModel):
    """Two-state bursty channel per directed link.

    Each link is an independent Gilbert-Elliott chain: GOOD state drops with
    ``loss_good``, BAD with ``loss_bad``; sojourn times are exponential with
    mean ``mean_good`` / ``mean_bad`` seconds and the state is advanced lazily
    to the reception time.  This models the time-correlated outages a heavy
    environmental-noise trace produces.
    """

    def __init__(
        self,
        loss_good: float = 0.02,
        loss_bad: float = 0.8,
        mean_good: float = 8.0,
        mean_bad: float = 2.0,
    ):
        for name, value in (("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} {value} outside [0, 1]")
        if mean_good <= 0 or mean_bad <= 0:
            raise ConfigError("mean state sojourns must be positive")
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.mean_good = mean_good
        self.mean_bad = mean_bad
        # (state, time at which the current state expires) per link
        self._state: Dict[Tuple[int, int], Tuple[bool, float]] = {}

    def _advance(self, rng: random.Random, link: Tuple[int, int], time: float) -> bool:
        """Return True when the link is in the BAD state at ``time``."""
        bad, expires = self._state.get(link, (False, 0.0))
        while expires <= time:
            bad = not bad
            mean = self.mean_bad if bad else self.mean_good
            expires += rng.expovariate(1.0 / mean)
        self._state[link] = (bad, expires)
        return bad

    def should_drop(
        self, rngs: RngRegistry, sender: int, receiver: int, frame: Frame, time: float
    ) -> bool:
        link = (sender, receiver)
        rng = rngs.get(f"ge/{sender}-{receiver}")
        bad = self._advance(rng, link, time)
        p = self.loss_bad if bad else self.loss_good
        return rng.random() < p


class CompositeLoss(LossModel):
    """A reception survives only if every component model lets it through.

    Used for the multi-hop grids: static per-link PRR (distance + shadowing)
    composed with time-correlated ambient bursts (the meyer-heavy-style
    environmental noise that makes even short links lossy at times).
    """

    def __init__(self, *models: LossModel):
        if not models:
            raise ConfigError("CompositeLoss needs at least one component")
        self.models = models

    def should_drop(
        self, rngs: RngRegistry, sender: int, receiver: int, frame: Frame, time: float
    ) -> bool:
        return any(
            m.should_drop(rngs, sender, receiver, frame, time) for m in self.models
        )


class SyntheticNoiseTrace:
    """Bursty ambient-noise process (substitution for ``meyer-heavy.txt``).

    A two-state Markov modulation (quiet/heavy) selects the noise mean; the
    instantaneous noise is Gaussian around that mean.  Values are derived
    deterministically per time-bin so all receivers observe the same ambient
    environment, as a shared noise trace would provide.
    """

    def __init__(
        self,
        rngs: RngRegistry,
        bin_seconds: float = 0.05,
        quiet_dbm: float = -98.0,
        heavy_dbm: float = -82.0,
        sigma_db: float = 3.0,
        p_enter_heavy: float = 0.08,
        p_exit_heavy: float = 0.25,
    ):
        self._rng = rngs.get("noise-trace")
        self.bin_seconds = bin_seconds
        self.quiet_dbm = quiet_dbm
        self.heavy_dbm = heavy_dbm
        self.sigma_db = sigma_db
        self.p_enter_heavy = p_enter_heavy
        self.p_exit_heavy = p_exit_heavy
        self._bins: Dict[int, float] = {}
        self._last_bin = -1
        self._heavy = False

    def noise_at(self, time: float) -> float:
        """Noise floor (dBm) in the bin containing ``time``."""
        index = int(time / self.bin_seconds)
        value = self._bins.get(index)
        if value is None:
            # Advance the modulation chain up to this bin.
            while self._last_bin < index:
                self._last_bin += 1
                if self._heavy:
                    if self._rng.random() < self.p_exit_heavy:
                        self._heavy = False
                else:
                    if self._rng.random() < self.p_enter_heavy:
                        self._heavy = True
                mean = self.heavy_dbm if self._heavy else self.quiet_dbm
                self._bins[self._last_bin] = self._rng.gauss(mean, self.sigma_db)
            value = self._bins[index]
        return value


def snr_to_prr(snr_db: float, frame_bytes: int = 36) -> float:
    """Map SNR to packet-reception ratio with a mica2-style sigmoid.

    A logistic approximation of the NCFSK bit-error curve: PRR ≈ 0 below
    ~2 dB, ≈ 1 above ~10 dB, matching empirical mica2 link studies.
    """
    ber = 1.0 / (1.0 + math.exp(1.2 * (snr_db - 5.5)))
    prr = (1.0 - ber) ** (8.0 * frame_bytes / 8.0)
    return max(0.0, min(1.0, prr))


def noise_trace_prr_map(
    topology: "Topology",
    rngs: RngRegistry,
    trace: SyntheticNoiseTrace,
    samples: int = 200,
) -> Dict[Tuple[int, int], float]:
    """Average a noise trace into per-link loss probabilities.

    For each link, sample the trace at ``samples`` time points and average
    the instantaneous PRR given the link's received signal strength.
    """
    loss: Dict[Tuple[int, int], float] = {}
    for (u, v), rx_dbm in topology.link_rx_power.items():
        total = 0.0
        for s in range(samples):
            noise = trace.noise_at(s * trace.bin_seconds * 7.0)
            total += snr_to_prr(rx_dbm - noise)
        loss[(u, v)] = 1.0 - total / samples
    return loss
