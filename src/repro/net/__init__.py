"""Wireless-network substrate: frames, loss models, topologies, radio + MAC.

The medium is a broadcast radio (:class:`Radio`) with a CSMA-style MAC,
half-duplex nodes, optional collision modelling, and pluggable loss models —
from the paper's application-layer Bernoulli drops (one-hop experiments) to
per-link PRR maps derived from a propagation model (multi-hop grids) and
bursty Gilbert-Elliott / synthetic-noise-trace channels.
"""

from repro.net.packet import Frame, FrameKind
from repro.net.channel import (
    BernoulliLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
    PerLinkLoss,
)
from repro.net.topology import Topology, grid_topology, star_topology, random_disk_topology
from repro.net.radio import Radio
from repro.net.node import NetworkNode

__all__ = [
    "Frame",
    "FrameKind",
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "PerLinkLoss",
    "GilbertElliottLoss",
    "Topology",
    "star_topology",
    "grid_topology",
    "random_disk_topology",
    "Radio",
    "NetworkNode",
]
