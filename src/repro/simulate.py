"""Single-run simulation CLI.

Run one dissemination with explicit parameters and print the five paper
metrics (plus optional energy accounting)::

    python -m repro.simulate --protocol lr-seluge --loss 0.2 --receivers 20
    python -m repro.simulate --protocol seluge --topology tight:8x8 \\
        --image-kib 8 --seed 3
    python -m repro.simulate --protocol lr-seluge --topology-file site.txt \\
        --energy

One-hop star runs use the paper's application-layer Bernoulli losses;
grid/random/file topologies use per-link PRR plus ambient bursts and CSMA
collisions.

Fault injection (``--fault-plan``, ``--mtbf``, ``--link-flap``) runs the
scenario on a faulty grid — every receiver gets persistent flash so crashed
nodes resume from their last completed page after reboot::

    python -m repro.simulate --protocol lr-seluge --image-kib 4 --k 8 --n 12 \\
        --mtbf 30 --mttr 10
    python -m repro.simulate --protocol seluge --image-kib 4 --k 8 --n 12 \\
        --fault-plan plan.json

Observability (``--profile``, ``--trace-out``, ``--chrome-trace``,
``--manifest``) attaches the event-loop profiler and/or a structured event
log to the same run — packet/page lifecycle spans land in a JSONL trace
(and, with ``--chrome-trace``, a Perfetto/chrome://tracing timeline), and
the run manifest records seed, config, git revision, counters, and wall
timings for later diffing with ``python -m repro.obs report --diff``::

    python -m repro.simulate --protocol lr-seluge --image-kib 4 --k 8 --n 12 \\
        --profile --trace-out run.trace.jsonl --manifest run.manifest.json

``--flight-record`` additionally attaches the protocol flight recorder
(per-link tx/rx/loss/auth-drop accounting, tracking-table snapshots, hop
topology) so the archived trace can be replayed through
``python -m repro.obs check-invariants`` and reduced with
``python -m repro.obs analyze``::

    python -m repro.simulate --protocol lr-seluge --image-kib 4 --k 8 --n 12 \\
        --flight-record --trace-out run.trace.jsonl
    python -m repro.obs check-invariants run.trace.jsonl
    python -m repro.obs analyze run.trace.jsonl --out analysis.json

``--causal-trace`` attaches the causal provenance recorder instead: every
frame carries the event that caused it (the received frame or timer arm
that triggered the transmission), and the archived trace answers "why was
node ``n``'s completion at time ``t``?"::

    python -m repro.simulate --protocol lr-seluge --image-kib 4 --k 8 --n 12 \\
        --loss 0.15 --causal-trace --trace-out run.trace.jsonl
    python -m repro.obs critical-path run.trace.jsonl --min-attribution 0.95
    python -m repro.obs why run.trace.jsonl --node 7
"""

from __future__ import annotations

import argparse
import sys

from repro.core.image import CodeImage
from repro.experiments.energy import estimate_energy
from repro.experiments.reporting import stopwatch
from repro.experiments.runner import CompletionTracker, run_network
from repro.experiments.scenarios import (
    FaultyGridScenario,
    MultiHopScenario,
    OneHopScenario,
    build_protocol_network,
    make_params,
    run_faulty_grid,
    run_multihop,
    run_one_hop,
)
from repro.faults import FaultPlan
from repro.net.channel import CompositeLoss, GilbertElliottLoss, PerLinkLoss
from repro.net.radio import Radio, RadioConfig
from repro.net.topology_file import load_topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.simulate",
        description="Run one code-dissemination simulation.",
    )
    parser.add_argument("--protocol", default="lr-seluge",
                        choices=["deluge", "seluge", "lr-seluge", "rateless"])
    parser.add_argument("--loss", type=float, default=0.1,
                        help="one-hop app-layer loss rate (star topology only)")
    parser.add_argument("--receivers", type=int, default=20,
                        help="one-hop receiver count (star topology only)")
    parser.add_argument("--topology", default=None,
                        help='multi-hop spec, e.g. "tight:8x8", "medium", '
                             '"grid:5x5:3", "random:40:30"')
    parser.add_argument("--topology-file", default=None,
                        help="TinyOS-style topology file (see repro.net.topology_file)")
    parser.add_argument("--image-kib", type=int, default=20)
    parser.add_argument("--k", type=int, default=32)
    parser.add_argument("--n", type=int, default=48)
    parser.add_argument("--kprime", type=int, default=0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--max-time", type=float, default=14400.0)
    parser.add_argument("--energy", action="store_true",
                        help="print the energy breakdown as well")
    faults = parser.add_argument_group("fault injection (grid topologies)")
    faults.add_argument("--fault-plan", default=None, metavar="PLAN.json",
                        help="replay a declarative FaultPlan JSON file")
    faults.add_argument("--mtbf", type=float, default=None,
                        help="per-receiver mean time between crashes (s); "
                             "enables exponential crash/reboot churn")
    faults.add_argument("--mttr", type=float, default=60.0,
                        help="mean downtime after a crash (s; with --mtbf)")
    faults.add_argument("--link-flap", type=float, default=0.0,
                        help="per-check Bernoulli probability a directed "
                             "link goes down")
    faults.add_argument("--churn-horizon", type=float, default=None,
                        help="stop generating stochastic faults after this "
                             "time (default: max-time / 2)")
    adv = parser.add_argument_group("adversaries and hardening")
    adv.add_argument("--attack", action="append", default=None, metavar="KIND",
                     help="deploy an attacker: a preset name from the "
                          "resilience scorecard (jammer, greyhole, replay, "
                          "sybil, dor, bogus-data) or a raw attack kind "
                          "(e.g. reactive-jammer); repeatable")
    adv.add_argument("--attack-plan", default=None, metavar="PLAN.json",
                     help="deploy a declarative AttackPlan JSON file "
                          "(composes with --attack)")
    adv.add_argument("--defense", default=None, metavar="FLAGS",
                     help='protocol hardening flags: "all", "none", or a '
                          'comma list of rate_limit, backoff, replay_filter, '
                          "stall_watchdog")
    obs = parser.add_argument_group("observability")
    obs.add_argument("--profile", action="store_true",
                     help="attach the event-loop profiler and print the "
                          "per-handler (and per-event-kind) wall-time tables")
    obs.add_argument("--profile-warmup", type=int, default=0, metavar="N",
                     help="exclude each handler's first N calls from the "
                          "profile (lazy-init cost lands in a warmup bucket)")
    obs.add_argument("--profile-alloc", action="store_true",
                     help="with --profile: attribute tracemalloc net "
                          "allocations per handler")
    obs.add_argument("--flamegraph", default=None, metavar="STACKS.txt",
                     help="with --profile: write collapsed stacks "
                          "(speedscope / flamegraph.pl compatible)")
    obs.add_argument("--trace-out", default=None, metavar="TRACE.jsonl",
                     help="write the structured event trace (JSONL)")
    obs.add_argument("--chrome-trace", default=None, metavar="TRACE.json",
                     help="write a Chrome trace_event/Perfetto timeline")
    obs.add_argument("--manifest", default=None, metavar="MANIFEST.json",
                     help="write a run manifest (seed, config, git rev, "
                          "counters, timings)")
    obs.add_argument("--flight-record", action="store_true",
                     help="attach the protocol flight recorder (per-link "
                          "accounting, tracker snapshots) to the trace; "
                          "implies structured tracing and feeds "
                          "`python -m repro.obs check-invariants/analyze`")
    obs.add_argument("--causal-trace", action="store_true",
                     help="attach the causal provenance recorder (per-frame "
                          "cause stamps, cross-node edges) to the trace; "
                          "implies structured tracing and feeds "
                          "`python -m repro.obs critical-path/why`")
    return parser


def _run_from_file(args, sim: Simulator, trace: TraceRecorder):
    topo = load_topology(args.topology_file)
    rngs = RngRegistry(args.seed)
    loss = CompositeLoss(
        PerLinkLoss(topo.link_loss),
        GilbertElliottLoss(loss_good=0.05, loss_bad=0.5, mean_good=6.0, mean_bad=2.0),
    )
    radio = Radio(sim, topo, loss, rngs, trace, config=RadioConfig(collisions=True))
    params = make_params(args.protocol, image_size=args.image_kib * 1024,
                         k=args.k, n=args.n, kprime=args.kprime)
    image = CodeImage.synthetic(args.image_kib * 1024, version=2, seed=args.seed)
    tracker = CompletionTracker(trace)
    base, nodes, pre = build_protocol_network(
        args.protocol, sim, radio, rngs, trace, params, image, tracker)
    base.start()
    result = run_network(sim, trace, tracker, nodes, args.protocol,
                         max_time=args.max_time, expected_image=image.data,
                         seed=args.seed)
    return result, [n.pipeline for n in nodes], len(nodes) + 1


def _run_faulty(args, sim: Simulator, trace: TraceRecorder):
    plan = (
        FaultPlan.from_json_file(args.fault_plan) if args.fault_plan else None
    )
    scenario = FaultyGridScenario(
        protocol=args.protocol,
        topology=args.topology or "grid:4x4:3",
        image_size=args.image_kib * 1024,
        k=args.k, n=args.n, kprime=args.kprime,
        seed=args.seed, max_time=args.max_time,
        plan=plan, mtbf=args.mtbf, mttr=args.mttr,
        link_flap=args.link_flap, churn_horizon=args.churn_horizon,
    )
    return run_faulty_grid(scenario, trace=trace, sim=sim)


def _attack_specs(args):
    """Resolve --attack-plan and every --attack into one AttackSpec tuple."""
    from repro.attacks import ATTACK_KINDS, AttackPlan, AttackSpec
    from repro.experiments.resilience import ATTACK_PRESETS

    specs = []
    if args.attack_plan:
        specs.extend(AttackPlan.from_json_file(args.attack_plan).specs)
    for name in args.attack or ():
        if name in ATTACK_PRESETS:
            specs.extend(ATTACK_PRESETS[name])
        elif name in ATTACK_KINDS:
            specs.append(AttackSpec(kind=name))
        else:
            raise SystemExit(
                f"unknown attack {name!r}; presets: "
                f"{sorted(k for k in ATTACK_PRESETS if k != 'none')}, "
                f"kinds: {sorted(ATTACK_KINDS)}")
    return tuple(specs)


def _run_adversarial(args, sim: Simulator, trace: TraceRecorder, specs):
    from repro.experiments.adversarial import AdversarialScenario, run_adversarial
    from repro.protocols.defense import DefenseConfig

    faults = ()
    if args.fault_plan:
        faults = FaultPlan.from_json_file(args.fault_plan).events
    scenario = AdversarialScenario(
        protocol=args.protocol,
        topology=args.topology or f"star:{args.receivers}",
        loss_rate=args.loss,
        image_size=args.image_kib * 1024,
        k=args.k, n=args.n, kprime=args.kprime,
        seed=args.seed, max_time=args.max_time,
        attacks=specs,
        defense=DefenseConfig.from_flags(args.defense or "none"),
        faults=faults,
    )
    return run_adversarial(scenario, sim=sim, trace=trace)


def _config_dict(args) -> dict:
    """The manifest's record of what was asked for on the command line."""
    config = {
        "protocol": args.protocol,
        "image_kib": args.image_kib,
        "k": args.k, "n": args.n, "kprime": args.kprime,
        "max_time": args.max_time,
    }
    if args.topology_file:
        config["topology_file"] = args.topology_file
    elif args.topology:
        config["topology"] = args.topology
    else:
        config["loss"] = args.loss
        config["receivers"] = args.receivers
    for name in ("fault_plan", "mtbf", "link_flap"):
        value = getattr(args, name)
        if value:
            config[name] = value
    if args.attack:
        config["attack"] = list(args.attack)
    if args.attack_plan:
        config["attack_plan"] = args.attack_plan
    if args.defense:
        config["defense"] = args.defense
    return config


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    attack_specs = _attack_specs(args)
    adversarial = bool(attack_specs or args.defense)
    faulty = bool(args.fault_plan or args.mtbf is not None or args.link_flap)
    pipelines = None

    sim = Simulator()
    log = None
    if (args.trace_out or args.chrome_trace or args.flight_record
            or args.causal_trace):
        from repro.obs.events import EventLog
        log = EventLog()
    flight = None
    if args.flight_record:
        from repro.obs.flight import FlightRecorder
        flight = FlightRecorder(log)
    causal = None
    if args.causal_trace:
        from repro.obs.flight import CausalRecorder
        causal = CausalRecorder(log)
    trace = TraceRecorder(sink=log, flight=flight, causal=causal)
    profiler = None
    if args.profile:
        from repro.obs.profile import LoopProfiler
        # Kinds are on whenever the profiler is: they feed the flamegraph's
        # second level and the per-kind report table.  Sampling feeds the
        # Chrome counter tracks when a timeline is requested.
        profiler = LoopProfiler(
            warmup_calls=args.profile_warmup,
            kinds=True,
            alloc=args.profile_alloc,
            sample_every=50 if args.chrome_trace else 0,
        )
        sim.set_profiler(profiler)
    elif args.flamegraph or args.profile_alloc or args.profile_warmup:
        raise SystemExit(
            "--flamegraph/--profile-alloc/--profile-warmup require --profile")

    with stopwatch() as elapsed:
        if adversarial:
            if args.topology_file:
                raise SystemExit("adversaries need --topology, "
                                 "not --topology-file")
            if args.mtbf is not None or args.link_flap:
                raise SystemExit("stochastic churn does not compose with "
                                 "--attack/--defense; use --fault-plan")
            result = _run_adversarial(args, sim, trace, attack_specs)
            n_nodes = len(result.per_node_completion) + 1
        elif faulty:
            if args.topology_file:
                raise SystemExit("fault injection needs --topology, "
                                 "not --topology-file")
            result = _run_faulty(args, sim, trace)
            n_nodes = (result.n_nodes or 0) + 1
        elif args.topology_file:
            result, pipelines, n_nodes = _run_from_file(args, sim, trace)
        elif args.topology:
            result = run_multihop(MultiHopScenario(
                protocol=args.protocol, topology=args.topology,
                image_size=args.image_kib * 1024, k=args.k, n=args.n,
                kprime=args.kprime, seed=args.seed, max_time=args.max_time,
            ), sim=sim, trace=trace)
            n_nodes = len(result.per_node_completion) + 1
        else:
            result = run_one_hop(OneHopScenario(
                protocol=args.protocol, loss_rate=args.loss,
                receivers=args.receivers, image_size=args.image_kib * 1024,
                k=args.k, n=args.n, kprime=args.kprime, seed=args.seed,
                max_time=args.max_time,
            ), sim=sim, trace=trace)
            n_nodes = args.receivers + 1
    wall_s = elapsed()

    print(f"protocol:        {result.protocol}")
    print(f"completed:       {result.completed}")
    print(f"images verified: {result.images_ok}")
    print(f"data packets:    {result.data_packets}")
    print(f"SNACK packets:   {result.snack_packets}")
    print(f"advertisements:  {result.adv_packets}")
    print(f"total bytes:     {result.total_bytes}")
    print(f"latency:         {result.latency:.1f} s")
    if adversarial:
        injected = result.counters.get("adv_frames_injected")
        if injected is not None:
            delivered = result.counters.get("adv_frames_delivered", 0)
            print(f"attacker frames: {injected} injected, "
                  f"{delivered} delivered")
        violations = result.counters.get("invariant_violations")
        if violations is not None:
            print(f"invariants:      {violations} violation(s)")
    if faulty:
        rate = result.completion_rate
        print(f"completion rate: {rate:.2%}" if rate is not None
              else "completion rate: n/a")
        print(f"crashes:         {result.crash_count}")
        print(f"reboots:         {result.reboot_count}")
    if args.energy:
        report = estimate_energy(result, n_nodes=n_nodes, pipelines=pipelines)
        print("energy (network-wide):")
        for key, value in report.breakdown().items():
            print(f"  {key:10s} {value:.1f}")

    if flight is not None:
        # Topology map + per-link accounting summary land in the trace
        # before it is flushed and written.
        flight.finalize(sim.now)
    if profiler is not None and args.profile_alloc:
        profiler.stop_alloc()
    if log is not None:
        log.flush_open_spans(sim.now)
        if args.trace_out:
            log.write_jsonl(args.trace_out)
            print(f"wrote trace:     {args.trace_out} ({len(log)} events)")
        if args.chrome_trace:
            extra = None
            if profiler is not None and profiler.samples:
                from repro.obs.perf import chrome_counter_events
                extra = chrome_counter_events(profiler.samples)
            log.write_chrome_trace(args.chrome_trace, extra_events=extra)
            print(f"wrote timeline:  {args.chrome_trace}")
    if profiler is not None:
        print(profiler.report())
        if args.flamegraph:
            from repro.obs.perf import write_flamegraph
            write_flamegraph(args.flamegraph, profiler.summary())
            print(f"wrote flamegraph stacks: {args.flamegraph}")
    if args.manifest:
        from repro.obs.manifest import RunManifest
        profile_summary = (
            profiler.summary(heap_stats=sim.heap_stats())
            if profiler is not None else None
        )
        manifest = RunManifest.from_run(
            "repro.simulate", result, config=_config_dict(args),
            wall_s=wall_s, sim=sim, profile=profile_summary,
            trace_file=args.trace_out,
            unregistered=trace.registry.unregistered_names(),
        )
        manifest.write(args.manifest)
        print(f"wrote manifest:  {args.manifest}")
    return 0 if result.completed else 1


if __name__ == "__main__":
    sys.exit(main())
