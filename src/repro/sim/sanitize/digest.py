"""Canonical digests for perturbed-run comparison.

Two runs of the same scenario under different tie-break permutations are
*equivalent* when they produce the same final metrics and the same set of
structured trace events — where events sharing a timestamp may legitimately
appear in either order (that reorder is exactly what the perturbation
injects).  The canonical forms here therefore sort events within equal
timestamps by content before hashing, so a digest mismatch always means a
*real* divergence (different counters, different event content, different
timing), never a cosmetic tie reorder.

Floats round-trip through ``json.dumps`` with repr-shortest encoding, so
the digests are bitwise-faithful to the underlying values.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, List, Optional, Protocol, Tuple

__all__ = [
    "DigestPair",
    "canonical_events",
    "event_digest",
    "first_divergence",
    "metrics_digest",
]


class _JsonableResult(Protocol):
    """What the digest needs from a RunResult (structural, no import)."""

    def to_jsonable(self) -> "dict[str, object]": ...


class _EventLike(Protocol):
    """What the digest needs from a TraceEvent."""

    def to_dict(self) -> "dict[str, Any]": ...


class _LogLike(Protocol):
    """What the digest needs from an EventLog."""

    events: "List[Any]"


@dataclass(frozen=True)
class DigestPair:
    """The two digests that identify one run's outcome."""

    metrics: str
    events: str


def _sha256(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def metrics_digest(result: _JsonableResult) -> str:
    """Canonical digest of a RunResult (sorted keys, repr-exact floats)."""
    return _sha256(json.dumps(result.to_jsonable(), sort_keys=True))


def canonical_events(log: _LogLike) -> List[str]:
    """The log's events as canonical JSON strings, tie-order-insensitive.

    Events are serialised with sorted keys and then sorted by
    ``(timestamp, serialised content)``: distinct-time events keep their
    temporal order; same-time events land in a content-defined order that
    every legitimate tie-break permutation agrees on.
    """
    rendered: List[Tuple[float, str]] = []
    for event in log.events:
        data = event.to_dict()
        rendered.append((float(data["ts"]), json.dumps(data, sort_keys=True)))
    rendered.sort()
    return [text for _, text in rendered]


def event_digest(log: _LogLike) -> str:
    """Canonical digest of a structured event log."""
    return _sha256("\n".join(canonical_events(log)))


def first_divergence(
    baseline: List[str], perturbed: List[str]
) -> Optional[Tuple[int, str, str]]:
    """The first differing canonical event between two runs.

    Returns ``(index, baseline_event, perturbed_event)`` with ``"<absent>"``
    standing in when one log ran out of events, or None when equal — the
    minimal diff a divergence report prints.
    """
    for index, (a, b) in enumerate(zip(baseline, perturbed)):
        if a != b:
            return (index, a, b)
    if len(baseline) != len(perturbed):
        index = min(len(baseline), len(perturbed))
        a = baseline[index] if index < len(baseline) else "<absent>"
        b = perturbed[index] if index < len(perturbed) else "<absent>"
        return (index, a, b)
    return None
