"""CLI entry point: ``python -m repro.sim.sanitize``.

Runs the determinism sanitizer over the quick-grid cells (including the
fault-plan and attack-plan compositions) and exits non-zero on any
divergence, cross-node alias, or RNG-discipline violation.  CI's
``sanitizer-smoke`` job publishes the JSON report as a build artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.sim.sanitize.harness import default_cells, run_sanitizer


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.sanitize",
        description=(
            "Determinism sanitizer: schedule-perturbation race detector, "
            "shared-state scan, and RNG-discipline tripwire."
        ),
    )
    parser.add_argument(
        "--perturbations", type=int, default=5, metavar="K",
        help="tie-break permutations per cell (default: %(default)s)")
    parser.add_argument(
        "--cell", action="append", dest="cells", metavar="NAME",
        help="run only this cell (repeatable); default: all cells")
    parser.add_argument(
        "--list-cells", action="store_true",
        help="list the available cells and exit")
    parser.add_argument(
        "--out", metavar="PATH",
        help="write the JSON report to PATH (atomic)")
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-run progress lines")
    args = parser.parse_args(argv)

    if args.list_cells:
        for cell in default_cells():
            extras = []
            if cell.faults:
                extras.append("fault plan")
            if cell.attacks:
                extras.append("attack plan")
            suffix = f" ({', '.join(extras)})" if extras else ""
            print(f"{cell.name}: {cell.protocol} on star:{cell.receivers}"
                  f"{suffix}")
        return 0

    progress = None if args.quiet else (lambda line: print(line, flush=True))
    report = run_sanitizer(
        perturbations=args.perturbations,
        cells=default_cells(args.cells),
        log=progress,
    )

    if args.out:
        from repro.persist import atomic_write_text

        atomic_write_text(
            args.out, json.dumps(report.to_jsonable(), indent=2) + "\n")

    for cell_report in report.cells:
        status = "clean" if cell_report.ok else "DIVERGENT"
        print(f"{cell_report.cell.name}: {status} "
              f"({cell_report.events} events, "
              f"{len(cell_report.perturbed)} perturbations)")
        for divergence in cell_report.divergences:
            print(divergence.format())
        for finding in cell_report.aliases_setup:
            print(f"  shared state at setup: {finding.format()}")
        for finding in cell_report.aliases_final:
            print(f"  shared state after run: {finding.format()}")
        for violation in cell_report.rng_violations:
            print(f"  rng: {violation}")

    if report.ok:
        print(f"sanitizer: clean "
              f"({len(report.cells)} cells x {report.perturbations} "
              f"perturbations)")
        return 0
    print("sanitizer: divergence detected", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
