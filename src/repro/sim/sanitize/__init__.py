"""simsan — the determinism sanitizer for the discrete-event core.

Three dynamic race detectors that make engine/radio refactors (ROADMAP
items 1-2) safe to attempt:

* **Schedule perturbation** (:mod:`repro.sim.sanitize.perturb`): run the
  same scenario under K different deterministic tie-break permutations of
  same-timestamp events and byte-compare metric/trace digests.  Any
  divergence means a result depends on the engine's FIFO tie-break — an
  order-dependence bug that a batched/vectorised engine would surface as
  unreproducible figures.
* **Shared-state detection** (:mod:`repro.sim.sanitize.aliases`):
  fingerprint the mutable containers reachable from each node/protocol
  instance and report any container aliased across two nodes that is not
  part of the sanctioned shared infrastructure (radio, trace, registry...).
* **RNG-discipline tripwire** (:mod:`repro.sim.sanitize.tripwire`): record
  which execution context draws each named stream from the
  :class:`~repro.sim.rng.RngRegistry` and flag streams consumed from two
  different node contexts.

None of this touches :mod:`repro.sim.engine`: the perturbed scheduler is a
:class:`~repro.sim.engine.Simulator` subclass, so production runs pay zero
overhead (the bench-compare perf gate is the enforcement).  See DESIGN.md
section 13 for the workflow and ``python -m repro.sim.sanitize`` for the CLI.
"""

from repro.sim.sanitize.aliases import AliasFinding, find_shared_state
from repro.sim.sanitize.digest import (
    DigestPair,
    canonical_events,
    event_digest,
    first_divergence,
    metrics_digest,
)
from repro.sim.sanitize.harness import (
    DEFAULT_CELLS,
    CellReport,
    SanitizeCell,
    SanitizerReport,
    default_cells,
    run_cell,
    run_sanitizer,
)
from repro.sim.sanitize.perturb import HandlerContext, PerturbedSimulator
from repro.sim.sanitize.tripwire import StreamBinding, TripwireRegistry

__all__ = [
    "AliasFinding",
    "CellReport",
    "DEFAULT_CELLS",
    "DigestPair",
    "HandlerContext",
    "PerturbedSimulator",
    "SanitizeCell",
    "SanitizerReport",
    "StreamBinding",
    "TripwireRegistry",
    "canonical_events",
    "default_cells",
    "event_digest",
    "find_shared_state",
    "first_divergence",
    "metrics_digest",
    "run_cell",
    "run_sanitizer",
]
