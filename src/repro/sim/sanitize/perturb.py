"""Schedule perturbation: deterministic shuffles of same-timestamp order.

The production engine orders events by ``(time, seq)`` where ``seq`` is a
FIFO counter, so simultaneous events run in scheduling order.  Correct
protocol code must not *depend* on that order — simultaneity is a float
coincidence, and the planned batched/vectorised engine will not preserve
FIFO ties.  :class:`PerturbedSimulator` replaces the FIFO counter with a
keyed pseudo-random priority, producing a different — but fully
deterministic — permutation of every same-timestamp group for each
``perturbation`` seed.  Running the same scenario under several seeds and
comparing digests is therefore a dynamic race detector for event-order
dependence.

The class lives outside :mod:`repro.sim.engine` on purpose: the engine hot
path stays untouched, keeping the zero-overhead-when-disabled contract that
the bench-compare perf gate enforces.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Optional

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator
from repro.sim.rng import derive_seed

__all__ = ["HandlerContext", "PerturbedSimulator"]


class HandlerContext:
    """Tracks which object's handler the engine is currently executing.

    The RNG tripwire needs to know, at ``RngRegistry.get`` time, *whose*
    event is running.  :class:`PerturbedSimulator` wraps every scheduled
    callback to publish its owner here.  Owners are labelled stably:
    objects with a ``node_id`` become ``"node/<id>"``; everything else gets
    ``"<ClassName>#<k>"`` with ``k`` assigned in first-seen order (which is
    itself deterministic for a deterministic run).  Timer/periodic-process
    wrappers are unwrapped to the object owning their callback, so a draw
    from a node's timer is attributed to the node, not the timer.
    """

    SETUP = "setup"

    def __init__(self) -> None:
        self.current: str = self.SETUP
        self._anon_ids: Dict[int, str] = {}
        self._anon_counts: Dict[str, int] = {}

    def label_for(self, fn: Callable[..., Any]) -> str:
        owner = self._resolve_owner(fn)
        if owner is None:
            name = getattr(fn, "__qualname__", getattr(fn, "__name__", "?"))
            return f"function/{name}"
        node_id = getattr(owner, "node_id", None)
        if isinstance(node_id, int):
            return f"node/{node_id}"
        key = id(owner)
        label = self._anon_ids.get(key)
        if label is None:
            cls = type(owner).__name__
            index = self._anon_counts.get(cls, 0)
            self._anon_counts[cls] = index + 1
            label = f"{cls}#{index}"
            self._anon_ids[key] = label
        return label

    @staticmethod
    def _resolve_owner(fn: Callable[..., Any]) -> Optional[object]:
        """The object whose state ``fn`` runs against, unwrapping timers."""
        hops = 0
        owner = getattr(fn, "__self__", None)
        # Timer._fire / PeriodicProcess._tick hold the real callback in
        # ``_fn``; follow that chain (bounded) to the protocol object.
        while owner is not None and hops < 4:
            inner = getattr(owner, "_fn", None)
            inner_owner = getattr(inner, "__self__", None)
            if inner_owner is None:
                break
            owner = inner_owner
            hops += 1
        return owner

    def enter(self, fn: Callable[..., Any]) -> str:
        previous = self.current
        self.current = self.label_for(fn)
        return previous

    def exit(self, previous: str) -> None:
        self.current = previous


class PerturbedSimulator(Simulator):
    """A :class:`Simulator` whose same-timestamp tie-break is permuted.

    ``perturbation`` selects the permutation: each scheduled event's
    sequence key becomes ``(keyed_hash(perturbation, counter) << 40) |
    counter``, so events at *distinct* times run exactly as before (time
    dominates the heap order), while events at the *same* time run in a
    pseudo-random order that is a pure function of the perturbation seed
    and each event's scheduling index.  The counter in the low bits keeps
    keys unique even on a (vanishingly unlikely) 64-bit hash collision,
    preserving the engine's total-order guarantee.

    An optional :class:`HandlerContext` wraps every callback so the RNG
    tripwire can attribute stream draws to the executing node.  The wrapper
    costs one closure per event — acceptable for sanitizer runs, never paid
    by production simulations (which use the plain :class:`Simulator`).
    """

    def __init__(
        self,
        perturbation: int,
        max_events: Optional[int] = None,
        max_sim_time: Optional[float] = None,
        context: Optional[HandlerContext] = None,
    ) -> None:
        super().__init__(max_events=max_events, max_sim_time=max_sim_time)
        self.perturbation = int(perturbation)
        self.context = context
        self._counter = 0

    def _perturbed_seq(self) -> int:
        counter = self._counter
        self._counter += 1
        priority = derive_seed(self.perturbation, f"tiebreak/{counter}")
        return (priority << 40) | counter

    def schedule_at(
        self, time: float, fn: Callable[..., Any], *args: Any
    ) -> Event:
        # Mirrors Simulator.schedule_at but assigns the perturbed sequence
        # key at construction (heapq has no decrease-key, so fixing the key
        # up after the push would mean an O(n) heap search).
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        if self.context is not None:
            fn = _context_wrapper(self.context, fn)
        event = Event(time, self._perturbed_seq(), fn, args, sim=self)
        self._seq += 1  # keep the FIFO counter advancing for introspection
        heapq.heappush(self._queue, event)
        self._live += 1
        return event


def _context_wrapper(
    context: HandlerContext, fn: Callable[..., Any]
) -> Callable[..., Any]:
    def run(*args: Any) -> None:
        previous = context.enter(fn)
        try:
            fn(*args)
        finally:
            context.exit(previous)

    # Keep the original reachable for diagnostics and owner resolution.
    run.__wrapped__ = fn  # type: ignore[attr-defined]
    return run
