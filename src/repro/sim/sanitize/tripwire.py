"""RNG-discipline tripwire: who draws which named stream?

The seeded-determinism argument (DESIGN.md section 8) assumes each named
stream from the :class:`~repro.sim.rng.RngRegistry` has a single logical
consumer: ``node/3`` belongs to node 3's protocol jitter, ``mac/7`` to node
7's MAC backoff, ``loss/2`` to receptions at node 2.  A stream drawn from
*two different node contexts* means two components share randomness — a
draw added in one perturbs the other, and any event reorder between them
changes results.  :class:`TripwireRegistry` subclasses the registry to
record a ``stream name → consumer contexts`` binding table (contexts come
from the :class:`~repro.sim.sanitize.perturb.HandlerContext` published by
the perturbed simulator) and reports streams bound to more than one node.

Setup-time draws (topology generation, fault-plan sampling) happen under
the ``"setup"`` context and never conflict with anything; infrastructure
contexts (``Radio#0``) are likewise exempt — the radio legitimately draws
per-node MAC/loss streams on behalf of every node, in event order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.sim.rng import RngRegistry
from repro.sim.sanitize.perturb import HandlerContext

__all__ = ["StreamBinding", "TripwireRegistry"]


@dataclass(frozen=True)
class StreamBinding:
    """One stream name and every context that requested it."""

    name: str
    contexts: Tuple[str, ...]

    @property
    def node_contexts(self) -> Tuple[str, ...]:
        return tuple(c for c in self.contexts if c.startswith("node/"))

    @property
    def is_violation(self) -> bool:
        """True when two *different* nodes drew the same stream."""
        return len(set(self.node_contexts)) > 1


class TripwireRegistry(RngRegistry):
    """An :class:`RngRegistry` that records (stream → consumer) bindings.

    Drop-in replacement: inject one into a scenario runner (the ``rngs``
    parameter of ``run_one_hop``/``build_adversarial``/...) together with a
    :class:`PerturbedSimulator` carrying the same :class:`HandlerContext`,
    run the scenario, then inspect :meth:`bindings` / :meth:`violations`.
    """

    def __init__(self, root_seed: int = 0,
                 context: "HandlerContext | None" = None) -> None:
        super().__init__(root_seed)
        self.context = context if context is not None else HandlerContext()
        self._bindings: Dict[str, List[str]] = {}

    def _note(self, name: str) -> None:
        contexts = self._bindings.setdefault(name, [])
        current = self.context.current
        if current not in contexts:
            contexts.append(current)

    def get(self, name: str) -> random.Random:
        self._note(name)
        return super().get(name)

    def get_numpy(self, name: str) -> np.random.Generator:
        self._note(name)
        return super().get_numpy(name)

    def bindings(self) -> List[StreamBinding]:
        """Every recorded binding, sorted by stream name."""
        return [
            StreamBinding(name=name, contexts=tuple(contexts))
            for name, contexts in sorted(self._bindings.items())
        ]

    def violations(self) -> List[StreamBinding]:
        """Streams drawn from two or more distinct node contexts."""
        return [b for b in self.bindings() if b.is_violation]

    def consumers(self, name: str) -> Set[str]:
        return set(self._bindings.get(name, []))
