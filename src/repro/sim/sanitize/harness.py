"""The sanitizer harness: perturbed runs, alias scans, tripwire, reports.

One *cell* is a small dissemination scenario (CI's quick-grid shape: a
5-receiver star, 2 KiB image, k=4/n=6).  For each cell the harness runs

1. a **baseline** on the plain production :class:`~repro.sim.engine.
   Simulator` (FIFO tie-break — exactly what every experiment runs), and
2. ``K`` **perturbed** runs on :class:`~repro.sim.sanitize.perturb.
   PerturbedSimulator` with tie-break permutations 1..K,

then byte-compares the canonical metric/event digests.  Equality proves the
cell's results are independent of same-timestamp event order; a mismatch is
reported with the first divergent canonical event and the differing
counters.  The baseline run additionally fingerprints cross-node shared
state before and after execution, and every perturbed run feeds the
RNG-discipline tripwire.

Everything above the simulator is imported lazily: this module lives in the
strictly-typed :mod:`repro.sim` package, while the scenario wiring layer
(:mod:`repro.experiments`) is typed best-effort.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.sim.engine import Simulator
from repro.sim.sanitize.aliases import AliasFinding, find_shared_state
from repro.sim.sanitize.digest import (
    DigestPair,
    canonical_events,
    event_digest,
    first_divergence,
    metrics_digest,
)
from repro.sim.sanitize.perturb import HandlerContext, PerturbedSimulator
from repro.sim.sanitize.tripwire import TripwireRegistry

__all__ = [
    "SanitizeCell",
    "CellReport",
    "SanitizerReport",
    "DEFAULT_CELLS",
    "default_cells",
    "run_cell",
    "run_sanitizer",
]


@dataclass(frozen=True)
class SanitizeCell:
    """One scenario the sanitizer exercises.

    The shape mirrors the CI quick grid; ``faults``/``attacks`` toggle the
    composed fault plan / attack plan cells the acceptance criteria name.
    """

    name: str
    protocol: str = "lr-seluge"
    receivers: int = 5
    loss_rate: float = 0.1
    image_size: int = 2048
    k: int = 4
    n: int = 6
    seed: int = 3
    max_time: float = 1800.0
    faults: bool = False
    attacks: bool = False


DEFAULT_CELLS: Tuple[SanitizeCell, ...] = (
    SanitizeCell(name="deluge", protocol="deluge"),
    SanitizeCell(name="seluge", protocol="seluge"),
    SanitizeCell(name="lr-seluge", protocol="lr-seluge"),
    SanitizeCell(name="lr-seluge+faults", protocol="lr-seluge", faults=True),
    SanitizeCell(name="lr-seluge+attack", protocol="lr-seluge", attacks=True),
)


def default_cells(names: Optional[List[str]] = None) -> Tuple[SanitizeCell, ...]:
    """The default cell set, optionally filtered to ``names``."""
    if not names:
        return DEFAULT_CELLS
    by_name = {cell.name: cell for cell in DEFAULT_CELLS}
    unknown = [n for n in names if n not in by_name]
    if unknown:
        raise ConfigError(
            f"unknown sanitizer cell(s) {unknown}; known: {sorted(by_name)}")
    return tuple(by_name[n] for n in names)


@dataclass
class Divergence:
    """One perturbed run whose digests differ from the baseline."""

    perturbation: int
    metrics_equal: bool
    events_equal: bool
    counter_diff: Dict[str, Tuple[Optional[int], Optional[int]]]
    first_event_diff: Optional[Tuple[int, str, str]]

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "perturbation": self.perturbation,
            "metrics_equal": self.metrics_equal,
            "events_equal": self.events_equal,
            "counter_diff": {
                key: list(pair) for key, pair in sorted(self.counter_diff.items())
            },
            "first_event_diff": (
                list(self.first_event_diff)
                if self.first_event_diff is not None else None
            ),
        }

    def format(self) -> str:
        lines = [f"perturbation {self.perturbation}:"]
        for key, (base, pert) in sorted(self.counter_diff.items()):
            lines.append(f"  counter {key}: baseline={base} perturbed={pert}")
        if self.first_event_diff is not None:
            index, base, pert = self.first_event_diff
            lines.append(f"  first divergent event (canonical index {index}):")
            lines.append(f"    baseline:  {base}")
            lines.append(f"    perturbed: {pert}")
        return "\n".join(lines)


@dataclass
class CellReport:
    """Everything the sanitizer learned about one cell."""

    cell: SanitizeCell
    baseline: DigestPair
    perturbed: Dict[int, DigestPair] = field(default_factory=dict)
    divergences: List[Divergence] = field(default_factory=list)
    aliases_setup: List[AliasFinding] = field(default_factory=list)
    aliases_final: List[AliasFinding] = field(default_factory=list)
    rng_violations: List[str] = field(default_factory=list)
    events: int = 0

    @property
    def ok(self) -> bool:
        return not (self.divergences or self.aliases_setup
                    or self.aliases_final or self.rng_violations)

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "cell": self.cell.name,
            "protocol": self.cell.protocol,
            "events": self.events,
            "ok": self.ok,
            "baseline": {"metrics": self.baseline.metrics,
                         "events": self.baseline.events},
            "perturbed": {
                str(p): {"metrics": d.metrics, "events": d.events}
                for p, d in sorted(self.perturbed.items())
            },
            "divergences": [d.to_jsonable() for d in self.divergences],
            "aliases_setup": [a.format() for a in self.aliases_setup],
            "aliases_final": [a.format() for a in self.aliases_final],
            "rng_violations": list(self.rng_violations),
        }


@dataclass
class SanitizerReport:
    """The full sanitizer verdict over every cell."""

    perturbations: int
    cells: List[CellReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "sanitizer": "repro.sim.sanitize",
            "perturbations": self.perturbations,
            "ok": self.ok,
            "verdict": "clean" if self.ok else "divergent",
            "cells": [cell.to_jsonable() for cell in self.cells],
        }


# ---------------------------------------------------------------------------
# Scenario wiring (lazy imports: the experiments layer is typed best-effort)
# ---------------------------------------------------------------------------


def _fault_events() -> Tuple[Any, ...]:
    """A deterministic crash/reboot + link-flap plan for the fault cell."""
    from repro.faults.plan import FaultEvent, FaultKind

    return (
        FaultEvent(time=20.0, kind=FaultKind.NODE_CRASH, node=2),
        FaultEvent(time=60.0, kind=FaultKind.NODE_REBOOT, node=2),
        FaultEvent(time=30.0, kind=FaultKind.LINK_DOWN, link=(0, 4)),
        FaultEvent(time=75.0, kind=FaultKind.LINK_UP, link=(0, 4)),
    )


def _attack_specs() -> Tuple[Any, ...]:
    """One bogus-data injector — the attack-plan cell's adversary."""
    from repro.attacks.plan import AttackSpec

    return (AttackSpec(kind="bogus-data", start=0.5, period=0.3),)


def _scenario_for(cell: SanitizeCell) -> Any:
    from repro.experiments.adversarial import AdversarialScenario

    return AdversarialScenario(
        protocol=cell.protocol,
        topology=f"star:{cell.receivers}",
        loss_rate=cell.loss_rate,
        image_size=cell.image_size,
        k=cell.k,
        n=cell.n,
        seed=cell.seed,
        max_time=cell.max_time,
        attacks=_attack_specs() if cell.attacks else (),
        faults=_fault_events() if cell.faults else (),
        label=f"sanitize/{cell.name}",
    )


def _owners_of(rig: Any) -> Dict[str, object]:
    owners: Dict[str, object] = {"base": rig.base}
    for node in rig.nodes:
        owners[f"node/{node.node_id}"] = node
    for attacker in rig.attackers:
        owners[f"attacker/{attacker.node_id}"] = attacker
    return owners


def _sanctioned_of(rig: Any, rngs: object) -> List[object]:
    return [
        rig.sim, rig.trace, rig.log, rig.flight, rig.radio, rig.tracker,
        rig.image, rig.engine, rig.scenario, rig.params, rig.pre,
        rig.radio.topology, rig.radio.loss_model, rngs,
    ]


def _run_scenario(
    cell: SanitizeCell,
    sim: Simulator,
    rngs: Any,
    alias_scan: bool = False,
) -> Tuple[Any, Any, List[AliasFinding], List[AliasFinding]]:
    """Build and run one cell; returns (result, log, setup/final aliases)."""
    from repro.experiments.adversarial import build_adversarial

    rig = build_adversarial(_scenario_for(cell), sim=sim, rngs=rngs)
    setup_aliases: List[AliasFinding] = []
    final_aliases: List[AliasFinding] = []
    if alias_scan:
        setup_aliases = find_shared_state(
            _owners_of(rig), sanctioned=_sanctioned_of(rig, rngs))
    result = rig.run()
    if alias_scan:
        final_aliases = find_shared_state(
            _owners_of(rig), sanctioned=_sanctioned_of(rig, rngs))
    return result, rig.log, setup_aliases, final_aliases


def _counter_diff(
    base: Any, pert: Any
) -> Dict[str, Tuple[Optional[int], Optional[int]]]:
    diff: Dict[str, Tuple[Optional[int], Optional[int]]] = {}
    keys = set(base.counters) | set(pert.counters)
    for key in sorted(keys):
        a = base.counters.get(key)
        b = pert.counters.get(key)
        if a != b:
            diff[key] = (a, b)
    return diff


def run_cell(
    cell: SanitizeCell,
    perturbations: int = 5,
    log: Optional[Callable[[str], None]] = None,
) -> CellReport:
    """Run one cell's baseline + perturbed sweeps and build its report."""
    say = log if log is not None else (lambda message: None)

    say(f"[{cell.name}] baseline run (production FIFO tie-break)")
    base_result, base_log, setup_aliases, final_aliases = _run_scenario(
        cell, Simulator(), TripwireRegistry(cell.seed), alias_scan=True)
    base_digests = DigestPair(metrics=metrics_digest(base_result),
                              events=event_digest(base_log))
    base_events = canonical_events(base_log)

    report = CellReport(
        cell=cell,
        baseline=base_digests,
        aliases_setup=setup_aliases,
        aliases_final=final_aliases,
        events=len(base_events),
    )

    rng_violations: Dict[str, None] = {}  # ordered de-dup
    for perturbation in range(1, perturbations + 1):
        say(f"[{cell.name}] perturbed run {perturbation}/{perturbations}")
        context = HandlerContext()
        sim = PerturbedSimulator(perturbation, context=context)
        rngs = TripwireRegistry(cell.seed, context=context)
        result, event_log, _, _ = _run_scenario(cell, sim, rngs)
        digests = DigestPair(metrics=metrics_digest(result),
                             events=event_digest(event_log))
        report.perturbed[perturbation] = digests
        for binding in rngs.violations():
            contexts = ", ".join(binding.node_contexts)
            rng_violations.setdefault(
                f"stream {binding.name!r} drawn from multiple node "
                f"contexts: {contexts}")
        if digests != base_digests:
            report.divergences.append(Divergence(
                perturbation=perturbation,
                metrics_equal=digests.metrics == base_digests.metrics,
                events_equal=digests.events == base_digests.events,
                counter_diff=_counter_diff(base_result, result),
                first_event_diff=first_divergence(
                    base_events, canonical_events(event_log)),
            ))
    report.rng_violations = list(rng_violations)
    return report


def run_sanitizer(
    perturbations: int = 5,
    cells: Optional[Tuple[SanitizeCell, ...]] = None,
    log: Optional[Callable[[str], None]] = None,
) -> SanitizerReport:
    """Run every cell and aggregate the verdict."""
    if perturbations < 1:
        raise ConfigError(f"need at least 1 perturbation, got {perturbations}")
    report = SanitizerReport(perturbations=perturbations)
    for cell in cells if cells is not None else DEFAULT_CELLS:
        report.cells.append(run_cell(cell, perturbations, log=log))
    return report
