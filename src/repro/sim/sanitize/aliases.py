"""Shared-state detection: mutable containers aliased across nodes.

Nodes in the simulation are independent devices; the only state they may
share is the sanctioned infrastructure they are wired to (the simulator,
the radio, the trace recorder, the RNG registry, the preprocessed image...).
A mutable container (dict/list/set/bytearray/deque) reachable from two
different node instances but *not* from any sanctioned shared root is a
latent cross-node write channel: one node's mutation silently changes
another node's behaviour, and whether the write lands before or after the
read depends on event order — exactly the class of bug the schedule
perturbation hunts dynamically.  This module finds such aliases
structurally, before they ever race.

The walk is conservative and allocation-free in spirit: it descends
through ``__dict__``/``__slots__`` and container elements, skips callables,
modules, classes and enums (bound methods would otherwise make every node
"share" its class), and treats everything reachable from the allowlisted
roots as sanctioned.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from types import ModuleType
from typing import Dict, Iterable, List, Mapping, Set, Tuple

__all__ = ["AliasFinding", "find_shared_state"]

#: Containers whose contents can be mutated in place.
_MUTABLE_CONTAINERS = (dict, list, set, bytearray, deque)

#: Leaf types never worth descending into.
_ATOMIC = (str, bytes, int, float, complex, bool, type(None), frozenset)

_MAX_OBJECTS = 200_000  # hard stop for pathological object graphs


@dataclass(frozen=True)
class AliasFinding:
    """One mutable container reachable from two or more owners."""

    type_name: str
    owners: Tuple[str, ...]
    paths: Tuple[str, ...]  # one access path per owner, same order

    def format(self) -> str:
        routes = "; ".join(
            f"{owner}{path}" for owner, path in zip(self.owners, self.paths)
        )
        return f"shared {self.type_name} via {routes}"


def _children(obj: object) -> "List[Tuple[str, object]]":
    """(edge-label, child) pairs for the reference walk."""
    out: List[Tuple[str, object]] = []
    if isinstance(obj, Mapping) or isinstance(obj, dict):
        for key, value in obj.items():
            out.append((f"[{key!r}]", value))
        return out
    if isinstance(obj, (list, tuple, set, frozenset, deque)):
        for index, value in enumerate(obj):
            out.append((f"[{index}]", value))
        return out
    vars_dict = getattr(obj, "__dict__", None)
    if isinstance(vars_dict, dict):
        for attr, value in vars_dict.items():
            out.append((f".{attr}", value))
    slots = getattr(type(obj), "__slots__", None)
    if slots is not None:
        slot_names = (slots,) if isinstance(slots, str) else tuple(slots)
        for attr in slot_names:
            try:
                out.append((f".{attr}", getattr(obj, attr)))
            except AttributeError:
                continue
    return out


def _skip(obj: object) -> bool:
    """Objects the walk treats as opaque leaves."""
    return (
        isinstance(obj, _ATOMIC)
        or isinstance(obj, (ModuleType, type, Enum))
        or callable(obj)
    )


def _reachable_ids(roots: Iterable[object], boundary: Set[int]) -> Set[int]:
    """ids of every object reachable from ``roots`` without crossing
    ``boundary`` (owner objects: a sanctioned root that *points at* the
    nodes, like the radio's registration table, must not launder the
    nodes' private state into the sanctioned set)."""
    seen: Set[int] = set()
    stack: List[object] = [r for r in roots if r is not None]
    while stack and len(seen) < _MAX_OBJECTS:
        obj = stack.pop()
        key = id(obj)
        if key in seen or key in boundary or _skip(obj):
            continue
        seen.add(key)
        for _, child in _children(obj):
            stack.append(child)
    return seen


def find_shared_state(
    owners: "Mapping[str, object]",
    sanctioned: Iterable[object] = (),
) -> List[AliasFinding]:
    """Mutable containers reachable from two or more ``owners``.

    ``owners`` maps a stable label (``"node/3"``) to each node/protocol
    instance.  ``sanctioned`` lists the shared-by-design roots; anything
    reachable from them (without crossing into an owner) is exempt.
    Findings are sorted by (type name, first owner) so reports are stable.
    """
    owner_ids = {id(obj) for obj in owners.values()}
    allowed = _reachable_ids(sanctioned, boundary=owner_ids)

    first_seen: Dict[int, Tuple[str, str, object]] = {}
    shared: Dict[int, AliasFinding] = {}

    for label in sorted(owners):
        root = owners[label]
        seen_here: Set[int] = set()
        stack: List[Tuple[object, str]] = [(root, "")]
        while stack and len(seen_here) < _MAX_OBJECTS:
            obj, path = stack.pop()
            key = id(obj)
            if key in seen_here or key in allowed or _skip(obj):
                continue
            if key in owner_ids and obj is not root:
                continue  # a reference to a sibling owner, not shared state
            seen_here.add(key)
            if isinstance(obj, _MUTABLE_CONTAINERS) and obj is not root:
                prior = first_seen.get(key)
                if prior is None:
                    first_seen[key] = (label, path, obj)
                elif prior[0] != label:
                    existing = shared.get(key)
                    if existing is None:
                        shared[key] = AliasFinding(
                            type_name=type(obj).__name__,
                            owners=(prior[0], label),
                            paths=(prior[1], path),
                        )
                    elif label not in existing.owners:
                        shared[key] = AliasFinding(
                            type_name=existing.type_name,
                            owners=existing.owners + (label,),
                            paths=existing.paths + (path,),
                        )
            for edge, child in _children(obj):
                stack.append((child, path + edge))
    return sorted(shared.values(), key=lambda f: (f.type_name, f.owners))
