"""Lightweight counters and trace records for simulations.

Protocols report what happened through a :class:`TraceRecorder`; experiment
code reads the counters afterwards.  Recording full trace entries is optional
(and off by default) because large runs only need the counters.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["TraceRecord", "TraceRecorder"]


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped trace entry."""

    time: float
    kind: str
    node: Optional[int]
    detail: Tuple[Tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.detail:
            if k == key:
                return v
        return default


class TraceRecorder:
    """Accumulates named counters and (optionally) full trace records."""

    def __init__(self, keep_records: bool = False) -> None:
        self.counters: Counter = Counter()
        self.keep_records = keep_records
        self.records: List[TraceRecord] = []
        self._marks: Dict[str, float] = {}

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] += amount

    def record(self, time: float, kind: str, node: Optional[int] = None, **detail: Any) -> None:
        """Count ``kind`` and, when enabled, store a full trace record."""
        self.counters[kind] += 1
        if self.keep_records:
            self.records.append(
                TraceRecord(time, kind, node, tuple(sorted(detail.items())))
            )

    def mark(self, name: str, time: float) -> None:
        """Remember a named timestamp (first write wins)."""
        if name not in self._marks:
            self._marks[name] = time

    def get_mark(self, name: str) -> Optional[float]:
        return self._marks.get(name)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All stored records of ``kind`` (requires ``keep_records=True``)."""
        return [r for r in self.records if r.kind == kind]

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of all counters."""
        return dict(self.counters)
