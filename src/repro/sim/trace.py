"""Lightweight counters and trace records for simulations.

Protocols report what happened through a :class:`TraceRecorder`; experiment
code reads the counters afterwards.  Recording full trace entries is optional
(and off by default) because large runs only need the counters.

The recorder is a thin façade over a typed :class:`~repro.obs.registry.
MetricsRegistry`: :attr:`TraceRecorder.counters` *is* the registry's counter
store, so the hot path stays a single dict update while every counter name
can be resolved to its declared spec (kind, unit, help) for reports.  Three
optional extensions hang off it:

* ``max_records`` bounds the in-memory record list as a ring buffer —
  evictions are counted under ``trace_dropped`` so silent loss is visible.
* ``sink`` mirrors records into a structured event log
  (:class:`repro.obs.events.EventLog`-shaped) and enables
  :meth:`span_begin`/:meth:`span_end` for packet/page lifecycle spans; with
  no sink both span calls are near-free no-ops.
* ``flight`` attaches a :class:`FlightSink`-shaped flight recorder
  (per-link accounting, tracker snapshots); instrumented call sites in the
  radio and protocol layers check ``trace.flight is not None`` themselves.
* ``causal`` attaches a :class:`CausalSink`-shaped provenance recorder
  (per-frame causal parents, cross-node tx->rx edges, decode events) under
  the same ``trace.causal is not None`` discipline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Protocol, Tuple, Union

from repro.obs.registry import MetricsRegistry

__all__ = ["TraceRecord", "TraceRecorder", "TraceSink", "FlightSink",
           "CausalSink"]


class FlightSink(Protocol):
    """Structural interface of a flight recorder attachment.

    :class:`repro.obs.flight.FlightRecorder` satisfies this; hot-path call
    sites (radio delivery, data authentication, TX pump) guard each hook
    behind ``trace.flight is not None`` so a run without flight recording
    pays one attribute test per site.  Implementations must write only to
    their own sink — never to the recorder's counters — to preserve the
    byte-identical-run contract.
    """

    def observe_radio(self, radio: Any) -> None: ...

    def on_tx(self, ts: float, sender: int, kind: str, size: int,
              unit: Optional[int] = None) -> None: ...

    def on_rx(self, ts: float, src: int, dst: int, kind: str,
              unit: Optional[int] = None) -> None: ...

    def on_loss(self, ts: float, src: int, dst: int, cause: str,
                kind: str) -> None: ...

    def on_meta(self, ts: float, node: int, protocol: str, is_base: bool,
                total_units: Optional[int], secured: bool) -> None: ...

    def on_auth_ok(self, ts: float, node: int, src: int, version: int,
                   unit: int, index: int) -> None: ...

    def on_buffered(self, ts: float, node: int, src: int, version: int,
                    unit: int, index: int) -> None: ...

    def on_auth_drop(self, ts: float, node: int, src: int, version: int,
                     unit: int, index: int) -> None: ...

    def on_duplicate(self, ts: float, node: int, src: int, version: int,
                     unit: int, index: int) -> None: ...

    def on_tracker(self, ts: float, node: int, unit: int, trigger: str,
                   state: Optional[Dict[str, Any]],
                   requester: Optional[int] = None,
                   index: Optional[int] = None) -> None: ...

    def finalize(self, ts: float) -> None: ...


class CausalSink(Protocol):
    """Structural interface of a causal-provenance recorder attachment.

    :class:`repro.obs.flight.CausalRecorder` satisfies this.  Like the
    flight recorder, every hot-path call site guards its hook behind a
    single ``trace.causal is not None`` check and implementations write
    only to their own sink — never to the recorder's counters — so the
    event stream, counter snapshots, and RNG draws stay byte-identical
    with and without ``--causal-trace``.

    ``frame`` parameters are :class:`repro.net.packet.Frame` instances,
    typed ``Any`` here so the strict ``repro.sim`` surface does not import
    ``repro.net`` (which imports this module).
    """

    def on_enqueue(self, ts: float, frame: Any) -> None: ...

    def on_air(self, ts: float, frame: Any, unit: Optional[int]) -> None: ...

    def on_mac_drop(self, frame: Any) -> None: ...

    def on_rx(self, ts: float, src: int, dst: int, frame: Any) -> None: ...

    def on_loss(self, ts: float, src: int, dst: int, cause: str,
                frame: Any) -> None: ...

    def enter_rx(self, node: int, frame_id: int) -> None: ...

    def exit_rx(self, node: int) -> None: ...

    def current_frame(self, node: int) -> Optional[int]: ...

    def on_meta(self, ts: float, node: int, protocol: str, is_base: bool,
                total_units: Optional[int], secured: bool,
                profile: str) -> None: ...

    def on_decode(self, ts: float, node: int, unit: int,
                  parent: Optional[int], need: Optional[int],
                  of: Optional[int]) -> None: ...


class TraceSink(Protocol):
    """Structural interface a structured-event sink must provide.

    :class:`repro.obs.events.EventLog` satisfies this; the recorder only
    depends on the shape so the strict-typed ``repro.sim`` surface does not
    import the (heavier) events module.
    """

    def instant(self, ts: float, kind: str, node: Optional[int] = None,
                detail: Optional[Dict[str, Any]] = None) -> None: ...

    def begin(self, ts: float, kind: str, node: Optional[int] = None,
              key: Any = None, detail: Optional[Dict[str, Any]] = None) -> None: ...

    def end(self, ts: float, kind: str, node: Optional[int] = None,
            key: Any = None, detail: Optional[Dict[str, Any]] = None) -> None: ...


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped trace entry."""

    time: float
    kind: str
    node: Optional[int]
    detail: Tuple[Tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.detail:
            if k == key:
                return v
        return default


class TraceRecorder:
    """Accumulates named counters and (optionally) full trace records."""

    def __init__(
        self,
        keep_records: bool = False,
        max_records: Optional[int] = None,
        sink: Optional[TraceSink] = None,
        registry: Optional[MetricsRegistry] = None,
        flight: Optional[FlightSink] = None,
        causal: Optional[CausalSink] = None,
    ) -> None:
        if max_records is not None and max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self.registry: MetricsRegistry = (
            registry if registry is not None else MetricsRegistry()
        )
        # Alias, not copy: incrementing through either view hits the same
        # Counter object, keeping the hot path a single dict update.
        self.counters = self.registry.counters
        self.keep_records = keep_records or max_records is not None
        self.max_records = max_records
        # Unbounded stays a plain list (the established API: tests and
        # callers compare against []); bounded uses a deque ring buffer.
        self.records: Union[List[TraceRecord], Deque[TraceRecord]] = (
            [] if max_records is None else deque(maxlen=max_records)
        )
        self.sink = sink
        # Optional flight recorder: instrumented call sites check for None
        # themselves so the disabled path costs one attribute read.
        self.flight = flight
        # Optional causal tracer (same discipline as flight).
        self.causal = causal
        self._marks: Dict[str, float] = {}

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] += amount

    def record(self, time: float, kind: str, node: Optional[int] = None, **detail: Any) -> None:
        """Count ``kind`` and, when enabled, store a full trace record."""
        self.counters[kind] += 1
        if self.keep_records:
            if (
                self.max_records is not None
                and len(self.records) >= self.max_records
            ):
                # deque(maxlen) evicts the oldest on append; make the loss
                # visible instead of silent.
                self.counters["trace_dropped"] += 1
            self.records.append(
                TraceRecord(time, kind, node, tuple(sorted(detail.items())))
            )
        if self.sink is not None:
            self.sink.instant(time, kind, node, dict(detail) if detail else None)

    # -- lifecycle spans (structured sink only) --------------------------------

    def span_begin(self, time: float, kind: str, node: Optional[int] = None,
                   key: Any = None, **detail: Any) -> None:
        """Open a lifecycle span in the structured sink (no-op without one)."""
        if self.sink is not None:
            self.sink.begin(time, kind, node, key, dict(detail) if detail else None)

    def span_end(self, time: float, kind: str, node: Optional[int] = None,
                 key: Any = None, **detail: Any) -> None:
        """Close a lifecycle span; counts one completion of ``kind``."""
        if self.sink is None:
            return
        self.counters[kind] += 1
        self.sink.end(time, kind, node, key, dict(detail) if detail else None)

    def mark(self, name: str, time: float) -> None:
        """Remember a named timestamp (first write wins)."""
        if name not in self._marks:
            self._marks[name] = time

    def get_mark(self, name: str) -> Optional[float]:
        return self._marks.get(name)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All stored records of ``kind`` (requires ``keep_records=True``)."""
        return [r for r in self.records if r.kind == kind]

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of all counters."""
        return dict(self.counters)
