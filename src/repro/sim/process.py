"""Timer helpers layered on the event engine.

:class:`Timer` is a restartable one-shot timer — the workhorse for protocol
timeouts (request retries, round timers).  :class:`PeriodicProcess` repeats a
callback at a fixed or callable-supplied interval until stopped.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

from repro.sim.engine import Event, Simulator

__all__ = ["Timer", "PeriodicProcess"]


class Timer:
    """A one-shot timer that can be (re)started and cancelled.

    Restarting an armed timer cancels the outstanding expiry first, so at most
    one expiry is ever pending.
    """

    def __init__(self, sim: Simulator, fn: Callable[..., Any]) -> None:
        self._sim = sim
        self._fn = fn
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        """True while an expiry is pending."""
        return self._event is not None and not self._event.cancelled

    @property
    def expires_at(self) -> Optional[float]:
        """Absolute expiry time, or None when idle."""
        if self.armed:
            return self._event.time
        return None

    def start(self, delay: float, *args: Any) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire, args)

    def cancel(self) -> None:
        """Disarm the timer; no-op when idle."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self, args: tuple) -> None:
        self._event = None
        self._fn(*args)


class PeriodicProcess:
    """Invoke a callback every ``interval`` seconds until :meth:`stop`.

    ``interval`` may be a float or a zero-argument callable returning the next
    gap, which supports jittered schedules (e.g. Trickle-like behaviour).
    """

    def __init__(
        self,
        sim: Simulator,
        fn: Callable[[], Any],
        interval: Union[float, Callable[[], float]],
        start_delay: Optional[float] = None,
    ) -> None:
        self._sim = sim
        self._fn = fn
        self._interval = interval
        self._event: Optional[Event] = None
        self._stopped = False
        first = start_delay if start_delay is not None else self._next_interval()
        self._event = sim.schedule(first, self._tick)

    def _next_interval(self) -> float:
        if callable(self._interval):
            return self._interval()
        return self._interval

    def _tick(self) -> None:
        if self._stopped:
            return
        self._fn()
        if not self._stopped:
            self._event = self._sim.schedule(self._next_interval(), self._tick)

    def stop(self) -> None:
        """Stop the process; the pending tick (if any) is cancelled."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None
