"""Discrete-event simulation substrate.

A small, deterministic event-driven simulator: :class:`Simulator` maintains a
time-ordered event queue, :class:`Timer` provides restartable one-shot timers,
:class:`RngRegistry` hands out independent named random streams derived from a
single root seed so every experiment is reproducible, and
:class:`TraceRecorder` collects counters and timestamped trace records.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.process import PeriodicProcess, Timer
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

__all__ = [
    "Event",
    "Simulator",
    "Timer",
    "PeriodicProcess",
    "RngRegistry",
    "TraceRecorder",
]
