"""Deterministic random-stream management.

Every stochastic component in a simulation draws from its own named stream so
that (a) runs are exactly reproducible given the root seed, and (b) changing
how one component consumes randomness does not perturb the others.  Streams
are derived by hashing ``(root_seed, name)`` into a 64-bit child seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np

__all__ = ["RngRegistry", "derive_seed", "derived_stream"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from a root seed and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derived_stream(*parts: object) -> random.Random:
    """A fresh stream seeded purely from ``parts`` (the sanctioned factory).

    This is the one place library code may turn seed material into a
    :class:`random.Random`: components that cannot take an injected stream
    (e.g. per-symbol derivations that every node must reproduce identically)
    call ``derived_stream("tornado", seed, generation, index)`` and get the
    same stream on every node, every run, every platform.  replint's REP001
    forbids constructing streams anywhere else in ``src/``.
    """
    material = ":".join(str(part) for part in parts)
    return random.Random(derive_seed(0, material))


class RngRegistry:
    """Factory for independent, reproducible random streams.

    ``streams.get("loss/node-3")`` always returns the same
    :class:`random.Random` instance for a given registry, seeded purely from
    ``(root_seed, "loss/node-3")``.
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}
        self._np_streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> random.Random:
        """Return the stdlib stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = stream
        return stream

    def get_numpy(self, name: str) -> np.random.Generator:
        """Return the numpy stream for ``name``, creating it on first use."""
        stream = self._np_streams.get(name)
        if stream is None:
            stream = np.random.default_rng(derive_seed(self.root_seed, name))
            self._np_streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RngRegistry":
        """Create a child registry rooted at a derived seed (for sub-systems)."""
        return RngRegistry(derive_seed(self.root_seed, f"spawn:{name}"))
