"""Core discrete-event engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Events are
totally ordered by ``(time, sequence)`` so that simultaneous events execute in
scheduling order, which keeps runs deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import weakref
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple

from repro.errors import SimulationError, SimulationRunawayError

__all__ = [
    "Event",
    "SimProfiler",
    "Simulator",
    "set_default_watchdog",
    "get_default_watchdog",
    "current_simulator",
]

# Process-wide watchdog defaults picked up by every Simulator constructed
# without explicit limits.  Campaign executor workers set these once at
# bootstrap (before any simulation runs) so a livelocked protocol raises a
# structured SimulationRunawayError instead of hanging the worker forever;
# interactive use leaves them off.
_DEFAULT_WATCHDOG: Tuple[Optional[int], Optional[float]] = (None, None)


def set_default_watchdog(
    max_events: Optional[int] = None, max_sim_time: Optional[float] = None
) -> None:
    """Set process-wide watchdog limits inherited by new Simulators."""
    global _DEFAULT_WATCHDOG
    _DEFAULT_WATCHDOG = (max_events, max_sim_time)


def get_default_watchdog() -> Tuple[Optional[int], Optional[float]]:
    """The ``(max_events, max_sim_time)`` defaults new Simulators inherit."""
    return _DEFAULT_WATCHDOG


# Weak reference to the most recently *running* Simulator in this process.
# Telemetry heartbeat threads (repro.obs.telemetry) sample processed_events /
# now through this without any runner plumbing; a weakref keeps the engine
# from pinning finished simulations alive.
_CURRENT_SIM: "Optional[weakref.ref[Simulator]]" = None


def current_simulator() -> "Optional[Simulator]":
    """The simulator currently (or most recently) inside :meth:`Simulator.run`.

    Returns ``None`` when no simulator has run in this process or the last
    one has been garbage-collected.  Reads are lock-free: ``now`` and
    ``processed_events`` are single attribute loads, safe to sample from a
    heartbeat thread even while the run loop is executing.
    """
    ref = _CURRENT_SIM
    return ref() if ref is not None else None


class SimProfiler(Protocol):
    """What the engine needs from a profiler (see ``repro.obs.profile``).

    Defined structurally so the engine never imports the observability
    package: any object with a monotonic ``clock`` and a ``record`` hook
    works.  With no profiler installed the run loop pays exactly one
    ``is None`` check per event — the zero-overhead-when-disabled contract.
    """

    def clock(self) -> float: ...

    def record(self, fn: Callable[..., Any], args: Tuple[Any, ...],
               elapsed: float, heap_len: int) -> None: ...


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and may be cancelled
    with :meth:`cancel`; cancelled events stay in the heap but are skipped
    when popped (lazy deletion).  The owning simulator keeps live/cancelled
    counters so cancellation garbage can be compacted away.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        sim: "Optional[Simulator]" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent this event from firing; safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        # Cancelling an already-executed event (timers commonly hold stale
        # references) must not perturb the simulator's live-event counter;
        # execution severs the back-reference.
        if self._sim is not None:
            self._sim._note_cancelled()
            self._sim = None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state}, fn={self.fn!r})"


class Simulator:
    """Deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, handler, arg1, arg2)
        sim.run(until=100.0)

    The simulator never advances past ``until`` and executes events in strict
    ``(time, insertion order)`` order.

    ``max_events`` / ``max_sim_time`` are watchdog guards: exceeding either
    raises :class:`SimulationRunawayError` (with heap statistics attached)
    rather than letting a livelocked protocol spin forever.  They default to
    the process-wide values from :func:`set_default_watchdog`, which the
    campaign executor turns on inside its workers.  Unlike the ``max_events``
    *argument* of :meth:`run` — a per-call budget that returns control — the
    watchdog is a hard failure.
    """

    def __init__(
        self,
        max_events: Optional[int] = None,
        max_sim_time: Optional[float] = None,
    ) -> None:
        default_events, default_time = _DEFAULT_WATCHDOG
        self._queue: List[Event] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._running: bool = False
        self._processed: int = 0
        self._live: int = 0        # queued, not-yet-cancelled events
        self._cancelled: int = 0   # lazy-deletion garbage still in the heap
        self._compactions: int = 0
        self._profiler: Optional[SimProfiler] = None
        self._watchdog_events = max_events if max_events is not None else default_events
        self._watchdog_time = max_sim_time if max_sim_time is not None else default_time

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of queued, not-yet-cancelled events (O(1))."""
        return self._live

    def set_profiler(self, profiler: Optional[SimProfiler]) -> None:
        """Install (or with None, remove) a per-event profiling hook.

        The profiler's ``clock`` brackets each handler call and ``record``
        receives the handler, its scheduled arguments, its elapsed wall
        time, and the heap length.  The argument tuple lets profilers
        attribute cost per event *kind* (e.g. which packet type a radio
        delivery carried) without the engine knowing any domain types.
        Wall time is measurement *about* the simulation, never an input to
        it — simulated time stays exclusively on :attr:`now`.
        """
        self._profiler = profiler

    def heap_stats(self) -> Dict[str, int]:
        """Occupancy and compaction statistics for the event heap."""
        return {
            "pending": self._live,
            "heap_len": len(self._queue),
            "cancelled_garbage": self._cancelled,
            "compactions": self._compactions,
        }

    def _note_cancelled(self) -> None:
        self._live -= 1
        self._cancelled += 1
        # Long runs cancel far more timers than ever fire; once garbage
        # dominates the heap, rebuild it so memory stays proportional to the
        # live event count.
        if self._cancelled * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0
        self._compactions += 1

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        event = Event(time, self._seq, fn, args, sim=self)
        self._seq += 1
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the number of events executed by this call.  When ``until`` is
        given, time is advanced to exactly ``until`` even if the queue drains
        earlier, so back-to-back ``run`` calls observe monotonic time.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        global _CURRENT_SIM
        _CURRENT_SIM = weakref.ref(self)
        executed = 0
        profiler = self._profiler
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    self._cancelled -= 1
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                if (
                    self._watchdog_time is not None
                    and event.time > self._watchdog_time
                ):
                    raise SimulationRunawayError(
                        f"simulation exceeded max_sim_time="
                        f"{self._watchdog_time} (next event at t={event.time:.3f})",
                        events=self._processed,
                        sim_time=self._now,
                        heap_stats=self.heap_stats(),
                    )
                heapq.heappop(self._queue)
                self._live -= 1
                event._sim = None  # late cancel() must not double-count
                self._now = event.time
                if profiler is None:
                    event.fn(*event.args)
                else:
                    start = profiler.clock()
                    event.fn(*event.args)
                    profiler.record(
                        event.fn, event.args,
                        profiler.clock() - start, len(self._queue),
                    )
                executed += 1
                self._processed += 1
                if (
                    self._watchdog_events is not None
                    and self._processed >= self._watchdog_events
                ):
                    raise SimulationRunawayError(
                        f"simulation exceeded max_events="
                        f"{self._watchdog_events} at t={self._now:.3f}",
                        events=self._processed,
                        sim_time=self._now,
                        heap_stats=self.heap_stats(),
                    )
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return executed

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain; guard against runaway loops."""
        executed = self.run(max_events=max_events)
        if self._live > 0 and executed >= max_events:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events"
            )
        return executed
