"""Human-readable views over manifests and traces, plus the perf-smoke run.

Everything here *returns strings* — printing is the job of the CLI shim in
``repro.obs.__main__`` — so the same renderings are usable from tests and
notebooks without capturing stdout.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.catalog import spec_for
from repro.obs.manifest import RunManifest, diff_manifests

__all__ = [
    "manifest_summary",
    "diff_report",
    "trace_summary",
    "run_perf_smoke",
    "bench_compare",
]


def _fmt_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.4g}"


def manifest_summary(manifest: RunManifest, top: int = 25) -> str:
    """One manifest as header lines plus an annotated counter table."""
    from repro.experiments.reporting import format_table

    lines: List[str] = [
        f"tool:        {manifest.tool}",
        f"created:     {manifest.created_utc}",
        f"git rev:     {manifest.git_rev or 'unknown'}",
        f"seed:        {manifest.seed}",
    ]
    if manifest.config:
        cfg = ", ".join(f"{k}={v}" for k, v in sorted(manifest.config.items()))
        lines.append(f"config:      {cfg}")
    if manifest.metrics:
        metrics = "  ".join(
            f"{name}={_fmt_value(value)}"
            for name, value in sorted(manifest.metrics.items())
        )
        lines.append(f"metrics:     {metrics}")
    if manifest.timings:
        timings = "  ".join(
            f"{name}={_fmt_value(value)}"
            for name, value in sorted(manifest.timings.items())
        )
        lines.append(f"timings:     {timings}")
    if manifest.trace_file:
        lines.append(f"trace:       {manifest.trace_file}")
    if manifest.unregistered_metrics:
        lines.append(
            "unregistered counters: " + ", ".join(manifest.unregistered_metrics)
        )
    dropped = int(manifest.counters.get("trace_dropped", 0)) if manifest.counters else 0
    if dropped:
        lines.append(
            f"WARNING: {dropped} trace records dropped by the ring buffer "
            "(trace is truncated)"
        )
    if manifest.counters:
        ranked = sorted(manifest.counters.items(), key=lambda kv: (-kv[1], kv[0]))
        rows: List[List[object]] = []
        for name, value in ranked[:top]:
            spec = spec_for(name)
            rows.append([
                name, value,
                spec.unit if spec else "?",
                spec.help if spec else "(not in catalogue)",
            ])
        title = f"top {min(top, len(ranked))} of {len(ranked)} counters"
        lines.append("")
        lines.append(format_table(["counter", "value", "unit", "help"], rows,
                                  title=title))
    if manifest.profile:
        handlers = manifest.profile.get("handlers", [])
        rows = [
            [h.get("name", "?"), h.get("calls", 0), h.get("total_s", 0.0),
             h.get("mean_us", 0.0), h.get("max_us", 0.0)]
            for h in handlers[:10]
        ]
        if rows:
            lines.append("")
            lines.append(format_table(
                ["handler", "calls", "total_s", "mean_us", "max_us"], rows,
                title="event-loop profile (top handlers)",
            ))
    return "\n".join(lines)


def diff_report(a: RunManifest, b: RunManifest,
                a_name: str = "a", b_name: str = "b") -> str:
    """Counter/metric/timing deltas between two manifests as a table."""
    from repro.experiments.reporting import format_table

    rows = diff_manifests(a, b)
    header = (
        f"{a_name}: {a.tool} seed={a.seed} rev={a.git_rev or '?'} "
        f"({a.created_utc})\n"
        f"{b_name}: {b.tool} seed={b.seed} rev={b.git_rev or '?'} "
        f"({b.created_utc})"
    )
    if not rows:
        return header + "\nno differences"
    table_rows: List[List[object]] = [
        [name, _fmt_value(va), _fmt_value(vb), f"{delta:+g}",
         "n/a" if pct is None else f"{pct:+.1f}%"]
        for name, va, vb, delta, pct in rows
    ]
    return header + "\n\n" + format_table(
        ["quantity", a_name, b_name, "delta", "pct"], table_rows,
        title=f"{len(rows)} differing quantities",
    )


def trace_summary(path: Union[str, Path]) -> str:
    """Quick shape of a JSONL trace: per-kind counts and span durations."""
    from repro.experiments.reporting import format_table
    from repro.obs.events import load_jsonl

    header, events = load_jsonl(path)
    kinds: Dict[str, int] = {}
    span_total: Dict[str, float] = {}
    span_count: Dict[str, int] = {}
    for event in events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
        if event.dur is not None:
            span_total[event.kind] = span_total.get(event.kind, 0.0) + event.dur
            span_count[event.kind] = span_count.get(event.kind, 0) + 1
    rows: List[List[object]] = []
    for kind, count in sorted(kinds.items(), key=lambda kv: (-kv[1], kv[0])):
        n_spans = span_count.get(kind, 0)
        mean = span_total[kind] / n_spans if n_spans else 0.0
        rows.append([kind, count, n_spans, round(mean, 3)])
    title = (
        f"{header.get('events', len(events))} events "
        f"({header.get('dropped', 0)} dropped, "
        f"{header.get('open_spans_flushed', 0)} open spans flushed), "
        f"schema v{header.get('schema_version')}"
    )
    return format_table(["kind", "events", "spans", "mean_span_s"], rows,
                        title=title)


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if not ordered:
        return 0.0
    return (
        ordered[mid] if len(ordered) % 2
        else (ordered[mid - 1] + ordered[mid]) / 2.0
    )


def _median_heap(heaps: List[Dict[str, int]]) -> Dict[str, int]:
    keys = sorted({k for heap in heaps for k in heap})
    return {
        k: int(round(_median([float(heap.get(k, 0)) for heap in heaps])))
        for k in keys
    }


def _median_handlers(
    profiles: List[Dict[str, Any]], top: int = 5
) -> List[Dict[str, Any]]:
    """Per-handler stats aggregated across repeats: the median of each field.

    A single repeat's handler table is hostage to scheduler noise (one
    preemption inflates that repeat's max); the median over repeats is the
    number a regression gate can trust.
    """
    by_name: Dict[str, List[Dict[str, Any]]] = {}
    for profile in profiles:
        for handler in profile.get("handlers", []):
            by_name.setdefault(str(handler["name"]), []).append(handler)
    merged: List[Dict[str, Any]] = []
    for name, stats in by_name.items():
        calls = int(round(_median([float(s["calls"]) for s in stats])))
        if calls < 1:
            # All of this handler's calls were warmup (first-call lazy init):
            # there is no steady-state stat for a gate to compare against.
            continue
        merged.append({
            "name": name,
            "calls": calls,
            "total_s": round(_median([float(s["total_s"]) for s in stats]), 6),
            "mean_us": round(_median([float(s["mean_us"]) for s in stats]), 3),
            "max_us": round(_median([float(s["max_us"]) for s in stats]), 3),
        })
    merged.sort(key=lambda h: (-float(h["total_s"]), str(h["name"])))
    return merged[:top]


def run_perf_smoke(
    bench_out: Union[str, Path],
    manifest_out: Optional[Union[str, Path]] = None,
    trace_out: Optional[Union[str, Path]] = None,
    chrome_out: Optional[Union[str, Path]] = None,
    seed: int = 1,
    receivers: int = 8,
    image_kib: int = 4,
    repeats: int = 1,
    warmup: int = 0,
    topology: Optional[str] = None,
    history_out: Optional[Union[str, Path]] = None,
) -> Tuple[Dict[str, Any], str]:
    """Run a small profiled dissemination and write a ``BENCH_*.json``.

    This is the CI perf-smoke entry point: a deterministic dissemination with
    the event-loop profiler and structured tracing enabled, summarised into a
    benchmark JSON (events/sec, handler attribution) plus optional manifest
    and trace artifacts.  Returns ``(bench_dict, profile_report_text)``.

    ``repeats > 1`` runs the identical (deterministic) scenario several times
    and reports the *median* events/sec, heap stats, and per-handler stats
    across repeats, damping CI-runner noise; the trace and manifest artifacts
    come from the last repeat.  ``warmup`` runs that many additional repeats
    *first* and discards them entirely, so one-time lazy-init cost (imports,
    GF-table construction) never lands in a measured repeat's wall samples.
    Independently, each handler's *first call within a repeat* is excluded
    from the per-handler stats (the profiler's warmup bucket): per-run lazy
    init — first-page erasure encode, signature checks warming caches —
    recurs every repeat, and a 39 ms first-call outlier against a 280 µs
    steady-state mean says nothing a regression gate should act on.

    ``topology`` switches the workload from the default one-hop star to a
    multi-hop grid (e.g. ``grid:15x15:3``) and names the bench
    ``sim_grid_perf_smoke`` — the second committed baseline that gates
    multi-hop performance.  ``history_out`` appends the bench record to the
    append-only history store (see ``repro.obs.perf``).
    """
    from repro.experiments.reporting import stopwatch
    from repro.experiments.scenarios import (
        MultiHopScenario,
        OneHopScenario,
        run_multihop,
        run_one_hop,
    )
    from repro.obs.events import EventLog
    from repro.obs.profile import LoopProfiler
    from repro.sim.engine import Simulator
    from repro.sim.trace import TraceRecorder

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    config: Dict[str, Any]
    if topology is None:
        one_hop = OneHopScenario(
            protocol="lr-seluge", loss_rate=0.1, receivers=receivers,
            image_size=image_kib * 1024, k=8, n=12, seed=seed,
        )
        config = {
            "protocol": one_hop.protocol,
            "receivers": one_hop.receivers,
            "loss_rate": one_hop.loss_rate,
            "image_kib": image_kib,
            "k": one_hop.k,
            "n": one_hop.n,
        }
        bench_name = "sim_core_perf_smoke"

        def run_once(sim: Simulator, trace: TraceRecorder) -> Any:
            return run_one_hop(one_hop, sim=sim, trace=trace)
    else:
        multi_hop = MultiHopScenario(
            protocol="lr-seluge", topology=topology,
            image_size=image_kib * 1024, k=8, n=12, seed=seed,
        )
        config = {
            "protocol": multi_hop.protocol,
            "topology": topology,
            "image_kib": image_kib,
            "k": multi_hop.k,
            "n": multi_hop.n,
        }
        bench_name = "sim_grid_perf_smoke"

        def run_once(sim: Simulator, trace: TraceRecorder) -> Any:
            return run_multihop(multi_hop, sim=sim, trace=trace)

    for _ in range(warmup):
        # Discarded: warms imports and lazily built tables so the first
        # measured repeat pays steady-state cost only.
        warm_sim = Simulator()
        run_once(warm_sim, TraceRecorder(sink=EventLog()))

    wall_samples: List[float] = []
    heap_samples: List[Dict[str, int]] = []
    profile_samples: List[Dict[str, Any]] = []
    for _ in range(repeats):
        sim = Simulator()
        profiler = LoopProfiler(warmup_calls=1)
        sim.set_profiler(profiler)
        log = EventLog()
        trace = TraceRecorder(sink=log)
        with stopwatch() as elapsed:
            result = run_once(sim, trace)
        wall_samples.append(elapsed())
        heap_samples.append(sim.heap_stats())
        profile_samples.append(profiler.summary())
    wall_s = wall_samples[-1]
    median_wall = _median(wall_samples)
    log.flush_open_spans(sim.now)

    trace_file: Optional[str] = None
    if trace_out is not None:
        trace_file = str(log.write_jsonl(trace_out))
    if chrome_out is not None:
        log.write_chrome_trace(chrome_out)

    heap = _median_heap(heap_samples)
    profile = profiler.summary(heap_stats=sim.heap_stats())
    manifest = RunManifest.from_run(
        "repro.obs.perf-smoke", result, config=config, wall_s=wall_s,
        sim=sim, profile=profile, trace_file=trace_file,
        unregistered=trace.registry.unregistered_names(),
    )
    if manifest_out is not None:
        manifest.write(manifest_out)

    bench: Dict[str, Any] = {
        "name": bench_name,
        "git_rev": manifest.git_rev,
        "created_utc": manifest.created_utc,
        "config": config,
        "completed": result.completed,
        "events": sim.processed_events,
        "sim_time_s": sim.now,
        "wall_s": round(wall_s, 6),
        "events_per_s": round(sim.processed_events / median_wall, 1)
        if median_wall else 0.0,
        "repeats": repeats,
        "warmup": warmup,
        "wall_samples_s": [round(w, 6) for w in wall_samples],
        "heap": heap,
        "handler_wall_s": round(
            _median([p["handler_wall_s"] for p in profile_samples]), 6
        ),
        "top_handlers": _median_handlers(profile_samples),
        "trace_events": len(log),
    }
    from repro.persist import PersistError, atomic_write_text

    if history_out is not None:
        from repro.obs.perf import append_history

        try:
            append_history(history_out, bench)
        except (OSError, PersistError) as exc:
            # The history store is trajectory data, not the measurement: a
            # full disk degrades the append (noted in the bench artifact so
            # CI surfaces it) without failing the perf-smoke run itself.
            bench["history_degraded"] = f"{type(exc).__name__}: {exc}"
    atomic_write_text(Path(bench_out), json.dumps(bench, indent=2) + "\n")
    return bench, profiler.report()


def bench_compare(
    current: Union[str, Path, Dict[str, Any]],
    baseline: Union[str, Path, Dict[str, Any]],
    tolerance: float = 0.25,
    handler_warn: float = 0.25,
    handler_fail: float = 0.50,
) -> Tuple[bool, str]:
    """Gate a perf-smoke run against a committed baseline.

    Compares the (median) ``events_per_s`` throughput; returns
    ``(ok, report_text)`` where ``ok`` is False when the current run is more
    than ``tolerance`` (default 25%) *slower* than the baseline.  Speedups
    never fail — the committed baseline is a floor, not a pin.

    When both benches ran the identical workload (matching event counts), the
    per-handler mean wall times are diffed too: a handler more than
    ``handler_warn`` (25%) slower is reported as a warning, more than
    ``handler_fail`` (50%) slower fails the gate — so a regression names its
    handler instead of hiding inside the aggregate.
    """
    from repro.obs.perf import handler_mean_deltas

    def _load(source: Union[str, Path, Dict[str, Any]]) -> Dict[str, Any]:
        if isinstance(source, dict):
            return source
        return json.loads(Path(source).read_text(encoding="utf-8"))

    cur = _load(current)
    base = _load(baseline)
    cur_eps = float(cur.get("events_per_s", 0.0))
    base_eps = float(base.get("events_per_s", 0.0))
    lines = [
        f"baseline: {base_eps:,.0f} events/s "
        f"(rev {base.get('git_rev') or '?'}, {base.get('created_utc', '?')})",
        f"current:  {cur_eps:,.0f} events/s "
        f"(rev {cur.get('git_rev') or '?'}, {cur.get('created_utc', '?')})",
    ]
    same_workload = cur.get("events") == base.get("events")
    if not same_workload:
        lines.append(
            f"note: event counts differ ({base.get('events')} -> "
            f"{cur.get('events')}); the workload changed, throughput is "
            "only loosely comparable"
        )
    if base_eps <= 0:
        lines.append("baseline has no throughput sample; skipping gate")
        return True, "\n".join(lines)
    ratio = cur_eps / base_eps
    lines.append(f"ratio:    {ratio:.3f} (gate: >= {1.0 - tolerance:.2f})")
    ok = ratio >= (1.0 - tolerance)
    if not ok:
        lines.append(f"aggregate regression exceeds {tolerance:.0%} of baseline")

    if same_workload:
        deltas = handler_mean_deltas(
            list(cur.get("top_handlers", [])),
            list(base.get("top_handlers", [])),
        )
        for name, base_us, cur_us, pct in deltas:
            if pct > handler_fail:
                ok = False
                lines.append(
                    f"FAIL handler {name}: mean {base_us:.1f} -> "
                    f"{cur_us:.1f} us ({pct:+.0%}, limit +{handler_fail:.0%})"
                )
            elif pct > handler_warn:
                lines.append(
                    f"WARN handler {name}: mean {base_us:.1f} -> "
                    f"{cur_us:.1f} us ({pct:+.0%}, warn at +{handler_warn:.0%})"
                )
    else:
        lines.append("per-handler gate skipped (workload changed)")
    lines.append("PASS" if ok else "FAIL")
    return ok, "\n".join(lines)
