"""Live campaign telemetry: worker heartbeats -> status file -> watch view.

A long multi-hour campaign run through :func:`repro.experiments.executor.
run_campaign` is a black box today: the checkpoint journal says what
*finished*, but nothing says what the workers are doing right now.  This
module closes that gap with three small pieces:

* workers run a daemon **heartbeat thread** that periodically sends
  ``("hb", {...})`` messages over the *existing* result pipe (sharing it
  with the final result under a lock, so no extra IPC machinery), sampling
  the live simulator through :func:`repro.sim.engine.current_simulator`;
* the supervisor feeds every heartbeat (and task lifecycle edge) into a
  :class:`TelemetryHub`, which maintains a campaign-wide status snapshot —
  tasks done/running/quarantined, per-worker events/s, ETA — and writes it
  atomically (and throttled) to ``<telemetry_dir>/status.json``;
* ``python -m repro.obs watch <dir>`` polls that file and renders a
  plaintext/TTY live view.  The file is the interface: the watcher shares
  no process state with the campaign, so it can run on another terminal,
  after a resume, or against a dead campaign (it just shows the last
  snapshot).

ETA math uses only quantities *stored in the snapshot* (elapsed and done
counts), so the watcher needs no wall-clock of its own — the sanctioned
clock stays inside the executor's stopwatch.
"""

from __future__ import annotations

import json
import time
from contextlib import ExitStack
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "STATUS_FILENAME",
    "TelemetryHub",
    "render_status",
    "watch",
]

STATUS_FILENAME = "status.json"
STATUS_SCHEMA = 1


class TelemetryHub:
    """Aggregates campaign progress and publishes an atomic status snapshot.

    One hub serves one ``run_campaign`` call.  All methods are supervisor-
    side (single thread); workers never touch the hub — they only send
    heartbeat tuples, which the supervisor relays into :meth:`heartbeat`.
    """

    def __init__(
        self,
        out_dir: Union[str, Path],
        total: int,
        write_every_s: float = 0.5,
    ) -> None:
        from repro.experiments.reporting import stopwatch

        self.out_dir = Path(out_dir)
        self.total = total
        self.done = 0
        self.resumed = 0
        self.quarantined = 0
        self.running: Dict[str, Dict[str, Any]] = {}
        self.write_every_s = write_every_s
        self._last_write = -1.0
        # Degraded-telemetry accounting: status writes that failed (ENOSPC,
        # EIO, injected chaos faults...).  Telemetry is an observability
        # side-channel — a full disk must never kill the campaign, so write
        # failures are counted and surfaced, not raised.
        self.write_errors = 0
        self.last_write_error: Optional[str] = None
        # stopwatch() is the sanctioned wall-clock shim; keep it open for
        # the hub's lifetime so elapsed_s is campaign-relative.
        self._stack = ExitStack()
        self._elapsed = self._stack.enter_context(stopwatch())

    # -- lifecycle edges -------------------------------------------------------

    def task_started(self, key: str, label: str) -> None:
        self.running[key] = {"key": key, "label": label}
        self._publish()

    def task_done(self, key: str) -> None:
        self.running.pop(key, None)
        self.done += 1
        self._publish(force=True)

    def task_resumed(self, key: str) -> None:
        self.done += 1
        self.resumed += 1

    def task_retrying(self, key: str) -> None:
        self.running.pop(key, None)
        self._publish()

    def task_quarantined(self, key: str) -> None:
        self.running.pop(key, None)
        self.quarantined += 1
        self._publish(force=True)

    def heartbeat(self, key: str, beat: Dict[str, Any]) -> None:
        """Fold one worker heartbeat into the live view.

        Per-worker events/s derives from consecutive beats (delta events
        over delta wall time), so a stalled worker shows 0 — exactly the
        signal a live view exists to surface.
        """
        entry = self.running.get(key)
        if entry is None:
            return  # late beat from an already-classified worker
        prev_events = entry.get("events")
        prev_wall = entry.get("wall_s")
        entry.update(beat)
        if (
            isinstance(prev_events, int)
            and isinstance(beat.get("events"), int)
            and isinstance(prev_wall, (int, float))
            and isinstance(beat.get("wall_s"), (int, float))
            and float(beat["wall_s"]) > float(prev_wall)
        ):
            entry["events_per_s"] = round(
                (beat["events"] - prev_events)
                / (float(beat["wall_s"]) - float(prev_wall)),
                1,
            )
        self._publish()

    def close(self) -> None:
        """Final snapshot write and clock release."""
        self._publish(force=True)
        self._stack.close()

    # -- snapshot --------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        from repro.obs.profile import utc_now_iso

        elapsed = self._elapsed()
        remaining = self.total - self.done - self.quarantined
        fresh_done = self.done - self.resumed
        eta: Optional[float] = None
        if remaining > 0 and fresh_done > 0 and elapsed > 0:
            # Resumed cells cost ~nothing; scale by cells actually executed.
            eta = round(elapsed / fresh_done * remaining, 1)
        snapshot: Dict[str, Any] = {
            "schema": STATUS_SCHEMA,
            "updated_utc": utc_now_iso(),
            "elapsed_s": round(elapsed, 1),
            "total": self.total,
            "done": self.done,
            "resumed": self.resumed,
            "quarantined": self.quarantined,
            "running": sorted(
                (dict(entry) for entry in self.running.values()),
                key=lambda e: str(e.get("key")),
            ),
            "eta_s": eta,
        }
        if self.write_errors:
            snapshot["degraded"] = {
                "write_errors": self.write_errors,
                "last_error": self.last_write_error,
            }
        return snapshot

    def _publish(self, force: bool = False) -> None:
        from repro.persist import PersistError, atomic_write_json

        now = self._elapsed()
        if not force and (now - self._last_write) < self.write_every_s:
            return
        self._last_write = now
        try:
            atomic_write_json(self.out_dir / STATUS_FILENAME, self.status())
        except (OSError, PersistError) as exc:
            # Degrade, never abort: the campaign's durability contract is on
            # the checkpoint journal, not the live view.  The failure is
            # noted in the next snapshot that does land (and on the hub for
            # the campaign report).  Writes stay throttled so a dead disk
            # is not hammered on every heartbeat.
            self.write_errors += 1
            self.last_write_error = f"{type(exc).__name__}: {exc}"


# -- the watch view ------------------------------------------------------------


def render_status(status: Dict[str, Any]) -> str:
    """One status snapshot as a plaintext progress panel."""
    from repro.experiments.reporting import format_table

    total = int(status.get("total", 0))
    done = int(status.get("done", 0))
    quarantined = int(status.get("quarantined", 0))
    running = list(status.get("running", []))
    eta = status.get("eta_s")
    width = 30
    finished = done + quarantined
    filled = int(round(width * finished / total)) if total else 0
    bar = "#" * filled + "-" * (width - filled)
    lines = [
        f"campaign progress  [{bar}]  {finished}/{total}",
        f"done {done} ({status.get('resumed', 0)} resumed) | "
        f"running {len(running)} | quarantined {quarantined}",
        f"elapsed {float(status.get('elapsed_s', 0.0)):.1f}s | "
        + (f"eta {float(eta):.1f}s" if eta is not None else "eta -")
        + f" | updated {status.get('updated_utc', '?')}",
    ]
    if running:
        rows: List[List[object]] = [
            [
                str(entry.get("label") or entry.get("key", "?"))[:48],
                entry.get("events", "-"),
                entry.get("sim_time_s", "-"),
                entry.get("events_per_s", "-"),
            ]
            for entry in running
        ]
        lines.append("")
        lines.append(format_table(
            ["task", "events", "sim_t", "events/s"], rows,
            title="running workers",
        ))
    return "\n".join(lines)


def watch(
    telemetry_dir: Union[str, Path],
    interval_s: float = 1.0,
    once: bool = False,
    max_polls: Optional[int] = None,
) -> int:
    """Poll ``status.json`` and print a live view; returns an exit code.

    ``once=True`` renders a single snapshot (test- and script-friendly);
    otherwise the loop redraws every ``interval_s`` until the campaign
    finishes (done + quarantined == total) or ``max_polls`` is exhausted.
    Exit code 2 when no status file exists yet.
    """
    status_path = Path(telemetry_dir) / STATUS_FILENAME
    polls = 0
    while True:
        polls += 1
        if not status_path.exists():
            print(f"error: no status file at {status_path} "  # replint: disable=REP009
                  "(campaign not started, or wrong --telemetry-dir)")
            return 2
        try:
            status = json.loads(status_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            # Mid-replace reads can't happen (writes are atomic), but a
            # foreign/corrupt file can; surface it rather than crash-loop.
            print(f"error: unreadable status file at {status_path}")  # replint: disable=REP009
            return 2
        rendered = render_status(status)
        if not once:
            # ANSI clear keeps the panel in place on a TTY; plain scroll
            # otherwise is still readable.
            print("\x1b[2J\x1b[H", end="")  # replint: disable=REP009
        print(rendered)  # replint: disable=REP009
        finished = (
            int(status.get("done", 0)) + int(status.get("quarantined", 0))
            >= int(status.get("total", 0))
        )
        if once or finished or (max_polls is not None and polls >= max_polls):
            return 0
        time.sleep(interval_s)
