"""Performance observatory: bench history, handler deltas, flamegraph export.

This module turns the one-shot perf-smoke snapshot into an instrument panel:

* an **append-only history store** (``results/perf/history.jsonl``) that
  records every perf-smoke run — git rev, config key, throughput, heap and
  per-handler stats — through :func:`repro.persist.atomic_append_jsonl`, so
  the events/s *trajectory* across commits is first-class data rather than
  something reconstructed from CI logs;
* **per-handler delta analysis** (:func:`handler_mean_deltas`) shared by the
  ``bench-compare`` gate and the ``bench-history`` report, so a regression
  names the handler (and direction) instead of only the aggregate number;
* **flamegraph export**: collapsed-stack output compatible with speedscope
  and ``flamegraph.pl`` built from the profiler's per-(handler × kind)
  buckets, plus Chrome ``trace_event`` counter tracks (heap occupancy,
  cumulative handler wall time) derived from profiler samples.

Together with ``repro.obs.profile`` this is a sanctioned profiling-primitive
site (replint REP018).  Everything here returns data or strings; printing
belongs to ``repro.obs.__main__``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "DEFAULT_HISTORY_PATH",
    "config_key",
    "history_record",
    "append_history",
    "load_history",
    "prune_history",
    "handler_mean_deltas",
    "bench_history_report",
    "collapsed_stacks",
    "write_flamegraph",
    "chrome_counter_events",
]

DEFAULT_HISTORY_PATH = "results/perf/history.jsonl"

# History-report trajectory flags: latest vs committed baseline.
_FLAG_TOLERANCE = 0.10


def config_key(config: Dict[str, Any]) -> str:
    """Stable short key identifying one bench configuration.

    Sorted ``k=v`` pairs, so two runs are on the same trajectory exactly when
    their scenario knobs match (protocol, topology, image size, code rate...).
    """
    return ",".join(f"{k}={config[k]}" for k in sorted(config))


def history_record(bench: Dict[str, Any]) -> Dict[str, Any]:
    """The compact, append-friendly form of one perf-smoke bench dict."""
    config = dict(bench.get("config", {}))
    return {
        "name": bench.get("name", "?"),
        "config": config,
        "config_key": config_key(config),
        "git_rev": bench.get("git_rev"),
        "created_utc": bench.get("created_utc"),
        "events": bench.get("events"),
        "events_per_s": bench.get("events_per_s"),
        "wall_s": bench.get("wall_s"),
        "repeats": bench.get("repeats", 1),
        "heap": dict(bench.get("heap", {})),
        "handlers": [dict(h) for h in bench.get("top_handlers", [])],
    }


def append_history(
    path: Union[str, Path], bench: Dict[str, Any]
) -> Dict[str, Any]:
    """Append one perf-smoke result to the history store; returns the record."""
    from repro.persist import atomic_append_jsonl

    record = history_record(bench)
    atomic_append_jsonl(path, record)
    return record


def load_history(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """All recorded runs, file order (oldest first); [] when absent."""
    from repro.persist import read_jsonl

    return [r for r in read_jsonl(path) if isinstance(r, dict)]


def prune_history(
    path: Union[str, Path], keep_per_config: int
) -> Tuple[int, int]:
    """Compact the history store to the last ``keep_per_config`` runs per
    config key; returns ``(before, after)`` record counts.

    The rewrite goes through :func:`repro.persist.atomic_write_jsonl` — the
    sanctioned crash-safe compaction step for append-only journals — so a
    process killed mid-prune leaves either the full old history or the
    complete pruned one, never a mix.  Record order is preserved.
    """
    if keep_per_config < 1:
        raise ValueError(f"keep_per_config must be >= 1, got {keep_per_config}")
    records = load_history(path)
    if not records:
        return 0, 0
    kept_per_key: Dict[str, int] = {}
    keep_flags: List[bool] = [False] * len(records)
    for i in range(len(records) - 1, -1, -1):
        key = str(records[i].get("config_key", "?"))
        if kept_per_key.get(key, 0) < keep_per_config:
            kept_per_key[key] = kept_per_key.get(key, 0) + 1
            keep_flags[i] = True
    kept = [r for r, keep in zip(records, keep_flags) if keep]
    if len(kept) != len(records):
        from repro.persist import atomic_write_jsonl

        atomic_write_jsonl(path, kept)
    return len(records), len(kept)


def handler_mean_deltas(
    current: List[Dict[str, Any]],
    baseline: List[Dict[str, Any]],
) -> List[Tuple[str, float, float, float]]:
    """Per-handler mean wall-time change: ``(name, base_us, cur_us, pct)``.

    Only handlers present in both lists with a nonzero baseline mean are
    comparable; ``pct`` is signed ((cur - base) / base), sorted most-regressed
    first.
    """
    base_by_name = {
        str(h.get("name")): h for h in baseline if h.get("mean_us")
    }
    deltas: List[Tuple[str, float, float, float]] = []
    for h in current:
        name = str(h.get("name"))
        base = base_by_name.get(name)
        if base is None:
            continue
        base_us = float(base["mean_us"])
        cur_us = float(h.get("mean_us", 0.0))
        deltas.append((name, base_us, cur_us, (cur_us - base_us) / base_us))
    deltas.sort(key=lambda d: (-d[3], d[0]))
    return deltas


def _fmt_pct(pct: float) -> str:
    return f"{pct * 100.0:+.1f}%"


def bench_history_report(
    history: List[Dict[str, Any]],
    baseline: Optional[Dict[str, Any]] = None,
    config_filter: Optional[str] = None,
) -> str:
    """Render the events/s trajectory per config, flagged against a baseline.

    One table per distinct ``config_key`` (oldest run first, with per-run
    delta vs the previous run), then — for the group matching the committed
    baseline's config — a latest-vs-baseline verdict plus per-handler mean
    deltas so a drift names its handler.
    """
    from repro.experiments.reporting import format_table

    groups: Dict[str, List[Dict[str, Any]]] = {}
    for record in history:
        key = str(record.get("config_key", "?"))
        if config_filter and config_filter not in key:
            continue
        groups.setdefault(key, []).append(record)
    if not groups:
        return "no recorded runs"
    base_key = config_key(dict(baseline.get("config", {}))) if baseline else None
    sections: List[str] = []
    for key in sorted(groups):
        records = groups[key]
        rows: List[List[object]] = []
        prev_eps: Optional[float] = None
        for i, record in enumerate(records):
            eps = float(record.get("events_per_s") or 0.0)
            delta = (
                "-" if prev_eps in (None, 0.0)
                else _fmt_pct((eps - prev_eps) / prev_eps)  # type: ignore[operator]
            )
            rows.append([
                i + 1,
                record.get("created_utc") or "?",
                record.get("git_rev") or "?",
                record.get("events") or 0,
                f"{eps:,.0f}",
                delta,
            ])
            prev_eps = eps
        sections.append(format_table(
            ["run", "recorded", "rev", "events", "events/s", "vs prev"],
            rows,
            title=f"{key} — {len(records)} recorded run(s)",
        ))
        latest = records[-1]
        reference: Optional[Dict[str, Any]] = None
        reference_label = ""
        if baseline is not None and key == base_key:
            reference = {
                "events_per_s": baseline.get("events_per_s"),
                "handlers": baseline.get("top_handlers", []),
                "label": f"committed baseline (rev {baseline.get('git_rev') or '?'})",
            }
            reference_label = str(reference["label"])
        elif len(records) >= 2:
            prior = records[-2]
            reference = {
                "events_per_s": prior.get("events_per_s"),
                "handlers": prior.get("handlers", []),
            }
            reference_label = f"previous run (rev {prior.get('git_rev') or '?'})"
        if reference is None:
            continue
        ref_eps = float(reference.get("events_per_s") or 0.0)
        latest_eps = float(latest.get("events_per_s") or 0.0)
        if ref_eps > 0:
            pct = (latest_eps - ref_eps) / ref_eps
            if pct <= -_FLAG_TOLERANCE:
                verdict = "REGRESSION"
            elif pct >= _FLAG_TOLERANCE:
                verdict = "improvement"
            else:
                verdict = "steady"
            sections.append(
                f"latest vs {reference_label}: {_fmt_pct(pct)} ({verdict})"
            )
        deltas = handler_mean_deltas(
            list(latest.get("handlers", [])),
            list(reference.get("handlers", [])),
        )
        if deltas:
            delta_rows: List[List[object]] = [
                [name, round(base_us, 2), round(cur_us, 2), _fmt_pct(pct)]
                for name, base_us, cur_us, pct in deltas
            ]
            sections.append(format_table(
                ["handler", "ref mean_us", "latest mean_us", "delta"],
                delta_rows,
                title=f"per-handler mean wall time vs {reference_label}",
            ))
    return "\n\n".join(sections)


# -- flamegraph / counter-track export ----------------------------------------


def collapsed_stacks(profile: Dict[str, Any]) -> str:
    """Collapsed-stack text from a profiler summary dict.

    One ``frame;frame value`` line per bucket with integer-microsecond
    values — the format speedscope and ``flamegraph.pl`` both ingest.  When
    per-kind buckets exist each line is ``handler;kind``, giving a two-level
    flame: handlers on the first level, packet kinds under them.
    """
    lines: List[str] = []
    kinds = profile.get("kinds") or []
    if kinds:
        for bucket in kinds:
            us = int(round(float(bucket.get("total_s", 0.0)) * 1e6))
            if us <= 0:
                continue
            lines.append(f"{bucket.get('handler')};{bucket.get('kind')} {us}")
    else:
        for handler in profile.get("handlers", []):
            us = int(round(float(handler.get("total_s", 0.0)) * 1e6))
            if us <= 0:
                continue
            lines.append(f"{handler.get('name')} {us}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_flamegraph(path: Union[str, Path], profile: Dict[str, Any]) -> Path:
    """Write collapsed stacks for speedscope / flamegraph.pl consumption."""
    from repro.persist import atomic_write_text

    return atomic_write_text(Path(path), collapsed_stacks(profile))


def chrome_counter_events(
    samples: List[Tuple[int, float, int]],
    pid: int = 2,
) -> List[Dict[str, Any]]:
    """Chrome ``trace_event`` counter tracks from profiler samples.

    Each ``(events, cumulative_wall_s, heap_len)`` sample becomes two ``ph:
    "C"`` counters: event-heap occupancy and cumulative handler wall time.
    Counters live in their own process (default pid 2, labelled as wall
    time) because the profiler samples wall microseconds while the trace
    events run on simulated time — mixing the two on one timeline would be
    quietly wrong.
    """
    if not samples:
        return []
    events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
         "args": {"name": "profiler counters (wall time)"}},
    ]
    for processed, wall_s, heap_len in samples:
        ts = wall_s * 1e6
        events.append({
            "ph": "C", "pid": pid, "tid": 0, "name": "sim.heap",
            "ts": ts, "args": {"pending": heap_len},
        })
        events.append({
            "ph": "C", "pid": pid, "tid": 0, "name": "sim.events",
            "ts": ts, "args": {"processed": processed},
        })
    return events
