"""Flight-trace reduction: convergence wavefront, stalls, link matrix.

``python -m repro.obs analyze run.trace.jsonl`` reduces a flight-recorded
trace (see :mod:`repro.obs.flight`) into three reports:

* **wavefront** — per-hop completion statistics (first/median/last
  ``node_complete`` time per BFS hop from the base station), the per-hop
  shape behind the paper's completion-time figures;
* **stalls** — abnormally long gaps between a node's consecutive
  ``unit_complete`` events (relative to the run's median page gap), plus
  every node that never completed and where it got stuck;
* **links** — the per-``(src, dst)`` delivery matrix: delivered / lost (by
  cause) / auth-dropped / duplicate counts and the resulting loss rate.

All functions are pure reductions over the event list; the optional JSON
artifact goes through :mod:`repro.persist` atomic writes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.obs.events import EventLog, TraceEvent, load_jsonl

__all__ = ["analyze_events", "analyze_jsonl", "render_analysis"]


def _median(values: List[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def analyze_events(
    events: Union[EventLog, Iterable[TraceEvent]],
    stall_factor: float = 5.0,
) -> Dict[str, Any]:
    """Reduce a trace into wavefront / stall / link-matrix reports."""
    if isinstance(events, EventLog):
        events = events.events
    hops: Dict[int, int] = {}
    base: Optional[int] = None
    protocols: Dict[int, str] = {}
    completion: Dict[int, float] = {}
    unit_times: Dict[int, List[Dict[str, float]]] = {}
    links: Dict[str, Dict[str, Any]] = {}
    end_ts = 0.0

    for e in events:
        end_ts = max(end_ts, e.ts + (e.dur or 0.0))
        if e.kind == "flight_topology":
            base = e.detail.get("base")
            hops = {int(k): int(v) for k, v in e.detail.get("hops", {}).items()}
        elif e.kind == "flight_meta" and e.node is not None:
            protocols[e.node] = str(e.detail.get("protocol", "?"))
        elif e.kind == "node_complete" and e.node is not None:
            completion.setdefault(e.node, e.ts)
        elif e.kind == "unit_complete" and e.node is not None:
            unit_times.setdefault(e.node, []).append(
                {"unit": int(e.detail.get("unit", -1)), "ts": e.ts}
            )
        elif e.kind == "flight_link_stats":
            d = e.detail
            links[f"{d.get('src')}->{d.get('dst')}"] = {
                "src": d.get("src"),
                "dst": d.get("dst"),
                "rx": int(d.get("rx", 0)),
                "lost": int(d.get("lost", 0)),
                "auth_drop": int(d.get("auth_drop", 0)),
                "duplicate": int(d.get("duplicate", 0)),
                "causes": dict(d.get("causes", {})),
            }

    # -- wavefront: per-hop completion statistics -----------------------------
    known_nodes = set(protocols) | set(completion) | set(unit_times) | set(hops)
    wavefront: List[Dict[str, Any]] = []
    by_hop: Dict[Optional[int], List[int]] = {}
    for node in sorted(known_nodes):
        if base is not None and node == base:
            continue
        by_hop.setdefault(hops.get(node), []).append(node)
    for hop in sorted(by_hop, key=lambda h: (h is None, h)):
        nodes = by_hop[hop]
        done = sorted(completion[n] for n in nodes if n in completion)
        wavefront.append({
            "hop": hop,
            "nodes": len(nodes),
            "completed": len(done),
            "t_first": done[0] if done else None,
            "t_median": _median(done) if done else None,
            "t_last": done[-1] if done else None,
        })

    # -- stalls: outlier page gaps and stuck nodes ----------------------------
    gaps: List[float] = []
    for node, entries in unit_times.items():
        for prev, cur in zip(entries, entries[1:]):
            gaps.append(cur["ts"] - prev["ts"])
    median_gap = _median(gaps)
    threshold = stall_factor * median_gap if median_gap > 0 else None
    stall_events: List[Dict[str, Any]] = []
    if threshold is not None:
        for node in sorted(unit_times):
            entries = unit_times[node]
            for prev, cur in zip(entries, entries[1:]):
                gap = cur["ts"] - prev["ts"]
                if gap > threshold:
                    stall_events.append({
                        "node": node,
                        "before_unit": cur["unit"],
                        "gap_s": round(gap, 6),
                        "from_ts": prev["ts"],
                        "to_ts": cur["ts"],
                    })
    incomplete: List[Dict[str, Any]] = []
    for node in sorted(known_nodes):
        if node in completion or (base is not None and node == base):
            continue
        entries = unit_times.get(node, [])
        incomplete.append({
            "node": node,
            "units_complete": len(entries),
            "last_unit_ts": entries[-1]["ts"] if entries else None,
            "stuck_for_s": round(end_ts - entries[-1]["ts"], 6)
            if entries else None,
        })

    # -- link matrix ----------------------------------------------------------
    link_rows: List[Dict[str, Any]] = []
    for key in sorted(links):
        row = dict(links[key])
        attempts = row["rx"] + row["lost"]
        row["loss_rate"] = round(row["lost"] / attempts, 4) if attempts else 0.0
        link_rows.append(row)

    return {
        "type": "flight_analysis",
        "base": base,
        "nodes": len(known_nodes),
        "completed": len(completion),
        "end_ts": end_ts,
        "median_page_gap_s": round(median_gap, 6),
        "wavefront": wavefront,
        "stalls": {
            "threshold_s": round(threshold, 6) if threshold else None,
            "events": stall_events,
            "incomplete_nodes": incomplete,
        },
        "links": link_rows,
    }


def analyze_jsonl(
    path: Union[str, Path],
    out: Optional[Union[str, Path]] = None,
    stall_factor: float = 5.0,
) -> Dict[str, Any]:
    """Analyze an archived trace; optionally persist the reduction as JSON."""
    _header, events = load_jsonl(path)
    analysis = analyze_events(events, stall_factor=stall_factor)
    analysis["trace_file"] = str(path)
    if out is not None:
        from repro.persist import atomic_write_text

        atomic_write_text(Path(out), json.dumps(analysis, indent=2,
                                                sort_keys=True) + "\n")
    return analysis


def render_analysis(analysis: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`analyze_events` output."""
    from repro.experiments.reporting import format_table

    lines: List[str] = [
        f"nodes:      {analysis['nodes']} "
        f"({analysis['completed']} completed, base={analysis['base']})",
        f"trace end:  t={analysis['end_ts']:.3f}s, "
        f"median page gap {analysis['median_page_gap_s']:.3f}s",
    ]
    wavefront = analysis.get("wavefront", [])
    if wavefront:
        rows = [
            [("?" if w["hop"] is None else w["hop"]), w["nodes"], w["completed"],
             "-" if w["t_first"] is None else f"{w['t_first']:.3f}",
             "-" if w["t_median"] is None else f"{w['t_median']:.3f}",
             "-" if w["t_last"] is None else f"{w['t_last']:.3f}"]
            for w in wavefront
        ]
        lines.append("")
        lines.append(format_table(
            ["hop", "nodes", "done", "t_first", "t_median", "t_last"], rows,
            title="completion wavefront (per hop from base)",
        ))
    stalls = analysis.get("stalls", {})
    events = stalls.get("events", [])
    if events:
        rows = [
            [s["node"], s["before_unit"], f"{s['gap_s']:.3f}",
             f"{s['from_ts']:.3f}", f"{s['to_ts']:.3f}"]
            for s in events
        ]
        lines.append("")
        lines.append(format_table(
            ["node", "before_unit", "gap_s", "from", "to"], rows,
            title=f"stalls (> {stalls.get('threshold_s')}s between pages)",
        ))
    incomplete = stalls.get("incomplete_nodes", [])
    if incomplete:
        rows = [
            [n["node"], n["units_complete"],
             "-" if n["last_unit_ts"] is None else f"{n['last_unit_ts']:.3f}",
             "-" if n["stuck_for_s"] is None else f"{n['stuck_for_s']:.3f}"]
            for n in incomplete
        ]
        lines.append("")
        lines.append(format_table(
            ["node", "units", "last_unit_at", "stuck_for_s"], rows,
            title="nodes that never completed",
        ))
    links = analysis.get("links", [])
    if links:
        rows = [
            [f"{l['src']}->{l['dst']}", l["rx"], l["lost"],
             f"{l['loss_rate']:.1%}", l["auth_drop"], l["duplicate"],
             ", ".join(f"{c}={n}" for c, n in sorted(l["causes"].items()))
             or "-"]
            for l in links
        ]
        lines.append("")
        lines.append(format_table(
            ["link", "rx", "lost", "loss", "auth_drop", "dup", "causes"], rows,
            title="per-link delivery matrix",
        ))
    return "\n".join(lines)
