"""Observability CLI: summarise/diff run manifests, inspect traces, perf-smoke.

::

    python -m repro.obs report run.manifest.json
    python -m repro.obs report --diff before.json after.json
    python -m repro.obs trace run.trace.jsonl
    python -m repro.obs perf-smoke --out BENCH_sim_core.json \\
        --manifest perf.manifest.json --trace perf.trace.jsonl \\
        --chrome-trace perf.chrome.json --repeats 3 --warmup 1 \\
        --history results/perf/history.jsonl
    python -m repro.obs check-invariants run.trace.jsonl
    python -m repro.obs analyze run.trace.jsonl --out analysis.json --json
    python -m repro.obs critical-path run.trace.jsonl --min-attribution 0.95
    python -m repro.obs critical-path deluge.jsonl lr.jsonl --out causal.json
    python -m repro.obs why run.trace.jsonl --node 7
    python -m repro.obs bench-compare BENCH_current.json BENCH_sim_core.json
    python -m repro.obs bench-history results/perf/history.jsonl --prune 50
    python -m repro.obs watch results/telemetry/

The ``critical-path``/``why`` commands need a ``--causal-trace`` run (see
:mod:`repro.obs.causal`); ``analyze`` needs ``--flight-record``.

Exit codes: 0 success, 1 a gate failed (regression, violated invariant,
empty history), 2 unusable input (missing file, malformed JSON).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Optional

from repro.obs.manifest import RunManifest
from repro.obs.report import (
    bench_compare,
    diff_report,
    manifest_summary,
    run_perf_smoke,
    trace_summary,
)

__all__ = ["main"]

_DEFAULT_BASELINE = "BENCH_sim_core.json"


def _error(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


def _load_bench(path: str, role: str) -> Dict[str, Any]:
    """Read one bench/baseline JSON; raises SystemExit-friendly ValueErrors."""
    target = Path(path)
    if not target.exists():
        raise FileNotFoundError(f"{role} file not found: {path}")
    try:
        data = json.loads(target.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed {role} JSON in {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise ValueError(f"malformed {role} JSON in {path}: expected an object")
    return data


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarise, diff, and generate observability artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="summarise one manifest or diff two")
    report.add_argument("manifest", nargs="*",
                        help="manifest JSON file(s); one to summarise")
    report.add_argument("--diff", nargs=2, metavar=("A", "B"), default=None,
                        help="diff two manifest files")
    report.add_argument("--top", type=int, default=25,
                        help="counters to show in the summary table")

    trace = sub.add_parser("trace", help="summarise a JSONL trace file")
    trace.add_argument("trace_file")

    smoke = sub.add_parser("perf-smoke",
                           help="run a small profiled dissemination (CI)")
    smoke.add_argument("--out", default="BENCH_sim_core.json",
                       help="benchmark JSON output path")
    smoke.add_argument("--manifest", default=None,
                       help="also write a run manifest here")
    smoke.add_argument("--trace", default=None,
                       help="also write the JSONL trace here")
    smoke.add_argument("--chrome-trace", default=None,
                       help="also write a Chrome/Perfetto trace here")
    smoke.add_argument("--seed", type=int, default=1)
    smoke.add_argument("--receivers", type=int, default=8)
    smoke.add_argument("--image-kib", type=int, default=4)
    smoke.add_argument("--repeats", type=int, default=1,
                       help="repeat the run and report median events/s")
    smoke.add_argument("--warmup", type=int, default=1,
                       help="discarded warmup repeats before measurement "
                            "(default 1; keeps lazy-init cost out of stats)")
    smoke.add_argument("--topology", default=None,
                       help="run the multi-hop grid workload instead of the "
                            "one-hop star (e.g. grid:15x15:3)")
    smoke.add_argument("--history", default=None,
                       help="append the bench record to this history JSONL "
                            "(see bench-history)")

    check = sub.add_parser("check-invariants",
                           help="replay a JSONL trace against the protocol "
                                "invariant library (exit 1 on violations)")
    check.add_argument("trace_file")

    analyze = sub.add_parser("analyze",
                             help="reduce a flight trace into wavefront/"
                                  "stall/link-matrix reports")
    analyze.add_argument("trace_file")
    analyze.add_argument("--out", default=None,
                         help="also write the analysis JSON here")
    analyze.add_argument("--stall-factor", type=float, default=5.0,
                         help="flag page gaps above this multiple of the "
                              "median gap")
    analyze.add_argument("--json", action="store_true",
                         help="print the analysis as JSON on stdout instead "
                              "of the rendered tables")

    cpath = sub.add_parser(
        "critical-path",
        help="attribute completion latency to wait categories from a "
             "causal trace (exit 1 below --min-attribution)")
    cpath.add_argument("trace_file", nargs="+",
                       help="causal-traced JSONL file(s); several renders a "
                            "protocol comparison table")
    cpath.add_argument("--out", default=None,
                       help="also write the attribution JSON here (a list "
                            "when several traces are given)")
    cpath.add_argument("--json", action="store_true",
                       help="print the attribution as JSON on stdout")
    cpath.add_argument("--min-attribution", type=float, default=None,
                       help="fail (exit 1) when any completed node's "
                            "attributed fraction is below this")

    why = sub.add_parser(
        "why",
        help="per-node 'why was completion at t?' critical-path report "
             "from a causal trace")
    why.add_argument("trace_file")
    why.add_argument("--node", type=int, required=True,
                     help="the receiver to explain")
    why.add_argument("--top", type=int, default=12,
                     help="longest critical-path waits to list")

    compare = sub.add_parser("bench-compare",
                             help="gate a perf-smoke JSON against a baseline "
                                  "(exit 1 on >tolerance regression)")
    compare.add_argument("current", help="freshly generated BENCH json")
    compare.add_argument("baseline", help="committed baseline BENCH json")
    compare.add_argument("--tolerance", type=float, default=0.25,
                         help="allowed fractional slowdown (default 0.25)")

    history = sub.add_parser(
        "bench-history",
        help="events/s trajectory per config from the append-only history "
             "store (exit 1 when empty)")
    history.add_argument("history", nargs="?",
                         default="results/perf/history.jsonl",
                         help="history JSONL (default results/perf/"
                              "history.jsonl)")
    history.add_argument("--baseline", default=None,
                         help="committed baseline BENCH json for regression "
                              f"flags (default {_DEFAULT_BASELINE} when "
                              "present)")
    history.add_argument("--config-filter", default=None,
                         help="only show configs whose key contains this "
                              "substring")
    history.add_argument("--prune", type=int, default=None, metavar="N",
                         help="first compact the store to the last N runs "
                              "per config (atomic rewrite)")

    watch = sub.add_parser("watch",
                           help="live view of a running campaign "
                                "(reads <dir>/status.json)")
    watch.add_argument("telemetry_dir",
                       help="the campaign's --telemetry-dir")
    watch.add_argument("--interval", type=float, default=1.0,
                       help="poll period in seconds")
    watch.add_argument("--once", action="store_true",
                       help="render a single snapshot and exit")
    watch.add_argument("--max-polls", type=int, default=None,
                       help="stop after this many polls even if unfinished")
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "report":
        try:
            if args.diff:
                a = RunManifest.load(args.diff[0])
                b = RunManifest.load(args.diff[1])
                print(diff_report(a, b, a_name=args.diff[0],
                                  b_name=args.diff[1]))
                return 0
            if len(args.manifest) != 1:
                raise SystemExit("report takes one manifest file, or --diff A B")
            print(manifest_summary(RunManifest.load(args.manifest[0]),
                                   top=args.top))
        except FileNotFoundError as exc:
            return _error(f"manifest file not found: {exc.filename or exc}")
        except (ValueError, KeyError) as exc:
            return _error(f"malformed manifest: {exc}")
        return 0
    if args.command == "trace":
        try:
            print(trace_summary(args.trace_file))
        except FileNotFoundError:
            return _error(f"trace file not found: {args.trace_file}")
        except ValueError as exc:
            return _error(str(exc))
        return 0
    if args.command == "check-invariants":
        from repro.obs.invariants import check_jsonl

        try:
            report = check_jsonl(args.trace_file)
        except FileNotFoundError:
            return _error(f"trace file not found: {args.trace_file}")
        except ValueError as exc:
            return _error(str(exc))
        print(report.summary())
        return 0 if report.ok else 1
    if args.command == "analyze":
        from repro.obs.analyze import analyze_jsonl, render_analysis

        try:
            analysis = analyze_jsonl(args.trace_file, out=args.out,
                                     stall_factor=args.stall_factor)
        except FileNotFoundError:
            return _error(f"trace file not found: {args.trace_file}")
        except ValueError as exc:
            return _error(str(exc))
        if args.json:
            print(json.dumps(analysis, indent=2, sort_keys=True))
        else:
            print(render_analysis(analysis))
        if args.out:
            print(f"wrote {args.out}")
        return 0
    if args.command == "critical-path":
        from repro.obs.causal import (
            analyze_causal_jsonl,
            comparison_report,
            render_attribution,
        )

        analyses = []
        try:
            for trace_file in args.trace_file:
                analyses.append(analyze_causal_jsonl(trace_file))
        except FileNotFoundError as exc:
            return _error(f"trace file not found: {exc.filename or exc}")
        except ValueError as exc:
            return _error(str(exc))
        if args.out:
            from repro.persist import atomic_write_json

            atomic_write_json(
                args.out, analyses[0] if len(analyses) == 1 else analyses,
                sort_keys=True,
            )
        if args.json:
            print(json.dumps(
                analyses[0] if len(analyses) == 1 else analyses,
                indent=2, sort_keys=True,
            ))
        else:
            for analysis in analyses:
                print(render_attribution(analysis))
                print()
            if len(analyses) > 1:
                print(comparison_report(analyses))
        if args.out:
            print(f"wrote {args.out}")
        failed = False
        for analysis in analyses:
            if not analysis["completed"]:
                print(f"gate: no completed receivers in "
                      f"{analysis['trace_file']}", file=sys.stderr)
                failed = True
            elif (args.min_attribution is not None
                  and analysis["min_attribution"] < args.min_attribution):
                print(f"gate: min attribution "
                      f"{analysis['min_attribution']:.1%} < "
                      f"{args.min_attribution:.1%} in "
                      f"{analysis['trace_file']}", file=sys.stderr)
                failed = True
        return 1 if failed else 0
    if args.command == "why":
        from repro.obs.causal import build_dag, critical_path, render_why
        from repro.obs.events import load_jsonl

        try:
            _header, events = load_jsonl(args.trace_file)
        except FileNotFoundError:
            return _error(f"trace file not found: {args.trace_file}")
        except ValueError as exc:
            return _error(str(exc))
        dag = build_dag(events)
        if not dag.tx:
            return _error(f"{args.trace_file} holds no causal events — "
                          "re-run the simulation with --causal-trace")
        known = set(dag.meta) | set(dag.complete)
        if args.node not in known:
            return _error(f"node {args.node} does not appear in the trace")
        path = critical_path(dag, args.node)
        if path is None:
            print(f"node {args.node} never completed in this trace")
            return 1
        print(render_why(dag, path, top=args.top))
        return 0
    if args.command == "bench-compare":
        try:
            current = _load_bench(args.current, "current bench")
            baseline = _load_bench(args.baseline, "baseline bench")
        except FileNotFoundError as exc:
            return _error(str(exc))
        except ValueError as exc:
            return _error(str(exc))
        ok, text = bench_compare(current, baseline, tolerance=args.tolerance)
        print(text)
        return 0 if ok else 1
    if args.command == "bench-history":
        from repro.obs.perf import (
            bench_history_report,
            load_history,
            prune_history,
        )

        if args.prune is not None:
            try:
                before, after = prune_history(args.history, args.prune)
            except ValueError as exc:
                return _error(str(exc))
            print(f"pruned {args.history}: {before} -> {after} record(s) "
                  f"(last {args.prune} per config)")
        history = load_history(args.history)
        if not history:
            print(f"no recorded runs in {args.history}")
            return 1
        baseline: Optional[Dict[str, Any]] = None
        baseline_path = args.baseline
        if baseline_path is None and Path(_DEFAULT_BASELINE).exists():
            baseline_path = _DEFAULT_BASELINE
        if baseline_path is not None:
            try:
                baseline = _load_bench(baseline_path, "baseline bench")
            except FileNotFoundError as exc:
                return _error(str(exc))
            except ValueError as exc:
                return _error(str(exc))
        print(bench_history_report(history, baseline=baseline,
                                   config_filter=args.config_filter))
        return 0
    if args.command == "watch":
        from repro.obs.telemetry import watch

        return watch(args.telemetry_dir, interval_s=args.interval,
                     once=args.once, max_polls=args.max_polls)
    if args.command == "perf-smoke":
        bench, profile_text = run_perf_smoke(
            args.out, manifest_out=args.manifest, trace_out=args.trace,
            chrome_out=args.chrome_trace, seed=args.seed,
            receivers=args.receivers, image_kib=args.image_kib,
            repeats=args.repeats, warmup=args.warmup,
            topology=args.topology, history_out=args.history,
        )
        print(profile_text)
        print(f"wrote {args.out}: {bench['events']} events, "
              f"{bench['events_per_s']:,.0f} events/s, "
              f"completed={bench['completed']}")
        if args.manifest:
            print(f"wrote manifest {args.manifest}")
        if args.trace:
            print(f"wrote trace {args.trace} ({bench['trace_events']} events)")
        if args.chrome_trace:
            print(f"wrote chrome trace {args.chrome_trace}")
        if args.history:
            if bench.get("history_degraded"):
                print("warning: history append degraded "
                      f"({bench['history_degraded']}); bench artifact still "
                      "written, exit code unchanged")
            else:
                print(f"appended history record to {args.history}")
        return 0
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `... analyze trace | head`
        import os

        # Not durability I/O: re-point the dying stdout at /dev/null so the
        # interpreter's shutdown flush cannot raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())  # replint: disable=REP019 -- stdout redirect, not a persisted artifact
        sys.exit(0)
