"""Observability subsystem: metrics, traces, profiles, and run manifests.

The paper's entire evaluation is a measurement exercise, so measurement is a
first-class subsystem here rather than an ad-hoc ``Counter``:

* :mod:`repro.obs.catalog` — the central metric-name vocabulary (names,
  units, help text).  replint rule REP011 enforces that every
  ``trace.count``/``trace.record`` kind literal comes from this catalogue.
* :mod:`repro.obs.registry` — the typed metrics registry
  (counters/gauges/histograms) that :class:`repro.sim.trace.TraceRecorder`
  is a façade over.
* :mod:`repro.obs.events` — schema-versioned structured trace events with
  span support, JSONL persistence, and a Chrome ``trace_event`` / Perfetto
  exporter.
* :mod:`repro.obs.profile` — the event-loop profiler (per-handler wall time
  and event counts, heap occupancy, events/sec) that plugs into
  :class:`repro.sim.engine.Simulator`; also the *only* sanctioned wall-clock
  call site besides ``experiments/reporting.py`` (replint REP002).
* :mod:`repro.obs.manifest` — run manifests (seed, config, git rev,
  counters, timings) and manifest diffing.
* :mod:`repro.obs.report` / ``python -m repro.obs`` — summarise or diff
  manifests, and the ``perf-smoke`` benchmark entry point used by CI.

This ``__init__`` deliberately imports nothing: ``repro.sim.trace`` (checked
under ``mypy --strict``) imports :mod:`repro.obs.registry`, and keeping the
package root empty keeps that import surface minimal and cycle-free.
"""

__all__ = [
    "catalog",
    "events",
    "manifest",
    "profile",
    "registry",
    "report",
]
