"""Trace-driven protocol invariant checking.

Replays a structured event trace (an in-memory :class:`~repro.obs.events.
EventLog`, a list of :class:`~repro.obs.events.TraceEvent`, or a JSONL file)
against a library of protocol invariants and reports every violation with the
offending event's ``ts``/``node``/``kind``.  The checker is pure offline
analysis — it never imports simulator state — so the same trace a CI smoke
run archives is the artifact a failure is debugged from.

Invariant library
-----------------

``auth_before_buffer``
    A *secured* node (``flight_meta`` ``secured=true``) never buffers a data
    packet (``pkt_buffered``) whose ``(version, unit, index)`` was not first
    authenticated (``pkt_auth_ok``).  This is the Seluge/LR-Seluge
    DoS-resilience claim; plain Deluge advertises ``secured=false`` and is
    exempt rather than falsely flagged.

``tracker_monotone``
    A tracking-table neighbor's distance (packets still needed to decode)
    never increases between SNACKs: ``mark_sent`` only ever decrements.  The
    requester of a ``trigger="snack"`` snapshot is exempt — a SNACK
    legitimately refreshes (and may raise) that one entry.

``serve_only_decoded``
    A node only transmits data packets (``link_tx`` with ``kind="data"``)
    for pages it has decoded, tracked through ``unit_complete``,
    ``fault_reboot`` (``resume_unit`` accounts for flash recovery), and
    ``version_adopted`` resets.  Senders that never emitted ``flight_meta``
    (e.g. attacker rigs outside the protocol) are not tracked.

``pages_sequential``
    ``unit_complete`` events per node advance strictly page by page:
    0, 1, 2, … — restarting at 0 after ``version_adopted`` and at
    ``resume_unit`` after ``fault_reboot``.

``complete_means_all_pages``
    A ``node_complete`` event implies the node decoded every page: its
    tracked unit count equals the event's ``total`` detail.

``quarantine_respected``
    After a node quarantines a neighbor (``defense_quarantine`` with
    ``offender``/``until``), no SNACK relayed by that neighbor is folded
    into the node's TX policy (``tracker_snapshot`` with
    ``trigger="snack"`` and ``via=offender``) before the quarantine
    expires: quarantined neighbors are never served.

``replay_never_rebuffered``
    A node buffers any given packet identity ``(version, unit, index)`` at
    most once (``pkt_buffered``): a replayed frame may arrive again but must
    never be re-buffered.  Identities reset on ``version_adopted`` and, for
    units at or above the flash resume point, on ``fault_reboot``.

``causal_rx_has_tx``
    Every cross-node causal edge is grounded: a ``causal_rx`` (and every
    ``causal_loss``) names a frame that a prior ``causal_tx`` put on the
    air.  A dangling rx edge would let the critical-path walk invent time.

``causal_monotone``
    Causality never runs backwards: a frame's ``cause`` parent (and its
    timer-arm timestamp) precedes the transmission, a delivery follows its
    transmission, and a decode is parented on a frame that was actually
    delivered to that node beforehand.  This is the invariant that makes
    critical paths temporally monotone by construction.

The ``auth_before_buffer``/``tracker_monotone``/``quarantine_respected``/
``replay_never_rebuffered`` invariants need a flight-recorded trace
(``--flight-record``); the ``causal_*`` pair needs a causal trace
(``--causal-trace``); the others also work on plain span traces.  Events whose prerequisites
are absent are skipped, and :attr:`InvariantReport.checked` records how many
events each invariant actually examined so "vacuously clean" is visible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.obs.events import EventLog, TraceEvent, load_jsonl

__all__ = [
    "INVARIANTS",
    "Violation",
    "InvariantReport",
    "check_events",
    "check_jsonl",
]

INVARIANTS: Tuple[str, ...] = (
    "auth_before_buffer",
    "tracker_monotone",
    "serve_only_decoded",
    "pages_sequential",
    "complete_means_all_pages",
    "quarantine_respected",
    "replay_never_rebuffered",
    "causal_rx_has_tx",
    "causal_monotone",
)


@dataclass(frozen=True)
class Violation:
    """One invariant breach, anchored to the offending trace event."""

    invariant: str
    ts: float
    node: Optional[int]
    kind: str
    message: str

    def render(self) -> str:
        where = "network" if self.node is None else f"node {self.node}"
        return (f"[{self.invariant}] t={self.ts:.6f} {where} "
                f"({self.kind}): {self.message}")


@dataclass
class InvariantReport:
    """Outcome of one checking pass."""

    violations: List[Violation] = field(default_factory=list)
    #: events examined per invariant — 0 means the trace lacked the inputs.
    checked: Dict[str, int] = field(default_factory=dict)
    events_seen: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def of_invariant(self, invariant: str) -> List[Violation]:
        return [v for v in self.violations if v.invariant == invariant]

    def summary(self) -> str:
        lines = [
            f"{self.events_seen} events; "
            + ", ".join(f"{name}={self.checked.get(name, 0)}"
                        for name in INVARIANTS)
        ]
        if self.ok:
            lines.append("all invariants hold")
        else:
            lines.append(f"{len(self.violations)} violation(s):")
            lines.extend("  " + v.render() for v in self.violations)
        return "\n".join(lines)


def _int_keys(mapping: Dict[Any, Any]) -> Dict[int, Any]:
    """Normalise JSON round-tripped dict keys back to ints."""
    return {int(k): v for k, v in mapping.items()}


class _Checker:
    def __init__(self) -> None:
        self.report = InvariantReport(checked={name: 0 for name in INVARIANTS})
        # per-node protocol facts from flight_meta
        self.secured: Dict[int, bool] = {}
        self.is_base: Dict[int, bool] = {}
        # per-node decode progress (inf = base station, always complete)
        self.units: Dict[int, float] = {}
        self.expected_unit: Dict[int, int] = {}
        # auth_before_buffer: authenticated (version, unit, index) per node
        self.authed: Dict[int, Set[Tuple[int, int, int]]] = {}
        # tracker_monotone: last per-neighbor distances per (node, unit)
        self.last_distances: Dict[Tuple[int, int], Dict[int, int]] = {}
        # quarantine_respected: (node, offender) -> quarantine expiry ts
        self.quarantines: Dict[Tuple[int, int], float] = {}
        # replay_never_rebuffered: buffered identities per node
        self.buffered: Dict[int, Set[Tuple[int, int, int]]] = {}
        # causal_*: frame -> on-air ts, and (frame, node) -> delivery ts
        self.causal_tx_ts: Dict[int, float] = {}
        self.causal_rx_ts: Dict[Tuple[int, int], float] = {}
        # cause parents not yet seen on the air: either MAC-dropped (fine)
        # or aired *later* (a causality inversion) — settled after the pass.
        self.causal_pending: List[Tuple[int, TraceEvent]] = []

    def _violate(self, invariant: str, event: TraceEvent, message: str) -> None:
        self.report.violations.append(
            Violation(invariant, event.ts, event.node, event.kind, message)
        )

    # -- event handlers -------------------------------------------------------

    def _on_meta(self, e: TraceEvent) -> None:
        if e.node is None:
            return
        d = e.detail
        self.secured[e.node] = bool(d.get("secured", False))
        base = bool(d.get("base", False))
        self.is_base[e.node] = base
        if base:
            self.units[e.node] = math.inf

    def _on_auth_ok(self, e: TraceEvent) -> None:
        if e.node is None:
            return
        d = e.detail
        self.authed.setdefault(e.node, set()).add(
            (int(d.get("version", 0)), int(d["unit"]), int(d["index"]))
        )

    def _on_buffered(self, e: TraceEvent) -> None:
        if e.node is None:
            return
        d = e.detail
        key = (int(d.get("version", 0)), int(d["unit"]), int(d["index"]))
        self.report.checked["replay_never_rebuffered"] += 1
        seen = self.buffered.setdefault(e.node, set())
        if key in seen:
            self._violate(
                "replay_never_rebuffered", e,
                f"re-buffered packet version={key[0]} unit={key[1]} "
                f"index={key[2]} (a replayed frame must stay a duplicate)",
            )
        else:
            seen.add(key)
        if not self.secured.get(e.node, False):
            return
        self.report.checked["auth_before_buffer"] += 1
        if key not in self.authed.get(e.node, ()):
            self._violate(
                "auth_before_buffer", e,
                f"buffered packet version={key[0]} unit={key[1]} "
                f"index={key[2]} without prior authentication",
            )

    def _on_quarantine(self, e: TraceEvent) -> None:
        if e.node is None or "offender" not in e.detail:
            return
        self.quarantines[(e.node, int(e.detail["offender"]))] = float(
            e.detail.get("until", math.inf))

    def _on_tracker(self, e: TraceEvent) -> None:
        if e.node is None:
            return
        if e.detail.get("trigger") == "snack" and "via" in e.detail:
            via = int(e.detail["via"])
            self.report.checked["quarantine_respected"] += 1
            until = self.quarantines.get((e.node, via))
            if until is not None:
                if e.ts < until:
                    self._violate(
                        "quarantine_respected", e,
                        f"folded a SNACK relayed by quarantined neighbor "
                        f"{via} (quarantine active until t={until:g})",
                    )
                else:
                    del self.quarantines[(e.node, via)]
        if "distances" not in e.detail:
            return
        d = e.detail
        unit = int(d["unit"])
        cur = {k: int(v) for k, v in _int_keys(dict(d["distances"])).items()}
        key = (e.node, unit)
        prev = self.last_distances.get(key)
        if prev is not None:
            self.report.checked["tracker_monotone"] += 1
            exempt = (
                int(d["requester"])
                if d.get("trigger") == "snack" and "requester" in d
                else None
            )
            for neighbor in sorted(set(prev) & set(cur)):
                if neighbor == exempt:
                    continue
                if cur[neighbor] > prev[neighbor]:
                    self._violate(
                        "tracker_monotone", e,
                        f"unit {unit}: neighbor {neighbor} distance rose "
                        f"{prev[neighbor]} -> {cur[neighbor]} "
                        f"(trigger={d.get('trigger')!r})",
                    )
        self.last_distances[key] = cur

    def _on_link_tx(self, e: TraceEvent) -> None:
        if e.node is None or e.detail.get("kind") != "data":
            return
        unit = e.detail.get("unit")
        if unit is None or e.node not in self.is_base:
            return  # non-data frame, or a sender outside the protocol
        self.report.checked["serve_only_decoded"] += 1
        if self.units.get(e.node, 0) <= int(unit):
            self._violate(
                "serve_only_decoded", e,
                f"transmitted data for unit {unit} while holding only "
                f"{self.units.get(e.node, 0):g} decoded unit(s)",
            )

    def _on_unit_complete(self, e: TraceEvent) -> None:
        if e.node is None or "unit" not in e.detail:
            return
        unit = int(e.detail["unit"])
        self.report.checked["pages_sequential"] += 1
        expected = self.expected_unit.get(e.node, 0)
        if unit != expected:
            self._violate(
                "pages_sequential", e,
                f"completed unit {unit}, expected unit {expected}",
            )
        self.expected_unit[e.node] = unit + 1
        prev = self.units.get(e.node, 0)
        self.units[e.node] = max(prev, unit + 1)

    def _on_node_complete(self, e: TraceEvent) -> None:
        if e.node is None or "total" not in e.detail:
            return
        self.report.checked["complete_means_all_pages"] += 1
        total = int(e.detail["total"])
        have = self.units.get(e.node, 0)
        if have < total:
            self._violate(
                "complete_means_all_pages", e,
                f"declared complete with {have:g}/{total} units decoded",
            )

    def _on_reboot(self, e: TraceEvent) -> None:
        if e.node is None:
            return
        resume = int(e.detail.get("resume_unit", 0))
        if not self.is_base.get(e.node, False):
            self.units[e.node] = resume
            self.expected_unit[e.node] = resume
        # Units at or above the resume point were lost with RAM and will be
        # received (and buffered) again legitimately.
        seen = self.buffered.get(e.node)
        if seen is not None:
            self.buffered[e.node] = {k for k in seen if k[1] < resume}
        self._drop_tracker_state(e.node)

    def _on_crash(self, e: TraceEvent) -> None:
        if e.node is not None:
            self._drop_tracker_state(e.node)

    def _on_version_adopted(self, e: TraceEvent) -> None:
        if e.node is None:
            return
        if not self.is_base.get(e.node, False):
            self.units[e.node] = 0
            self.expected_unit[e.node] = 0
        self.buffered.pop(e.node, None)
        self._drop_tracker_state(e.node)

    def _on_causal_tx(self, e: TraceEvent) -> None:
        d = e.detail
        if "frame" not in d:
            return
        self.causal_tx_ts[int(d["frame"])] = e.ts
        cause = d.get("cause")
        if not isinstance(cause, dict):
            return
        self.report.checked["causal_monotone"] += 1
        parent = cause.get("parent")
        if parent is not None:
            parent_ts = self.causal_tx_ts.get(int(parent))
            if parent_ts is None:
                # Either the parent was MAC-dropped and never aired
                # (legitimate: retries still name it as the cause), or it
                # airs later in the trace — an inversion only visible once
                # the whole stream has been read. Settle it in run().
                self.causal_pending.append((int(parent), e))
            elif parent_ts > e.ts:
                self._violate(
                    "causal_monotone", e,
                    f"frame {d['frame']} aired at t={e.ts:g} before its "
                    f"cause parent {parent} (t={parent_ts:g})",
                )
        armed = cause.get("armed")
        if armed is not None and float(armed) > e.ts:
            self._violate(
                "causal_monotone", e,
                f"frame {d['frame']} aired at t={e.ts:g} before its timer "
                f"was armed (t={float(armed):g})",
            )

    def _on_causal_rx(self, e: TraceEvent) -> None:
        d = e.detail
        if e.node is None or "frame" not in d:
            return
        frame = int(d["frame"])
        self.report.checked["causal_rx_has_tx"] += 1
        tx_ts = self.causal_tx_ts.get(frame)
        if tx_ts is None:
            self._violate(
                "causal_rx_has_tx", e,
                f"delivery of frame {frame} has no prior causal_tx",
            )
        else:
            self.report.checked["causal_monotone"] += 1
            if tx_ts > e.ts:
                self._violate(
                    "causal_monotone", e,
                    f"frame {frame} delivered at t={e.ts:g} before it "
                    f"aired (t={tx_ts:g})",
                )
            self.causal_rx_ts[(frame, e.node)] = e.ts

    def _on_causal_loss(self, e: TraceEvent) -> None:
        d = e.detail
        if "frame" not in d:
            return
        frame = int(d["frame"])
        self.report.checked["causal_rx_has_tx"] += 1
        if frame not in self.causal_tx_ts:
            self._violate(
                "causal_rx_has_tx", e,
                f"loss of frame {frame} has no prior causal_tx",
            )

    def _on_causal_decode(self, e: TraceEvent) -> None:
        d = e.detail
        if e.node is None:
            return
        parent = d.get("frame")
        if parent is None:
            return
        self.report.checked["causal_monotone"] += 1
        rx_ts = self.causal_rx_ts.get((int(parent), e.node))
        if rx_ts is None:
            self._violate(
                "causal_monotone", e,
                f"decode of unit {d.get('unit')} parented on frame {parent}, "
                f"which was never delivered to this node",
            )
        elif rx_ts > e.ts:
            self._violate(
                "causal_monotone", e,
                f"decode of unit {d.get('unit')} at t={e.ts:g} precedes the "
                f"delivery of its parent frame {parent} (t={rx_ts:g})",
            )

    def _drop_tracker_state(self, node: int) -> None:
        # Crash / new version wipes the TX service dict; stale distance
        # baselines must not chain across the reset.
        for key in [k for k in self.last_distances if k[0] == node]:
            del self.last_distances[key]

    # -- driver ---------------------------------------------------------------

    _HANDLERS = {
        "flight_meta": _on_meta,
        "pkt_auth_ok": _on_auth_ok,
        "pkt_buffered": _on_buffered,
        "tracker_snapshot": _on_tracker,
        "defense_quarantine": _on_quarantine,
        "link_tx": _on_link_tx,
        "unit_complete": _on_unit_complete,
        "node_complete": _on_node_complete,
        "fault_reboot": _on_reboot,
        "fault_crash": _on_crash,
        "version_adopted": _on_version_adopted,
        "causal_tx": _on_causal_tx,
        "causal_rx": _on_causal_rx,
        "causal_loss": _on_causal_loss,
        "causal_decode": _on_causal_decode,
    }

    def run(self, events: Iterable[TraceEvent]) -> InvariantReport:
        for event in events:
            self.report.events_seen += 1
            handler = self._HANDLERS.get(event.kind)
            if handler is not None:
                handler(self, event)
        for parent, e in self.causal_pending:
            parent_ts = self.causal_tx_ts.get(parent)
            if parent_ts is not None and parent_ts > e.ts:
                # The parent did air after all — just later than its child,
                # which inverts causality. Parents still unknown here were
                # MAC-dropped and stay exempt.
                self._violate(
                    "causal_monotone", e,
                    f"frame {e.detail['frame']} aired at t={e.ts:g} before "
                    f"its cause parent {parent} (t={parent_ts:g})",
                )
        return self.report


def check_events(
    events: Union[EventLog, Iterable[TraceEvent]],
) -> InvariantReport:
    """Check the invariant library against an in-memory trace."""
    if isinstance(events, EventLog):
        events = events.events
    return _Checker().run(events)


def check_jsonl(path: Union[str, Path]) -> InvariantReport:
    """Check the invariant library against an archived JSONL trace."""
    _header, events = load_jsonl(path)
    return _Checker().run(events)
