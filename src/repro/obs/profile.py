"""Event-loop profiler: where does the simulator's wall-clock time go?

:class:`LoopProfiler` plugs into :meth:`repro.sim.engine.Simulator.set_profiler`
and attributes wall time and event counts to each handler (by qualified
name), tracks heap occupancy at every event, and summarises events/sec.
The engine pays a single ``is None`` check per event when profiling is off —
the zero-overhead-when-disabled contract the benchmarks rely on.

Together with ``experiments/reporting.py`` this module is a sanctioned
wall-clock call site (replint REP002): profiling is *measurement about* the
simulation, never an input to it.  :func:`utc_now_iso` lives here for the
same reason — run manifests need a creation timestamp, and routing it
through this module keeps the clock audit surface at two files.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

__all__ = ["HandlerStat", "LoopProfiler", "utc_now_iso"]


def utc_now_iso() -> str:
    """Current UTC time, ISO-8601 with seconds precision (manifest stamps)."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


@dataclass
class HandlerStat:
    """Accumulated cost of one event handler."""

    name: str
    calls: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


def _handler_name(fn: Callable[..., Any]) -> str:
    name = getattr(fn, "__qualname__", None)
    if name is None:
        name = getattr(fn, "__name__", None) or repr(fn)
    module = getattr(fn, "__module__", "") or ""
    short = module.rsplit(".", 1)[-1]
    return f"{short}.{name}" if short else str(name)


class LoopProfiler:
    """Per-handler wall-time and event-count attribution for one simulator."""

    def __init__(self) -> None:
        self.handlers: Dict[str, HandlerStat] = {}
        self.events = 0
        self.total_s = 0.0
        self.peak_heap = 0
        # Cache fn -> name: resolving __qualname__ per event would dominate
        # the cost of profiling tiny handlers.
        self._names: Dict[int, str] = {}
        self._cached_fns: Dict[int, Callable[..., Any]] = {}

    # -- the engine-facing hook (repro.sim.engine.SimProfiler) ----------------

    def clock(self) -> float:
        return time.perf_counter()

    def record(self, fn: Callable[..., Any], elapsed: float, heap_len: int) -> None:
        self.events += 1
        self.total_s += elapsed
        if heap_len > self.peak_heap:
            self.peak_heap = heap_len
        # Bound methods are recreated per access; key the cache on the
        # underlying function object so each handler resolves once.
        target = getattr(fn, "__func__", fn)
        key = id(target)
        name = self._names.get(key)
        if name is None:
            name = _handler_name(fn)
            self._names[key] = name
            self._cached_fns[key] = target  # keep target alive: id() stability
        stat = self.handlers.get(name)
        if stat is None:
            stat = HandlerStat(name)
            self.handlers[name] = stat
        stat.calls += 1
        stat.total_s += elapsed
        if elapsed > stat.max_s:
            stat.max_s = elapsed

    # -- reporting -------------------------------------------------------------

    def top_handlers(self, limit: Optional[int] = None) -> List[HandlerStat]:
        ranked = sorted(
            self.handlers.values(), key=lambda s: (-s.total_s, s.name)
        )
        return ranked if limit is None else ranked[:limit]

    def events_per_second(self) -> float:
        return self.events / self.total_s if self.total_s > 0 else 0.0

    def summary(self, heap_stats: Optional[Dict[str, int]] = None) -> Dict[str, Any]:
        """JSON-ready profile summary (embedded in run manifests)."""
        out: Dict[str, Any] = {
            "events": self.events,
            "handler_wall_s": round(self.total_s, 6),
            "events_per_s": round(self.events_per_second(), 1),
            "peak_heap": self.peak_heap,
            "handlers": [
                {
                    "name": s.name,
                    "calls": s.calls,
                    "total_s": round(s.total_s, 6),
                    "mean_us": round(s.mean_s * 1e6, 3),
                    "max_us": round(s.max_s * 1e6, 3),
                }
                for s in self.top_handlers()
            ],
        }
        if heap_stats is not None:
            out["heap"] = dict(heap_stats)
        return out

    def report(self, limit: int = 15) -> str:
        """Aligned text table of the costliest handlers."""
        from repro.experiments.reporting import format_table

        rows: List[List[object]] = [
            [s.name, s.calls, round(s.total_s * 1e3, 3),
             round(s.mean_s * 1e6, 2), round(s.max_s * 1e6, 2)]
            for s in self.top_handlers(limit)
        ]
        title = (
            f"event-loop profile: {self.events} events, "
            f"{self.total_s * 1e3:.1f} ms in handlers, "
            f"{self.events_per_second():,.0f} events/s, "
            f"peak heap {self.peak_heap}"
        )
        return format_table(
            ["handler", "calls", "total_ms", "mean_us", "max_us"], rows,
            title=title,
        )
