"""Event-loop profiler: where does the simulator's wall-clock time go?

:class:`LoopProfiler` plugs into :meth:`repro.sim.engine.Simulator.set_profiler`
and attributes wall time and event counts to each handler (by qualified
name), tracks heap occupancy at every event, and summarises events/sec.
The engine pays a single ``is None`` check per event when profiling is off —
the zero-overhead-when-disabled contract the benchmarks rely on.

Beyond plain per-handler attribution the profiler supports four opt-in
deep-attribution modes (all off by default so the cheap path stays cheap):

- ``warmup_calls=N`` — each handler's first N calls land in a separate
  warmup bucket, excluded from means/max, so first-call lazy-init cost
  (import, table construction) no longer skews steady-state numbers.
- ``kinds=True`` — cost is additionally bucketed per (handler × event
  kind), where the kind is classified from the event's first scheduled
  argument (a radio transmission contributes its packet kind).  This is
  what lets a regression report say "``radio.Radio._finish`` got slower
  *for DATA packets*" instead of naming only the handler.
- ``alloc=True`` — ``tracemalloc`` net-allocation deltas are attributed
  per handler (the profiler starts/stops tracing itself unless tracing
  is already active).
- ``sample_every=N`` — every N recorded events a ``(events, wall_s,
  heap_len)`` sample is appended, feeding Chrome-trace counter tracks.

Together with ``experiments/reporting.py`` this module is a sanctioned
wall-clock call site (replint REP002), and with ``repro.obs.perf`` a
sanctioned ``tracemalloc`` site (REP018): profiling is *measurement about*
the simulation, never an input to it.  :func:`utc_now_iso` lives here for
the same reason — run manifests need a creation timestamp, and routing it
through this module keeps the clock audit surface small.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["HandlerStat", "KindStat", "LoopProfiler", "utc_now_iso"]


def utc_now_iso() -> str:
    """Current UTC time, ISO-8601 with seconds precision (manifest stamps)."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


@dataclass
class HandlerStat:
    """Accumulated cost of one event handler (steady state, post-warmup)."""

    name: str
    calls: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    warmup_calls: int = 0
    warmup_s: float = 0.0
    alloc_b: int = 0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


@dataclass
class KindStat:
    """Accumulated cost of one (handler × event kind) bucket."""

    handler: str
    kind: str
    calls: int = 0
    total_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


def _handler_name(fn: Callable[..., Any]) -> str:
    name = getattr(fn, "__qualname__", None)
    if name is None:
        name = getattr(fn, "__name__", None) or repr(fn)
    module = getattr(fn, "__module__", "") or ""
    short = module.rsplit(".", 1)[-1]
    return f"{short}.{name}" if short else str(name)


def classify_kind(args: Tuple[Any, ...]) -> str:
    """Best-effort event-kind label from a handler's scheduled arguments.

    Domain-agnostic by construction (the engine knows no packet types):
    a first argument carrying ``.frame.kind`` (radio transmissions) or
    ``.kind`` contributes that kind's value; bare ints (node ids used by
    pump/timer callbacks) classify as ``node``; anything else falls back
    to its type name.
    """
    if not args:
        return "-"
    first = args[0]
    kind = getattr(getattr(first, "frame", None), "kind", None)
    if kind is None:
        kind = getattr(first, "kind", None)
    value = getattr(kind, "value", kind)
    if isinstance(value, str) and value:
        return value
    if isinstance(first, bool):
        return "-"
    if isinstance(first, int):
        return "node"
    if isinstance(first, (tuple, list, dict, set, str, float, bytes)):
        # Builtin containers/scalars carry no domain identity worth a bucket.
        return "-"
    return type(first).__name__.lstrip("_").lower()


class LoopProfiler:
    """Per-handler wall-time and event-count attribution for one simulator."""

    def __init__(
        self,
        warmup_calls: int = 0,
        kinds: bool = False,
        alloc: bool = False,
        sample_every: int = 0,
    ) -> None:
        self.handlers: Dict[str, HandlerStat] = {}
        self.events = 0
        self.warmup_events = 0
        self.total_s = 0.0
        self.peak_heap = 0
        self.warmup_calls = warmup_calls
        self.kind_buckets: Dict[Tuple[str, str], KindStat] = {}
        self.samples: List[Tuple[int, float, int]] = []
        self._kinds = kinds
        self._sample_every = sample_every
        # Cache fn -> name: resolving __qualname__ per event would dominate
        # the cost of profiling tiny handlers.
        self._names: Dict[int, str] = {}
        self._cached_fns: Dict[int, Callable[..., Any]] = {}
        # Allocation attribution: clock() is called exactly twice per event
        # (start/end brackets), so keeping the last two traced-memory marks
        # gives record() the per-event net delta without extra hooks.
        self._alloc = False
        self._owns_tracemalloc = False
        self._mem_prev = 0
        self._mem_cur = 0
        self.alloc_peak_b = 0
        if alloc:
            self.start_alloc()

    # -- allocation tracing lifecycle ------------------------------------------

    def start_alloc(self) -> None:
        """Enable per-handler net-allocation attribution via tracemalloc."""
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True
        self._alloc = True

    def stop_alloc(self) -> None:
        """Disable allocation attribution; stops tracing if we started it."""
        if self._alloc:
            self.alloc_peak_b = max(
                self.alloc_peak_b, tracemalloc.get_traced_memory()[1]
            )
        self._alloc = False
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._owns_tracemalloc = False

    # -- the engine-facing hook (repro.sim.engine.SimProfiler) ----------------

    def clock(self) -> float:
        if self._alloc:
            self._mem_prev = self._mem_cur
            self._mem_cur = tracemalloc.get_traced_memory()[0]
        return time.perf_counter()

    def record(
        self,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        elapsed: float,
        heap_len: int,
    ) -> None:
        if heap_len > self.peak_heap:
            self.peak_heap = heap_len
        # Bound methods are recreated per access; key the cache on the
        # underlying function object so each handler resolves once.
        target = getattr(fn, "__func__", fn)
        key = id(target)
        name = self._names.get(key)
        if name is None:
            name = _handler_name(fn)
            self._names[key] = name
            self._cached_fns[key] = target  # keep target alive: id() stability
        stat = self.handlers.get(name)
        if stat is None:
            stat = HandlerStat(name)
            self.handlers[name] = stat
        if stat.warmup_calls < self.warmup_calls:
            # First-call lazy init (imports, table builds) is real cost but
            # not steady-state cost; bucket it separately so means/max
            # describe the behaviour a vectorisation PR actually changes.
            stat.warmup_calls += 1
            stat.warmup_s += elapsed
            self.warmup_events += 1
            return
        self.events += 1
        self.total_s += elapsed
        stat.calls += 1
        stat.total_s += elapsed
        if elapsed > stat.max_s:
            stat.max_s = elapsed
        if self._alloc:
            stat.alloc_b += self._mem_cur - self._mem_prev
        if self._kinds:
            kind = classify_kind(args)
            bucket = self.kind_buckets.get((name, kind))
            if bucket is None:
                bucket = KindStat(name, kind)
                self.kind_buckets[(name, kind)] = bucket
            bucket.calls += 1
            bucket.total_s += elapsed
        if self._sample_every and self.events % self._sample_every == 0:
            self.samples.append((self.events, self.total_s, heap_len))

    # -- reporting -------------------------------------------------------------

    def top_handlers(self, limit: Optional[int] = None) -> List[HandlerStat]:
        ranked = sorted(
            self.handlers.values(), key=lambda s: (-s.total_s, s.name)
        )
        return ranked if limit is None else ranked[:limit]

    def top_kinds(self, limit: Optional[int] = None) -> List[KindStat]:
        ranked = sorted(
            self.kind_buckets.values(),
            key=lambda s: (-s.total_s, s.handler, s.kind),
        )
        return ranked if limit is None else ranked[:limit]

    def events_per_second(self) -> float:
        return self.events / self.total_s if self.total_s > 0 else 0.0

    def summary(self, heap_stats: Optional[Dict[str, int]] = None) -> Dict[str, Any]:
        """JSON-ready profile summary (embedded in run manifests)."""
        out: Dict[str, Any] = {
            "events": self.events,
            "handler_wall_s": round(self.total_s, 6),
            "events_per_s": round(self.events_per_second(), 1),
            "peak_heap": self.peak_heap,
            "handlers": [
                {
                    "name": s.name,
                    "calls": s.calls,
                    "total_s": round(s.total_s, 6),
                    "mean_us": round(s.mean_s * 1e6, 3),
                    "max_us": round(s.max_s * 1e6, 3),
                }
                for s in self.top_handlers()
            ],
        }
        if self.warmup_calls:
            out["warmup"] = {
                "calls_per_handler": self.warmup_calls,
                "events": self.warmup_events,
                "wall_s": round(
                    sum(s.warmup_s for s in self.handlers.values()), 6
                ),
            }
        if self._kinds or self.kind_buckets:
            out["kinds"] = [
                {
                    "handler": s.handler,
                    "kind": s.kind,
                    "calls": s.calls,
                    "total_s": round(s.total_s, 6),
                    "mean_us": round(s.mean_s * 1e6, 3),
                }
                for s in self.top_kinds()
            ]
        if self._alloc or self.alloc_peak_b:
            for entry, s in zip(out["handlers"], self.top_handlers()):
                entry["alloc_kb"] = round(s.alloc_b / 1024.0, 3)
            out["alloc"] = {"traced_peak_kb": round(self.alloc_peak_b / 1024.0, 3)}
        if heap_stats is not None:
            out["heap"] = dict(heap_stats)
        return out

    def report(self, limit: int = 15) -> str:
        """Aligned text table of the costliest handlers."""
        from repro.experiments.reporting import format_table

        rows: List[List[object]] = [
            [s.name, s.calls, round(s.total_s * 1e3, 3),
             round(s.mean_s * 1e6, 2), round(s.max_s * 1e6, 2)]
            for s in self.top_handlers(limit)
        ]
        title = (
            f"event-loop profile: {self.events} events, "
            f"{self.total_s * 1e3:.1f} ms in handlers, "
            f"{self.events_per_second():,.0f} events/s, "
            f"peak heap {self.peak_heap}"
        )
        table = format_table(
            ["handler", "calls", "total_ms", "mean_us", "max_us"], rows,
            title=title,
        )
        if not self.kind_buckets:
            return table
        kind_rows: List[List[object]] = [
            [s.handler, s.kind, s.calls, round(s.total_s * 1e3, 3),
             round(s.mean_s * 1e6, 2)]
            for s in self.top_kinds(limit)
        ]
        kinds_table = format_table(
            ["handler", "kind", "calls", "total_ms", "mean_us"], kind_rows,
            title="per-event-kind attribution",
        )
        return table + "\n\n" + kinds_table
