"""Typed metrics registry: counters, gauges, and histograms with specs.

:class:`MetricsRegistry` owns the numeric state a simulation accumulates.
:class:`repro.sim.trace.TraceRecorder` is a thin façade over it — the
recorder's ``counters`` attribute *is* the registry's counter store, so the
hot path (``trace.count``) stays a single dict update while every name can
be resolved back to its :class:`~repro.obs.catalog.MetricSpec` for units and
help text in reports.

This module is imported by ``repro.sim.trace`` and is therefore part of the
``mypy --strict`` surface; it deliberately imports only the catalogue.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.catalog import METRICS, MetricSpec, is_known_metric, spec_for

__all__ = [
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
]


@dataclass
class CounterMetric:
    """Typed handle for one monotonically increasing counter."""

    name: str
    _values: "Counter[str]"

    def inc(self, amount: int = 1) -> None:
        self._values[self.name] += amount

    @property
    def value(self) -> int:
        return self._values[self.name]


@dataclass
class GaugeMetric:
    """Typed handle for one point-in-time level."""

    name: str
    _values: Dict[str, float]

    def set(self, value: float) -> None:
        self._values[self.name] = value

    @property
    def value(self) -> float:
        return self._values.get(self.name, 0.0)


@dataclass
class HistogramMetric:
    """Streaming distribution summary: count, sum, min, max.

    Deliberately bucket-free — the simulator's distributions of interest
    (handler latencies, span durations) are summarised and the full-fidelity
    stream lives in the structured trace, not the registry.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min_value: float = field(default=float("inf"))
    max_value: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0.0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": float(self.count),
            "sum": self.total,
            "mean": self.mean,
            "min": self.min_value,
            "max": self.max_value,
        }


class MetricsRegistry:
    """Declared metrics plus their accumulated values.

    Counter state is a plain :class:`collections.Counter` exposed as
    :attr:`counters` so the :class:`~repro.sim.trace.TraceRecorder` façade
    can alias it directly — incrementing a counter costs exactly what it
    cost before the registry existed.  Unknown names are accepted (ad-hoc
    counters keep working) but are reported by :meth:`unregistered_names`;
    run manifests record the count under ``obs_unregistered_metric``.
    """

    def __init__(self, specs: Optional[Iterable[MetricSpec]] = None) -> None:
        chosen: Tuple[MetricSpec, ...] = (
            METRICS if specs is None else tuple(specs)
        )
        self._specs: Dict[str, MetricSpec] = {s.name: s for s in chosen}
        self.counters: "Counter[str]" = Counter()
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramMetric] = {}

    # -- declaration ---------------------------------------------------------

    def register(self, spec: MetricSpec) -> MetricSpec:
        """Add (or replace) one declared metric."""
        self._specs[spec.name] = spec
        return spec

    def spec(self, name: str) -> Optional[MetricSpec]:
        """The declared spec for ``name`` (family spec for dynamic names)."""
        found = self._specs.get(name)
        if found is not None:
            return found
        return spec_for(name)

    # -- typed handles --------------------------------------------------------

    def counter(self, name: str) -> CounterMetric:
        return CounterMetric(name, self.counters)

    def gauge(self, name: str) -> GaugeMetric:
        return GaugeMetric(name, self.gauges)

    def histogram(self, name: str) -> HistogramMetric:
        found = self.histograms.get(name)
        if found is None:
            found = HistogramMetric(name)
            self.histograms[name] = found
        return found

    # -- direct accumulation (the hot path) -----------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- introspection ---------------------------------------------------------

    def unregistered_names(self) -> List[str]:
        """Counter names used without a catalogue/registry declaration."""
        return sorted(
            name
            for name in self.counters
            if name not in self._specs and not is_known_metric(name)
        )

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of all counters (the legacy trace snapshot)."""
        return dict(self.counters)

    def full_snapshot(self) -> Dict[str, object]:
        """Counters, gauges, and histogram summaries, JSON-ready."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.summary() for name, hist in sorted(self.histograms.items())
            },
        }
