"""The central metric-name catalogue.

Every counter incremented through :class:`repro.sim.trace.TraceRecorder` and
every structured-event kind has a declared :class:`MetricSpec` here: a name,
a metric kind, a unit, and one line of help text.  The catalogue is the
single vocabulary that

* the typed registry (:mod:`repro.obs.registry`) resolves specs from,
* the manifest/report CLI uses to attach units and help to counter tables,
* replint rule REP011 enforces at review time — a ``trace.count("txdata")``
  typo no longer silently creates an orphan counter, it fails the lint.

replint loads this vocabulary *syntactically* (it never imports analysed
code), so every ``MetricSpec`` first argument and every entry of
:data:`DYNAMIC_METRIC_PREFIXES` must be a plain string literal.

Metric kinds:

* ``counter`` — monotonically increasing count (packets, bytes, drops).
* ``gauge`` — point-in-time level (heap occupancy, pending events).
* ``histogram`` — distribution of observations (per-handler latency).
* ``event`` — a structured trace event kind (instant or span); events are
  also counted, so every event kind doubles as a counter name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "MetricSpec",
    "METRICS",
    "DYNAMIC_METRIC_PREFIXES",
    "METRICS_BY_NAME",
    "is_known_metric",
    "spec_for",
]


@dataclass(frozen=True)
class MetricSpec:
    """Declared identity of one metric: name, kind, unit, help text."""

    name: str
    kind: str = "counter"  # "counter" | "gauge" | "histogram" | "event"
    unit: str = ""
    help: str = ""


METRICS: Tuple[MetricSpec, ...] = (
    # -- transmissions (radio TX path) --------------------------------------
    MetricSpec("tx_data", "counter", "packets", "data packets transmitted"),
    MetricSpec("tx_data_bytes", "counter", "bytes", "data bytes transmitted"),
    MetricSpec("tx_snack", "counter", "packets", "SNACK requests transmitted"),
    MetricSpec("tx_snack_bytes", "counter", "bytes", "SNACK bytes transmitted"),
    MetricSpec("tx_adv", "counter", "packets", "advertisements transmitted"),
    MetricSpec("tx_adv_bytes", "counter", "bytes", "advertisement bytes transmitted"),
    MetricSpec("tx_signature", "counter", "packets", "signature packets transmitted"),
    MetricSpec("tx_signature_bytes", "counter", "bytes", "signature bytes transmitted"),
    MetricSpec("tx_total", "counter", "packets", "all frames transmitted"),
    MetricSpec("tx_total_bytes", "counter", "bytes", "all bytes transmitted"),
    MetricSpec("tx_aborted", "counter", "frames", "frames truncated by a mid-air crash"),
    MetricSpec("tx_dropped_detached", "counter", "frames",
               "sends refused because the node was off the air"),
    MetricSpec("tx_data_deferred", "counter", "times",
               "TX pump deferrals to let an earlier page finish"),
    # -- receptions (radio RX path) -----------------------------------------
    MetricSpec("rx_delivered", "counter", "frames", "frames delivered to a receiver"),
    MetricSpec("rx_delivered_bytes", "counter", "bytes", "bytes delivered to receivers"),
    MetricSpec("rx_lost", "counter", "frames", "frames dropped by the loss model"),
    MetricSpec("rx_collision", "counter", "frames", "frames lost to collisions"),
    MetricSpec("rx_halfduplex_miss", "counter", "frames",
               "frames missed while the receiver was itself transmitting"),
    MetricSpec("rx_fault_dropped", "counter", "frames",
               "frames dropped by an installed fault tamper hook"),
    MetricSpec("mac_drop", "event", "frames",
               "frames abandoned after exhausting CSMA backoff attempts"),
    # -- protocol state machine ---------------------------------------------
    MetricSpec("unit_complete", "event", "units", "a node completed one unit/page"),
    MetricSpec("node_complete", "event", "nodes", "a node holds the whole image"),
    MetricSpec("version_adopted", "event", "times",
               "a node switched to a new image version"),
    MetricSpec("upgrade_abandoned", "counter", "times",
               "version upgrades abandoned after unverifiable advertisements"),
    MetricSpec("snack_suppressed", "counter", "requests",
               "SNACKs suppressed by an overheard equivalent request"),
    MetricSpec("request_data_suppressed", "counter", "requests",
               "requests suppressed by recently overheard data"),
    MetricSpec("data_suppressed", "counter", "packets",
               "pending transmissions suppressed by overheard data"),
    MetricSpec("data_rejected", "counter", "packets",
               "data packets failing per-packet authentication"),
    MetricSpec("data_version_mismatch", "counter", "packets",
               "data packets for a different image version"),
    MetricSpec("snack_ignored_flood", "counter", "requests",
               "SNACKs ignored by the denial-of-receipt flood guard"),
    MetricSpec("ctrl_auth_reject_adv", "counter", "packets",
               "advertisements rejected by control-plane authentication"),
    MetricSpec("ctrl_auth_reject_snack", "counter", "packets",
               "SNACKs rejected by control-plane authentication"),
    # -- faults and recovery -------------------------------------------------
    MetricSpec("fault_crash", "event", "times", "a node lost power"),
    MetricSpec("fault_reboot", "event", "times", "a crashed node rebooted"),
    MetricSpec("fault_link_down", "event", "times", "a directed link went down"),
    MetricSpec("fault_link_up", "event", "times", "a downed link came back up"),
    MetricSpec("fault_partition", "event", "times", "a network partition was applied"),
    MetricSpec("fault_heal", "event", "times", "a partition healed"),
    MetricSpec("fault_corrupt_window", "event", "times",
               "a frame-corruption window opened"),
    MetricSpec("fault_corrupt_dropped", "counter", "frames",
               "frames dropped as link-layer CRC failures"),
    MetricSpec("fault_corrupt_delivered", "counter", "frames",
               "corrupted frames delivered past the CRC model"),
    MetricSpec("flash_units_restored", "counter", "units",
               "units resumed from flash across all reboots"),
    # -- attacks --------------------------------------------------------------
    MetricSpec("attack_bogus_data", "counter", "packets", "forged data packets injected"),
    MetricSpec("attack_bogus_signature", "counter", "packets",
               "forged signature packets injected"),
    MetricSpec("attack_forged_control", "counter", "packets",
               "forged control packets injected"),
    MetricSpec("attack_dor_snack", "counter", "packets",
               "denial-of-receipt SNACK floods injected"),
    MetricSpec("attack_jam", "counter", "frames",
               "jam frames transmitted by a reactive jammer"),
    MetricSpec("tx_jam", "counter", "frames", "jam frames transmitted"),
    MetricSpec("tx_jam_bytes", "counter", "bytes", "jam bytes transmitted"),
    MetricSpec("attack_greyhole_served", "counter", "packets",
               "packets a greyhole relay chose to forward"),
    MetricSpec("attack_greyhole_dropped", "counter", "packets",
               "packets a greyhole relay silently swallowed"),
    MetricSpec("attack_replayed", "counter", "frames",
               "captured authentic frames re-injected by a replay attacker"),
    MetricSpec("attack_sybil_snack", "counter", "packets",
               "SNACKs forged under fabricated Sybil requester identities"),
    MetricSpec("attack_deployed", "event", "attackers",
               "the attack engine placed an attacker into the topology"),
    MetricSpec("attack_halted", "event", "attackers",
               "an attacker stopped firing (victims done or window closed)"),
    # -- defenses (protocol hardening, DESIGN.md §12) -------------------------
    MetricSpec("defense_snack_rate_limited", "counter", "requests",
               "SNACKs dropped by the per-neighbor token bucket"),
    MetricSpec("defense_quarantined_drop", "counter", "packets",
               "control packets dropped from quarantined neighbors"),
    MetricSpec("defense_quarantine", "event", "neighbors",
               "a misbehaving neighbor entered quarantine"),
    MetricSpec("defense_replay_dropped", "counter", "frames",
               "frames dropped by the replay identity window"),
    MetricSpec("defense_backoff_applied", "counter", "times",
               "request re-arms stretched by exponential backoff"),
    MetricSpec("defense_stall_rerequest", "event", "times",
               "the stall watchdog rotated a stuck page to a new server"),
    # -- adversarial run results (RunResult counters, not trace counters) -----
    MetricSpec("adv_frames_injected", "counter", "frames",
               "frames all attackers put on the air (damage attribution)"),
    MetricSpec("adv_frames_delivered", "counter", "frames",
               "injected frames that reached a victim's radio"),
    MetricSpec("adv_auth_drops", "counter", "packets",
               "injected data packets rejected by victim authentication"),
    MetricSpec("invariant_violations", "counter", "violations",
               "trace invariant violations detected after an adversarial run"),
    # -- observability itself -------------------------------------------------
    MetricSpec("trace_dropped", "counter", "records",
               "trace records evicted by the TraceRecorder ring buffer"),
    MetricSpec("obs_unregistered_metric", "counter", "names",
               "distinct counter names used without a catalogue entry"),
    # -- flight recorder (per-link accounting, --flight-record) ---------------
    MetricSpec("link_tx", "event", "frames",
               "flight: a frame was put on the air by a sender"),
    MetricSpec("link_rx", "event", "frames",
               "flight: a frame was delivered over one (src, dst) link"),
    MetricSpec("link_lost", "event", "frames",
               "flight: a delivery attempt failed (channel/collision/"
               "halfduplex/tamper cause in detail)"),
    MetricSpec("link_auth_drop", "event", "packets",
               "flight: a data packet failed authentication before buffering"),
    MetricSpec("link_duplicate", "event", "packets",
               "flight: an already-buffered data packet arrived again"),
    MetricSpec("pkt_auth_ok", "event", "packets",
               "flight: per-packet authentication succeeded at a receiver"),
    MetricSpec("pkt_buffered", "event", "packets",
               "flight: a receiver inserted a data packet into its RX buffer"),
    MetricSpec("tracker_snapshot", "event", "snapshots",
               "flight: TX-policy state after a SNACK fold or a transmission"),
    MetricSpec("flight_meta", "event", "runs",
               "flight: run metadata (protocol, base station, total units)"),
    MetricSpec("flight_topology", "event", "maps",
               "flight: hop distance of every node from the base station"),
    MetricSpec("flight_link_stats", "event", "links",
               "flight: end-of-run per-link accounting summary"),
    # -- causal tracer (cross-node provenance, --causal-trace) ----------------
    MetricSpec("causal_meta", "event", "runs",
               "causal: per-node run metadata (protocol, base, total units)"),
    MetricSpec("causal_tx", "event", "frames",
               "causal: a frame went on the air with its causal parent "
               "(the rx/timer/decode event that triggered it)"),
    MetricSpec("causal_rx", "event", "frames",
               "causal: a frame was delivered to one receiver (cross-node "
               "causal edge tx -> rx)"),
    MetricSpec("causal_loss", "event", "frames",
               "causal: a delivery attempt failed (the causal edge that "
               "retransmission wait is charged to)"),
    MetricSpec("causal_decode", "event", "units",
               "causal: a page decoded/verified, parented on the frame that "
               "completed it"),
    # -- span kinds (packet/page lifecycles) ----------------------------------
    MetricSpec("span_disseminate", "event", "spans",
               "node lifetime from start() to holding the full image"),
    MetricSpec("span_page", "event", "spans",
               "page assembly: first buffered packet to verified decode"),
    MetricSpec("span_serve", "event", "spans",
               "TX service: first SNACK for a unit to the policy draining"),
    # -- simulator internals (profiler/manifest gauges) -----------------------
    MetricSpec("sim_events", "gauge", "events", "events executed by the engine"),
    MetricSpec("sim_heap_peak", "gauge", "events", "peak event-heap occupancy"),
    MetricSpec("sim_heap_compactions", "gauge", "times",
               "lazy-deletion heap compactions performed"),
    MetricSpec("handler_wall_s", "histogram", "seconds",
               "wall-clock time per event handler invocation"),
)

# Families of per-instance counter names built with f-strings at runtime
# (``tx_<kind>_unit_<n>``).  A name matching any of these prefixes is part of
# the vocabulary; replint skips non-literal kinds anyway, but the registry
# and report tooling resolve these to their family spec.
DYNAMIC_METRIC_PREFIXES: Tuple[str, ...] = (
    "tx_data_unit_",
    "tx_snack_unit_",
    "tx_adv_unit_",
    "tx_signature_unit_",
    "adv_attacker_",
)

METRICS_BY_NAME: Dict[str, MetricSpec] = {spec.name: spec for spec in METRICS}

_DYNAMIC_SPECS: Dict[str, MetricSpec] = {
    prefix: MetricSpec(prefix + "*", "counter", "packets",
                       "per-unit transmission count family")
    for prefix in DYNAMIC_METRIC_PREFIXES
}


def is_known_metric(name: str) -> bool:
    """Is ``name`` part of the declared vocabulary (exact or dynamic)?"""
    if name in METRICS_BY_NAME:
        return True
    return name.startswith(DYNAMIC_METRIC_PREFIXES)


def spec_for(name: str) -> Optional[MetricSpec]:
    """Resolve ``name`` to its spec (family spec for dynamic names)."""
    spec = METRICS_BY_NAME.get(name)
    if spec is not None:
        return spec
    for prefix, family in _DYNAMIC_SPECS.items():
        if name.startswith(prefix):
            return family
    return None
