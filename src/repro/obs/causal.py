"""Causal dissemination analysis: provenance DAG, critical paths, attribution.

A ``--causal-trace`` run (see :class:`repro.obs.flight.CausalRecorder`)
stamps every frame with the event that *caused* it — the received frame or
timer arm that triggered the transmission — and records every cross-node
delivery.  This module reconstructs that provenance as a DAG and answers the
question the wavefront plots cannot: **why** did node ``n`` complete at time
``t``?

The core operation is the backward **critical-path walk**
(:func:`critical_path`): starting from a node's completion, follow each
event to its cause — decode → delivery of the completing packet → its
transmission → the SNACK that requested it → the timer that armed the SNACK
→ the frame that armed the timer → … — until the chain roots at the base
station's initial advertisement.  The walk telescopes: consecutive edges
share endpoints, so the per-edge spans partition ``[t_root, t_end]`` exactly
and the **attributed fraction** ``1 - t_root / t_end`` measures how much of
the node's completion latency the chain explains (CI gates this at ≥ 95%).

Every edge lands in one of nine **wait categories**:

``airtime``
    the frame was in flight (transmission start → delivery);
``mac``
    the frame sat in the sender's MAC queue (enqueue → on air);
``serve_pacing``
    a server paced out a data burst (request arrival → this packet's
    enqueue): inter-packet TX spacing plus earlier packets of the burst;
``retransmission``
    a request timer expired and the SNACK was re-sent (``retry`` /
    ``upgrade_retry``): the signature wait the paper's erasure coding
    attacks — LR-Seluge should show *less* of it under loss than
    Deluge/Seluge;
``request_backoff``
    the ordinary randomized request delay before a first SNACK
    (``first_request``, ``serve_defer``, ``data_progress``);
``suppression``
    Trickle-style politeness: the request was deferred because traffic was
    overheard (``data_burst``, ``lower_page``, ``snack_suppressed``);
``trickle``
    advertisement-interval wait: the gap between an advertiser becoming
    useful (its enabling page decode, or the base at ``t=0``) and its ADV
    going out;
``decode_verify``
    page decode / packet verification on the receiver;
``admission``
    security admission (``upgrade``: puzzle-guarded signature acquisition
    before data flows).

All functions are pure reductions over the event list; JSON artifacts go
through :mod:`repro.persist` atomic writes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.obs.events import EventLog, TraceEvent, load_jsonl

__all__ = [
    "WAIT_CATEGORIES",
    "CausalDag",
    "PathEdge",
    "CriticalPath",
    "build_dag",
    "critical_path",
    "attribute_run",
    "analyze_causal_jsonl",
    "render_attribution",
    "render_why",
    "comparison_report",
]

WAIT_CATEGORIES: Tuple[str, ...] = (
    "airtime",
    "mac",
    "serve_pacing",
    "retransmission",
    "request_backoff",
    "suppression",
    "trickle",
    "decode_verify",
    "admission",
)

# Request-timer reasons -> wait category; everything else (first_request,
# serve_defer, data_progress, unknown) is ordinary request backoff.
_REASON_CATEGORY: Dict[str, str] = {
    "retry": "retransmission",
    "upgrade_retry": "retransmission",
    "data_burst": "suppression",
    "lower_page": "suppression",
    "snack_suppressed": "suppression",
    "upgrade": "admission",
}

# Backstop against pathological traces; real chains are a few thousand steps.
_MAX_WALK_STEPS = 200_000


@dataclass
class _TxRecord:
    ts: float                       # on-air time
    node: int                       # sender
    kind: str
    enq: float                      # MAC enqueue time
    unit: Optional[int] = None
    cause: Optional[Dict[str, Any]] = None


@dataclass
class _DecodeRecord:
    ts: float
    node: int
    unit: int
    frame: Optional[int]            # completing packet's frame id
    need: int = 0
    of: int = 0


@dataclass
class CausalDag:
    """The reconstructed provenance graph of one causal-traced run."""

    base: Optional[int] = None
    meta: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    tx: Dict[int, _TxRecord] = field(default_factory=dict)
    #: (frame, node) -> delivery time
    rx: Dict[Tuple[int, int], float] = field(default_factory=dict)
    #: frame -> number of lossy non-deliveries
    losses: Dict[int, int] = field(default_factory=dict)
    #: (node, unit) -> decode record
    decodes: Dict[Tuple[int, int], _DecodeRecord] = field(default_factory=dict)
    #: node -> completion time (first node_complete)
    complete: Dict[int, float] = field(default_factory=dict)
    end_ts: float = 0.0

    @property
    def protocol(self) -> str:
        for d in self.meta.values():
            if "protocol" in d:
                return str(d["protocol"])
        return "?"

    @property
    def profile(self) -> str:
        for d in self.meta.values():
            if "profile" in d:
                return str(d["profile"])
        return "?"

    def receivers(self) -> List[int]:
        nodes = sorted(set(self.meta) | set(self.complete))
        return [n for n in nodes if n != self.base]


def build_dag(events: Union[EventLog, Iterable[TraceEvent]]) -> CausalDag:
    """Index a causal-traced event stream into a :class:`CausalDag`."""
    if isinstance(events, EventLog):
        events = events.events
    dag = CausalDag()
    for e in events:
        dag.end_ts = max(dag.end_ts, e.ts + (e.dur or 0.0))
        d = e.detail
        if e.kind == "causal_meta" and e.node is not None:
            dag.meta[e.node] = dict(d)
            if d.get("base"):
                dag.base = e.node
        elif e.kind == "causal_tx" and e.node is not None and "frame" in d:
            unit = d.get("unit")
            dag.tx[int(d["frame"])] = _TxRecord(
                ts=e.ts, node=e.node, kind=str(d.get("kind", "?")),
                enq=float(d.get("enq", e.ts)),
                unit=None if unit is None else int(unit),
                cause=d.get("cause"),
            )
        elif e.kind == "causal_rx" and e.node is not None and "frame" in d:
            dag.rx.setdefault((int(d["frame"]), e.node), e.ts)
        elif e.kind == "causal_loss" and "frame" in d:
            frame = int(d["frame"])
            dag.losses[frame] = dag.losses.get(frame, 0) + 1
        elif e.kind == "causal_decode" and e.node is not None:
            unit = int(d["unit"])
            parent = d.get("frame")
            dag.decodes.setdefault((e.node, unit), _DecodeRecord(
                ts=e.ts, node=e.node, unit=unit,
                frame=None if parent is None else int(parent),
                need=int(d.get("need", 0)), of=int(d.get("of", 0)),
            ))
        elif e.kind == "node_complete" and e.node is not None:
            dag.complete.setdefault(e.node, e.ts)
    return dag


@dataclass(frozen=True)
class PathEdge:
    """One telescoped interval on a critical path (``t_from <= t_to``)."""

    category: str
    t_from: float
    t_to: float
    node: int                       # where the wait occurred
    unit: Optional[int]             # page whose completion this explains
    note: str = ""

    @property
    def span(self) -> float:
        return self.t_to - self.t_from


@dataclass
class CriticalPath:
    """The attributed chain from the causal root to one node's completion."""

    node: int
    t_end: float
    root_ts: float
    #: forward time order (root first)
    edges: List[PathEdge] = field(default_factory=list)
    #: True when the walk stopped before reaching the base root (e.g. a
    #: retry parented on a MAC-dropped frame that never aired).
    truncated: bool = False

    @property
    def attributed_s(self) -> float:
        return self.t_end - self.root_ts

    @property
    def attribution(self) -> float:
        """Fraction of the completion latency the chain explains."""
        if self.t_end <= 0.0:
            return 1.0
        return max(0.0, 1.0 - self.root_ts / self.t_end)

    def categories(self) -> Dict[str, float]:
        totals = {c: 0.0 for c in WAIT_CATEGORIES}
        for edge in self.edges:
            totals[edge.category] += edge.span
        return totals

    def per_unit(self) -> Dict[int, Dict[str, float]]:
        out: Dict[int, Dict[str, float]] = {}
        for edge in self.edges:
            if edge.unit is None:
                continue
            bucket = out.setdefault(edge.unit, {})
            bucket[edge.category] = bucket.get(edge.category, 0.0) + edge.span
        return out


def critical_path(dag: CausalDag, node: int) -> Optional[CriticalPath]:
    """Walk backward from ``node``'s completion to the causal root.

    Returns ``None`` when the node never completed or the trace holds no
    decode for it.  The walk only ever moves backward in time (enforced at
    every hop, so a malformed trace truncates instead of looping), and the
    emitted edges telescope: each edge starts where the next one ends.
    """
    t_end = dag.complete.get(node)
    if t_end is None:
        return None
    meta = dag.meta.get(node, {})
    total = meta.get("total_units")
    start: Optional[_DecodeRecord] = None
    if total:
        start = dag.decodes.get((node, int(total) - 1))
    if start is None:
        mine = [d for (n, _u), d in dag.decodes.items() if n == node]
        start = max(mine, key=lambda d: d.ts) if mine else None
    if start is None:
        return None

    path = CriticalPath(node=node, t_end=t_end, root_ts=t_end)
    edges: List[PathEdge] = []
    cur = t_end
    unit: Optional[int] = start.unit
    visited: Set[Tuple[str, int, int]] = set()
    steps = 0

    def emit(category: str, lo: float, at: int, note: str = "") -> None:
        nonlocal cur
        if lo < cur:
            edges.append(PathEdge(category, lo, cur, node=at, unit=unit,
                                  note=note))
        cur = min(cur, lo)

    def root(truncated: bool) -> None:
        path.root_ts = cur
        path.truncated = path.truncated or truncated

    # completion -> the decode that finished the image
    emit("decode_verify", start.ts, node, note=f"decode unit {start.unit}")
    item: Optional[Tuple[Any, ...]] = ("decode", start)

    while item is not None:
        steps += 1
        if steps > _MAX_WALK_STEPS:
            root(truncated=True)
            break
        tag = item[0]

        if tag == "decode":
            d: _DecodeRecord = item[1]
            unit = d.unit
            key = ("d", d.node, d.unit)
            if key in visited:
                root(truncated=True)
                break
            visited.add(key)
            if d.frame is None:
                root(truncated=False)
                break
            rx_ts = dag.rx.get((d.frame, d.node))
            if rx_ts is None or rx_ts > cur:
                root(truncated=True)
                break
            emit("decode_verify", rx_ts, d.node,
                 note=f"verify frame {d.frame}")
            item = ("tx", d.frame, True)
            continue

        if tag == "tx":
            fid, arrived_via_rx = int(item[1]), bool(item[2])
            rec = dag.tx.get(fid)
            if rec is None:
                root(truncated=True)
                break
            key = ("t", fid, 0)
            if key in visited:
                root(truncated=True)
                break
            visited.add(key)
            if arrived_via_rx:
                if rec.ts > cur:
                    root(truncated=True)
                    break
                emit("airtime", rec.ts, rec.node,
                     note=f"{rec.kind} frame {fid}")
            elif rec.enq > cur:
                # A self-parent must at least have been *enqueued* already;
                # its air time may legitimately postdate the re-arm.
                root(truncated=True)
                break
            emit("mac", min(rec.enq, cur), rec.node)
            cause = rec.cause
            if not isinstance(cause, dict):
                root(truncated=False)
                break
            trigger = cause.get("trigger")
            if trigger == "serve":
                armed = cause.get("armed")
                if armed is not None:
                    emit("serve_pacing", min(float(armed), cur), rec.node,
                         note=f"burst for unit {cause.get('unit')}")
                parent = cause.get("parent")
                if parent is None:
                    root(truncated=False)
                    break
                item = ("cause_frame", int(parent), rec.node, "serve_pacing")
            elif trigger == "request":
                reason = str(cause.get("reason", "unknown"))
                cat = _REASON_CATEGORY.get(reason, "request_backoff")
                armed = cause.get("armed")
                if armed is not None:
                    emit(cat, min(float(armed), cur), rec.node, note=reason)
                parent = cause.get("parent")
                if parent is None:
                    root(truncated=False)
                    break
                item = ("cause_frame", int(parent), rec.node, cat)
            elif trigger == "trickle":
                uc = int(cause.get("uc", 0))
                if dag.base is not None and rec.node == dag.base:
                    emit("trickle", 0.0, rec.node, note="base advertisement")
                    root(truncated=False)
                    break
                enabling = dag.decodes.get((rec.node, uc - 1)) if uc else None
                if enabling is None or enabling.ts > cur:
                    root(truncated=uc != 0)
                    break
                emit("trickle", enabling.ts, rec.node,
                     note=f"adv after unit {uc - 1}")
                item = ("decode", enabling)
            elif trigger == "start":
                emit("trickle", 0.0, rec.node, note="base start push")
                root(truncated=False)
                break
            else:
                root(truncated=False)
                break
            continue

        if tag == "cause_frame":
            # A request/serve parent: either a frame delivered *to* this
            # node, or (retry chains) this node's own previous transmission.
            fid, at, gap_cat = int(item[1]), int(item[2]), str(item[3])
            rx_ts = dag.rx.get((fid, at))
            if rx_ts is not None and rx_ts <= cur:
                emit(gap_cat, rx_ts, at)
                item = ("tx", fid, True)
                continue
            rec = dag.tx.get(fid)
            if rec is not None and rec.node == at and rec.enq <= cur:
                # The node's own earlier transmission (retry chains).  The
                # re-arm happens at *enqueue* time, so the previous attempt
                # may still be in the MAC queue — walk through its enqueue,
                # not its (possibly later) air time.
                emit(gap_cat, min(rec.ts, cur), at, note="previous attempt")
                item = ("tx", fid, False)
                continue
            # MAC-dropped or lost parent: the frame never reached anywhere
            # we can walk from.
            root(truncated=True)
            break

        raise AssertionError(f"unknown walk state {tag!r}")  # pragma: no cover

    edges.reverse()
    path.edges = edges
    return path


def attribute_run(
    events: Union[EventLog, Iterable[TraceEvent], CausalDag],
) -> Dict[str, Any]:
    """Full-run latency attribution: per node, per category, per page."""
    dag = events if isinstance(events, CausalDag) else build_dag(events)
    per_node: List[Dict[str, Any]] = []
    cat_totals = {c: 0.0 for c in WAIT_CATEGORIES}
    per_unit: Dict[int, Dict[str, float]] = {}
    attributions: List[float] = []
    for node in dag.receivers():
        cp = critical_path(dag, node)
        if cp is None:
            per_node.append({"node": node, "completed": False})
            continue
        cats = cp.categories()
        for c, v in cats.items():
            cat_totals[c] += v
        for u, bucket in cp.per_unit().items():
            tgt = per_unit.setdefault(u, {})
            for c, v in bucket.items():
                tgt[c] = tgt.get(c, 0.0) + v
        attributions.append(cp.attribution)
        top = max(cats, key=lambda c: cats[c]) if any(cats.values()) else None
        per_node.append({
            "node": node,
            "completed": True,
            "t_complete": round(cp.t_end, 6),
            "root_ts": round(cp.root_ts, 6),
            "attribution": round(cp.attribution, 6),
            "truncated": cp.truncated,
            "edges": len(cp.edges),
            "top_category": top,
            "categories": {c: round(v, 6) for c, v in cats.items() if v > 0},
        })
    total_wait = sum(cat_totals.values())
    return {
        "type": "causal_analysis",
        "protocol": dag.protocol,
        "profile": dag.profile,
        "base": dag.base,
        "receivers": len(dag.receivers()),
        "completed": sum(1 for n in per_node if n.get("completed")),
        "losses": sum(dag.losses.values()),
        "min_attribution": round(min(attributions), 6) if attributions else 0.0,
        "mean_attribution": round(
            sum(attributions) / len(attributions), 6) if attributions else 0.0,
        "categories": {c: round(v, 6) for c, v in cat_totals.items()},
        "category_share": {
            c: round(v / total_wait, 6) if total_wait else 0.0
            for c, v in cat_totals.items()
        },
        "per_unit": {
            str(u): {c: round(v, 6) for c, v in sorted(bucket.items())}
            for u, bucket in sorted(per_unit.items())
        },
        "nodes": per_node,
    }


def analyze_causal_jsonl(
    path: Union[str, Path],
    out: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Attribute an archived causal trace; optionally persist the JSON."""
    _header, events = load_jsonl(path)
    analysis = attribute_run(events)
    analysis["trace_file"] = str(path)
    if out is not None:
        from repro.persist import atomic_write_json

        atomic_write_json(Path(out), analysis, sort_keys=True)
    return analysis


def _fmt_s(value: float) -> str:
    return f"{value:.3f}"


def render_attribution(analysis: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`attribute_run` output."""
    from repro.experiments.reporting import format_table

    lines = [
        f"protocol:   {analysis['protocol']} "
        f"(profile {analysis['profile']}, base={analysis['base']})",
        f"receivers:  {analysis['receivers']} "
        f"({analysis['completed']} completed), "
        f"{analysis['losses']} lossy non-deliveries",
        f"attribution: mean {analysis['mean_attribution']:.1%}, "
        f"min {analysis['min_attribution']:.1%}",
    ]
    cats = analysis.get("categories", {})
    share = analysis.get("category_share", {})
    rows = [
        [c, _fmt_s(cats.get(c, 0.0)), f"{share.get(c, 0.0):.1%}"]
        for c in WAIT_CATEGORIES if cats.get(c, 0.0) > 0
    ]
    if rows:
        lines.append("")
        lines.append(format_table(
            ["category", "total_s", "share"], rows,
            title="critical-path wait attribution (all completed receivers)",
        ))
    node_rows = [
        [n["node"], _fmt_s(n["t_complete"]), f"{n['attribution']:.1%}",
         n["edges"], n.get("top_category") or "-",
         "yes" if n["truncated"] else "no"]
        for n in analysis.get("nodes", []) if n.get("completed")
    ]
    if node_rows:
        lines.append("")
        lines.append(format_table(
            ["node", "t_complete", "attributed", "edges", "top_wait",
             "truncated"], node_rows,
            title="per-node completion attribution",
        ))
    unit_rows = []
    for u, bucket in analysis.get("per_unit", {}).items():
        top = max(bucket, key=lambda c: bucket[c]) if bucket else "-"
        unit_rows.append([u, _fmt_s(sum(bucket.values())),
                          f"{top} ({_fmt_s(bucket.get(top, 0.0))}s)"
                          if bucket else "-"])
    if unit_rows:
        lines.append("")
        lines.append(format_table(
            ["page", "wait_s", "dominant wait"], unit_rows,
            title="per-page wavefront breakdown",
        ))
    incomplete = [n["node"] for n in analysis.get("nodes", [])
                  if not n.get("completed")]
    if incomplete:
        lines.append("")
        lines.append("never completed: "
                     + ", ".join(str(n) for n in incomplete))
    return "\n".join(lines)


def render_why(dag: CausalDag, path: CriticalPath, top: int = 12) -> str:
    """The per-node "why was completion at t?" report."""
    from repro.experiments.reporting import format_table

    lines = [
        f"node {path.node} completed at t={path.t_end:.3f}s; the causal "
        f"chain roots at t={path.root_ts:.3f}s and explains "
        f"{path.attribution:.1%} of that latency"
        + (" (chain truncated before the base root)" if path.truncated
           else ""),
    ]
    cats = path.categories()
    total = sum(cats.values())
    rows = [
        [c, _fmt_s(v), f"{v / total:.1%}" if total else "-"]
        for c, v in sorted(cats.items(), key=lambda kv: -kv[1]) if v > 0
    ]
    if rows:
        lines.append("")
        lines.append(format_table(
            ["category", "wait_s", "share"], rows,
            title=f"where node {path.node}'s completion latency went",
        ))
    longest = sorted(path.edges, key=lambda e: -e.span)[:top]
    keep = {id(e) for e in longest}
    rows = [
        [f"{e.t_from:.3f}", f"{e.t_to:.3f}", _fmt_s(e.span), e.category,
         e.node, "-" if e.unit is None else e.unit, e.note or "-"]
        for e in path.edges if id(e) in keep
    ]
    if rows:
        lines.append("")
        lines.append(format_table(
            ["from", "to", "span_s", "category", "node", "page", "note"],
            rows, title=f"{len(rows)} longest wait(s) on the critical path "
                        f"({len(path.edges)} edges total)",
        ))
    return "\n".join(lines)


def comparison_report(analyses: List[Dict[str, Any]]) -> str:
    """Protocol-comparison table over several runs' category totals."""
    from repro.experiments.reporting import format_table

    labels = [str(a.get("protocol", "?")) for a in analyses]
    rows = []
    for c in WAIT_CATEGORIES:
        values = [a.get("categories", {}).get(c, 0.0) for a in analyses]
        if not any(values):
            continue
        rows.append([c] + [_fmt_s(v) for v in values])
    rows.append(["(mean completion)"] + [
        _fmt_s(sum(n["t_complete"] for n in a.get("nodes", [])
                   if n.get("completed"))
               / max(1, a.get("completed", 0) or 1))
        for a in analyses
    ])
    return format_table(
        ["category"] + labels, rows,
        title="critical-path wait totals by protocol (seconds)",
    )
