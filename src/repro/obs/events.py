"""Schema-versioned structured trace events with span support.

An :class:`EventLog` collects :class:`TraceEvent` instances — instants
(``ph="i"``) and completed spans (``ph="X"``, with a duration) — in
*simulated* time.  Two persistent forms are supported:

* **JSONL** (:meth:`EventLog.write_jsonl` / :func:`load_jsonl`): one JSON
  object per line, first line a schema header.  This is the archival form
  the run manifest points at.
* **Chrome ``trace_event`` JSON** (:meth:`EventLog.to_chrome_trace` /
  :meth:`EventLog.write_chrome_trace`): loads directly in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing`` for timeline viewing.
  Each simulated node renders as one track (``tid``), with network-wide
  events (no node) on track 0.

Span pairing is keyed by ``(kind, node, key)``: ``begin`` remembers the
start time, ``end`` emits one complete event covering the interval.  A
``begin`` with no matching ``end`` (e.g. an incomplete run) is flushed as an
open-span instant by :meth:`EventLog.flush_open_spans` so nothing is lost
silently.

The log hooks into :class:`repro.sim.trace.TraceRecorder` as its ``sink``:
every ``trace.record(...)`` becomes an instant event and the protocol span
call sites (``span_begin``/``span_end``) become complete events.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "TraceEvent",
    "EventLog",
    "load_jsonl",
]

#: Version stamped on newly written traces.  v2 added the causal provenance
#: kinds (``causal_*``, :mod:`repro.obs.causal`); the event shape itself is
#: unchanged, so v1 archives remain fully readable.
TRACE_SCHEMA_VERSION = 2

#: Versions :func:`load_jsonl` accepts.  Readers treat unknown *kinds* as
#: opaque, so the only compatibility contract is the event dict shape —
#: identical between v1 and v2.
SUPPORTED_SCHEMA_VERSIONS = frozenset({1, 2})

# Chrome trace_event phase codes used here: instant, complete (with dur).
_PH_INSTANT = "i"
_PH_COMPLETE = "X"

SpanKey = Tuple[str, Optional[int], Any]


@dataclass(frozen=True)
class TraceEvent:
    """One structured event in simulated seconds."""

    ts: float                      # event (or span start) time, sim seconds
    kind: str                      # catalogue event kind
    ph: str = _PH_INSTANT          # "i" instant | "X" complete span
    node: Optional[int] = None     # owning node, None = network-wide
    dur: Optional[float] = None    # span duration, sim seconds ("X" only)
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"ts": self.ts, "kind": self.kind, "ph": self.ph}
        if self.node is not None:
            out["node"] = self.node
        if self.dur is not None:
            out["dur"] = self.dur
        if self.detail:
            out["detail"] = self.detail
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        return cls(
            ts=float(data["ts"]),
            kind=str(data["kind"]),
            ph=str(data.get("ph", _PH_INSTANT)),
            node=data.get("node"),
            dur=data.get("dur"),
            detail=dict(data.get("detail", {})),
        )


class EventLog:
    """Bounded, append-only collection of structured trace events."""

    def __init__(self, max_events: Optional[int] = None) -> None:
        self.events: List[TraceEvent] = []
        self.max_events = max_events
        self.dropped = 0
        self.open_spans_flushed = 0
        self._open_spans: Dict[SpanKey, Tuple[float, Dict[str, Any]]] = {}

    def __len__(self) -> int:
        return len(self.events)

    def _append(self, event: TraceEvent) -> None:
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    # -- sink protocol (used by TraceRecorder) -------------------------------

    def instant(self, ts: float, kind: str, node: Optional[int] = None,
                detail: Optional[Dict[str, Any]] = None) -> None:
        """Record one instantaneous event."""
        self._append(TraceEvent(ts=ts, kind=kind, ph=_PH_INSTANT, node=node,
                                detail=detail or {}))

    def begin(self, ts: float, kind: str, node: Optional[int] = None,
              key: Any = None, detail: Optional[Dict[str, Any]] = None) -> None:
        """Open a span; a later matching :meth:`end` emits the complete event.

        A duplicate ``begin`` for an open key restarts the span (first write
        would hide re-entry bugs; the *latest* attempt is the interesting
        interval for e.g. a page whose assembly restarted after a crash).
        """
        self._open_spans[(kind, node, key)] = (ts, dict(detail or {}))

    def end(self, ts: float, kind: str, node: Optional[int] = None,
            key: Any = None, detail: Optional[Dict[str, Any]] = None) -> None:
        """Close a span opened by :meth:`begin`; unmatched ends are instants."""
        opened = self._open_spans.pop((kind, node, key), None)
        if opened is None:
            self.instant(ts, kind, node, detail)
            return
        start, start_detail = opened
        merged = dict(start_detail)
        if detail:
            merged.update(detail)
        self._append(TraceEvent(ts=start, kind=kind, ph=_PH_COMPLETE, node=node,
                                dur=max(0.0, ts - start), detail=merged))

    def flush_open_spans(self, ts: float) -> int:
        """Emit every still-open span as an open-ended complete event.

        Call once at the end of a run so spans that never closed (incomplete
        dissemination, crashed node) still appear on the timeline; returns
        the number flushed.
        """
        flushed = 0
        for (kind, node, _key), (start, detail) in sorted(
            self._open_spans.items(), key=lambda item: item[1][0]
        ):
            merged = dict(detail)
            merged["open"] = True
            self._append(TraceEvent(ts=start, kind=kind, ph=_PH_COMPLETE,
                                    node=node, dur=max(0.0, ts - start),
                                    detail=merged))
            flushed += 1
        self._open_spans.clear()
        self.open_spans_flushed += flushed
        return flushed

    # -- JSONL ----------------------------------------------------------------

    def header(self) -> Dict[str, Any]:
        return {
            "type": "header",
            "schema_version": TRACE_SCHEMA_VERSION,
            "events": len(self.events),
            "dropped": self.dropped,
            "open_spans_flushed": self.open_spans_flushed,
        }

    def to_jsonl(self) -> str:
        lines = [json.dumps(self.header(), sort_keys=True)]
        lines.extend(
            json.dumps(event.to_dict(), sort_keys=True) for event in self.events
        )
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        from repro.persist import atomic_write_text

        target = Path(path)
        atomic_write_text(target, self.to_jsonl())
        return target

    # -- Chrome trace_event / Perfetto ----------------------------------------

    def to_chrome_trace(
        self,
        process_name: str = "repro-sim",
        extra_events: Optional[List[Dict[str, Any]]] = None,
    ) -> Dict[str, Any]:
        """The log as a Chrome ``trace_event`` document (JSON object form).

        Timestamps are microseconds (Chrome's unit); one thread per node so
        Perfetto renders a per-node timeline, with span kinds as categories.
        ``extra_events`` (already in ``trace_event`` dict form — e.g. the
        profiler counter tracks from :mod:`repro.obs.perf`) are appended
        verbatim after the log's own events.
        """
        trace_events: List[Dict[str, Any]] = [
            {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
             "args": {"name": process_name}},
            {"ph": "M", "pid": 1, "tid": 0, "name": "thread_name",
             "args": {"name": "network"}},
        ]
        named_nodes = sorted(
            {e.node for e in self.events if e.node is not None}
        )
        for node in named_nodes:
            trace_events.append(
                {"ph": "M", "pid": 1, "tid": node + 1, "name": "thread_name",
                 "args": {"name": f"node {node}"}}
            )
        for event in self.events:
            tid = 0 if event.node is None else event.node + 1
            entry: Dict[str, Any] = {
                "name": event.kind,
                "cat": event.kind.split("_", 1)[0],
                "ph": event.ph,
                "pid": 1,
                "tid": tid,
                "ts": event.ts * 1e6,
                "args": dict(event.detail),
            }
            if event.ph == _PH_INSTANT:
                entry["s"] = "t"  # thread-scoped instant
            if event.dur is not None:
                entry["dur"] = event.dur * 1e6
            trace_events.append(entry)
        if extra_events:
            trace_events.extend(extra_events)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"schema_version": TRACE_SCHEMA_VERSION},
        }

    def write_chrome_trace(
        self,
        path: Union[str, Path],
        process_name: str = "repro-sim",
        extra_events: Optional[List[Dict[str, Any]]] = None,
    ) -> Path:
        from repro.persist import atomic_write_text

        target = Path(path)
        atomic_write_text(
            target,
            json.dumps(self.to_chrome_trace(process_name, extra_events)),
        )
        return target

    # -- queries ---------------------------------------------------------------

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def spans(self, kind: Optional[str] = None) -> List[TraceEvent]:
        return [
            e for e in self.events
            if e.ph == _PH_COMPLETE and (kind is None or e.kind == kind)
        ]


def load_jsonl(path: Union[str, Path]) -> Tuple[Dict[str, Any], List[TraceEvent]]:
    """Read a JSONL trace back: ``(header, events)``.

    Raises ``ValueError`` on a missing/foreign header or an unsupported
    schema version, so readers fail loudly instead of misinterpreting.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("type") != "header":
        raise ValueError(f"{path}: first line is not a trace header")
    version = header.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        supported = ", ".join(str(v) for v in sorted(SUPPORTED_SCHEMA_VERSIONS))
        raise ValueError(
            f"{path}: unsupported trace schema {version!r} "
            f"(reader supports {supported})"
        )
    events = [TraceEvent.from_dict(json.loads(line)) for line in lines[1:] if line]
    return header, events
