"""Protocol flight recorder: per-link accounting and tracker introspection.

A :class:`FlightRecorder` hangs off :class:`repro.sim.trace.TraceRecorder` as
its optional ``flight`` attachment.  Hot-path call sites (the radio delivery
loop, the data-packet authentication branch, the TX pump) guard every hook
behind a single ``trace.flight is not None`` check, so a run without
``--flight-record`` pays one attribute test per site and nothing else.

Everything the recorder emits goes through ``sink.instant`` **directly** —
never through ``TraceRecorder.record`` — so enabling the flight recorder
cannot touch the counter store: the same seed and flags produce byte-identical
counter snapshots, completion times, and RNG draws with and without it.  The
emitted kinds (``link_tx``/``link_rx``/``link_lost``/``link_auth_drop``/
``link_duplicate``/``pkt_auth_ok``/``pkt_buffered``/``tracker_snapshot``/
``flight_meta``/``flight_topology``/``flight_link_stats``) are declared in
:mod:`repro.obs.catalog` like every other event kind, so the schema-versioned
:class:`~repro.obs.events.EventLog` JSONL form carries them unchanged and the
invariant checker (:mod:`repro.obs.invariants`) and analyzer
(:mod:`repro.obs.analyze`) replay them offline.

Besides the event stream the recorder keeps a per-link accounting matrix in
memory; :meth:`FlightRecorder.finalize` flushes it as one ``flight_link_stats``
event per observed ``(src, dst)`` link plus a ``flight_topology`` event with
every node's hop distance from the base station (BFS over the observed
radio's topology).

:class:`CausalRecorder` (``--causal-trace``, the ``trace.causal``
attachment) lives here too and runs under the identical discipline: it
emits the ``causal_*`` provenance kinds that :mod:`repro.obs.causal`
reconstructs the dissemination DAG and critical paths from.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Frame
    from repro.net.radio import Radio
    from repro.sim.trace import TraceSink

__all__ = ["FlightRecorder", "CausalRecorder", "LOSS_CAUSES"]

#: Delivery-failure causes the radio reports, in the order they are checked.
LOSS_CAUSES: Tuple[str, ...] = ("halfduplex", "collision", "channel", "tamper")


class _LinkStats:
    """Mutable per-``(src, dst)`` accounting row."""

    __slots__ = ("rx", "auth_drop", "duplicate", "causes")

    def __init__(self) -> None:
        self.rx = 0
        self.auth_drop = 0
        self.duplicate = 0
        self.causes: Dict[str, int] = {}

    @property
    def lost(self) -> int:
        return sum(self.causes.values())

    def to_detail(self, src: int, dst: int) -> Dict[str, Any]:
        return {
            "src": src,
            "dst": dst,
            "rx": self.rx,
            "lost": self.lost,
            "auth_drop": self.auth_drop,
            "duplicate": self.duplicate,
            "causes": dict(sorted(self.causes.items())),
        }


class FlightRecorder:
    """Collects per-link, per-packet, and tracker events into a trace sink."""

    def __init__(self, sink: "TraceSink") -> None:
        self.sink = sink
        self._links: Dict[Tuple[int, int], _LinkStats] = {}
        self._tx_frames: Dict[int, int] = {}
        self._radio: Optional["Radio"] = None
        self._base: Optional[int] = None
        self._finalized = False

    # -- wiring ---------------------------------------------------------------

    def observe_radio(self, radio: "Radio") -> None:
        """Remember the radio whose topology :meth:`finalize` maps."""
        self._radio = radio

    def _link(self, src: int, dst: int) -> _LinkStats:
        stats = self._links.get((src, dst))
        if stats is None:
            stats = _LinkStats()
            self._links[(src, dst)] = stats
        return stats

    # -- radio hooks ----------------------------------------------------------

    def on_tx(self, ts: float, sender: int, kind: str, size: int,
              unit: Optional[int] = None) -> None:
        """A frame left ``sender``'s radio (one event per broadcast)."""
        self._tx_frames[sender] = self._tx_frames.get(sender, 0) + 1
        detail: Dict[str, Any] = {"kind": kind, "size": size}
        if unit is not None:
            detail["unit"] = unit
        self.sink.instant(ts, "link_tx", sender, detail)

    def on_rx(self, ts: float, src: int, dst: int, kind: str,
              unit: Optional[int] = None) -> None:
        """A frame was delivered over the directed link ``src -> dst``."""
        self._link(src, dst).rx += 1
        detail: Dict[str, Any] = {"src": src, "kind": kind}
        if unit is not None:
            detail["unit"] = unit
        self.sink.instant(ts, "link_rx", dst, detail)

    def on_loss(self, ts: float, src: int, dst: int, cause: str,
                kind: str) -> None:
        """A delivery attempt on ``src -> dst`` failed (see LOSS_CAUSES)."""
        causes = self._link(src, dst).causes
        causes[cause] = causes.get(cause, 0) + 1
        self.sink.instant(ts, "link_lost", dst,
                          {"src": src, "cause": cause, "kind": kind})

    # -- protocol hooks -------------------------------------------------------

    def on_meta(self, ts: float, node: int, protocol: str, is_base: bool,
                total_units: Optional[int], secured: bool) -> None:
        """Per-node run metadata, emitted once at ``start()``."""
        if is_base and self._base is None:
            self._base = node
        self.sink.instant(ts, "flight_meta", node, {
            "protocol": protocol,
            "base": is_base,
            "total_units": total_units,
            "secured": secured,
        })

    def on_auth_ok(self, ts: float, node: int, src: int, version: int,
                   unit: int, index: int) -> None:
        """Per-packet authentication succeeded at ``node``."""
        self.sink.instant(ts, "pkt_auth_ok", node, {
            "src": src, "version": version, "unit": unit, "index": index,
        })

    def on_buffered(self, ts: float, node: int, src: int, version: int,
                    unit: int, index: int) -> None:
        """``node`` inserted a data packet into its RX buffer."""
        self.sink.instant(ts, "pkt_buffered", node, {
            "src": src, "version": version, "unit": unit, "index": index,
        })

    def on_auth_drop(self, ts: float, node: int, src: int, version: int,
                     unit: int, index: int) -> None:
        """A data packet failed authentication *before* buffering."""
        self._link(src, node).auth_drop += 1
        self.sink.instant(ts, "link_auth_drop", node, {
            "src": src, "version": version, "unit": unit, "index": index,
        })

    def on_duplicate(self, ts: float, node: int, src: int, version: int,
                     unit: int, index: int) -> None:
        """An already-buffered data packet arrived again."""
        self._link(src, node).duplicate += 1
        self.sink.instant(ts, "link_duplicate", node, {
            "src": src, "version": version, "unit": unit, "index": index,
        })

    def on_tracker(self, ts: float, node: int, unit: int, trigger: str,
                   state: Optional[Dict[str, Any]],
                   requester: Optional[int] = None,
                   index: Optional[int] = None,
                   via: Optional[int] = None) -> None:
        """TX-policy snapshot after a SNACK fold (``trigger="snack"``) or a
        transmission being accounted (``trigger="sent"``).

        ``requester`` is the *claimed* identity folded into the policy;
        ``via`` the link-layer sender that relayed it — they differ only
        under Sybil/replay attacks, and the ``quarantine_respected``
        invariant keys on ``via``.
        """
        if state is None:
            return  # the policy offers no introspection
        detail: Dict[str, Any] = {"unit": unit, "trigger": trigger}
        if requester is not None:
            detail["requester"] = requester
        if index is not None:
            detail["index"] = index
        if via is not None:
            detail["via"] = via
        detail.update(state)
        self.sink.instant(ts, "tracker_snapshot", node, detail)

    # -- end of run -----------------------------------------------------------

    def hop_distances(self) -> Dict[int, int]:
        """BFS hop count from the base station over the observed topology."""
        if self._radio is None or self._base is None:
            return {}
        neighbors = self._radio.topology.neighbors
        hops: Dict[int, int] = {self._base: 0}
        frontier = deque([self._base])
        while frontier:
            u = frontier.popleft()
            for v in sorted(neighbors.get(u, ())):
                if v not in hops:
                    hops[v] = hops[u] + 1
                    frontier.append(v)
        return hops

    def finalize(self, ts: float) -> None:
        """Flush the topology map and the per-link accounting summary.

        Idempotent: a second call is a no-op so CLI paths that both run and
        persist a simulation cannot double-emit the summary.
        """
        if self._finalized:
            return
        self._finalized = True
        hops = self.hop_distances()
        if hops or self._tx_frames:
            self.sink.instant(ts, "flight_topology", None, {
                "base": self._base,
                "hops": {str(n): h for n, h in sorted(hops.items())},
                "tx_frames": {
                    str(n): c for n, c in sorted(self._tx_frames.items())
                },
            })
        for (src, dst) in sorted(self._links):
            self.sink.instant(ts, "flight_link_stats", None,
                              self._links[(src, dst)].to_detail(src, dst))

    def link_matrix(self) -> Dict[Tuple[int, int], Dict[str, Any]]:
        """The in-memory accounting matrix (for tests and the analyzer)."""
        return {
            (src, dst): self._links[(src, dst)].to_detail(src, dst)
            for (src, dst) in sorted(self._links)
        }

    def tx_frame_counts(self) -> Dict[int, int]:
        """Frames each node put on the air (per-attacker damage attribution
        reads an adversary's injected-frame count from here)."""
        return dict(self._tx_frames)


class CausalRecorder:
    """Cross-node causal provenance: who/what triggered every transmission.

    Attached as ``trace.causal`` (see :class:`repro.sim.trace.CausalSink`),
    it follows the flight recorder's zero-overhead discipline exactly: every
    hook is guarded by one ``trace.causal is not None`` test at the call
    site, and emissions go through ``sink.instant`` only — never through the
    counter store — so the counter snapshots, RNG draws, and non-causal
    event stream are byte-identical with and without ``--causal-trace``.

    Emitted kinds (catalogued in :mod:`repro.obs.catalog`, replayed offline
    by :mod:`repro.obs.causal`):

    ``causal_meta``
        Per-node run metadata at ``start()``: protocol, base flag, total
        units, plus the protocol's ``causal_profile`` label for comparison
        tables.
    ``causal_tx``
        A frame went on the air.  Detail carries the frame id, wire kind,
        MAC enqueue time (``enq`` — the gap to ``ts`` is MAC/carrier-sense
        wait), the payload's unit/index when present, and the protocol's
        ``cause`` stamp: the rx frame, timer arm, or decode that triggered
        this transmission.
    ``causal_rx`` / ``causal_loss``
        One event per delivery attempt outcome at each receiver — the
        cross-node DAG edges.  ``causal_loss`` is what the analyzer charges
        retransmission wait to.
    ``causal_decode``
        A page decoded/verified at a node, parented on the frame whose
        arrival completed it, with the decode geometry (``need`` of ``of``
        packets) so coded and ARQ pages compare directly.

    The recorder also tracks, per node, *which frame is currently being
    handled* (``enter_rx``/``exit_rx`` around ``on_receive`` in the radio):
    protocol code queries :meth:`current_frame` to parent timer arms and
    decodes without threading frame ids through every handler signature.
    """

    def __init__(self, sink: "TraceSink") -> None:
        self.sink = sink
        #: MAC enqueue time per frame id, popped when the frame airs/drops.
        self._enq: Dict[int, float] = {}
        #: Frame currently being dispatched to each node's ``on_receive``.
        self._rx_ctx: Dict[int, int] = {}

    # -- rx context -----------------------------------------------------------

    def enter_rx(self, node: int, frame_id: int) -> None:
        self._rx_ctx[node] = frame_id

    def exit_rx(self, node: int) -> None:
        self._rx_ctx.pop(node, None)

    def current_frame(self, node: int) -> Optional[int]:
        """The frame id ``node`` is handling right now, or None (timer fire)."""
        return self._rx_ctx.get(node)

    # -- radio hooks ----------------------------------------------------------

    def on_enqueue(self, ts: float, frame: "Frame") -> None:
        self._enq[frame.frame_id] = ts

    def on_mac_drop(self, frame: "Frame") -> None:
        # Never aired: no causal_tx, and its enqueue stamp must not leak.
        self._enq.pop(frame.frame_id, None)

    def on_air(self, ts: float, frame: "Frame", unit: Optional[int]) -> None:
        detail: Dict[str, Any] = {
            "frame": frame.frame_id,
            "kind": frame.kind.value,
            "enq": self._enq.pop(frame.frame_id, ts),
        }
        if unit is not None:
            detail["unit"] = unit
        index = getattr(frame.payload, "index", None)
        if index is not None:
            detail["index"] = index
        if frame.dest is not None:
            detail["dest"] = frame.dest
        if frame.cause is not None:
            detail["cause"] = frame.cause
        self.sink.instant(ts, "causal_tx", frame.sender, detail)

    def on_rx(self, ts: float, src: int, dst: int, frame: "Frame") -> None:
        self.sink.instant(ts, "causal_rx", dst,
                          {"frame": frame.frame_id, "src": src})

    def on_loss(self, ts: float, src: int, dst: int, cause: str,
                frame: "Frame") -> None:
        self.sink.instant(ts, "causal_loss", dst, {
            "frame": frame.frame_id, "src": src, "cause": cause,
            "kind": frame.kind.value,
        })

    # -- protocol hooks -------------------------------------------------------

    def on_meta(self, ts: float, node: int, protocol: str, is_base: bool,
                total_units: Optional[int], secured: bool,
                profile: str) -> None:
        self.sink.instant(ts, "causal_meta", node, {
            "protocol": protocol,
            "base": is_base,
            "total_units": total_units,
            "secured": secured,
            "profile": profile,
        })

    def on_decode(self, ts: float, node: int, unit: int,
                  parent: Optional[int], need: Optional[int],
                  of: Optional[int]) -> None:
        detail: Dict[str, Any] = {"unit": unit, "frame": parent}
        if need is not None:
            detail["need"] = need
        if of is not None:
            detail["of"] = of
        self.sink.instant(ts, "causal_decode", node, detail)
