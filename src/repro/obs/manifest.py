"""Run manifests: everything needed to understand and compare one run.

A :class:`RunManifest` records what was run (tool, config, seed, git rev),
what happened (counters, the paper's five metrics), and what it cost
(wall time, simulated time, events, events/sec, optional event-loop
profile).  Manifests are small JSON files written next to results by
``python -m repro.simulate``, ``python -m repro.experiments`` and the
``perf-smoke`` CI job; ``python -m repro.obs report`` summarises one or
diffs two.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.profile import utc_now_iso

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "collect_git_rev",
    "diff_manifests",
]

MANIFEST_SCHEMA_VERSION = 1


def collect_git_rev(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The current git commit (short hash, ``+dirty`` suffixed), or None.

    Failure is normal — an installed package has no repository — so every
    error path degrades to None rather than failing the run being recorded.
    """
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5.0, cwd=cwd,
        )
        if rev.returncode != 0:
            return None
        commit = rev.stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=5.0, cwd=cwd,
        )
        if status.returncode == 0 and status.stdout.strip():
            commit += "+dirty"
        return commit or None
    except (OSError, subprocess.SubprocessError):
        return None


@dataclass
class RunManifest:
    """One run's identity, configuration, outcomes, and costs."""

    tool: str                                   # e.g. "repro.simulate"
    seed: int = 0
    config: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    profile: Optional[Dict[str, Any]] = None
    trace_file: Optional[str] = None
    git_rev: Optional[str] = None
    created_utc: str = field(default_factory=utc_now_iso)
    schema_version: int = MANIFEST_SCHEMA_VERSION
    unregistered_metrics: List[str] = field(default_factory=list)
    # Campaign report (repro.experiments.executor CampaignReport.to_dict()):
    # per-task attempt histories, retry/quarantine counts.  Additive and
    # optional, so schema_version stays 1 and old readers ignore it.
    campaign: Optional[Dict[str, Any]] = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_run(
        cls,
        tool: str,
        result: Any,                     # experiments.metrics.RunResult shaped
        config: Optional[Dict[str, Any]] = None,
        wall_s: Optional[float] = None,
        sim: Optional[Any] = None,       # repro.sim.engine.Simulator shaped
        profile: Optional[Dict[str, Any]] = None,
        trace_file: Optional[str] = None,
        unregistered: Optional[List[str]] = None,
    ) -> "RunManifest":
        """Build a manifest from a finished :class:`RunResult`-shaped run.

        Duck-typed on purpose: manifests must stay importable without the
        experiments package (and vice versa), so only attribute access ties
        the two together.
        """
        metrics: Dict[str, float] = {
            "completed": float(bool(getattr(result, "completed", False))),
            "latency_s": float(getattr(result, "latency", 0.0)),
            "data_packets": float(getattr(result, "data_packets", 0)),
            "snack_packets": float(getattr(result, "snack_packets", 0)),
            "adv_packets": float(getattr(result, "adv_packets", 0)),
            "total_bytes": float(getattr(result, "total_bytes", 0)),
        }
        rate = getattr(result, "completion_rate", None)
        if rate is not None:
            metrics["completion_rate"] = float(rate)
        timings: Dict[str, float] = {}
        if wall_s is not None:
            timings["wall_s"] = round(wall_s, 6)
        if sim is not None:
            timings["sim_time_s"] = float(sim.now)
            timings["events"] = float(sim.processed_events)
            if wall_s:
                timings["events_per_s"] = round(sim.processed_events / wall_s, 1)
            heap = getattr(sim, "heap_stats", None)
            if callable(heap):
                for key, value in heap().items():
                    timings[f"heap_{key}"] = float(value)
        return cls(
            tool=tool,
            seed=int(getattr(result, "seed", 0)),
            config=dict(config or {}),
            counters=dict(getattr(result, "counters", {}) or {}),
            metrics=metrics,
            timings=timings,
            profile=profile,
            trace_file=trace_file,
            git_rev=collect_git_rev(),
            unregistered_metrics=list(unregistered or []),
        )

    # -- (de)serialisation ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema_version": self.schema_version,
            "created_utc": self.created_utc,
            "tool": self.tool,
            "seed": self.seed,
            "git_rev": self.git_rev,
            "config": self.config,
            "metrics": self.metrics,
            "timings": self.timings,
            "counters": dict(sorted(self.counters.items())),
        }
        if self.unregistered_metrics:
            out["obs_unregistered_metric"] = len(self.unregistered_metrics)
            out["unregistered_metrics"] = self.unregistered_metrics
        if self.trace_file is not None:
            out["trace_file"] = self.trace_file
        if self.profile is not None:
            out["profile"] = self.profile
        if self.campaign is not None:
            out["campaign"] = self.campaign
        return out

    def write(self, path: Union[str, Path]) -> Path:
        from repro.persist import atomic_write_text

        target = Path(path)
        atomic_write_text(
            target, json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"
        )
        return target

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        version = data.get("schema_version")
        if version != MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported manifest schema {version!r} "
                f"(reader supports {MANIFEST_SCHEMA_VERSION})"
            )
        return cls(
            tool=str(data.get("tool", "?")),
            seed=int(data.get("seed", 0)),
            config=dict(data.get("config", {})),
            counters={str(k): int(v) for k, v in data.get("counters", {}).items()},
            metrics={str(k): float(v) for k, v in data.get("metrics", {}).items()},
            timings={str(k): float(v) for k, v in data.get("timings", {}).items()},
            profile=data.get("profile"),
            trace_file=data.get("trace_file"),
            git_rev=data.get("git_rev"),
            created_utc=str(data.get("created_utc", "")),
            schema_version=int(version),
            unregistered_metrics=[str(n) for n in data.get("unregistered_metrics", [])],
            campaign=data.get("campaign"),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def diff_manifests(
    a: RunManifest, b: RunManifest
) -> List[Tuple[str, float, float, float, Optional[float]]]:
    """Row-wise diff: ``(name, a, b, delta, pct)`` over metrics/timings/counters.

    ``pct`` is None when ``a`` is zero (no meaningful relative change).
    Only rows that differ are returned, metrics first, then timings, then
    counters, each alphabetical — the format the report CLI renders.
    """
    rows: List[Tuple[str, float, float, float, Optional[float]]] = []
    for prefix, left, right in (
        ("metrics", a.metrics, b.metrics),
        ("timings", a.timings, b.timings),
        ("counters", a.counters, b.counters),
    ):
        names = sorted(set(left) | set(right))
        for name in names:
            va = float(left.get(name, 0))
            vb = float(right.get(name, 0))
            if va == vb:
                continue
            delta = vb - va
            pct = (delta / va * 100.0) if va else None
            rows.append((f"{prefix}.{name}", va, vb, delta, pct))
    return rows
