"""Trickle: polite-gossip timer for advertisement scheduling (RFC 6206 style).

Deluge, Seluge, and LR-Seluge all pace their advertisements with Trickle so
that steady-state traffic stays low while new code propagates fast.
"""

from repro.trickle.timer import TrickleTimer

__all__ = ["TrickleTimer"]
