"""The Trickle algorithm (Levis et al., NSDI'04 / RFC 6206).

Each node maintains an interval ``I`` in ``[i_min, i_max]``.  At a uniformly
random point ``t`` in the second half of the interval it fires its callback
(broadcasts an advertisement) *unless* it has already heard ``redundancy_k``
consistent messages this interval.  At each interval end ``I`` doubles
(capped at ``i_max``); hearing an *inconsistent* message (e.g. a neighbor
with older code) resets ``I`` to ``i_min`` so updates propagate quickly.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigError
from repro.sim.engine import Event, Simulator

__all__ = ["TrickleTimer"]


class TrickleTimer:
    """One node's Trickle instance driving a broadcast callback."""

    def __init__(
        self,
        sim: Simulator,
        fire: Callable[[], None],
        rng,
        i_min: float = 1.0,
        i_max: float = 60.0,
        redundancy_k: int = 1,
    ):
        if i_min <= 0 or i_max < i_min:
            raise ConfigError(f"need 0 < i_min <= i_max, got [{i_min}, {i_max}]")
        if redundancy_k < 1:
            raise ConfigError("redundancy_k must be >= 1")
        self.sim = sim
        self.fire = fire
        self.rng = rng
        self.i_min = i_min
        self.i_max = i_max
        self.redundancy_k = redundancy_k
        self.interval = i_min
        self.counter = 0
        self._fire_event: Optional[Event] = None
        self._interval_event: Optional[Event] = None
        self._running = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin operating at the minimum interval."""
        if self._running:
            return
        self._running = True
        self.interval = self.i_min
        self._begin_interval()

    def stop(self) -> None:
        """Suspend; :meth:`start` resumes from ``i_min``."""
        self._running = False
        self._cancel_events()

    @property
    def running(self) -> bool:
        return self._running

    # -- Trickle events ------------------------------------------------------

    def heard_consistent(self) -> None:
        """A neighbor advertised the same state; may suppress our broadcast."""
        self.counter += 1

    def heard_inconsistent(self) -> None:
        """A neighbor disagrees (older/newer state): reset to fast gossip."""
        if not self._running:
            return
        if self.interval > self.i_min:
            self.interval = self.i_min
            self._cancel_events()
            self._begin_interval()
        # If already at i_min, RFC 6206 leaves the current interval running.

    # -- internals -----------------------------------------------------------

    def _cancel_events(self) -> None:
        for event in (self._fire_event, self._interval_event):
            if event is not None:
                event.cancel()
        self._fire_event = None
        self._interval_event = None

    def _begin_interval(self) -> None:
        self.counter = 0
        t = self.rng.uniform(self.interval / 2.0, self.interval)
        self._fire_event = self.sim.schedule(t, self._maybe_fire)
        self._interval_event = self.sim.schedule(self.interval, self._interval_end)

    def _maybe_fire(self) -> None:
        self._fire_event = None
        if self._running and self.counter < self.redundancy_k:
            self.fire()

    def _interval_end(self) -> None:
        self._interval_event = None
        if not self._running:
            return
        self.interval = min(self.interval * 2.0, self.i_max)
        self._begin_interval()
