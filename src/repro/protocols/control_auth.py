"""Control-packet authentication (cluster/pairwise keys).

Seluge and LR-Seluge authenticate advertisement and SNACK packets with a
cluster key so outsiders cannot inject control traffic; Section IV-E
suggests upgrading to LEAP-style *pairwise* keys so a SNACK's source is
also identified (the denial-of-receipt mitigation needs attributable
SNACKs).  This module provides both flavours behind one interface and the
glue that lets :class:`~repro.protocols.common.DisseminationNode` check
every control frame before processing it.

The MAC bytes were always part of the wire-size accounting
(:class:`~repro.core.config.WireFormat.mac_len`); this module adds the
actual tags and checks so that outsider-injected control packets are
measurably dropped.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.core.packets import Advertisement, SnackRequest
from repro.crypto.keys import ClusterKey

__all__ = [
    "ControlAuthenticator",
    "ClusterAuthenticator",
    "PairwiseAuthenticator",
    "make_authenticator",
]


def make_authenticator(
    mode: Optional[str], node_id: int, secret: bytes
) -> Optional["ControlAuthenticator"]:
    """Build a node's authenticator: None, ``"cluster"``, or ``"pairwise"``."""
    if mode is None or mode == "none":
        return None
    key = ClusterKey(secret)
    if mode == "cluster":
        return ClusterAuthenticator(node_id, key)
    if mode == "pairwise":
        return PairwiseAuthenticator(node_id, key)
    raise ValueError(f"unknown control-auth mode {mode!r}")


def _adv_bytes(adv: Advertisement) -> bytes:
    return f"adv|{adv.version}|{adv.units_complete}|{adv.total_units}".encode()


def _snack_bytes(request: SnackRequest) -> bytes:
    needed = ",".join(map(str, request.needed))
    return (
        f"snack|{request.version}|{request.unit}|{request.requester}|"
        f"{request.server}|{needed}"
    ).encode()


class ControlAuthenticator(abc.ABC):
    """Tags and checks advertisement/SNACK packets for one node."""

    @abc.abstractmethod
    def tag_adv(self, adv: Advertisement) -> bytes:
        """MAC for an advertisement this node is about to broadcast."""

    @abc.abstractmethod
    def check_adv(self, adv: Advertisement, tag: bytes, sender: int) -> bool:
        """Verify a received advertisement's MAC."""

    @abc.abstractmethod
    def tag_snack(self, request: SnackRequest) -> bytes:
        """MAC for a SNACK this node is about to broadcast."""

    @abc.abstractmethod
    def check_snack(self, request: SnackRequest, tag: bytes, sender: int) -> bool:
        """Verify a received SNACK's MAC (and, for pairwise keys, its source)."""


class ClusterAuthenticator(ControlAuthenticator):
    """One key shared by the whole neighborhood (Seluge's cluster key).

    Fast and simple, but any *compromised* member can forge control packets
    claiming to be anyone — which is exactly why the paper proposes the
    pairwise upgrade for the denial-of-receipt attack.
    """

    def __init__(self, node_id: int, cluster_key: ClusterKey):
        self.node_id = node_id
        self._key = cluster_key

    def tag_adv(self, adv: Advertisement) -> bytes:
        return self._key.tag(_adv_bytes(adv))

    def check_adv(self, adv: Advertisement, tag: bytes, sender: int) -> bool:
        return self._key.check(_adv_bytes(adv), tag)

    def tag_snack(self, request: SnackRequest) -> bytes:
        return self._key.tag(_snack_bytes(request))

    def check_snack(self, request: SnackRequest, tag: bytes, sender: int) -> bool:
        return self._key.check(_snack_bytes(request), tag)


class PairwiseAuthenticator(ControlAuthenticator):
    """LEAP-style pairwise keys derived from the cluster secret.

    Advertisements stay cluster-keyed (they are one-to-many); SNACKs are
    MACed under the pairwise key of (requester, server), which both
    authenticates and *identifies* the requester — the precondition for
    holding a SNACK-flooding neighbor accountable (Section IV-E).
    """

    def __init__(self, node_id: int, cluster_key: ClusterKey):
        self.node_id = node_id
        self._cluster = cluster_key

    def tag_adv(self, adv: Advertisement) -> bytes:
        return self._cluster.tag(_adv_bytes(adv))

    def check_adv(self, adv: Advertisement, tag: bytes, sender: int) -> bool:
        return self._cluster.check(_adv_bytes(adv), tag)

    def tag_snack(self, request: SnackRequest) -> bytes:
        key = self._cluster.pairwise(request.requester, request.server)
        return key.tag(_snack_bytes(request))

    def check_snack(self, request: SnackRequest, tag: bytes, sender: int) -> bool:
        # The claimed requester must match the key the MAC verifies under,
        # so a compromised node cannot spoof SNACKs in someone else's name.
        if request.requester != sender:
            return False
        key = self._cluster.pairwise(request.requester, request.server)
        return key.check(_snack_bytes(request), tag)
