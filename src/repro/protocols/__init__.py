"""Dissemination protocols: Deluge, Seluge, LR-Seluge, Rateless Deluge.

All protocols share the epidemic MAINTAIN / RX / TX machinery of
:mod:`repro.protocols.common` and differ in packet construction,
authentication, and TX-state scheduling.  :mod:`repro.protocols.defense`
provides the flag-gated hardening layer (DESIGN.md §12); adversary nodes
live in :mod:`repro.attacks`.
"""

from repro.protocols.common import DisseminationNode, ProtocolName
from repro.protocols.defense import DefenseConfig
from repro.protocols.deluge import DelugeNode, build_deluge_network
from repro.protocols.seluge import SelugeNode, build_seluge_network
from repro.protocols.lr_seluge import LRSelugeNode, build_lr_seluge_network
from repro.protocols.rateless import RatelessDelugeNode, build_rateless_network
from repro.protocols.control_auth import ClusterAuthenticator, PairwiseAuthenticator

__all__ = [
    "ProtocolName",
    "DisseminationNode",
    "DefenseConfig",
    "DelugeNode",
    "SelugeNode",
    "LRSelugeNode",
    "RatelessDelugeNode",
    "build_deluge_network",
    "build_seluge_network",
    "build_lr_seluge_network",
    "build_rateless_network",
    "ClusterAuthenticator",
    "PairwiseAuthenticator",
]
