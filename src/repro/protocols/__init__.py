"""Dissemination protocols: Deluge, Seluge, LR-Seluge, Rateless Deluge.

All protocols share the epidemic MAINTAIN / RX / TX machinery of
:mod:`repro.protocols.common` and differ in packet construction,
authentication, and TX-state scheduling.  :mod:`repro.protocols.attacks`
provides adversary nodes for the security experiments.
"""

from repro.protocols.common import DisseminationNode, ProtocolName
from repro.protocols.deluge import DelugeNode, build_deluge_network
from repro.protocols.seluge import SelugeNode, build_seluge_network
from repro.protocols.lr_seluge import LRSelugeNode, build_lr_seluge_network
from repro.protocols.rateless import RatelessDelugeNode, build_rateless_network
from repro.protocols.control_auth import ClusterAuthenticator, PairwiseAuthenticator

__all__ = [
    "ProtocolName",
    "DisseminationNode",
    "DelugeNode",
    "SelugeNode",
    "LRSelugeNode",
    "RatelessDelugeNode",
    "build_deluge_network",
    "build_seluge_network",
    "build_lr_seluge_network",
    "build_rateless_network",
    "ClusterAuthenticator",
    "PairwiseAuthenticator",
]
