"""LR-Seluge: the paper's contribution.

Differences from Seluge, all of which live here and in
:mod:`repro.core`:

* pages are erasure-coded (``k``-``n``-``k'``); any ``k'`` authenticated
  packets recover a page;
* the hash images of page ``i+1``'s *n encoded packets* travel inside page
  ``i``'s payload, so decoding one page arms immediate authentication for
  the whole next page;
* the TX state runs the tracking-table greedy round-robin scheduler instead
  of the union rule, transmitting the fewest packets that satisfy every
  requesting neighbor simultaneously.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.config import LRSelugeParams
from repro.core.image import CodeImage
from repro.core.preprocess import LRSelugePreprocessor, PreprocessedImage
from repro.core.scheduler import GreedyRoundRobinScheduler, TrackingTable
from repro.core.verify import LRSelugeReceiver
from repro.crypto.ecdsa import EcdsaKeyPair, generate_keypair
from repro.crypto.puzzle import MessageSpecificPuzzle
from repro.net.radio import Radio
from repro.protocols.common import DisseminationNode, ProtocolName, TxPolicy
from repro.protocols.defense import DefenseConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

__all__ = ["LRSelugeNode", "TrackingPolicy", "build_lr_seluge_network"]


class TrackingPolicy(TxPolicy):
    """Tracking table + greedy round-robin (Section IV-D3)."""

    def __init__(self, n_packets: int, threshold: int):
        self.table = TrackingTable(n_packets, threshold)
        self._sched = GreedyRoundRobinScheduler(self.table)

    @property
    def empty(self) -> bool:
        return self.table.empty

    def on_snack(self, requester: int, needed: Tuple[int, ...]) -> None:
        self.table.update_from_snack(requester, needed)

    def next_packet(self) -> Optional[int]:
        return self._sched.next_packet()

    def mark_sent(self, index: int) -> None:
        self.table.mark_sent(index)

    def snapshot(self) -> Optional[dict]:
        return self.table.snapshot()


class LRSelugeNode(DisseminationNode):
    """An LR-Seluge participant.

    LR-Seluge inherits Deluge's epidemic suppression mechanisms (the paper,
    Section IV-E); suppressed requesters recover cheaply because any ``k'``
    packets decode a page, so overhearing a burst sized for another node's
    deficit still satisfies most of their own.
    """

    protocol = ProtocolName.LR_SELUGE

    #: Causal-tracer label: erasure-coded pages served off the tracking
    #: table — the paper predicts critical paths trade retransmission wait
    #: for (cheap) decode edges under loss.
    causal_profile = "erasure-tracking"

    #: TX policy selector: "tracking" (the paper's greedy round-robin) or
    #: "union" (Deluge-style, for the scheduler ablation E10).
    scheduler_kind: str = "tracking"

    def make_tx_policy(self, unit: int) -> TxPolicy:
        n_packets, threshold = self.pipeline.geometry(unit)
        if self.scheduler_kind == "union":
            from repro.protocols.deluge import UnionPolicy

            return UnionPolicy(n_packets)
        return TrackingPolicy(n_packets, threshold)


def build_lr_seluge_network(
    sim: Simulator,
    radio: Radio,
    rngs: RngRegistry,
    trace: TraceRecorder,
    params: LRSelugeParams,
    image: Optional[CodeImage] = None,
    receiver_ids: Optional[List[int]] = None,
    base_id: int = 0,
    keypair: Optional[EcdsaKeyPair] = None,
    puzzle_difficulty: int = 10,
    on_complete: Optional[Callable[[DisseminationNode], None]] = None,
    snack_flood_threshold: Optional[int] = None,
    control_auth: Optional[str] = None,
    defense: Optional["DefenseConfig"] = None,
) -> Tuple[LRSelugeNode, List[LRSelugeNode], PreprocessedImage]:
    """Instantiate a base station plus receivers on the radio's topology.

    ``control_auth`` enables advertisement/SNACK MACs: ``"cluster"`` (the
    Seluge cluster key) or ``"pairwise"`` (LEAP-style, Section IV-E).
    """
    from repro.protocols.control_auth import make_authenticator
    from repro.sim.rng import derive_seed

    image = image or CodeImage.synthetic(params.image.image_size, params.image.version)
    keypair = keypair or generate_keypair(rngs.root_seed)
    puzzle = MessageSpecificPuzzle(difficulty=puzzle_difficulty)
    pre = LRSelugePreprocessor(params, keypair, puzzle).build(image)
    if receiver_ids is None:
        receiver_ids = [i for i in radio.topology.node_ids if i != base_id]
    secret = derive_seed(rngs.root_seed, "cluster-secret").to_bytes(8, "big")

    def pipeline_factory(version: int) -> LRSelugeReceiver:
        return LRSelugeReceiver(params, keypair.public, puzzle)

    base = LRSelugeNode(
        base_id, sim, radio, rngs, trace,
        pipeline=LRSelugeReceiver(params, keypair.public, puzzle),
        timing=params.timing, wire=params.wire,
        is_base=True, preprocessed=pre, on_complete=on_complete,
        snack_flood_threshold=snack_flood_threshold,
        control_auth=make_authenticator(control_auth, base_id, secret),
        pipeline_factory=pipeline_factory, defense=defense,
    )
    nodes = [
        LRSelugeNode(
            node_id, sim, radio, rngs, trace,
            pipeline=LRSelugeReceiver(params, keypair.public, puzzle),
            timing=params.timing, wire=params.wire, on_complete=on_complete,
            snack_flood_threshold=snack_flood_threshold,
            control_auth=make_authenticator(control_auth, node_id, secret),
            pipeline_factory=pipeline_factory, defense=defense,
        )
        for node_id in receiver_ids
    ]
    return base, nodes, pre
