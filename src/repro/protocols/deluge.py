"""Deluge (Hui & Culler, SenSys'04): the insecure ARQ baseline.

Pages of ``k`` packets, all of which must be received; a sender transmits
the union of the requested bit-vectors in cyclic index order.  No packet
authentication of any kind — the pollution experiments show why that is a
problem in hostile environments.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.config import DelugeParams
from repro.core.image import CodeImage
from repro.core.preprocess import DelugePreprocessor, PreprocessedImage
from repro.core.scheduler import UnionScheduler
from repro.core.verify import DelugeReceiver
from repro.net.radio import Radio
from repro.protocols.common import DisseminationNode, ProtocolName, TxPolicy
from repro.protocols.defense import DefenseConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

__all__ = ["DelugeNode", "UnionPolicy", "build_deluge_network"]


class UnionPolicy(TxPolicy):
    """Deluge/Seluge TX semantics: transmit every requested index once."""

    def __init__(self, n_packets: int):
        self._sched = UnionScheduler(n_packets)

    @property
    def empty(self) -> bool:
        return self._sched.empty

    def on_snack(self, requester: int, needed: Tuple[int, ...]) -> None:
        self._sched.update_from_snack(needed)

    def next_packet(self) -> Optional[int]:
        return self._sched.next_packet()

    def mark_sent(self, index: int) -> None:
        self._sched.mark_sent(index)

    def snapshot(self) -> Optional[dict]:
        return self._sched.snapshot()


class DelugeNode(DisseminationNode):
    """A Deluge participant."""

    protocol = ProtocolName.DELUGE

    #: Causal-tracer label: plain ARQ, request-union scheduling, no auth.
    causal_profile = "arq-union"

    def make_tx_policy(self, unit: int) -> TxPolicy:
        n_packets, _ = self.pipeline.geometry(unit)
        return UnionPolicy(n_packets)


def build_deluge_network(
    sim: Simulator,
    radio: Radio,
    rngs: RngRegistry,
    trace: TraceRecorder,
    params: DelugeParams,
    image: Optional[CodeImage] = None,
    receiver_ids: Optional[List[int]] = None,
    base_id: int = 0,
    on_complete: Optional[Callable[[DisseminationNode], None]] = None,
    defense: Optional[DefenseConfig] = None,
) -> Tuple[DelugeNode, List[DelugeNode], PreprocessedImage]:
    """Instantiate a base station plus receivers on the radio's topology."""
    image = image or CodeImage.synthetic(params.image.image_size, params.image.version)
    pre = DelugePreprocessor(params).build(image)
    if receiver_ids is None:
        receiver_ids = [i for i in radio.topology.node_ids if i != base_id]
    def pipeline_factory(version: int) -> DelugeReceiver:
        return DelugeReceiver(params, version=version)

    base = DelugeNode(
        base_id, sim, radio, rngs, trace,
        pipeline=DelugeReceiver(params), timing=params.timing, wire=params.wire,
        is_base=True, preprocessed=pre, on_complete=on_complete,
        pipeline_factory=pipeline_factory, defense=defense,
    )
    nodes = [
        DelugeNode(
            node_id, sim, radio, rngs, trace,
            pipeline=DelugeReceiver(params), timing=params.timing, wire=params.wire,
            on_complete=on_complete, pipeline_factory=pipeline_factory,
            defense=defense,
        )
        for node_id in receiver_ids
    ]
    return base, nodes, pre
