"""Seluge (Hyun, Ning, Liu & Du, IPSN'08): the secure ARQ baseline.

Deluge's dissemination with per-packet hash chaining between adjacent pages,
a Merkle-authenticated hash page, a signed root, and a message-specific
puzzle guarding the signature packet.  Every data packet is authenticated
immediately on arrival; the transport remains Deluge's request-all ARQ,
which is what LR-Seluge improves on in lossy environments.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.config import SelugeParams
from repro.core.image import CodeImage
from repro.core.preprocess import PreprocessedImage, SelugePreprocessor
from repro.core.verify import SelugeReceiver
from repro.crypto.ecdsa import EcdsaKeyPair, generate_keypair
from repro.crypto.puzzle import MessageSpecificPuzzle
from repro.net.radio import Radio
from repro.protocols.common import DisseminationNode, ProtocolName, TxPolicy
from repro.protocols.defense import DefenseConfig
from repro.protocols.deluge import UnionPolicy
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

__all__ = ["SelugeNode", "build_seluge_network"]


class SelugeNode(DisseminationNode):
    """A Seluge participant (same transport as Deluge, plus authentication)."""

    protocol = ProtocolName.SELUGE

    #: Causal-tracer label: Deluge's ARQ transport plus per-packet auth —
    #: critical paths gain decode_verify/admission edges, not new waits.
    causal_profile = "arq-union-auth"

    def make_tx_policy(self, unit: int) -> TxPolicy:
        # Seluge keeps Deluge's request-union ARQ, so flight-recorder
        # tracker_snapshot events for Seluge nodes carry UnionPolicy state.
        n_packets, _ = self.pipeline.geometry(unit)
        return UnionPolicy(n_packets)


def build_seluge_network(
    sim: Simulator,
    radio: Radio,
    rngs: RngRegistry,
    trace: TraceRecorder,
    params: SelugeParams,
    image: Optional[CodeImage] = None,
    receiver_ids: Optional[List[int]] = None,
    base_id: int = 0,
    keypair: Optional[EcdsaKeyPair] = None,
    puzzle_difficulty: int = 10,
    on_complete: Optional[Callable[[DisseminationNode], None]] = None,
    snack_flood_threshold: Optional[int] = None,
    control_auth: Optional[str] = None,
    defense: Optional[DefenseConfig] = None,
) -> Tuple[SelugeNode, List[SelugeNode], PreprocessedImage]:
    """Instantiate a base station plus receivers on the radio's topology.

    ``control_auth`` enables advertisement/SNACK MACs: ``"cluster"`` (the
    Seluge cluster key) or ``"pairwise"`` (LEAP-style, Section IV-E).
    """
    from repro.protocols.control_auth import make_authenticator
    from repro.sim.rng import derive_seed

    image = image or CodeImage.synthetic(params.image.image_size, params.image.version)
    keypair = keypair or generate_keypair(rngs.root_seed)
    puzzle = MessageSpecificPuzzle(difficulty=puzzle_difficulty)
    pre = SelugePreprocessor(params, keypair, puzzle).build(image)
    if receiver_ids is None:
        receiver_ids = [i for i in radio.topology.node_ids if i != base_id]
    secret = derive_seed(rngs.root_seed, "cluster-secret").to_bytes(8, "big")

    def pipeline_factory(version: int) -> SelugeReceiver:
        return SelugeReceiver(params, keypair.public, puzzle)

    base = SelugeNode(
        base_id, sim, radio, rngs, trace,
        pipeline=SelugeReceiver(params, keypair.public, puzzle),
        timing=params.timing, wire=params.wire,
        is_base=True, preprocessed=pre, on_complete=on_complete,
        snack_flood_threshold=snack_flood_threshold,
        control_auth=make_authenticator(control_auth, base_id, secret),
        pipeline_factory=pipeline_factory, defense=defense,
    )
    nodes = [
        SelugeNode(
            node_id, sim, radio, rngs, trace,
            pipeline=SelugeReceiver(params, keypair.public, puzzle),
            timing=params.timing, wire=params.wire, on_complete=on_complete,
            snack_flood_threshold=snack_flood_threshold,
            control_auth=make_authenticator(control_auth, node_id, secret),
            pipeline_factory=pipeline_factory, defense=defense,
        )
        for node_id in receiver_ids
    ]
    return base, nodes, pre
