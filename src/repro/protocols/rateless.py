"""Rateless Deluge (Hagedorn, Starobinski & Trachtenberg, IPSN'08 flavour).

The loss-resilient-but-insecure baseline: pages are random-linear coded, a
receiver decodes once it holds ``k`` linearly independent combinations, and
a sender always transmits a *fresh* combination per outstanding request —
there is no fixed packet set, which is precisely why the Seluge-style
immediate authentication cannot be bolted on (the paper's motivation).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import DelugeParams
from repro.core.image import CodeImage
from repro.core.packets import DataPacket, SnackRequest
from repro.core.preprocess import DelugePreprocessor, PreprocessedImage
from repro.core.scheduler import FreshPacketScheduler
from repro.core.verify import ReceiverPipeline
from repro.erasure.rlc import RandomLinearCode
from repro.errors import DecodeError, ProtocolError
from repro.net.packet import FrameKind
from repro.net.radio import Radio
from repro.protocols.common import DisseminationNode, ProtocolName, TxPolicy
from repro.protocols.defense import DefenseConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

__all__ = ["RatelessReceiver", "RatelessDelugeNode", "build_rateless_network"]

# Each node draws fresh encoded-packet indices from its own disjoint range so
# combinations from different senders never collide.
_INDEX_STRIDE = 1_000_000


class RatelessReceiver(ReceiverPipeline):
    """Per-page random-linear decoding; accepts any combination index."""

    def __init__(self, params: DelugeParams, code_seed: int = 0):
        super().__init__()
        self.params = params
        self.code_seed = code_seed
        self.version = params.image.version
        self._codes: Dict[int, RandomLinearCode] = {}
        self._decoded_blocks: Dict[int, List[bytes]] = {}

    @property
    def secured(self) -> bool:
        return False

    def code_for(self, unit: int) -> RandomLinearCode:
        code = self._codes.get(unit)
        if code is None:
            code = RandomLinearCode(
                self.params.k, self.params.k, self.params.k,
                seed=self.code_seed, generation=unit,
            )
            self._codes[unit] = code
        return code

    def geometry(self, unit: int) -> Tuple[int, int]:
        return self.params.k, self.params.k

    def learn_total_units(self, total_units: int) -> None:
        if self.total_units is None:
            self.total_units = total_units
            self.image_size = self.params.image.image_size

    def authenticate(self, packet: DataPacket) -> bool:
        self.stats["accepted_unverified"] += 1
        return True

    def complete_unit(self, unit: int, received: Dict[int, DataPacket]) -> bool:
        if len(received) < self.params.k:
            return False
        code = self.code_for(unit)
        payloads = {idx: pkt.payload for idx, pkt in received.items()}
        self.stats["decode_ops"] += 1
        try:
            blocks = code.decode(payloads)
        except DecodeError:
            self.stats["decode_failures"] += 1
            return False
        self._decoded_blocks[unit] = blocks
        self._fragments[unit] = b"".join(blocks)
        return True

    def encode_fresh(self, unit: int, index: int) -> DataPacket:
        """Generate the combination with global ``index`` for serving."""
        blocks = self._decoded_blocks.get(unit)
        if blocks is None:
            raise ProtocolError(f"unit {unit} is not available for serving")
        code = self.code_for(unit)
        self.stats["encode_ops"] += 1
        payload = code.encode_indices(blocks, [index])[0]
        if self.version is None:
            raise AssertionError('invariant violated: self.version is not None')
        return DataPacket(version=self.version, unit=unit, index=index, payload=payload)

    def preload(self, pre: PreprocessedImage) -> None:
        super().preload(pre)
        for unit in pre.units:
            if unit.source_blocks is not None:
                self._decoded_blocks[unit.index] = list(unit.source_blocks)


class FreshPolicy(TxPolicy):
    """Always transmit a never-before-sent combination."""

    def __init__(self, start_index: int):
        self._sched = FreshPacketScheduler(start_index)

    @property
    def empty(self) -> bool:
        return self._sched.empty

    def on_snack(self, requester: int, needed: Tuple[int, ...]) -> None:
        # For rateless requests ``needed`` encodes only a deficit count.
        self._sched.update_request(requester, len(needed))

    def next_packet(self) -> Optional[int]:
        return self._sched.next_packet()

    def mark_sent(self, index: int) -> None:
        self._sched.mark_sent(index)

    def snapshot(self) -> Optional[dict]:
        return self._sched.snapshot()


class RatelessDelugeNode(DisseminationNode):
    """A Rateless-Deluge participant."""

    protocol = ProtocolName.RATELESS

    #: Causal-tracer label: random-linear coded pages, always-fresh serving.
    causal_profile = "rlc-fresh"

    @property
    def snack_suppression(self) -> bool:
        return False

    def make_tx_policy(self, unit: int) -> TxPolicy:
        # The fresh-index sequence must survive policy teardown: reusing an
        # index would hand receivers a combination they already hold.
        policies = self.__dict__.setdefault("_fresh_policies", {})
        policy = policies.get(unit)
        if policy is None:
            policy = FreshPolicy(start_index=self.node_id * _INDEX_STRIDE)
            policies[unit] = policy
        return policy

    def _request_fire(self) -> None:
        """Rateless SNACKs carry a deficit count, not a bit-vector."""
        if self.complete or self._serving_active():
            if self._serving_active() and not self.complete:
                self._note_request_cause("serve_defer")
                self._request_timer.start(self._rearm_delay(self.timing.request_timeout))
            return
        unit = self.units_complete
        servers = self._servers_for(unit)
        if not servers or self._request_tries >= self.timing.request_max_tries:
            return
        deficit = self.params_deficit()
        if deficit <= 0:
            return
        server = servers[self.rng.randrange(len(servers))]
        request = SnackRequest(
            version=self.pipeline.version or 0,
            unit=unit,
            requester=self.node_id,
            server=server,
            needed=tuple(range(deficit)),  # deficit count only
        )
        self._request_tries += 1
        size = self.wire.header + self.wire.mac_len + 1
        sent = self.broadcast(FrameKind.SNACK, size, request, dest=server,
                              cause=self._request_cause())
        self._note_request_cause("retry", parent=sent.frame_id)
        self._request_timer.start(self._rearm_delay(self.timing.request_timeout))

    def params_deficit(self) -> int:
        """Combinations still needed; at least 1 while the unit is open.

        A rank-deficient reception set can stall at ``threshold`` received
        but undecodable — the node must keep asking for one more.
        """
        _, threshold = self.pipeline.geometry(self.units_complete)
        return max(1, threshold - len(self._rx_buffer))

    def _transmit_unit_packet(self, unit: int, index: int) -> int:
        pkt = self.pipeline.encode_fresh(unit, index)
        size = self.wire.data_packet_size(len(pkt.payload))
        self.broadcast(FrameKind.DATA, size, pkt,
                       cause=self._serve_cause(unit))
        return size


def build_rateless_network(
    sim: Simulator,
    radio: Radio,
    rngs: RngRegistry,
    trace: TraceRecorder,
    params: DelugeParams,
    image: Optional[CodeImage] = None,
    receiver_ids: Optional[List[int]] = None,
    base_id: int = 0,
    code_seed: int = 0,
    on_complete: Optional[Callable[[DisseminationNode], None]] = None,
    defense: Optional[DefenseConfig] = None,
) -> Tuple[RatelessDelugeNode, List[RatelessDelugeNode], PreprocessedImage]:
    """Instantiate a base station plus receivers on the radio's topology."""
    image = image or CodeImage.synthetic(params.image.image_size, params.image.version)
    pre = DelugePreprocessor(params).build(image)
    if receiver_ids is None:
        receiver_ids = [i for i in radio.topology.node_ids if i != base_id]
    base = RatelessDelugeNode(
        base_id, sim, radio, rngs, trace,
        pipeline=RatelessReceiver(params, code_seed), timing=params.timing,
        wire=params.wire, is_base=True, preprocessed=pre, on_complete=on_complete,
        defense=defense,
    )
    nodes = [
        RatelessDelugeNode(
            node_id, sim, radio, rngs, trace,
            pipeline=RatelessReceiver(params, code_seed), timing=params.timing,
            wire=params.wire, on_complete=on_complete, defense=defense,
        )
        for node_id in receiver_ids
    ]
    return base, nodes, pre
