"""Shared epidemic dissemination machinery (MAINTAIN / RX / TX).

Every protocol node runs the same three activities:

* **MAINTAIN** — a Trickle timer paces advertisements of
  ``(version, units_complete)``; hearing an inconsistent advertisement
  resets Trickle, hearing a neighbor with *more* units triggers RX.
* **RX** — the node SNACK-requests the packets it still needs for its next
  unit from a neighbor that has it, retrying after ``request_timeout`` and
  giving up after ``request_max_tries`` until a fresh advertisement arrives.
  Deluge and Seluge suppress a pending request when an equivalent request is
  overheard; LR-Seluge does not (its tracking table wants every requester's
  bit-vector) — its savings come from the scheduler instead.
* **TX** — a node addressed by a SNACK for a unit it possesses serves
  packets, pacing one transmission per airtime + gap, until its TX policy
  (union set for Deluge/Seluge, tracking table for LR-Seluge) drains.
  Overhearing another sender's data packet for the same unit suppresses the
  corresponding pending transmission.

A node whose TX policies are non-empty defers its own requests (the paper's
rule that transmissions for smaller page indices win).
"""

from __future__ import annotations

import abc
import dataclasses
import enum
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.flash import NodeFlash
    from repro.protocols.control_auth import ControlAuthenticator

from repro.core.config import ProtocolTiming, WireFormat
from repro.core.packets import Advertisement, DataPacket, SignaturePacket, SnackRequest
from repro.core.preprocess import PreprocessedImage
from repro.core.verify import ReceiverPipeline
from repro.net.node import NetworkNode
from repro.net.packet import Frame, FrameKind
from repro.net.radio import Radio
from repro.protocols.defense import DefenseConfig, NeighborGuard
from repro.sim.engine import Simulator
from repro.sim.process import Timer
from repro.sim.rng import RngRegistry, derived_stream
from repro.sim.trace import TraceRecorder
from repro.trickle.timer import TrickleTimer

__all__ = ["ProtocolName", "TxPolicy", "DisseminationNode"]


class ProtocolName(str, enum.Enum):
    DELUGE = "deluge"
    SELUGE = "seluge"
    LR_SELUGE = "lr-seluge"
    RATELESS = "rateless-deluge"


class TxPolicy(abc.ABC):
    """What a TX-state node still owes its neighbors for one unit."""

    @property
    @abc.abstractmethod
    def empty(self) -> bool:
        """True when every known request has been satisfied."""

    @abc.abstractmethod
    def on_snack(self, requester: int, needed: Tuple[int, ...]) -> None:
        """Fold a SNACK for this unit into the pending state."""

    @abc.abstractmethod
    def next_packet(self) -> Optional[int]:
        """Index of the next packet to transmit, or None when drained."""

    @abc.abstractmethod
    def mark_sent(self, index: int) -> None:
        """Account for a transmission of ``index`` (ours or overheard)."""

    def snapshot(self) -> Optional[Dict[str, object]]:
        """Introspection view for the flight recorder; None = opaque policy."""
        return None


class DisseminationNode(NetworkNode):
    """One protocol participant (sensor node or base station)."""

    protocol: ProtocolName = ProtocolName.DELUGE

    #: Causal-tracer scheduler label (``causal_meta`` detail): names the
    #: transport family so protocol-comparison tables group runs without
    #: re-deriving it from counters.  Overridden per protocol module.
    causal_profile: str = "arq-union"

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        radio: Radio,
        rngs: RngRegistry,
        trace: TraceRecorder,
        pipeline: ReceiverPipeline,
        timing: ProtocolTiming,
        wire: WireFormat,
        is_base: bool = False,
        preprocessed: Optional[PreprocessedImage] = None,
        on_complete: Optional[Callable[["DisseminationNode"], None]] = None,
        snack_flood_threshold: Optional[int] = None,
        control_auth: Optional["ControlAuthenticator"] = None,
        pipeline_factory: Optional[Callable[[int], ReceiverPipeline]] = None,
        flash: Optional["NodeFlash"] = None,
        defense: Optional[DefenseConfig] = None,
    ):
        super().__init__(node_id, sim, radio, rngs, trace)
        self.pipeline = pipeline
        self.flash = flash
        self.crashed = False
        self.timing = timing
        self.wire = wire
        self.is_base = is_base
        self.on_complete = on_complete
        self.snack_flood_threshold = snack_flood_threshold
        self.control_auth = control_auth
        self.pipeline_factory = pipeline_factory
        self._upgrade_server: Optional[int] = None
        self._upgrade_version: int = 0
        self._upgrade_tries: int = 0
        self._upgrade_cooldown_until: float = 0.0

        self.units_complete = 0
        self.complete = False
        self.completion_time: Optional[float] = None
        self._rx_buffer: Dict[int, DataPacket] = {}
        self._neighbor_progress: Dict[int, int] = {}
        self._request_tries = 0
        self._suppressions = 0
        self._data_suppressions = 0
        self._last_overheard_snack: Dict[int, float] = {}
        self._last_data_heard: Dict[int, float] = {}
        self._service: Dict[int, TxPolicy] = {}
        self._tx_timer = Timer(sim, self._tx_pump)
        self._request_timer = Timer(sim, self._request_fire)
        self._signature_packet: Optional[SignaturePacket] = None
        self._snack_counts: Dict[Tuple[int, int], int] = {}
        self._advertised_total = 0
        self._tx_deferrals = 0
        self._last_served_unit = -1

        # Hardening layer (DESIGN.md §12): every defense is flag-gated so a
        # defense=None node pays only "is not None" checks on the hot paths.
        self.defense = defense
        self._guard: Optional[NeighborGuard] = None
        self._backoff_rng = None
        if defense is not None:
            if defense.rate_limit or defense.replay_filter:
                self._guard = NeighborGuard(defense, sim, trace, node_id)
            if defense.backoff:
                self._backoff_rng = derived_stream(
                    "defense-backoff", rngs.root_seed, node_id)
        # Causal-tracer provenance state (written only when trace.causal is
        # attached; both stay empty/None otherwise so the disabled path pays
        # nothing beyond the attribute checks at the call sites).
        #   _causal_req: last request-timer arm — (reason, parent frame, ts).
        #   _causal_unit_snack: last SNACK rx frame folded per served unit.
        self._causal_req: Optional[Tuple[str, Optional[int], float]] = None
        self._causal_unit_snack: Dict[int, Tuple[int, float]] = {}

        self._stall_timer = Timer(sim, self._stall_fire)
        self._stall_mark: Tuple[int, int] = (0, 0)
        self._stall_rotations = 0
        self._page_ewma: Optional[float] = None
        self._page_started_at = 0.0

        if is_base:
            if preprocessed is None:
                raise ValueError("base station needs the preprocessed image")
            self.pipeline.preload(preprocessed)
            self._signature_packet = preprocessed.signature_packet
            self.units_complete = preprocessed.total_units
            self.complete = True
            self.completion_time = 0.0

        self.trickle = TrickleTimer(
            sim,
            self._advertise,
            rngs.get(f"trickle/{node_id}"),
            i_min=timing.adv_i_min,
            i_max=timing.adv_i_max,
            redundancy_k=timing.adv_redundancy,
        )

    # -- protocol hooks --------------------------------------------------------

    @property
    def uses_signature(self) -> bool:
        """Secure protocols treat unit 0 as the signature packet."""
        return self.pipeline.secured

    @property
    def snack_suppression(self) -> bool:
        """Deluge/Seluge suppress overheard-equivalent requests."""
        return True

    @abc.abstractmethod
    def make_tx_policy(self, unit: int) -> TxPolicy:
        """Fresh TX pending-state for ``unit``."""

    # -- causal provenance (all no-ops unless trace.causal is attached) -----------

    def _note_request_cause(self, reason: str,
                            parent: Optional[int] = None) -> None:
        """Remember why the request timer was (re)armed, and by which frame.

        ``parent`` defaults to the frame currently being handled (the adv or
        data packet that triggered the arm).  Timer-context re-arms have no
        rx frame; they inherit the previous parent so the causal chain stays
        rooted across defer/suppress cycles — the *reason* updates each time
        and labels the wait category of the final arm-to-fire interval.
        """
        causal = self.trace.causal
        if causal is None:
            return
        if parent is None:
            parent = causal.current_frame(self.node_id)
        if parent is None and self._causal_req is not None:
            parent = self._causal_req[1]
        self._causal_req = (reason, parent, self.sim.now)

    def _request_cause(self) -> Optional[Dict[str, Any]]:
        """Cause stamp for a SNACK: the last noted request-timer arm."""
        if self.trace.causal is None:
            return None
        reason, parent, armed = self._causal_req or (
            "unknown", None, self.sim.now)
        cause: Dict[str, Any] = {
            "trigger": "request", "reason": reason, "armed": armed}
        if parent is not None:
            cause["parent"] = parent
        return cause

    def _serve_cause(self, unit: int) -> Optional[Dict[str, Any]]:
        """Cause stamp for a served data/signature packet: the SNACK rx."""
        if self.trace.causal is None:
            return None
        cause: Dict[str, Any] = {"trigger": "serve", "unit": unit}
        snack = self._causal_unit_snack.get(unit)
        if snack is not None:
            cause["parent"], cause["armed"] = snack
        return cause

    def _adv_cause(self) -> Optional[Dict[str, Any]]:
        """Cause stamp for an advertisement: the trickle round."""
        if self.trace.causal is None:
            return None
        return {"trigger": "trickle", "uc": self.units_complete}

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Begin operating; the base station also pushes the signature packet."""
        if self.trace.flight is not None:
            self.trace.flight.on_meta(self.sim.now, self.node_id,
                                      self.protocol.value, self.is_base,
                                      self.total_units, self.pipeline.secured)
        if self.trace.causal is not None:
            self.trace.causal.on_meta(self.sim.now, self.node_id,
                                      self.protocol.value, self.is_base,
                                      self.total_units, self.pipeline.secured,
                                      self.causal_profile)
        self.trickle.start()
        if not self.is_base and not self.complete:
            self.trace.span_begin(self.sim.now, "span_disseminate", self.node_id)
            self._page_started_at = self.sim.now
            self._arm_stall()
        if self.is_base:
            if self.uses_signature and self._signature_packet is not None:
                delay = self.rng.uniform(0.0, 0.05)
                self.sim.schedule(delay, self._broadcast_signature)
            self.sim.schedule(self.rng.uniform(0.01, 0.1), self._advertise)

    @property
    def total_units(self) -> Optional[int]:
        return self.pipeline.total_units

    @property
    def needed_unit(self) -> Optional[int]:
        if self.complete:
            return None
        return self.units_complete

    def image_bytes(self) -> bytes:
        """The reassembled code image (valid once complete)."""
        return self.pipeline.assembled_image()

    # -- faults: crash / reboot ----------------------------------------------------

    def crash(self) -> None:
        """Power loss: RAM state vanishes and the radio goes silent.

        Only :attr:`flash` (and the base station's program-flash image)
        survives; everything else — RX buffers, neighbor tables, pending TX
        policies, timers — is gone.  Neighbors' state about this node ages
        out through the normal ``request_timeout``/``request_max_tries``
        machinery.
        """
        if self.crashed:
            return
        self.crashed = True
        self.radio.detach(self.node_id)
        self.trickle.stop()
        self._tx_timer.cancel()
        self._request_timer.cancel()
        self._rx_buffer.clear()
        self._neighbor_progress.clear()
        self._service.clear()
        self._last_data_heard.clear()
        self._last_overheard_snack.clear()
        self._snack_counts.clear()
        self._request_tries = 0
        self._suppressions = 0
        self._data_suppressions = 0
        self._tx_deferrals = 0
        self._last_served_unit = -1
        self._upgrade_server = None
        self._upgrade_tries = 0
        self._upgrade_cooldown_until = 0.0
        self._causal_req = None
        self._causal_unit_snack.clear()
        if self._guard is not None:
            self._guard.reset()
        self._stall_timer.cancel()
        self._stall_rotations = 0
        self._page_ewma = None
        self.trace.record(self.sim.now, "fault_crash", self.node_id)

    def reboot(self) -> None:
        """Power restored: re-verify flash-persisted progress and resume.

        The base station's image lives in program flash, so it comes back
        serving everything; a sensor node replays its :class:`NodeFlash`
        through a fresh pipeline and resumes from the persisted page index.
        Trickle restarts from ``i_min`` either way.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.radio.attach(self.node_id)
        if self.is_base:
            resume_unit = self.units_complete
            if self.uses_signature and self._signature_packet is not None:
                self.sim.schedule(self.rng.uniform(0.0, 0.05), self._broadcast_signature)
        else:
            resume_unit = self._recover_from_flash()
        self.trickle.stop()
        self.trickle.start()
        self._page_started_at = self.sim.now
        self._arm_stall()
        self.trace.record(self.sim.now, "fault_reboot", self.node_id,
                          resume_unit=resume_unit)

    def _recover_from_flash(self) -> int:
        """Rebuild receiver state from flash; returns the resume unit index.

        Flash contents are never trusted: every persisted unit is replayed
        through a fresh :class:`ReceiverPipeline` exactly as if received off
        the air, so a stale or half-written store degrades to an earlier
        resume point instead of poisoning the node.
        """
        if self.pipeline_factory is None:
            # Bare rigs without a factory cannot rebuild a pipeline; treat
            # the existing one as NVRAM-resident and resume where it was.
            return self.units_complete
        flash = self.flash
        version = (
            flash.version
            if flash is not None and flash.version is not None
            else (self.pipeline.version or 0)
        )
        self._adopt_pipeline(self.pipeline_factory(version))
        if flash is None or flash.empty:
            return 0
        if self.pipeline.secured:
            if flash.signature is None or not self.pipeline.handle_signature(
                flash.signature
            ):
                flash.wipe()
                return 0
            self._signature_packet = flash.signature
            self.units_complete = 1
        elif flash.total_units is not None:
            self._learn_total_units(flash.total_units)
        unit = self.units_complete
        while True:
            packets = flash.unit_packets(unit)
            if packets is None:
                break
            accepted = {
                idx: pkt
                for idx, pkt in sorted(packets.items())
                if self.pipeline.authenticate(pkt)
            }
            if not accepted or not self.pipeline.complete_unit(unit, accepted):
                flash.truncate_from(unit)
                break
            unit += 1
            self.units_complete = unit
        flash.set_units_complete(self.units_complete)
        total = self.total_units
        if total is not None and self.units_complete >= total:
            # It had completed before the crash; on_complete already fired
            # then, so restoring completeness must not re-fire it.
            self.complete = True
            self.completion_time = self.sim.now
        self.trace.count("flash_units_restored", self.units_complete)
        return self.units_complete

    # -- MAINTAIN -----------------------------------------------------------------

    def _advertise(self) -> None:
        adv = Advertisement(
            version=self.pipeline.version or 0,
            units_complete=self.units_complete,
            total_units=self.total_units or self._advertised_total,
        )
        if self.control_auth is not None:
            adv = dataclasses.replace(adv, mac=self.control_auth.tag_adv(adv))
        self.broadcast(FrameKind.ADV, self.wire.adv_size(), adv,
                       cause=self._adv_cause())

    def _on_adv(self, adv: Advertisement, sender: int) -> None:
        my_version = self.pipeline.version or 0
        if adv.version > my_version:
            self._on_newer_version_advertised(adv, sender)
            return
        if adv.version < my_version:
            # The neighbor is behind a whole image version: gossip fast so
            # it hears about the new image.
            self.trickle.heard_inconsistent()
            return
        self._neighbor_progress[sender] = adv.units_complete
        if adv.total_units:
            self._advertised_total = max(self._advertised_total, adv.total_units)
            self._learn_total_units(adv.total_units)
        if adv.units_complete == self.units_complete:
            self.trickle.heard_consistent()
        else:
            self.trickle.heard_inconsistent()
        if adv.units_complete > self.units_complete and not self.complete:
            self._request_tries = 0
            self._maybe_schedule_request()

    # -- image-version upgrades ---------------------------------------------------

    def _on_newer_version_advertised(self, adv: Advertisement, sender: int) -> None:
        """A neighbor advertises a newer code image.

        Insecure protocols trust the advertisement and reset immediately
        (their documented weakness: a forged advertisement wedges them).
        Secure protocols only ever switch on a *verified* signature packet,
        so here they merely request unit 0 of the new version.
        """
        if self.pipeline_factory is None or self.is_base:
            return
        self.trickle.heard_inconsistent()
        if not self.pipeline.secured:
            self._adopt_pipeline(self.pipeline_factory(adv.version))
            self._learn_total_units(adv.total_units)
            self._neighbor_progress[sender] = adv.units_complete
            self._maybe_schedule_request()
            return
        if self.sim.now < self._upgrade_cooldown_until:
            return  # recently burned by an unverifiable "newer version"
        self._upgrade_server = sender
        self._upgrade_version = adv.version
        if not self._request_timer.armed:
            self._note_request_cause("upgrade")
            self._request_timer.start(self.rng.uniform(0.0, self.timing.request_delay_max))

    def _adopt_pipeline(self, pipeline: ReceiverPipeline) -> None:
        """Reset all dissemination state for a new image version."""
        # Verification-work statistics are per *node*, not per image.
        pipeline.stats.update(self.pipeline.stats)
        self.pipeline = pipeline
        self.units_complete = 0
        self.complete = False
        self.completion_time = None
        self._rx_buffer.clear()
        self._neighbor_progress.clear()
        self._request_tries = 0
        self._suppressions = 0
        self._data_suppressions = 0
        self._service.clear()
        self._last_data_heard.clear()
        self._last_overheard_snack.clear()
        self._snack_counts.clear()
        self._advertised_total = 0
        self._signature_packet = None
        self._upgrade_server = None
        self._upgrade_tries = 0
        self._upgrade_cooldown_until = 0.0
        self._tx_deferrals = 0
        self._last_served_unit = -1
        self._causal_req = None
        self._causal_unit_snack.clear()
        self._stall_rotations = 0
        self._page_started_at = self.sim.now
        self._arm_stall()
        self.trace.record(self.sim.now, "version_adopted", self.node_id,
                          version=pipeline.version)

    def publish_image(self, preprocessed: PreprocessedImage) -> None:
        """Base-station side: switch to disseminating a new image version."""
        if not self.is_base:
            raise ValueError("only the base station publishes images")
        if self.pipeline_factory is None:
            raise ValueError("publishing needs a pipeline_factory")
        pipeline = self.pipeline_factory(preprocessed.image.version)
        pipeline.preload(preprocessed)
        self._adopt_pipeline(pipeline)
        self._signature_packet = preprocessed.signature_packet
        self.units_complete = preprocessed.total_units
        self.complete = True
        self.completion_time = self.sim.now
        if self.uses_signature and self._signature_packet is not None:
            self.sim.schedule(self.rng.uniform(0.0, 0.05), self._broadcast_signature)
        self.sim.schedule(self.rng.uniform(0.05, 0.15), self._advertise)

    def _learn_total_units(self, total_units: int) -> None:
        """Insecure protocols bootstrap the page count from advertisements."""
        learn = getattr(self.pipeline, "learn_total_units", None)
        if learn is not None:
            learn(total_units)

    # -- RX -------------------------------------------------------------------------

    def _servers_for(self, unit: int) -> List[int]:
        """Neighbors able to serve ``unit``, best-progressed first.

        Requesting from the most-progressed advertiser concentrates serving
        on one sender per neighborhood (as Deluge's advertisement-driven
        selection does); the caller rotates to the next candidate when
        retries make no progress, which matters over asymmetric links.
        """
        qualified = sorted(
            (
                (-progress, v)
                for v, progress in self._neighbor_progress.items()
                if progress > unit
            ),
        )
        return [v for _, v in qualified]

    def _maybe_schedule_request(self) -> None:
        if self.complete or self._request_timer.armed:
            return
        if self._serving_active():
            return  # TX pump re-schedules us once drained
        if self._request_tries >= self.timing.request_max_tries:
            return  # back to MAINTAIN; a fresh advertisement resets tries
        unit = self.units_complete
        if not self._servers_for(unit):
            return
        self._note_request_cause("first_request")
        self._request_timer.start(self.rng.uniform(0.0, self.timing.request_delay_max))

    def _request_fire(self) -> None:
        if self._upgrade_server is not None:
            # Ask the advertising neighbor for the new version's signature
            # packet; only its successful verification switches us over.
            # Bounded: an advertiser that never produces a verifiable
            # signature (a version liar) is abandoned and ignored a while,
            # so normal dissemination resumes.
            self._upgrade_tries += 1
            if self._upgrade_tries > 5:
                self.trace.count("upgrade_abandoned")
                self._upgrade_server = None
                self._upgrade_tries = 0
                self._upgrade_cooldown_until = self.sim.now + 10.0
                self._maybe_schedule_request()
                return
            request = SnackRequest(
                version=self._upgrade_version,
                unit=0,
                requester=self.node_id,
                server=self._upgrade_server,
                needed=(0,),
            )
            if self.control_auth is not None:
                request = dataclasses.replace(
                    request, mac=self.control_auth.tag_snack(request)
                )
            sent = self.broadcast(FrameKind.SNACK, self.wire.snack_size(1),
                                  request, dest=self._upgrade_server,
                                  cause=self._request_cause())
            self._note_request_cause("upgrade_retry", parent=sent.frame_id)
            self._request_timer.start(self._rearm_delay(self.timing.request_timeout))
            return
        if self.complete:
            return
        if self._serving_active():
            # Defer while transmissions for earlier pages are pending.
            self._note_request_cause("serve_defer")
            self._request_timer.start(self._rearm_delay(self.timing.request_timeout))
            return
        unit = self.units_complete
        servers = self._servers_for(unit)
        if not servers:
            return
        if self._request_tries >= self.timing.request_max_tries:
            return
        # Deluge rule: overheard data suppresses a pending request — but
        # asymmetrically.  A burst for *our* page still in the air means keep
        # listening (retry shortly after it stops); data for an *earlier*
        # page means someone behind us is being served, so hold back long
        # enough for their catch-up request to win.  This keeps the
        # neighborhood advancing page-by-page in near lockstep.
        now = self.sim.now
        last_same = self._last_data_heard.get(unit)
        last_lower = max(
            (t for u, t in self._last_data_heard.items() if u < unit), default=None
        )
        if self._data_suppressions < self.timing.data_suppression_cap:
            if last_same is not None and now - last_same < self.timing.burst_active_gap:
                self._data_suppressions += 1
                self.trace.count("request_data_suppressed")
                self._note_request_cause("data_burst")
                self._request_timer.start(self.timing.burst_active_gap * self.rng.uniform(1.0, 2.0))
                return
            if (
                last_lower is not None
                and now - last_lower < self.timing.data_quiet_window
                and (last_same is None or last_same < last_lower)
            ):
                self._data_suppressions += 1
                self.trace.count("request_data_suppressed")
                self._note_request_cause("lower_page")
                self._request_timer.start(self.rng.uniform(0.5, 1.0) * self.timing.data_quiet_window)
                return
        self._data_suppressions = 0
        if self.snack_suppression and self._suppressions < self.timing.suppression_cap:
            overheard = self._last_overheard_snack.get(unit)
            if overheard is not None and self.sim.now - overheard < self.timing.suppression_window:
                self._suppressions += 1
                self.trace.count("snack_suppressed")
                self._note_request_cause("snack_suppressed")
                self._request_timer.start(self._rearm_delay(self.timing.request_timeout))
                return
        self._suppressions = 0
        n_packets, _ = self.pipeline.geometry(unit)
        needed = tuple(j for j in range(n_packets) if j not in self._rx_buffer)
        if not needed:
            return
        # Stick with the best server while making progress; rotate through
        # the alternatives as consecutive tries fail (bad/asymmetric link).
        server = servers[self._request_tries % len(servers)]
        request = SnackRequest(
            version=self.pipeline.version or 0,
            unit=unit,
            requester=self.node_id,
            server=server,
            needed=needed,
        )
        if self.control_auth is not None:
            request = dataclasses.replace(
                request, mac=self.control_auth.tag_snack(request)
            )
        self._request_tries += 1
        sent = self.broadcast(FrameKind.SNACK, self.wire.snack_size(n_packets),
                              request, dest=server,
                              cause=self._request_cause())
        # The next fire (if this SNACK goes unanswered) is a retry chained on
        # this very attempt, so the walk attributes the wait to retransmission.
        self._note_request_cause("retry", parent=sent.frame_id)
        self._request_timer.start(self._request_retry_delay())

    def _rearm_delay(self, base: float) -> float:
        """``base`` with small multiplicative jitter from the node's stream.

        A fixed timeout synchronises a whole neighborhood: every node that
        overhears the same frame re-arms at exactly rx_time + timeout, all
        the timers fire in the same simulator tick, and *who transmits
        first* falls to the engine's same-timestamp tie-break — an order
        dependence the determinism sanitizer flags.  Real radios never tie
        exactly; +/-5% keeps the contention physical.
        """
        return base * self.rng.uniform(0.95, 1.05)

    def _request_retry_delay(self) -> float:
        """The re-arm delay after an (as yet) unanswered SNACK.

        With the ``backoff`` defense enabled, repeated unanswered tries grow
        the delay exponentially (capped, jittered) so a neighborhood whose
        server vanished stops hammering the channel; any buffered data packet
        resets ``_request_tries`` and with it the delay.
        """
        base = self.timing.request_timeout
        cfg = self.defense
        if cfg is None or not cfg.backoff or self._request_tries <= 1:
            return base
        exponent = min(self._request_tries - 1, 6)
        delay = min(base * cfg.backoff_factor ** exponent, cfg.backoff_cap_s)
        self.trace.count("defense_backoff_applied")
        spread = cfg.backoff_jitter
        if spread > 0.0 and self._backoff_rng is not None:
            delay *= 1.0 + spread * (2.0 * self._backoff_rng.random() - 1.0)
        return delay

    def _recent_data_leq(self, unit: int) -> bool:
        """Was data for this or an earlier unit overheard very recently?"""
        horizon = self.sim.now - self.timing.data_quiet_window
        return any(
            t >= horizon for u, t in self._last_data_heard.items() if u <= unit
        )

    def _on_data(self, pkt: DataPacket, sender: int) -> None:
        if pkt.version != (self.pipeline.version or 0):
            self.trace.count("data_version_mismatch")
            return
        if (
            self._guard is not None
            and self._guard.config.replay_filter
            and pkt.unit < self.units_complete
        ):
            # Stale-page data cannot be buffered, but it *can* poison the
            # quiet-window timers (deferring our requests and transmissions
            # forever under a replay loop).  Each identity may touch the
            # timers once per window; repeats are dropped here.
            if self._guard.data_replayed((pkt.version, pkt.unit, pkt.index),
                                         sender):
                self.trace.count("defense_replay_dropped")
                return
        acceptable_index = self._acceptable_index(pkt)
        authentic = False
        flight = self.trace.flight
        if not self.complete and pkt.unit == self.units_complete and acceptable_index:
            buffered = self._rx_buffer.get(pkt.index)
            if buffered is not None:
                authentic = buffered == pkt
                if authentic and flight is not None:
                    flight.on_duplicate(self.sim.now, self.node_id, sender,
                                        pkt.version, pkt.unit, pkt.index)
            elif self.pipeline.authenticate(pkt):
                authentic = True
                if flight is not None:
                    flight.on_auth_ok(self.sim.now, self.node_id, sender,
                                      pkt.version, pkt.unit, pkt.index)
                if not self._rx_buffer:
                    # First buffered packet of this page: open its assembly
                    # span (first packet -> verified decode).
                    self.trace.span_begin(self.sim.now, "span_page",
                                          self.node_id, key=pkt.unit,
                                          unit=pkt.unit)
                self._rx_buffer[pkt.index] = pkt
                if flight is not None:
                    flight.on_buffered(self.sim.now, self.node_id, sender,
                                       pkt.version, pkt.unit, pkt.index)
                self._request_tries = 0
                if self._request_timer.armed:
                    self._note_request_cause("data_progress")
                    self._request_timer.start(self._rearm_delay(self.timing.request_timeout))
                self._try_complete_unit()
            else:
                self.trace.count("data_rejected")
                if flight is not None:
                    flight.on_auth_drop(self.sim.now, self.node_id, sender,
                                        pkt.version, pkt.unit, pkt.index)
        elif acceptable_index:
            # Not the unit we are collecting: a cheap authenticity check
            # decides whether this packet may influence our timers at all.
            authentic = self.pipeline.validate_overheard(pkt)
            if not authentic and self.pipeline.secured and flight is not None:
                flight.on_auth_drop(self.sim.now, self.node_id, sender,
                                    pkt.version, pkt.unit, pkt.index)

        if not authentic:
            if not self.complete:
                self._maybe_schedule_request()
            return

        # The sender evidently possesses pkt.unit, i.e. >= unit+1 units.
        known = self._neighbor_progress.get(sender, 0)
        self._neighbor_progress[sender] = max(known, pkt.unit + 1)
        self._last_data_heard[pkt.unit] = self.sim.now

        # Sender-side suppression: someone else covered this packet.
        policy = self._service.get(pkt.unit)
        if policy is not None:
            policy.mark_sent(pkt.index)
            self.trace.count("data_suppressed")
            if flight is not None:
                flight.on_tracker(self.sim.now, self.node_id, pkt.unit,
                                  "overheard", policy.snapshot(),
                                  index=pkt.index)
        if not self.complete:
            self._maybe_schedule_request()

    def _acceptable_index(self, pkt: DataPacket) -> bool:
        """Reject out-of-range packet indices before buffering.

        Rateless protocols accept any index (combinations are unbounded);
        fixed-set protocols only indices < the unit's packet count.
        """
        if self.protocol is ProtocolName.RATELESS:
            return pkt.index >= 0
        if self.total_units is not None and not 0 <= pkt.unit < self.total_units:
            return False
        n_packets, _ = self.pipeline.geometry(pkt.unit)
        return 0 <= pkt.index < n_packets

    def _try_complete_unit(self) -> None:
        unit = self.units_complete
        _, threshold = self.pipeline.geometry(unit)
        if len(self._rx_buffer) < threshold:
            return
        if not self.pipeline.complete_unit(unit, dict(self._rx_buffer)):
            return
        self._advance_unit()

    def _advance_unit(self) -> None:
        if self.flash is not None and not self.is_base:
            # Page-completion is the durable point: everything that just
            # verified goes to flash before the RX buffer is recycled.
            completed = self.units_complete
            version = self.pipeline.version or 0
            if completed == 0 and self.uses_signature:
                if self._signature_packet is not None:
                    self.flash.write_signature(version, self._signature_packet)
            else:
                self.flash.write_unit(version, completed, self._rx_buffer,
                                      total_units=self.total_units)
            self.flash.set_units_complete(self.units_complete + 1)
        self.units_complete += 1
        self._rx_buffer.clear()
        self._request_tries = 0
        self._request_timer.cancel()
        self.trickle.heard_inconsistent()  # state changed: gossip fast
        if self.defense is not None and self.defense.stall_watchdog and not self.is_base:
            # Page completed: fold its duration into the EWMA the watchdog
            # scales its no-progress timeout by, and start a fresh window.
            duration = self.sim.now - self._page_started_at
            self._page_ewma = (
                duration if self._page_ewma is None
                else 0.7 * self._page_ewma + 0.3 * duration
            )
            self._page_started_at = self.sim.now
            self._stall_rotations = 0
            self._arm_stall()
        completed_unit = self.units_complete - 1
        causal = self.trace.causal
        if causal is not None:
            n_packets, threshold = self.pipeline.geometry(completed_unit)
            causal.on_decode(self.sim.now, self.node_id, completed_unit,
                             causal.current_frame(self.node_id),
                             threshold, n_packets)
        self.trace.record(self.sim.now, "unit_complete", self.node_id, unit=completed_unit)
        self.trace.span_end(self.sim.now, "span_page", self.node_id,
                            key=completed_unit, unit=completed_unit)
        total = self.total_units
        if total is not None and self.units_complete >= total:
            self.complete = True
            self.completion_time = self.sim.now
            self.trace.record(self.sim.now, "node_complete", self.node_id,
                              total=total)
            self.trace.span_end(self.sim.now, "span_disseminate", self.node_id)
            if self.on_complete is not None:
                self.on_complete(self)
            return
        self._maybe_schedule_request()

    # -- stall-recovery watchdog (defense: stall_watchdog) -------------------------

    def _arm_stall(self) -> None:
        if self.defense is None or not self.defense.stall_watchdog:
            return
        if self.is_base or self.complete or self.crashed:
            self._stall_timer.cancel()
            return
        self._stall_mark = (self.units_complete, len(self._rx_buffer))
        self._stall_timer.start(self._stall_period())

    def _stall_period(self) -> float:
        """Adaptive no-progress timeout: a multiple of the EWMA page time."""
        cfg = self.defense
        if cfg is None:
            raise AssertionError('invariant violated: cfg is not None')
        if self._page_ewma is None:
            return cfg.stall_min_s
        return min(max(self._page_ewma * cfg.stall_factor, cfg.stall_min_s),
                   cfg.stall_max_s)

    def _stall_fire(self) -> None:
        if self.defense is None or self.complete or self.crashed:
            return
        if (self.units_complete, len(self._rx_buffer)) != self._stall_mark:
            self._arm_stall()  # progress happened; just keep watching
            return
        # No page progress for a whole adaptive window: the server we keep
        # asking is gone, deaf, or a greyhole.  Rotate to an alternate
        # neighbor, clear the suppression state a replay/jam loop may have
        # poisoned, and gossip fast so the neighborhood resyncs.
        self._stall_rotations += 1
        self.trace.record(self.sim.now, "defense_stall_rerequest", self.node_id,
                          unit=self.units_complete,
                          rotation=self._stall_rotations)
        self._request_tries = self._stall_rotations % max(
            1, self.timing.request_max_tries)
        self._suppressions = 0
        self._data_suppressions = 0
        self.trickle.heard_inconsistent()
        self._request_timer.cancel()
        self._maybe_schedule_request()
        self._arm_stall()

    # -- TX -------------------------------------------------------------------------

    def _serving_active(self) -> bool:
        return any(not p.empty for p in self._service.values())

    def _on_snack(self, request: SnackRequest, sender: int) -> None:
        if request.version != (self.pipeline.version or 0):
            # Stale-version requester: our advertisements (and, for secure
            # protocols, the signature packet it will request) catch it up.
            return
        self._last_overheard_snack[request.unit] = self.sim.now
        self._neighbor_progress[sender] = max(
            self._neighbor_progress.get(sender, 0), request.unit
        )
        if request.server != self.node_id:
            return
        if self.units_complete <= request.unit:
            return  # we do not possess the requested unit
        if self._guard is not None:
            cfg = self._guard.config
            if cfg.replay_filter and self._guard.snack_replayed(
                (request.version, request.unit, request.requester,
                 request.server, request.needed),
                sender,
            ):
                self.trace.count("defense_replay_dropped")
                return
            if cfg.rate_limit and not self._guard.admit_snack(sender):
                self.trace.count("defense_snack_rate_limited")
                return
        if self._snack_flood_exceeded(request.requester, request.unit):
            self.trace.count("snack_ignored_flood")
            return
        causal = self.trace.causal
        if causal is not None:
            rx_frame = causal.current_frame(self.node_id)
            if rx_frame is not None:
                # The latest folded SNACK parents every packet this unit's
                # serve burst puts on the air.
                self._causal_unit_snack[request.unit] = (rx_frame, self.sim.now)
        policy = self._service.get(request.unit)
        if policy is None:
            policy = self.make_tx_policy(request.unit)
            self._service[request.unit] = policy
            # TX service span: first SNACK for the unit until the policy
            # drains in the pump.
            self.trace.span_begin(self.sim.now, "span_serve", self.node_id,
                                  key=request.unit, unit=request.unit)
        # Demand is folded per *claimed* requester identity — the honest
        # Sybil weakness (a forger multiplies identities from one radio);
        # the link-layer token bucket above is what bounds that radio.
        policy.on_snack(request.requester, request.needed)
        if self.trace.flight is not None:
            self.trace.flight.on_tracker(self.sim.now, self.node_id,
                                         request.unit, "snack",
                                         policy.snapshot(),
                                         requester=request.requester,
                                         via=sender)
        if not self._tx_timer.armed:
            self._tx_timer.start(self._rearm_delay(self.timing.tx_aggregation_delay))

    def _snack_flood_exceeded(self, requester: int, unit: int) -> bool:
        """Denial-of-receipt mitigation (Section IV-E, optional).

        Keyed on the claimed requester id, as the paper specifies — which is
        exactly why a Sybil forger walks through it; see ``rate_limit`` in
        :class:`~repro.protocols.defense.DefenseConfig` for the link-layer
        counterpart.
        """
        if self.snack_flood_threshold is None:
            return False
        key = (requester, unit)
        self._snack_counts[key] = self._snack_counts.get(key, 0) + 1
        return self._snack_counts[key] > self.snack_flood_threshold

    def _tx_pump(self) -> None:
        if self.radio.queue_length(self.node_id) > 0:
            # MAC still draining; try again shortly.
            self._tx_timer.start(self._rearm_delay(self.timing.tx_gap))
            return
        pending = sorted(u for u, p in self._service.items() if not p.empty)
        if not pending:
            for u, p in self._service.items():
                if p.empty:
                    self.trace.span_end(self.sim.now, "span_serve",
                                        self.node_id, key=u, unit=u)
            self._service = {u: p for u, p in self._service.items() if not p.empty}
            if not self.complete:
                self._maybe_schedule_request()
            return
        # Deluge rule: data for a smaller page suppresses a transmission for
        # a larger one — let the earlier page finish first.  Serve the first
        # unit (lowest first, rotating upward from the last unit served so a
        # unit with perpetual demand cannot starve the rest) that is not
        # deferred; the deferral cap breaks livelock when lower-page traffic
        # never quiesces (e.g. a denial-of-receipt SNACK flood).
        horizon = self.sim.now - self.timing.data_quiet_window

        def deferred(u: int) -> bool:
            return any(
                t >= horizon for uu, t in self._last_data_heard.items() if uu < u
            )

        order = [u for u in pending if u > self._last_served_unit]
        order += [u for u in pending if u <= self._last_served_unit]
        cap_reached = self._tx_deferrals >= self.timing.data_suppression_cap
        unit = next((u for u in order if cap_reached or not deferred(u)), None)
        if unit is None:
            self._tx_deferrals += 1
            self.trace.count("tx_data_deferred")
            self._tx_timer.start(self.rng.uniform(0.5, 1.0) * self.timing.data_quiet_window)
            return
        if not deferred(unit):
            # Natural quiet resets the guard; under perpetual lower-page
            # traffic we keep serving once the cap tripped.
            self._tx_deferrals = 0
        policy = self._service[unit]
        index = policy.next_packet()
        if index is None:
            self._service.pop(unit, None)
            self.trace.span_end(self.sim.now, "span_serve", self.node_id,
                                key=unit, unit=unit)
            self._tx_timer.start(0.0)
            return
        frame_size = self._transmit_unit_packet(unit, index)
        policy.mark_sent(index)
        if self.trace.flight is not None:
            self.trace.flight.on_tracker(self.sim.now, self.node_id, unit,
                                         "sent", policy.snapshot(), index=index)
        self._last_served_unit = unit
        self._tx_timer.start(
            self._rearm_delay(self.radio.config.airtime(frame_size) + self.timing.tx_gap))

    def _transmit_unit_packet(self, unit: int, index: int) -> int:
        # Record our own transmission so the pump grants a grace period to
        # stragglers of this unit before starting to serve a higher one.
        self._last_data_heard[unit] = self.sim.now
        if self.uses_signature and unit == 0:
            return self._broadcast_signature(cause=self._serve_cause(unit))
        packets = self.pipeline.serving_packets(unit)
        pkt = packets[index]
        size = self.wire.data_packet_size(len(pkt.payload), len(pkt.auth_path))
        self.broadcast(FrameKind.DATA, size, pkt, cause=self._serve_cause(unit))
        return size

    def _broadcast_signature(self, cause: Optional[Dict[str, Any]] = None) -> int:
        if cause is None and self.trace.causal is not None:
            # Unsolicited pushes (base start / reboot / publish) root the
            # causal chain at image availability rather than at a SNACK.
            cause = {"trigger": "start"}
        size = self.wire.signature_packet_size()
        self.broadcast(FrameKind.SIGNATURE, size, self._signature_packet,
                       cause=cause)
        return size

    def _on_signature(self, packet: SignaturePacket, sender: int) -> None:
        if not self.uses_signature:
            return
        my_version = self.pipeline.version or 0
        if (
            packet.version > my_version
            and self.pipeline_factory is not None
            and not self.is_base
        ):
            # A newer image: verify with a *fresh* pipeline before adopting
            # anything — forged high-version signature packets die here.
            fresh = self.pipeline_factory(packet.version)
            if fresh.handle_signature(packet):
                self._adopt_pipeline(fresh)
                self._last_data_heard[0] = self.sim.now
                self._signature_packet = packet
                self._neighbor_progress[sender] = 1
                self._advance_unit()
            else:
                # Keep the (cheap) verification work visible in our stats.
                self.pipeline.stats.update(fresh.stats)
            return
        self._neighbor_progress[sender] = max(self._neighbor_progress.get(sender, 0), 1)
        if self.complete or self.units_complete > 0:
            return
        if self.pipeline.handle_signature(packet):
            # Only an *authentic* signature counts as unit-0 data activity;
            # otherwise a signature flood would suppress all data serving.
            self._last_data_heard[0] = self.sim.now
            self._signature_packet = packet
            self._advance_unit()

    # -- dispatch -----------------------------------------------------------------

    def on_receive(self, frame: Frame, sender: int) -> None:
        if self.crashed:
            return  # defensive: the radio already delivers nothing to us
        payload = frame.payload
        if (
            self._guard is not None
            and self._guard.config.rate_limit
            and (frame.kind is FrameKind.ADV or frame.kind is FrameKind.SNACK)
            and self._guard.quarantined(sender)
        ):
            # A quarantined neighbor's control traffic is dead to us: it can
            # neither be served nor steer our request/suppression timers.
            self.trace.count("defense_quarantined_drop")
            return
        if frame.kind is FrameKind.ADV:
            if self.control_auth is not None and not self.control_auth.check_adv(
                payload, payload.mac, sender
            ):
                self.trace.count("ctrl_auth_reject_adv")
                return
            self._on_adv(payload, sender)
        elif frame.kind is FrameKind.SNACK:
            if self.control_auth is not None and not self.control_auth.check_snack(
                payload, payload.mac, sender
            ):
                self.trace.count("ctrl_auth_reject_snack")
                return
            self._on_snack(payload, sender)
        elif frame.kind is FrameKind.SIGNATURE:
            self._on_signature(payload, sender)
        elif frame.kind is FrameKind.DATA:
            self._on_data(payload, sender)
