"""Adversary nodes for the security experiments (DESIGN.md E8).

.. deprecated:: PR 6
   The attackers now live in the composable adversary engine
   :mod:`repro.attacks` (DESIGN.md §12); this module re-exports the four
   originals for compatibility.  New code should import from
   ``repro.attacks`` and deploy via :class:`repro.attacks.engine.
   AttackEngine` / :class:`repro.attacks.plan.AttackPlan`.

Four attacks from the paper's threat discussion:

* :class:`BogusDataInjector` — floods forged data packets for the page its
  victims are currently collecting.  Secure receivers reject each forgery
  with a single hash (or Merkle-path) check and never buffer it; Deluge
  happily accepts, corrupting the installed image.
* :class:`SignatureFlooder` — floods forged signature packets to provoke
  expensive ECDSA verifications.  The message-specific puzzle filters them
  at one hash each; receivers' ``signature_verifications`` stays at ~1.
* :class:`ControlForger` — an outsider without the cluster key forging
  advertisements (luring victims toward a server that never answers) and
  all-ones SNACKs (making victims transmit).  Control-packet authentication
  drops every forgery at a single MAC check.
* :class:`DenialOfReceiptAttacker` — a compromised node that keeps sending
  all-ones SNACKs to one victim to drain its battery.  The optional
  per-neighbor SNACK counter (Section IV-E mitigation) bounds the damage.
"""

from __future__ import annotations

from repro.attacks.model import AttackModel as _AttackerNode
from repro.attacks.models import (
    BogusDataInjector,
    ControlForger,
    DenialOfReceiptAttacker,
    SignatureFlooder,
)

__all__ = [
    "BogusDataInjector",
    "SignatureFlooder",
    "DenialOfReceiptAttacker",
    "ControlForger",
]
