"""Adversary nodes for the security experiments (DESIGN.md E8).

Three attacks from the paper's threat discussion:

* :class:`BogusDataInjector` — floods forged data packets for the page its
  victims are currently collecting.  Secure receivers reject each forgery
  with a single hash (or Merkle-path) check and never buffer it; Deluge
  happily accepts, corrupting the installed image.
* :class:`SignatureFlooder` — floods forged signature packets to provoke
  expensive ECDSA verifications.  The message-specific puzzle filters them
  at one hash each; receivers' ``signature_verifications`` stays at ~1.
* :class:`DenialOfReceiptAttacker` — a compromised node that keeps sending
  all-ones SNACKs to one victim to drain its battery.  The optional
  per-neighbor SNACK counter (Section IV-E mitigation) bounds the damage.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.packets import DataPacket, SignaturePacket, SnackRequest
from repro.net.node import NetworkNode
from repro.net.packet import Frame, FrameKind
from repro.net.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder

__all__ = [
    "BogusDataInjector",
    "SignatureFlooder",
    "DenialOfReceiptAttacker",
    "ControlForger",
]


class _AttackerNode(NetworkNode):
    """Base: a node that transmits attack traffic on a fixed period."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        radio: Radio,
        rngs: RngRegistry,
        trace: TraceRecorder,
        period: float = 0.5,
        start_delay: float = 0.1,
    ):
        super().__init__(node_id, sim, radio, rngs, trace)
        self.sent = 0
        self._process: Optional[PeriodicProcess] = None
        self._period = period
        self._start_delay = start_delay

    def start(self) -> None:
        self._process = PeriodicProcess(
            self.sim, self._attack_once, self._period, start_delay=self._start_delay
        )

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()

    def _attack_once(self) -> None:
        raise NotImplementedError

    def on_receive(self, frame: Frame, sender: int) -> None:
        # Attackers snoop advertisements to target the current page.
        if frame.kind is FrameKind.ADV:
            self._observe_adv(frame.payload, sender)

    def _observe_adv(self, adv, sender: int) -> None:
        pass


class BogusDataInjector(_AttackerNode):
    """Injects forged data packets for the page victims are collecting."""

    def __init__(self, *args, payload_size: int = 72, version: int = 2, **kwargs):
        super().__init__(*args, **kwargs)
        self.payload_size = payload_size
        self.version = version
        self._progress: dict = {}
        self._counter = 0

    def _observe_adv(self, adv, sender: int) -> None:
        self._progress[sender] = adv.units_complete

    @property
    def _target_unit(self) -> int:
        # Victims collect the unit right after what they advertise; aim at
        # the least-progressed neighborhood member so forgeries hit nodes
        # actively buffering that unit.
        if not self._progress:
            return 0
        return min(self._progress.values())

    def _attack_once(self) -> None:
        self._counter += 1
        forged = DataPacket(
            version=self.version,
            unit=self._target_unit,
            index=self._counter % 64,
            payload=bytes([self._counter % 251]) * self.payload_size,
        )
        size = 11 + self.payload_size
        self.broadcast(FrameKind.DATA, size, forged)
        self.sent += 1
        self.trace.count("attack_bogus_data")


class SignatureFlooder(_AttackerNode):
    """Floods forged signature packets (no valid puzzle solution)."""

    def __init__(self, *args, version: int = 2, **kwargs):
        super().__init__(*args, **kwargs)
        self.version = version
        self._counter = 0

    def _attack_once(self) -> None:
        self._counter += 1
        forged = SignaturePacket(
            version=self.version,
            root=bytes([self._counter % 251]) * 8,
            metadata=b"\x00" * 13,
            signature=bytes(48),
            puzzle=None,
        )
        self.broadcast(FrameKind.SIGNATURE, 88, forged)
        self.sent += 1
        self.trace.count("attack_bogus_signature")


class ControlForger(_AttackerNode):
    """An outsider forging control traffic (no cluster key).

    Alternates forged advertisements (claiming to own the whole image, to
    lure victims into requesting from a server that will never answer) and
    forged all-ones SNACKs (to make victims transmit).  With control-packet
    authentication enabled, every one of these is dropped at one MAC check.
    """

    def __init__(self, *args, version: int = 2, total_units: int = 13,
                 n_packets: int = 48, **kwargs):
        super().__init__(*args, **kwargs)
        self.version = version
        self.total_units = total_units
        self.n_packets = n_packets
        self._victims: set = set()
        self._counter = 0

    def _observe_adv(self, adv, sender: int) -> None:
        self._victims.add(sender)

    def _attack_once(self) -> None:
        from repro.core.packets import Advertisement, SnackRequest

        self._counter += 1
        if self._counter % 2 == 0 or not self._victims:
            forged = Advertisement(
                version=self.version,
                units_complete=self.total_units,
                total_units=self.total_units,
                mac=b"\x00\x00\x00\x00",
            )
            self.broadcast(FrameKind.ADV, 20, forged)
        else:
            victim = sorted(self._victims)[self._counter % len(self._victims)]
            forged = SnackRequest(
                version=self.version, unit=0, requester=self.node_id,
                server=victim, needed=tuple(range(self.n_packets)),
                mac=b"\x00\x00\x00\x00",
            )
            self.broadcast(FrameKind.SNACK, 21, forged, dest=victim)
        self.sent += 1
        self.trace.count("attack_forged_control")


class DenialOfReceiptAttacker(_AttackerNode):
    """A compromised node spamming all-ones SNACKs at one victim."""

    def __init__(self, *args, victim: int, unit: int = 2, n_packets: int = 48,
                 version: int = 2, **kwargs):
        super().__init__(*args, **kwargs)
        self.victim = victim
        self.unit = unit
        self.n_packets = n_packets
        self.version = version

    def _attack_once(self) -> None:
        request = SnackRequest(
            version=self.version,
            unit=self.unit,
            requester=self.node_id,
            server=self.victim,
            needed=tuple(range(self.n_packets)),
        )
        size = 11 + 4 + (self.n_packets + 7) // 8
        self.broadcast(FrameKind.SNACK, size, request, dest=self.victim)
        self.sent += 1
        self.trace.count("attack_dor_snack")
