"""Protocol-side hardening against DoS adversaries (DESIGN.md §12).

Four individually flag-gated defenses, so scorecard ablations can measure
each one's contribution:

* **rate_limit** — a per-neighbor token bucket on the *serving* path: SNACKs
  beyond the bucket's sustained rate are ignored, and a neighbor that keeps
  pushing past an empty bucket accumulates strikes until it is quarantined
  (all its control traffic dropped) for a fixed duration.  Keyed on the
  link-layer sender — the one identity a Sybil attacker cannot multiply —
  where the paper's Section IV-E SNACK counter keys on the *claimed*
  requester id and is therefore Sybil-evadable.
* **backoff** — capped exponential backoff with jitter on repeated
  unanswered SNACK retries, replacing the fixed ``request_timeout`` re-arm:
  a neighborhood whose server vanished stops hammering the channel.
* **replay_filter** — a bounded window over recently seen packet identities:
  a SNACK identical to one recently relayed by a *different* link-layer
  sender is dropped (legitimate same-sender retries always pass), and stale
  data frames for already-completed pages are only allowed to touch the
  quiet-window timers once per identity per window.
* **stall_watchdog** — an adaptive no-progress timeout (a multiple of the
  node's EWMA page-completion time): when a page stalls — e.g. a greyhole
  relay swallowing every request — the node rotates to an alternate server,
  clears its suppression state, and gossips fast to resynchronise.

:class:`DefenseConfig` is pure, frozen configuration (hashable, so frozen
scenario dataclasses embed it directly into campaign task keys);
:class:`NeighborGuard` is the per-node runtime state behind ``rate_limit``
and ``replay_filter``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, fields, replace
from typing import Dict, Hashable, Optional, Tuple

from repro.errors import ConfigError
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder

__all__ = ["DefenseConfig", "NeighborGuard", "DEFENSE_FLAGS"]

#: The gate flags, in ablation-matrix order (DESIGN.md §12 table).
DEFENSE_FLAGS = ("rate_limit", "backoff", "replay_filter", "stall_watchdog")


@dataclass(frozen=True)
class DefenseConfig:
    """Which defenses are active, and their tuning parameters.

    Defaults keep every flag off — constructing a node with
    ``defense=DefenseConfig()`` is behaviourally identical to
    ``defense=None`` (the hot path only pays an ``is not None`` check).
    """

    rate_limit: bool = False
    backoff: bool = False
    replay_filter: bool = False
    stall_watchdog: bool = False

    # rate_limit: token bucket + quarantine.  The sustained rate is set just
    # above the worst honest case (one SNACK per request_timeout = ~1.4/s);
    # the burst absorbs a neighborhood-wide loss episode.
    bucket_capacity: float = 10.0
    bucket_refill_per_s: float = 1.5
    quarantine_strikes: int = 8
    quarantine_duration_s: float = 120.0

    # backoff: delay = request_timeout * factor**(tries-1), capped, jittered.
    backoff_factor: float = 2.0
    backoff_cap_s: float = 8.0
    backoff_jitter: float = 0.25

    # replay_filter: identity window.
    replay_window_s: float = 30.0
    replay_capacity: int = 512

    # stall_watchdog: timeout = clamp(page_ewma * factor, min, max).
    stall_min_s: float = 5.0
    stall_max_s: float = 60.0
    stall_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.bucket_capacity <= 0 or self.bucket_refill_per_s <= 0:
            raise ConfigError("token bucket needs positive capacity and refill")
        if self.quarantine_strikes < 1:
            raise ConfigError("quarantine_strikes must be >= 1")
        if self.quarantine_duration_s <= 0:
            raise ConfigError("quarantine_duration_s must be > 0")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if self.backoff_cap_s <= 0:
            raise ConfigError("backoff_cap_s must be > 0")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ConfigError("backoff_jitter must be in [0, 1)")
        if self.replay_window_s <= 0 or self.replay_capacity < 1:
            raise ConfigError("replay window needs positive span and capacity")
        if not 0 < self.stall_min_s <= self.stall_max_s:
            raise ConfigError("need 0 < stall_min_s <= stall_max_s")
        if self.stall_factor < 1.0:
            raise ConfigError("stall_factor must be >= 1")

    # -- construction helpers ------------------------------------------------

    @classmethod
    def all_on(cls, **overrides: object) -> "DefenseConfig":
        """Every defense enabled (the scorecard's 'defended' column)."""
        flags = {flag: True for flag in DEFENSE_FLAGS}
        flags.update(overrides)  # type: ignore[arg-type]
        return cls(**flags)  # type: ignore[arg-type]

    @classmethod
    def from_flags(cls, spec: str) -> Optional["DefenseConfig"]:
        """Parse a CLI spec: ``none``, ``all``, or ``flag1,flag2,...``."""
        spec = spec.strip().lower()
        if spec in ("", "none", "off"):
            return None
        if spec == "all":
            return cls.all_on()
        flags = {}
        for part in spec.split(","):
            part = part.strip().replace("-", "_")
            if part not in DEFENSE_FLAGS:
                raise ConfigError(
                    f"unknown defense flag {part!r} "
                    f"(known: {', '.join(DEFENSE_FLAGS)}, or all/none)")
            flags[part] = True
        return cls(**flags)

    def with_flag(self, flag: str, value: bool = True) -> "DefenseConfig":
        if flag not in DEFENSE_FLAGS:
            raise ConfigError(f"unknown defense flag {flag!r}")
        return replace(self, **{flag: value})

    # -- introspection -------------------------------------------------------

    @property
    def enabled_flags(self) -> Tuple[str, ...]:
        return tuple(f for f in DEFENSE_FLAGS if getattr(self, f))

    @property
    def any_enabled(self) -> bool:
        return bool(self.enabled_flags)

    @property
    def label(self) -> str:
        """Short human name for scorecard rows: none/all/flag+flag."""
        enabled = self.enabled_flags
        if not enabled:
            return "none"
        if len(enabled) == len(DEFENSE_FLAGS):
            return "all"
        return "+".join(enabled)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, raw: dict) -> "DefenseConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise ConfigError(f"unknown defense keys: {sorted(unknown)}")
        return cls(**raw)


class NeighborGuard:
    """Per-node runtime state for rate limiting, quarantine, and replay.

    All bookkeeping is lazy (token refill is computed on access, quarantine
    expiry on lookup) so an idle guard costs nothing between packets, and
    bounded (the replay window is an LRU of ``replay_capacity`` identities).
    """

    def __init__(self, config: DefenseConfig, sim: Simulator,
                 trace: TraceRecorder, node_id: int):
        self.config = config
        self.sim = sim
        self.trace = trace
        self.node_id = node_id
        self._tokens: Dict[int, float] = {}
        self._token_ts: Dict[int, float] = {}
        self._strikes: Dict[int, int] = {}
        self._quarantined_until: Dict[int, float] = {}
        # identity -> (last_seen_ts, link-layer sender of the first sighting)
        self._seen: "OrderedDict[Hashable, Tuple[float, int]]" = OrderedDict()

    # -- quarantine ----------------------------------------------------------

    def quarantined(self, sender: int) -> bool:
        until = self._quarantined_until.get(sender)
        if until is None:
            return False
        if self.sim.now >= until:
            del self._quarantined_until[sender]
            self._strikes.pop(sender, None)
            return False
        return True

    # -- token bucket (serving path only) ------------------------------------

    def admit_snack(self, sender: int) -> bool:
        """Spend one token for a SNACK from ``sender``; strike on empty."""
        cfg = self.config
        now = self.sim.now
        tokens = self._tokens.get(sender, cfg.bucket_capacity)
        last = self._token_ts.get(sender, now)
        tokens = min(cfg.bucket_capacity,
                     tokens + (now - last) * cfg.bucket_refill_per_s)
        self._token_ts[sender] = now
        if tokens >= cfg.bucket_capacity:
            # A neighbor that let the bucket refill completely has behaved
            # for a while: forgive its strikes.
            self._strikes.pop(sender, None)
        if tokens < 1.0:
            self._tokens[sender] = tokens
            strikes = self._strikes.get(sender, 0) + 1
            self._strikes[sender] = strikes
            if strikes >= cfg.quarantine_strikes:
                until = now + cfg.quarantine_duration_s
                self._quarantined_until[sender] = until
                self._strikes.pop(sender, None)
                self.trace.record(now, "defense_quarantine", self.node_id,
                                  offender=sender, until=until)
            return False
        self._tokens[sender] = tokens - 1.0
        return True

    # -- replay window -------------------------------------------------------

    def _window_check(self, identity: Hashable, sender: int) -> Optional[int]:
        """Record a sighting; return the first sender if seen in-window."""
        now = self.sim.now
        entry = self._seen.get(identity)
        first_sender: Optional[int] = None
        if entry is not None and now - entry[0] < self.config.replay_window_s:
            first_sender = entry[1]
            # Keep the original sender: the replayer must not launder the
            # identity into its own name by re-sending it.
            self._seen[identity] = (now, entry[1])
        else:
            self._seen[identity] = (now, sender)
        self._seen.move_to_end(identity)
        while len(self._seen) > self.config.replay_capacity:
            self._seen.popitem(last=False)
        return first_sender

    def snack_replayed(self, identity: Hashable, sender: int) -> bool:
        """True when this SNACK identity was recently relayed by another
        link-layer sender (same-sender retries are legitimate)."""
        first_sender = self._window_check(identity, sender)
        return first_sender is not None and first_sender != sender

    def data_replayed(self, identity: Hashable, sender: int) -> bool:
        """True on any repeat sighting of a stale-page data identity."""
        return self._window_check(identity, sender) is not None

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Forget everything (node crash: RAM state vanishes)."""
        self._tokens.clear()
        self._token_ts.clear()
        self._strikes.clear()
        self._quarantined_until.clear()
        self._seen.clear()
