"""Replayable fault schedules: which persist operation fails, and how.

A schedule combines two layers:

* **explicit specs** (:class:`FaultSpec`) — "the 3rd fsync of status.json
  gets EIO" — matched by operation kind, path substring, absolute op index,
  or nth occurrence;
* **rate-driven injection** — each matching operation draws once from a
  stream derived via :func:`repro.sim.rng.derived_stream` ``("chaos", seed,
  ...)``, so the same seed over the same (deterministic) operation stream
  injects the same failures, every run, every platform.  This is the same
  discipline the simulator applies to packet loss: randomness is replayable
  or it does not exist.

Schedules serialise to/from JSON so a CI job or a bug report can pin the
exact failure plan that produced a state.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.chaos.fs import FAULT_KINDS, OpRecord
from repro.errors import ConfigError
from repro.sim.rng import derived_stream

__all__ = ["FaultSpec", "FaultSchedule", "SCHEDULE_SCHEMA_VERSION"]

SCHEDULE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FaultSpec:
    """One targeted fault: where it fires and what it injects.

    Matching is the conjunction of every non-``None`` field; ``nth`` counts
    *matching* operations (1-based), so "the 2nd write to history.jsonl" is
    ``FaultSpec(kind="enospc", op="write", path_substring="history.jsonl",
    nth=2)``.  ``once=True`` (the default) retires the spec after it fires.
    """

    kind: str
    op: Optional[str] = None
    path_substring: Optional[str] = None
    index: Optional[int] = None
    nth: Optional[int] = None
    once: bool = True

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )

    def matches(self, rec: OpRecord) -> bool:
        if self.op is not None and rec.op != self.op:
            return False
        if self.index is not None and rec.index != self.index:
            return False
        if (
            self.path_substring is not None
            and self.path_substring not in rec.path
        ):
            return False
        return True


class FaultSchedule:
    """Decides, operation by operation, which fault (if any) to inject.

    Explicit specs are consulted first, in order; the rate layer draws one
    uniform sample per operation that passes the ``rate_paths`` filter and
    maps it onto the cumulative ``rates`` table.  All state needed for
    ``nth``/``once`` bookkeeping lives on the instance, so one schedule
    serves one run — build a fresh one (same arguments) to replay.
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec] = (),
        rates: Optional[Dict[str, float]] = None,
        rate_paths: Sequence[str] = (),
        rate_ops: Sequence[str] = (),
        seed: int = 0,
    ) -> None:
        self.specs = list(specs)
        self.rates = dict(rates or {})
        for kind, rate in self.rates.items():
            if kind not in FAULT_KINDS:
                raise ConfigError(f"unknown fault kind in rates: {kind!r}")
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"rate for {kind!r} must be in [0, 1]")
        if sum(self.rates.values()) > 1.0:
            raise ConfigError("fault rates must sum to <= 1.0")
        self.rate_paths = tuple(rate_paths)
        self.rate_ops = tuple(rate_ops)
        self.seed = int(seed)
        self._rng = (
            derived_stream("chaos", self.seed) if self.rates else None
        )
        self._match_counts: Dict[int, int] = {}
        self._fired: Set[int] = set()
        self.injected: List[Tuple[str, OpRecord]] = []

    # -- decision --------------------------------------------------------------

    def _rate_eligible(self, rec: OpRecord) -> bool:
        if self.rate_ops and rec.op not in self.rate_ops:
            return False
        if self.rate_paths and not any(p in rec.path for p in self.rate_paths):
            return False
        return True

    def fault_for(self, rec: OpRecord) -> Optional[str]:
        for i, spec in enumerate(self.specs):
            if not spec.matches(rec):
                continue
            count = self._match_counts.get(i, 0) + 1
            self._match_counts[i] = count
            if spec.nth is not None and count != spec.nth:
                continue
            if spec.once and i in self._fired:
                continue
            self._fired.add(i)
            self.injected.append((spec.kind, rec))
            return spec.kind
        if self._rng is not None and self._rate_eligible(rec):
            draw = self._rng.random()
            cumulative = 0.0
            for kind in sorted(self.rates):
                cumulative += self.rates[kind]
                if draw < cumulative:
                    self.injected.append((kind, rec))
                    return kind
        return None

    def injected_summary(self) -> List[Dict[str, Any]]:
        return [
            {"kind": kind, "op": rec.op, "index": rec.index, "path": rec.path}
            for kind, rec in self.injected
        ]

    # -- (de)serialisation -----------------------------------------------------

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEDULE_SCHEMA_VERSION,
            "specs": [asdict(s) for s in self.specs],
            "rates": dict(self.rates),
            "rate_paths": list(self.rate_paths),
            "rate_ops": list(self.rate_ops),
            "seed": self.seed,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "FaultSchedule":
        version = data.get("schema_version", SCHEDULE_SCHEMA_VERSION)
        if version != SCHEDULE_SCHEMA_VERSION:
            raise ConfigError(
                f"unsupported fault-plan schema_version {version!r}"
            )
        return cls(
            specs=[FaultSpec(**spec) for spec in data.get("specs", [])],
            rates=dict(data.get("rates", {})),
            rate_paths=tuple(data.get("rate_paths", ())),
            rate_ops=tuple(data.get("rate_ops", ())),
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultSchedule":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"unreadable fault plan {path}: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigError(f"fault plan {path} must be a JSON object")
        return cls.from_jsonable(data)
