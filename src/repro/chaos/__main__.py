"""Storage chaos CLI: crash-point exploration and schedule-driven injection.

::

    # Kill the durability workload at every persist op and prove recovery.
    python -m repro.chaos explore --work-dir /tmp/chaos \\
        --report chaos_report.json

    # Same, delivering real SIGKILLs (slow; sample every 5th op).
    python -m repro.chaos explore --work-dir /tmp/chaos \\
        --action sigkill --stride 5

    # Run the workload under deterministic fault injection.
    python -m repro.chaos inject --work-dir /tmp/chaos \\
        --fault enospc:write:status.json \\
        --rate eio=0.05 --chaos-seed 7

Exit codes: 0 success, 1 an invariant failed (or injected faults killed the
campaign), 2 unusable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.chaos.explore import (
    CRASH_ACTIONS,
    CRASH_MODES,
    explore_crash_points,
    run_crash_point_child,
)
from repro.chaos.fs import FAULT_KINDS, FaultyFS
from repro.chaos.schedule import FaultSchedule, FaultSpec
from repro.chaos.workload import ChaosWorkload
from repro.errors import ConfigError, PersistError
from repro.persist import atomic_write_json, use_fs

__all__ = ["main"]


def _error(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


def _parse_fault(text: str) -> FaultSpec:
    """``KIND[:OP[:PATH_SUBSTRING[:INDEX]]]`` -> FaultSpec.

    Empty segments mean "any", so ``enospc::status.json`` injects ENOSPC on
    any op touching a path containing ``status.json``.
    """
    parts = text.split(":")
    if not parts[0]:
        raise ConfigError(f"fault spec needs a kind: {text!r}")
    kind = parts[0]
    op = parts[1] if len(parts) > 1 and parts[1] else None
    path = parts[2] if len(parts) > 2 and parts[2] else None
    index: Optional[int] = None
    if len(parts) > 3 and parts[3]:
        try:
            index = int(parts[3])
        except ValueError:
            raise ConfigError(f"fault spec index must be an int: {text!r}")
    if len(parts) > 4:
        raise ConfigError(f"fault spec has too many segments: {text!r}")
    return FaultSpec(kind=kind, op=op, path_substring=path, index=index)


def _parse_rate(text: str) -> Dict[str, float]:
    try:
        kind, _, prob = text.partition("=")
        return {kind: float(prob)}
    except ValueError:
        raise ConfigError(f"rate must look like kind=0.05: {text!r}")


def _workload_from_args(args: argparse.Namespace) -> ChaosWorkload:
    return ChaosWorkload(
        seeds=tuple(args.seeds),
        image_size=args.image_size,
        include_failing_cell=not args.no_failing_cell,
    )


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--work-dir", required=True,
                        help="scratch directory for workload roots")
    parser.add_argument("--seeds", type=int, nargs="+", default=[1, 2],
                        help="simulation seeds (one campaign cell per "
                             "protocol x seed)")
    parser.add_argument("--image-size", type=int, default=1024,
                        help="image bytes per cell (default 1024: tiny "
                             "cells keep full sweeps fast)")
    parser.add_argument("--no-failing-cell", action="store_true",
                        help="drop the scripted-failure cell (no quarantine "
                             "coverage)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Deterministic storage-fault injection and crash-point "
                    "exploration for the durability layer.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    explore = sub.add_parser(
        "explore",
        help="simulate a kill at every persist op, resume, assert recovery",
    )
    _add_workload_args(explore)
    explore.add_argument("--modes", nargs="+", default=list(CRASH_MODES),
                         choices=list(CRASH_MODES),
                         help="crash families to sweep (default: both)")
    explore.add_argument("--action", default="raise",
                         choices=list(CRASH_ACTIONS),
                         help="deliver deaths in-process (raise) or as real "
                              "SIGKILLs to child processes")
    explore.add_argument("--stride", type=int, default=1,
                         help="sample every N-th op index (default 1: all)")
    explore.add_argument("--indices", type=int, nargs="+", default=None,
                         help="explore only these op indices")
    explore.add_argument("--report", default=None,
                         help="write the machine-readable report JSON here")
    explore.add_argument("--keep-all", action="store_true",
                         help="keep every point directory, not just failures")

    inject = sub.add_parser(
        "inject",
        help="run the durability workload under a deterministic fault "
             "schedule",
    )
    _add_workload_args(inject)
    inject.add_argument("--fault", action="append", default=[],
                        metavar="KIND[:OP[:PATH[:INDEX]]]",
                        help=f"targeted fault (kinds: {', '.join(FAULT_KINDS)});"
                             " repeatable")
    inject.add_argument("--rate", action="append", default=[],
                        metavar="KIND=P",
                        help="background fault probability per op; repeatable")
    inject.add_argument("--rate-path", default=None,
                        help="restrict rate faults to paths containing this")
    inject.add_argument("--rate-op", default=None,
                        help="restrict rate faults to this op")
    inject.add_argument("--chaos-seed", type=int, default=0,
                        help="seed for the rate-fault stream (same seed -> "
                             "same injected faults)")
    inject.add_argument("--schedule", default=None,
                        help="load the schedule from this JSON file instead "
                             "of --fault/--rate flags")
    inject.add_argument("--resume", action="store_true",
                        help="resume the campaign in --work-dir instead of "
                             "starting fresh")

    point = sub.add_parser("_point")  # internal: SIGKILL crash-point child
    point.add_argument("spec")
    return parser


def _cmd_explore(args: argparse.Namespace) -> int:
    workload = _workload_from_args(args)
    report = explore_crash_points(
        workload,
        args.work_dir,
        modes=args.modes,
        crash_action=args.action,
        indices=args.indices,
        stride=args.stride,
        keep_failures=True,
        keep_passing=args.keep_all,
    )
    print(report.summary())
    if args.report:
        atomic_write_json(args.report, report.to_jsonable())
        print(f"wrote {args.report}")
    return 0 if report.ok else 1


def _cmd_inject(args: argparse.Namespace) -> int:
    workload = _workload_from_args(args)
    if args.schedule:
        schedule = FaultSchedule.load(args.schedule)
    else:
        specs = [_parse_fault(text) for text in args.fault]
        rates: Dict[str, float] = {}
        for text in args.rate:
            rates.update(_parse_rate(text))
        schedule = FaultSchedule(
            specs=specs,
            rates=rates,
            rate_paths=(args.rate_path,) if args.rate_path else (),
            rate_ops=(args.rate_op,) if args.rate_op else (),
            seed=args.chaos_seed,
        )
    fs = FaultyFS(schedule=schedule)
    root = Path(args.work_dir)
    survived = True
    failure: Optional[str] = None
    try:
        with use_fs(fs):
            workload.run(root, resume=args.resume)
    except (OSError, PersistError) as exc:
        survived = False
        failure = f"{type(exc).__name__}: {exc}"
    print(f"persist ops: {len(fs.ops)} ({fs.op_counts()})")
    injected = schedule.injected_summary()
    if injected:
        print("injected faults:")
        for entry in injected:
            print(f"  {entry['kind']} at #{entry['index']} {entry['op']} "
                  f"{entry['path']}")
    else:
        print("injected faults: none")
    if survived:
        print("campaign survived; aggregate CSV written")
        return 0
    print(f"campaign died: {failure}")
    return 1


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "_point":
        return run_crash_point_child(json.loads(args.spec))
    try:
        if args.command == "explore":
            return _cmd_explore(args)
        if args.command == "inject":
            return _cmd_inject(args)
    except ConfigError as exc:
        return _error(str(exc))
    except FileNotFoundError as exc:
        return _error(str(exc))
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
