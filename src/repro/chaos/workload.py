"""The small campaign the chaos engine tortures.

A :class:`ChaosWorkload` is a miniature but *complete* exercise of the
durability layer: a deluge + lr-seluge one-hop campaign run inline through
:func:`repro.experiments.executor.run_campaign` with

* the append-only **checkpoint journal** (compaction forced mid-run via a
  tiny ``checkpoint_compact_every``),
* a **quarantine** record (one deliberately failing cell),
* live **telemetry** ``status.json`` snapshots (unthrottled, so the persist
  operation stream is deterministic),
* a per-cell **append-only results store** (``results.jsonl``, the bench-
  history idiom), and
* a final **aggregate CSV** derived purely from journal-keyed results.

Every cell is a deterministic simulation, so two runs of the same workload
— or a crashed run plus its resume — must produce byte-identical aggregate
CSVs.  That is the anchor invariant the crash-point explorer checks at
every simulated kill.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from repro.experiments.executor import (
    CampaignConfig,
    CampaignOutcome,
    Task,
    run_campaign,
    task_key,
)
from repro.experiments.metrics import RunResult
from repro.experiments.scenarios import OneHopScenario, run_one_hop
from repro.persist import atomic_append_jsonl, atomic_write_text

__all__ = ["ChaosWorkload", "CHAOS_TASK_KIND"]

CHAOS_TASK_KIND = "chaos_one_hop"

# Stable marker for the deliberately failing cell (exercises quarantine).
_FAILING_LABEL = "chaos:failing-cell"


class ChaosCellError(RuntimeError):
    """The scripted failure of the workload's quarantine cell."""


def _run_cell(payload: Dict[str, Any]) -> RunResult:
    """Run one campaign cell and append its summary to the results store.

    Module-level (picklable) so the same workload also runs supervised.
    The append lands *before* the executor journals the checkpoint record,
    so a kill between the two leaves the interesting half-recorded state
    the monotonicity invariant exists to check.
    """
    if payload.get("fail"):
        raise ChaosCellError("chaos workload: scripted cell failure")
    scenario = OneHopScenario(**payload["scenario"])
    result = run_one_hop(scenario)
    atomic_append_jsonl(payload["results_path"], {
        "label": payload["label"],
        "completed": result.completed,
        "latency_s": round(result.latency, 6),
        "data_pkts": result.data_packets,
    })
    return result


def _encode(result: Any) -> Any:
    return result.to_jsonable()


def _decode(data: Any) -> RunResult:
    return RunResult.from_jsonable(data)


@dataclass(frozen=True)
class ChaosWorkload:
    """Parameters of the torture campaign; deterministic per instance."""

    protocols: Tuple[str, ...] = ("deluge", "lr-seluge")
    seeds: Tuple[int, ...] = (1, 2)
    loss_rate: float = 0.1
    receivers: int = 2
    image_size: int = 1024
    k: int = 4
    n: int = 6
    include_failing_cell: bool = True
    compact_every: int = 3

    # -- (de)serialisation -----------------------------------------------------

    def to_jsonable(self) -> Dict[str, Any]:
        """JSON-safe params dict; :meth:`from_jsonable` restores exactly.

        Crossing the process boundary matters: SIGKILL crash points run the
        workload in a child process built from this payload.
        """
        data = asdict(self)
        data["protocols"] = list(self.protocols)
        data["seeds"] = list(self.seeds)
        return data

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "ChaosWorkload":
        params = dict(data)
        params["protocols"] = tuple(params.get("protocols", ()))
        params["seeds"] = tuple(int(s) for s in params.get("seeds", ()))
        return cls(**params)

    # -- layout ----------------------------------------------------------------

    @staticmethod
    def checkpoint_dir(root: Union[str, Path]) -> Path:
        return Path(root) / "ckpt"

    @staticmethod
    def telemetry_dir(root: Union[str, Path]) -> Path:
        return Path(root) / "telemetry"

    @staticmethod
    def results_path(root: Union[str, Path]) -> Path:
        return Path(root) / "results.jsonl"

    @staticmethod
    def csv_path(root: Union[str, Path]) -> Path:
        return Path(root) / "aggregate.csv"

    def journal_paths(self, root: Union[str, Path]) -> List[Path]:
        """Every JSONL store the workload appends to (for the invariants)."""
        ckpt = self.checkpoint_dir(root)
        return [
            ckpt / "checkpoint.jsonl",
            ckpt / "quarantine.jsonl",
            self.results_path(root),
        ]

    # -- tasks -----------------------------------------------------------------

    def tasks(self, root: Union[str, Path]) -> List[Task]:
        results_path = str(self.results_path(root))
        tasks: List[Task] = []
        for protocol in self.protocols:
            for seed in self.seeds:
                scenario = OneHopScenario(
                    protocol=protocol, loss_rate=self.loss_rate,
                    receivers=self.receivers, image_size=self.image_size,
                    k=self.k, n=self.n, seed=seed,
                )
                label = f"{protocol}:seed={seed}"
                payload = {
                    "scenario": asdict(scenario),
                    "label": label,
                    "results_path": results_path,
                }
                # Key from the *scenario only*: stable across roots, so a
                # resumed run in a different directory still joins rows.
                tasks.append(Task(
                    key=task_key(CHAOS_TASK_KIND, asdict(scenario)),
                    runner=_run_cell, payload=payload, label=label,
                ))
        if self.include_failing_cell:
            tasks.append(Task(
                key=task_key(CHAOS_TASK_KIND, {"fail": True}),
                runner=_run_cell,
                payload={"fail": True, "label": _FAILING_LABEL,
                         "results_path": results_path},
                label=_FAILING_LABEL,
            ))
        return tasks

    # -- execution -------------------------------------------------------------

    def run(self, root: Union[str, Path], resume: bool = False) -> bytes:
        """Run (or resume) the campaign under ``root``; returns the CSV bytes.

        The aggregate is assembled from journal-keyed results — quarantined
        cells degrade to ``nan`` rows — then written atomically, matching
        how real sweeps derive figures from campaign outcomes.
        """
        root = Path(root)
        config = CampaignConfig(
            processes=None,
            max_retries=0,
            checkpoint_dir=self.checkpoint_dir(root),
            resume=resume,
            telemetry_dir=self.telemetry_dir(root),
            telemetry_write_every_s=0.0,
            checkpoint_compact_every=self.compact_every,
        )
        tasks = self.tasks(root)
        outcome = run_campaign(tasks, config, encode=_encode, decode=_decode)
        csv = self._aggregate_csv(tasks, outcome)
        atomic_write_text(self.csv_path(root), csv)
        return csv.encode("utf-8")

    def _aggregate_csv(
        self, tasks: List[Task], outcome: CampaignOutcome
    ) -> str:
        lines = ["label,completed,latency_s,data_pkts"]
        for task in sorted(tasks, key=lambda t: t.label):
            result = outcome.results.get(task.key)
            if result is None:
                lines.append(f"{task.label},NO,nan,nan")
            else:
                lines.append(
                    f"{task.label},{'yes' if result.completed else 'NO'},"
                    f"{result.latency:.6f},{result.data_packets}"
                )
        return "\n".join(lines) + "\n"
