"""Storage chaos engine: deterministic fs-fault injection and crash points.

LR-Seluge's harness persists everything that matters — campaign checkpoint
journals, quarantine records, bench history, telemetry snapshots, figure
exports — through :mod:`repro.persist`.  This package tests that layer under
the failures it claims to survive:

* :class:`FaultyFS` interposes on the persist seam and injects ENOSPC, EIO,
  short writes, torn writes, and simulated process death at schedule-driven
  points (:class:`FaultSchedule`, derived from :mod:`repro.sim.rng` streams,
  so every failure sequence is replayable from a seed);
* the crash-point explorer (:mod:`repro.chaos.explore`) enumerates every
  persist operation a campaign performs, simulates a kill at each one — as
  an in-process :class:`ChaosCrash` or a real SIGKILL — restarts the
  campaign with ``resume=True``, and asserts the recovery invariants:
  byte-identical aggregate output, no torn non-trailing journal lines,
  monotone checkpoint/quarantine/results stores, and an always-parseable
  telemetry ``status.json``.

CLI: ``python -m repro.chaos explore`` / ``inject``.  Test helper:
:func:`repro.chaos.testing.faulty_fs`.
"""

from repro.chaos.fs import ChaosCrash, FaultyFS, OpRecord
from repro.chaos.schedule import FaultSchedule, FaultSpec
from repro.chaos.workload import ChaosWorkload
from repro.chaos.explore import explore_crash_points, enumerate_ops

__all__ = [
    "ChaosCrash",
    "FaultyFS",
    "OpRecord",
    "FaultSchedule",
    "FaultSpec",
    "ChaosWorkload",
    "explore_crash_points",
    "enumerate_ops",
]
