"""FaultyFS: the deterministic filesystem fault injector.

A :class:`FaultyFS` implements the :class:`repro.persist.FileSystem` seam and
sits between the persist helpers and the real ``os`` syscalls.  Every disk
*mutation* (open-for-write, write, fsync, replace, truncate, unlink) becomes
a numbered :class:`OpRecord`; faults fire either at a fixed operation index
(the crash-point explorer's mode) or wherever a :class:`~repro.chaos.
schedule.FaultSchedule` says (the replayable random-injection mode).

Fault semantics, chosen to mirror what real storage does:

* ``enospc`` / ``eio`` — the operation fails with the matching ``OSError``
  and **no bytes reach the disk**; the caller sees the error.
* ``short`` — a write persists only a prefix and returns the short count,
  exactly as POSIX permits; the persist layer's short-write loop must finish
  the record.
* ``crash`` — simulated process death *before* the operation takes effect.
  Exploring "crash before op *k*" for every *k* covers every distinct
  on-disk state a kill can produce, because the disk state after op *k-1*
  completes is identical to the state just before op *k* starts.
* ``torn`` — death *mid-write*: a prefix of the data lands, then the
  process dies.  This is the one state "before/after" enumeration cannot
  reach, so the explorer runs it as a separate mode over write ops.

Death is modelled two ways: ``crash_action="raise"`` raises
:class:`ChaosCrash` — a ``BaseException`` so no campaign retry logic
(``except Exception``) can absorb it — and freezes the filesystem (every
later mutation also dies, the way a dead process stops touching disk);
``crash_action="sigkill"`` delivers a real ``SIGKILL`` to the current
process, generalising the single-point kill-resume test to any operation.
"""

from __future__ import annotations

import errno
import os
import signal
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.persist import FileSystem

__all__ = ["ChaosCrash", "OpRecord", "FaultyFS", "FAULT_KINDS"]

FAULT_KINDS = ("enospc", "eio", "short", "crash", "torn")


class ChaosCrash(BaseException):
    """Simulated process death at one filesystem operation.

    Deliberately a ``BaseException``: the campaign executor retries task
    failures caught as ``Exception``, and a simulated kill must behave like
    a real one — nothing in the dying process may handle it, only the
    explorer that staged it.
    """

    def __init__(self, op: "OpRecord") -> None:
        super().__init__(
            f"simulated crash at fs op #{op.index}: {op.op} {op.path}"
        )
        self.op = op


@dataclass(frozen=True)
class OpRecord:
    """One numbered disk mutation as seen at the persist seam."""

    index: int
    op: str          # "open" | "write" | "fsync" | "replace" | "truncate" | "unlink"
    path: str
    detail: str = ""  # e.g. "n=123" for writes, the destination for replaces

    def describe(self) -> str:
        text = f"#{self.index} {self.op} {self.path}"
        return f"{text} ({self.detail})" if self.detail else text


@dataclass
class FaultyFS(FileSystem):
    """A :class:`~repro.persist.FileSystem` that injects scheduled faults.

    ``crash_at``/``crash_mode`` stage one deterministic death for the
    crash-point explorer; ``schedule`` drives replayable random injection.
    Both may be ``None``, which turns the instance into a pure recorder —
    the explorer's enumeration pass.  ``ops`` accumulates every mutation
    performed (or died at) in order.
    """

    schedule: Optional[object] = None          # FaultSchedule (duck-typed)
    crash_at: Optional[int] = None
    crash_mode: str = "before"                 # "before" | "torn"
    crash_action: str = "raise"                # "raise" | "sigkill"
    inner: FileSystem = field(default_factory=FileSystem)
    ops: List[OpRecord] = field(default_factory=list)
    dead: bool = False

    def __post_init__(self) -> None:
        self._fd_paths: Dict[int, str] = {}

    # -- bookkeeping -----------------------------------------------------------

    def _record(self, op: str, path: str, detail: str = "") -> OpRecord:
        rec = OpRecord(index=len(self.ops), op=op, path=path, detail=detail)
        self.ops.append(rec)
        return rec

    def _die(self, rec: OpRecord) -> None:
        if self.crash_action == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - dies
        self.dead = True
        raise ChaosCrash(rec)

    def _fault_for(self, rec: OpRecord) -> Optional[str]:
        if self.crash_at is not None and rec.index == self.crash_at:
            if self.crash_mode == "torn" and rec.op == "write":
                return "torn"
            return "crash"
        if self.schedule is not None:
            kind = self.schedule.fault_for(rec)  # type: ignore[attr-defined]
            if kind is not None:
                return str(kind)
        return None

    def _enter(self, op: str, path: str, detail: str = "") -> OpRecord:
        """Record the op; die if the process already crashed; apply faults
        common to non-write ops.  Returns the record for write()'s own
        fault handling."""
        if self.dead:
            # A dead process performs no further mutations: re-raise at the
            # first op attempted after the staged death (unwind handlers,
            # telemetry close, etc. all hit this).
            raise ChaosCrash(OpRecord(len(self.ops), op, path, "post-mortem"))
        return self._record(op, path, detail)

    def _apply_simple_fault(self, rec: OpRecord) -> None:
        kind = self._fault_for(rec)
        if kind in ("crash", "torn"):
            self._die(rec)
        if kind == "enospc":
            raise OSError(errno.ENOSPC,
                          f"no space left on device (chaos {rec.describe()})")
        if kind in ("eio", "short"):
            # A short read-modify op degenerates to EIO for non-writes.
            raise OSError(errno.EIO, f"i/o error (chaos {rec.describe()})")

    # -- the seam --------------------------------------------------------------

    def open(self, path: str, flags: int, mode: int = 0o644) -> int:
        rec = self._enter("open", path)
        self._apply_simple_fault(rec)
        fd = self.inner.open(path, flags, mode)
        self._fd_paths[fd] = path
        return fd

    def write(self, fd: int, data: bytes) -> int:
        path = self._fd_paths.get(fd, f"fd={fd}")
        rec = self._enter("write", path, f"n={len(data)}")
        kind = self._fault_for(rec)
        if kind == "crash":
            self._die(rec)
        if kind == "torn":
            n = len(data) // 2
            if n > 0:
                self.inner.write(fd, data[:n])
            self._die(rec)
        if kind == "enospc":
            raise OSError(errno.ENOSPC,
                          f"no space left on device (chaos {rec.describe()})")
        if kind == "eio":
            raise OSError(errno.EIO, f"i/o error (chaos {rec.describe()})")
        if kind == "short" and len(data) > 1:
            return self.inner.write(fd, data[: len(data) // 2])
        return self.inner.write(fd, data)

    def fsync(self, fd: int) -> None:
        rec = self._enter("fsync", self._fd_paths.get(fd, f"fd={fd}"))
        self._apply_simple_fault(rec)
        self.inner.fsync(fd)

    def close(self, fd: int) -> None:
        # Closing mutates nothing durable, so it is neither recorded nor
        # faulted — and it still works after a staged death, so in-process
        # exploration does not leak file descriptors across crash points.
        self._fd_paths.pop(fd, None)
        self.inner.close(fd)

    def replace(self, src: str, dst: str) -> None:
        rec = self._enter("replace", src, f"-> {dst}")
        self._apply_simple_fault(rec)
        self.inner.replace(src, dst)

    def truncate(self, fd: int, length: int) -> None:
        rec = self._enter("truncate", self._fd_paths.get(fd, f"fd={fd}"),
                          f"len={length}")
        self._apply_simple_fault(rec)
        self.inner.truncate(fd, length)

    def unlink(self, path: str) -> None:
        rec = self._enter("unlink", path)
        self._apply_simple_fault(rec)
        self.inner.unlink(path)

    # -- introspection ---------------------------------------------------------

    def op_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for rec in self.ops:
            counts[rec.op] = counts.get(rec.op, 0) + 1
        return dict(sorted(counts.items()))
