"""Test-suite glue: inject storage faults into any code under test.

The fixture style is a plain contextmanager rather than a pytest plugin so
non-pytest callers (scripts, the CLI) can use it too::

    from repro.chaos.testing import faulty_fs
    from repro.chaos.schedule import FaultSpec

    with faulty_fs(FaultSpec(kind="enospc", op="write")) as fs:
        hub.task_done("cell-1")          # status write hits ENOSPC
    assert fs.op_counts()["write"] >= 1

Every :class:`FaultSpec` defaults to ``once=True``, so a spec fires on the
first matching op and then stands down — the common "one bad write, then
the disk recovers" shape.  Pass a full :class:`FaultSchedule` for rate-
driven or multi-fault scenarios.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.chaos.fs import FaultyFS
from repro.chaos.schedule import FaultSchedule, FaultSpec
from repro.persist import use_fs

__all__ = ["faulty_fs"]


@contextmanager
def faulty_fs(
    *specs: FaultSpec,
    schedule: Optional[FaultSchedule] = None,
    crash_at: Optional[int] = None,
    crash_mode: str = "before",
) -> Iterator[FaultyFS]:
    """Install a :class:`FaultyFS` over ``repro.persist`` for the block.

    Accepts either loose :class:`FaultSpec` objects (wrapped into a
    schedule) or a prebuilt ``schedule``; ``crash_at`` arms an in-process
    kill at that op index, same as the explorer's crash points.
    """
    if specs and schedule is not None:
        raise ValueError("pass FaultSpecs or a schedule, not both")
    if schedule is None and specs:
        schedule = FaultSchedule(specs=list(specs))
    fs = FaultyFS(schedule=schedule, crash_at=crash_at, crash_mode=crash_mode)
    with use_fs(fs):
        yield fs
